// Ablation A1 — detector comparison (paper §VI-E: "one-class SVM is not
// the sole option ... A further comparison study can be conducted in our
// future work"; this bench conducts it).
//
// All three case studies are run once; each detector ranks the same
// feature matrices. Reported per (case, detector): rank of the first
// true-bug interval, smallest inspection depth covering every detectable
// bug, and precision among the top-5.
#include <cstdio>
#include <functional>
#include <memory>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "ml/detectors.hpp"
#include "ml/kfd.hpp"
#include "ml/ocsvm.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

struct NamedDetector {
  std::string name;
  std::function<std::shared_ptr<core::OutlierDetector>()> make;
};

std::vector<NamedDetector> detectors(std::size_t jobs) {
  return {
      {"ocsvm-rbf",
       [jobs] {
         ml::OcsvmParams p;
         p.threads = jobs;
         return std::make_shared<ml::OneClassSvm>(p);
       }},
      {"ocsvm-linear",
       [jobs] {
         ml::OcsvmParams p;
         p.kernel.type = ml::KernelType::Linear;
         p.threads = jobs;
         return std::make_shared<ml::OneClassSvm>(p);
       }},
      {"pca", [] { return std::make_shared<ml::PcaDetector>(); }},
      {"knn", [] { return std::make_shared<ml::KnnDetector>(); }},
      {"lof", [] { return std::make_shared<ml::LofDetector>(); }},
      {"mahalanobis",
       [] { return std::make_shared<ml::MahalanobisDetector>(); }},
      {"oc-kfd",
       [] { return std::make_shared<ml::KernelFisherDetector>(); }},
  };
}

void report_rows(util::Table& table, const std::string& case_name,
                 const std::vector<pipeline::TaggedTrace>& traces,
                 trace::IrqLine line, std::size_t jobs) {
  for (const auto& d : detectors(jobs)) {
    pipeline::AnalysisOptions options;
    options.detector = d.make();
    pipeline::AnalysisReport report = analyze(traces, line, options);
    table.add_row({case_name, d.name, util::cell(report.samples.size()),
                   util::cell(report.buggy_count()),
                   util::cell(report.first_bug_rank()),
                   util::cell(report.inspection_depth_for_all()),
                   util::cell(report.precision_at(5), 3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::size_t jobs = bench::parse_jobs(cli);

  bench::section("Ablation A1: outlier-detector comparison");
  util::Table table({"case", "detector", "samples", "buggy",
                     "first bug rank", "depth for all", "precision@5"});

  {
    apps::Case1Config config;
    config.seed = seed;
    apps::Case1Result r = apps::run_case1(config);
    std::vector<pipeline::TaggedTrace> traces;
    for (std::size_t i = 0; i < r.runs.size(); ++i)
      traces.push_back({&r.runs[i].sensor_trace, i});
    report_rows(table, "I data-pollution", traces, os::irq::kAdc, jobs);
  }
  {
    apps::Case2Config config;
    config.seed = 3;
    apps::Case2Result r = apps::run_case2(config);
    std::vector<pipeline::TaggedTrace> traces{{&r.relay_trace, 0}};
    report_rows(table, "II busy-drop", traces, os::irq::kRadioSpi, jobs);
  }
  {
    apps::Case3Config config;
    config.seed = seed;
    apps::Case3Result r = apps::run_case3(config);
    std::vector<pipeline::TaggedTrace> traces;
    for (net::NodeId src : r.sources)
      traces.push_back({&r.traces[src], 0});
    report_rows(table, "III ctp-hang", traces, r.report_line, jobs);
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nNote: 'depth for all' counts every interval containing a ground-\n"
      "truth marker, including short polluter-side windows the paper's\n"
      "methodology would not flag; 'first bug rank' is the headline "
      "metric.\n");
  return 0;
}
