// Ablation A2 — feature comparison (paper §V-B).
//
// The paper argues for the instruction counter over cheaper abstractions.
// This bench ranks the same intervals (cases I and II) featured three
// ways: full instruction counters (Definition 4), per-code-object
// (function-level, Dustminer-style) counts, and coarse scalar summaries.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

void report_rows(util::Table& table, const std::string& case_name,
                 const std::vector<pipeline::TaggedTrace>& traces,
                 trace::IrqLine line, std::size_t jobs) {
  for (pipeline::FeatureKind kind :
       {pipeline::FeatureKind::InstructionCounter,
        pipeline::FeatureKind::CodeObject, pipeline::FeatureKind::Coarse}) {
    pipeline::AnalysisOptions options;
    options.features = kind;
    options.detector = pipeline::default_detector(jobs);
    pipeline::AnalysisReport report = analyze(traces, line, options);
    table.add_row({case_name, pipeline::to_string(kind),
                   util::cell(report.feature_dim),
                   util::cell(report.first_bug_rank()),
                   util::cell(report.precision_at(5), 3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::size_t jobs = bench::parse_jobs(cli);

  bench::section("Ablation A2: interval featurization comparison");
  util::Table table(
      {"case", "features", "dim", "first bug rank", "precision@5"});

  {
    apps::Case1Config config;
    config.seed = seed;
    apps::Case1Result r = apps::run_case1(config);
    std::vector<pipeline::TaggedTrace> traces;
    for (std::size_t i = 0; i < r.runs.size(); ++i)
      traces.push_back({&r.runs[i].sensor_trace, i});
    report_rows(table, "I data-pollution", traces, os::irq::kAdc, jobs);
  }
  {
    apps::Case2Config config;
    config.seed = 3;
    apps::Case2Result r = apps::run_case2(config);
    std::vector<pipeline::TaggedTrace> traces{{&r.relay_trace, 0}};
    report_rows(table, "II busy-drop", traces, os::irq::kRadioSpi, jobs);
  }

  std::fputs(table.render().c_str(), stdout);
  return 0;
}
