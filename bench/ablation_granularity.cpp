// Ablation A3 — anatomization granularity (paper §V-A).
//
// The paper's central structural claim is that the EVENT-HANDLING INTERVAL
// is the right unit of analysis. This bench compares three ways of
// carving the same case-I traces into samples:
//   1. event-handling intervals (Definition 2, the paper's choice);
//   2. handler-only spans (int .. reti, ignoring the posted tasks);
//   3. fixed-size time windows (no semantic alignment at all).
// Each sample set is featured as instruction counters and ranked by the
// same one-class SVM; the buggy windows' ranks show how much the semantic
// partition matters.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "core/detector.hpp"
#include "core/features.hpp"
#include "core/int_reti.hpp"
#include "ml/ocsvm.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

struct Graded {
  std::size_t samples = 0;
  std::size_t buggy = 0;
  std::size_t first_rank = 0;
  double precision5 = 0.0;
};

// Rank custom interval windows built from (possibly several) traces.
Graded grade(const std::vector<const trace::NodeTrace*>& traces,
             const std::vector<std::vector<core::EventInterval>>& windows,
             std::size_t jobs) {
  core::FeatureMatrix matrix;
  std::vector<bool> has_bug;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    core::FeatureMatrix part =
        core::instruction_counters(*traces[t], windows[t]);
    core::append_rows(matrix, part);
    for (const auto& w : windows[t]) {
      bool bug = false;
      for (const auto& marker : traces[t]->bugs)
        bug |= marker.cycle >= w.start_cycle && marker.cycle <= w.end_cycle;
      has_bug.push_back(bug);
    }
  }
  ml::OcsvmParams params;
  params.threads = jobs;
  ml::OneClassSvm svm(params);
  std::vector<double> scores = svm.score(matrix.values);
  auto ranked = core::rank_ascending(scores);

  Graded g;
  g.samples = has_bug.size();
  for (bool b : has_bug) g.buggy += b;
  std::size_t hits5 = 0;
  for (std::size_t pos = 0; pos < ranked.size(); ++pos) {
    if (has_bug[ranked[pos].index]) {
      if (g.first_rank == 0) g.first_rank = pos + 1;
      if (pos < 5) ++hits5;
    }
  }
  g.precision5 = double(hits5) / 5.0;
  return g;
}

std::vector<core::EventInterval> event_handling(
    const trace::NodeTrace& t, trace::IrqLine line) {
  core::Anatomizer anatomizer(t);
  return anatomizer.intervals_for(line);
}

std::vector<core::EventInterval> handler_only(const trace::NodeTrace& t,
                                              trace::IrqLine line) {
  std::vector<core::EventInterval> out;
  const auto& seq = t.lifecycle;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].kind != trace::LifecycleKind::Int || seq[i].arg != line)
      continue;
    core::EventInterval w;
    w.irq = line;
    w.start_index = i;
    w.start_cycle = seq[i].cycle;
    auto s = core::match_int_reti(seq, i);
    if (s) {
      w.end_index = s->end;
      w.end_cycle = seq[s->end].cycle;
    } else {
      w.end_index = seq.size() - 1;
      w.end_cycle = t.run_end;
      w.truncated = true;
    }
    w.seq_in_type = out.size();
    out.push_back(w);
  }
  return out;
}

std::vector<core::EventInterval> fixed_windows(const trace::NodeTrace& t,
                                               sim::Cycle width) {
  std::vector<core::EventInterval> out;
  for (sim::Cycle start = 0; start < t.run_end; start += width) {
    core::EventInterval w;
    w.start_cycle = start;
    w.end_cycle = std::min(start + width - 1, t.run_end);
    w.seq_in_type = out.size();
    out.push_back(w);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  cli.add_flag("window-ms", "fixed-window width in ms", "20");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  apps::Case1Config config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::size_t jobs = bench::parse_jobs(cli);
  apps::Case1Result r = apps::run_case1(config);

  std::vector<const trace::NodeTrace*> traces;
  for (const auto& run : r.runs) traces.push_back(&run.sensor_trace);

  bench::section("Ablation A3: anatomization granularity (case I)");
  util::Table table({"granularity", "samples", "buggy windows",
                     "first bug rank", "precision@5"});

  auto add = [&](const std::string& name,
                 const std::vector<std::vector<core::EventInterval>>& w) {
    Graded g = grade(traces, w, jobs);
    table.add_row({name, util::cell(g.samples), util::cell(g.buggy),
                   util::cell(g.first_rank), util::cell(g.precision5, 3)});
  };

  {
    std::vector<std::vector<core::EventInterval>> w;
    for (auto* t : traces) w.push_back(event_handling(*t, os::irq::kAdc));
    add("event-handling interval (paper)", w);
  }
  {
    std::vector<std::vector<core::EventInterval>> w;
    for (auto* t : traces) w.push_back(handler_only(*t, os::irq::kAdc));
    add("handler-only (int..reti)", w);
  }
  {
    sim::Cycle width = sim::cycles_from_millis(cli.get_double("window-ms"));
    std::vector<std::vector<core::EventInterval>> w;
    for (auto* t : traces) w.push_back(fixed_windows(*t, width));
    add("fixed windows", w);
  }

  std::fputs(table.render().c_str(), stdout);
  return 0;
}
