// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>

#include "pipeline/sentomist.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace sent::bench {

/// Print a section header.
inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Declare the standard --jobs flag. `what` names the work that fans out
/// (kernel build, campaign workers, ...); every driver shares the same
/// spelling and "0 = all hardware cores" convention.
inline void add_jobs_flag(util::Cli& cli,
                          const std::string& what = "OCSVM kernel-build "
                                                    "threads") {
  cli.add_flag("jobs", what + " (0 = all hardware cores)", "0");
}

/// Resolve the parsed --jobs value (0 means every hardware core). A
/// negative value is a usage error (exit 2), not a 2^64-sized thread pool.
inline std::size_t parse_jobs(const util::Cli& cli) {
  auto jobs = static_cast<std::size_t>(cli.get_nonneg_int("jobs"));
  return jobs == 0 ? util::ThreadPool::hardware_threads() : jobs;
}

/// Validate a --case value against the driver's case list. An unknown value
/// gets a usage error naming the valid cases; the caller exits nonzero
/// instead of silently running a default set.
inline bool check_case(const std::string& name,
                       std::initializer_list<const char*> valid) {
  for (const char* v : valid)
    if (name == v) return true;
  std::fprintf(stderr, "unknown --case %s (valid:", name.c_str());
  for (const char* v : valid) std::fprintf(stderr, " %s", v);
  std::fprintf(stderr, ")\n");
  return false;
}

/// Print the detection-quality summary the paper reports in prose.
inline void print_quality(const pipeline::AnalysisReport& report) {
  std::printf("samples (event-handling intervals): %zu\n",
              report.samples.size());
  std::printf("feature dimensionality:             %zu\n",
              report.feature_dim);
  std::printf("detector:                           %s\n",
              report.detector_name.c_str());
  std::printf("ground-truth buggy intervals:       %zu\n",
              report.buggy_count());
  auto ranks = report.bug_ranks();
  std::printf("ranks of buggy intervals:           ");
  if (ranks.empty()) {
    std::printf("(none)\n");
  } else {
    for (std::size_t i = 0; i < ranks.size(); ++i)
      std::printf("%s%zu", i ? ", " : "", ranks[i]);
    std::printf("\n");
  }
  if (!ranks.empty()) {
    std::printf("first buggy interval at rank:       %zu\n",
                report.first_bug_rank());
    std::printf("precision@%zu:                       %.3f\n",
                report.first_bug_rank(),
                report.precision_at(report.first_bug_rank()));
    std::size_t k = std::min<std::size_t>(10, report.ranking.size());
    std::printf("buggy intervals in top-%zu:          %zu\n", k,
                static_cast<std::size_t>(report.precision_at(k) *
                                             static_cast<double>(k) +
                                         0.5));
  }
}

}  // namespace sent::bench
