// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

#include "pipeline/sentomist.hpp"
#include "util/table.hpp"

namespace sent::bench {

/// Print a section header.
inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Print the detection-quality summary the paper reports in prose.
inline void print_quality(const pipeline::AnalysisReport& report) {
  std::printf("samples (event-handling intervals): %zu\n",
              report.samples.size());
  std::printf("feature dimensionality:             %zu\n",
              report.feature_dim);
  std::printf("detector:                           %s\n",
              report.detector_name.c_str());
  std::printf("ground-truth buggy intervals:       %zu\n",
              report.buggy_count());
  auto ranks = report.bug_ranks();
  std::printf("ranks of buggy intervals:           ");
  if (ranks.empty()) {
    std::printf("(none)\n");
  } else {
    for (std::size_t i = 0; i < ranks.size(); ++i)
      std::printf("%s%zu", i ? ", " : "", ranks[i]);
    std::printf("\n");
  }
  if (!ranks.empty()) {
    std::printf("first buggy interval at rank:       %zu\n",
                report.first_bug_rank());
    std::printf("precision@%zu:                       %.3f\n",
                report.first_bug_rank(),
                report.precision_at(report.first_bug_rank()));
    std::size_t k = std::min<std::size_t>(10, report.ranking.size());
    std::printf("buggy intervals in top-%zu:          %zu\n", k,
                static_cast<std::size_t>(report.precision_at(k) *
                                             static_cast<double>(k) +
                                         0.5));
  }
}

}  // namespace sent::bench
