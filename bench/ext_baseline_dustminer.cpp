// Extension E3 — Dustminer-style baseline comparison (paper §II).
//
// Dustminer mines discriminative function-level event patterns between a
// labelled good-behaviour log and a labelled bad-behaviour log. Two
// results fall out of running it on our case studies:
//   1. WITH perfect (ground-truth) labels it names the right code on
//      case I — but on case II it finds nothing, because the drop path is
//      inside one function and function-level sequences cannot see it
//      (the same granularity argument as ablation A2);
//   2. its accuracy decays as labels get noisier, quantifying the cost of
//      the manual labelling Sentomist does not need.
#include <cstdio>
#include <functional>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "core/anatomizer.hpp"
#include "ml/dustminer.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace sent;

namespace {

struct LabeledCase {
  std::vector<std::vector<std::uint32_t>> sequences;
  std::vector<bool> truth;  // ground-truth bad labels
  std::vector<std::string> names;
};

LabeledCase build_case1(std::uint64_t seed) {
  apps::Case1Config config;
  config.seed = seed;
  config.sample_periods_ms = {20};
  apps::Case1Result r = apps::run_case1(config);
  const trace::NodeTrace& t = r.runs[0].sensor_trace;
  core::Anatomizer anatomizer(t);
  auto intervals = anatomizer.intervals_for(os::irq::kAdc);
  LabeledCase c;
  c.sequences = ml::code_object_sequences(t, intervals, &c.names);
  for (const auto& interval : intervals) {
    bool bad = false;
    for (const auto& bug : t.bugs)
      bad |= bug.cycle >= interval.start_cycle &&
             bug.cycle <= interval.end_cycle;
    c.truth.push_back(bad);
  }
  return c;
}

LabeledCase build_case2(std::uint64_t seed) {
  apps::Case2Config config;
  config.seed = seed;
  apps::Case2Result r = apps::run_case2(config);
  const trace::NodeTrace& t = r.relay_trace;
  core::Anatomizer anatomizer(t);
  auto intervals = anatomizer.intervals_for(os::irq::kRadioSpi);
  LabeledCase c;
  c.sequences = ml::code_object_sequences(t, intervals, &c.names);
  for (const auto& interval : intervals) {
    bool bad = false;
    for (const auto& bug : t.bugs)
      bad |= bug.cycle >= interval.start_cycle &&
             bug.cycle <= interval.end_cycle;
    c.truth.push_back(bad);
  }
  return c;
}

void mine_and_print(const std::string& title, const LabeledCase& c,
                    const std::vector<bool>& labels) {
  bench::section(title);
  std::size_t bad = 0;
  for (bool b : labels) bad += b;
  if (bad == 0 || bad == labels.size()) {
    std::printf("(degenerate labels; Dustminer cannot run)\n");
    return;
  }
  ml::Dustminer miner;
  auto patterns = miner.mine(c.sequences, labels, c.names);
  if (patterns.empty()) {
    std::printf(
        "no discriminative function-level pattern found — the symptom is\n"
        "invisible at this granularity (instruction counters are needed).\n");
    return;
  }
  util::Table table({"pattern", "support(bad)", "support(good)", "side"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, patterns.size());
       ++i) {
    const auto& p = patterns[i];
    table.add_row({p.to_string(), util::cell(p.support_bad, 2),
                   util::cell(p.support_good, 2),
                   p.more_frequent_in_bad ? "bad" : "good"});
  }
  std::fputs(table.render().c_str(), stdout);
}

std::vector<bool> corrupt_labels(const std::vector<bool>& truth,
                                 double flip_to_bad_fraction,
                                 util::Rng& rng) {
  // Mislabel some normal intervals as bad — what imperfect manual
  // inspection of a transient bug produces.
  std::vector<bool> labels = truth;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (!labels[i] && rng.chance(flip_to_bad_fraction)) labels[i] = true;
  return labels;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  cli.add_flag("case", "case study to mine: I, II or all", "all");
  bench::add_jobs_flag(cli, "simulation workers (the two case builds)");
  if (!cli.parse(argc, argv)) return 1;
  auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string which = cli.get("case");
  if (!bench::check_case(which, {"I", "II", "all"})) return 2;
  const std::size_t jobs = bench::parse_jobs(cli);
  util::Rng rng(seed);

  // The two case builds are independent sims; fan them over the pool when
  // both are requested (pure build — printing stays in a fixed order).
  LabeledCase case1, case2;
  const bool want1 = which == "I" || which == "all";
  const bool want2 = which == "II" || which == "all";
  {
    util::ThreadPool pool(want1 && want2 ? std::min<std::size_t>(jobs, 2)
                                         : 1);
    std::vector<std::function<void()>> builds;
    if (want1) builds.push_back([&] { case1 = build_case1(seed); });
    if (want2) builds.push_back([&] { case2 = build_case2(3); });
    pool.parallel_for(builds.size(),
                      [&](std::size_t i) { builds[i](); });
  }

  if (want1) {
    mine_and_print("E3 / case I, ground-truth labels (idealized best case)",
                   case1, case1.truth);
    mine_and_print("E3 / case I, 5% of good intervals mislabelled bad",
                   case1, corrupt_labels(case1.truth, 0.05, rng));
    mine_and_print("E3 / case I, 20% of good intervals mislabelled bad",
                   case1, corrupt_labels(case1.truth, 0.20, rng));
  }

  if (want2) {
    mine_and_print(
        "E3 / case II, ground-truth labels (function granularity fails)",
        case2, case2.truth);
  }

  std::printf(
      "\nDustminer requires labelled good/bad intervals; Sentomist ranks\n"
      "the same intervals with no labels at all (see fig5a/fig5b).\n");
  return 0;
}
