// Extension E2 — randomized test campaigns: quantify how TRANSIENT each
// case-study bug is (trigger rate across seeds) versus how reliably
// Sentomist surfaces it when it does fire (top-k detection rate).
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "pipeline/campaign.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("runs", "seeds per case", "20");
  cli.add_flag("top-k", "detection cut-off", "5");
  cli.add_flag("first-seed", "first seed", "1");
  if (!cli.parse(argc, argv)) return 1;
  auto runs = static_cast<std::size_t>(cli.get_int("runs"));
  auto k = static_cast<std::size_t>(cli.get_int("top-k"));
  auto first = static_cast<std::uint64_t>(cli.get_int("first-seed"));

  bench::section("Extension E2: randomized campaigns (trigger vs detect)");

  {
    pipeline::CampaignStats stats = pipeline::run_campaign(
        [](std::uint64_t seed) {
          apps::Case1Config config;
          config.seed = seed;
          config.sample_periods_ms = {20};  // the vulnerable rate
          config.run_seconds = 10.0;
          apps::Case1Result r = apps::run_case1(config);
          return pipeline::analyze({{&r.runs[0].sensor_trace, 0}},
                                   os::irq::kAdc);
        },
        first, runs, k);
    std::printf("case I  (D=20ms, 10s):  %s\n",
                pipeline::summarize(stats).c_str());
  }
  {
    pipeline::CampaignStats stats = pipeline::run_campaign(
        [](std::uint64_t seed) {
          apps::Case2Config config;
          config.seed = seed;
          apps::Case2Result r = apps::run_case2(config);
          return pipeline::analyze({{&r.relay_trace, 0}},
                                   os::irq::kRadioSpi);
        },
        first, runs, k);
    std::printf("case II (20s):          %s\n",
                pipeline::summarize(stats).c_str());
  }
  {
    pipeline::CampaignStats stats = pipeline::run_campaign(
        [](std::uint64_t seed) {
          apps::Case3Config config;
          config.seed = seed;
          apps::Case3Result r = apps::run_case3(config);
          std::vector<pipeline::TaggedTrace> traces;
          for (net::NodeId src : r.sources)
            traces.push_back({&r.traces[src], 0});
          return analyze(traces, r.report_line);
        },
        first, runs, k);
    std::printf("case III (9 nodes, 15s): %s\n",
                pipeline::summarize(stats).c_str());
  }

  std::printf(
      "\nTrigger rate is a property of the workload (the bug's transience);"
      "\ndetection rate is the tool's contribution once a trace contains "
      "the symptom.\n");
  return 0;
}
