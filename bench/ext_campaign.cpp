// Extension E2 — randomized test campaigns: quantify how TRANSIENT each
// case-study bug is (trigger rate across seeds) versus how reliably
// Sentomist surfaces it when it does fire (top-k detection rate).
//
// Grid mode (default): each case runs serially and fanned out over --jobs
// pool workers — both to measure the multi-core speedup and to check,
// every time, that parallel campaigns produce bit-identical CampaignStats.
// Timing is warmup + median-of---reps with a per-phase breakdown (setup /
// simulate / analyze wall seconds from the worker-sharded PhaseShards), so
// the speedup claims in BENCH_campaign.json are stable and attributable.
//
// Scale mode (--scale N): one N-run chaos campaign (the amortized campaign
// engine's headline, DESIGN.md §15) through three legs — serial pooled,
// --jobs pooled, and --jobs with fresh per-run construction — asserting
// CampaignStats AND merged obs snapshots are bit-identical across all
// three, and reporting speedup / efficiency against min(jobs,
// hardware_threads). --min-efficiency gates it for CI; --stats-out writes
// cmp(1)-able stats_json files for the serial and parallel legs.
//
// Durable mode (DESIGN.md §13): with --journal PATH the driver instead
// runs ONE campaign of the case picked by --case, journaling every
// outcome; --resume skips already-journaled seeds, --retries bounds the
// retry policy, and --kill-after N SIGKILLs the process after N journal
// appends (the crash-resume smoke in scripts/tier1.sh). The --json output
// in this mode is the deterministic stats_json, so a killed-then-resumed
// campaign's file cmp(1)s byte-identical against an uninterrupted run's.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs_flags.hpp"
#include "obs/metrics.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/worker_pool.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v.size() % 2 ? v[v.size() / 2]
                      : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
}

void print_phases(const char* label, const pipeline::PhaseTotals& t) {
  std::printf("  %-22s setup %.3fs, simulate %.3fs, analyze %.3fs "
              "(%llu runs)\n",
              label, t.setup_seconds, t.simulate_seconds, t.analyze_seconds,
              static_cast<unsigned long long>(t.runs));
}

void json_phases(std::ofstream& os, const pipeline::PhaseTotals& t) {
  os << "{\"setup_seconds\": " << t.setup_seconds
     << ", \"simulate_seconds\": " << t.simulate_seconds
     << ", \"analyze_seconds\": " << t.analyze_seconds << "}";
}

/// Durable-mode entry: one journaled (optionally resumed) campaign.
int run_durable(const util::Cli& cli, pipeline::CampaignOptions options,
                std::size_t jobs) {
  const std::string case_name = cli.get("case");
  if (case_name == "all") {
    std::fprintf(stderr,
                 "durable mode journals ONE campaign: pick --case I, II or "
                 "III\n");
    return 2;
  }

  options.threads = jobs;
  options.journal_path = cli.get("journal");
  options.resume = cli.get_switch("resume");
  options.max_retries = static_cast<std::size_t>(cli.get_int("retries"));
  options.journal_flush_every =
      static_cast<std::size_t>(cli.get_int("journal-flush"));
  options.harness_faults.kill_after_appends =
      static_cast<std::uint64_t>(cli.get_int("kill-after"));

  bench::section("Extension E2 (durable): journaled campaign");
  std::printf("case %s, %zu seeds, --jobs %zu, journal %s%s\n",
              case_name.c_str(), options.runs, jobs,
              options.journal_path.c_str(),
              options.resume ? " (resume)" : "");

  pipeline::CampaignStats stats = pipeline::run_campaign(
      pipeline::make_case_runner_factory(case_name, {}), options);
  std::printf("case %s: %s\n", case_name.c_str(),
              pipeline::summarize(stats).c_str());

  const std::string json_path = cli.get("json");
  std::ofstream os(json_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  os << pipeline::stats_json(stats);
  std::printf("deterministic stats written to %s\n", json_path.c_str());
  return 0;
}

struct CaseTiming {
  std::string name;
  std::size_t runs = 0;
  std::size_t reps = 0;
  double serial_seconds = 0.0;    ///< median over reps
  double parallel_seconds = 0.0;  ///< median over reps
  pipeline::PhaseTotals serial_phases;    ///< summed over timed reps
  pipeline::PhaseTotals parallel_phases;  ///< summed over timed reps
  bool identical = false;

  double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

/// Warmup (untimed, pages code and pool workers in), then `reps` timed
/// campaigns serial and parallel; medians land in the timing, every rep's
/// stats must stay bit-identical to the first serial rep.
CaseTiming run_both(const std::string& name, const char* printf_label,
                    const std::string& case_name,
                    pipeline::CampaignOptions options, std::size_t jobs,
                    std::size_t reps, std::size_t warmup_runs) {
  CaseTiming timing;
  timing.name = name;
  timing.runs = options.runs;
  timing.reps = reps;

  pipeline::PhaseShards serial_shards(1);
  pipeline::PhaseShards parallel_shards(std::max<std::size_t>(jobs, 1));
  pipeline::ScenarioRunnerFactory serial_factory =
      pipeline::make_case_runner_factory(case_name, {}, &serial_shards);
  pipeline::ScenarioRunnerFactory parallel_factory =
      pipeline::make_case_runner_factory(case_name, {}, &parallel_shards);

  if (warmup_runs > 0) {
    pipeline::CampaignOptions w = options;
    w.runs = std::min(options.runs, warmup_runs);
    w.threads = jobs;
    pipeline::PhaseShards scratch(std::max<std::size_t>(jobs, 1));
    (void)pipeline::run_campaign(
        pipeline::make_case_runner_factory(case_name, {}, &scratch), w);
  }

  pipeline::CampaignStats first;
  bool identical = true;
  std::vector<double> serial_secs, parallel_secs;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    options.threads = 1;
    auto t0 = std::chrono::steady_clock::now();
    pipeline::CampaignStats serial =
        pipeline::run_campaign(serial_factory, options);
    serial_secs.push_back(seconds_since(t0));

    options.threads = jobs;
    t0 = std::chrono::steady_clock::now();
    pipeline::CampaignStats parallel =
        pipeline::run_campaign(parallel_factory, options);
    parallel_secs.push_back(seconds_since(t0));

    if (rep == 0) first = serial;
    identical = identical && serial == first && parallel == first;
  }

  timing.serial_seconds = median(serial_secs);
  timing.parallel_seconds = median(parallel_secs);
  timing.serial_phases = serial_shards.merged();
  timing.parallel_phases = parallel_shards.merged();
  timing.identical = identical;
  std::printf("%s %s\n", printf_label, pipeline::summarize(first).c_str());
  print_phases("serial phases:", timing.serial_phases);
  if (!timing.identical)
    std::printf("  !! parallel (--jobs %zu) stats DIVERGED from serial\n",
                jobs);
  return timing;
}

bool write_json(const std::string& path, std::size_t jobs,
                const std::vector<CaseTiming>& timings) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t hw = util::ThreadPool::hardware_threads();
  double serial_total = 0.0, parallel_total = 0.0;
  os << "{\n  \"jobs\": " << jobs << ",\n  \"hardware_threads\": " << hw
     << ",\n  \"effective_jobs\": " << std::min(jobs, hw)
     << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const CaseTiming& t = timings[i];
    serial_total += t.serial_seconds;
    parallel_total += t.parallel_seconds;
    os << "    {\"name\": \"" << t.name << "\", \"runs\": " << t.runs
       << ", \"reps\": " << t.reps
       << ", \"serial_seconds\": " << t.serial_seconds
       << ", \"parallel_seconds\": " << t.parallel_seconds
       << ", \"speedup\": " << t.speedup()
       << ", \"identical\": " << (t.identical ? "true" : "false")
       << ",\n     \"serial_phases\": ";
    json_phases(os, t.serial_phases);
    os << ",\n     \"parallel_phases\": ";
    json_phases(os, t.parallel_phases);
    os << "}" << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  double speedup =
      parallel_total > 0.0 ? serial_total / parallel_total : 0.0;
  os << "  ],\n  \"total_serial_seconds\": " << serial_total
     << ",\n  \"total_parallel_seconds\": " << parallel_total
     << ",\n  \"speedup\": " << speedup << "\n}\n";
  return true;
}

// ---- scale mode -----------------------------------------------------------

/// One timed configuration (runner config × campaign options). Reps are
/// driven round-robin across all legs by the caller, so slow machine
/// drift (page cache, allocator arena growth, frequency scaling) lands
/// evenly on every leg instead of favoring whichever leg runs last —
/// back-to-back leg blocks were measurably biased by leg order.
struct ScaleLeg {
  pipeline::CaseRunnerConfig config;
  pipeline::CampaignOptions options;
  pipeline::PhaseShards shards;
  std::vector<double> secs;
  pipeline::CampaignStats stats;
  obs::Snapshot snapshot;
  double seconds = 0.0;  ///< median over reps

  ScaleLeg(const pipeline::CaseRunnerConfig& config,
           const pipeline::CampaignOptions& options)
      : config(config),
        options(options),
        shards(std::max<std::size_t>(options.threads, 1)) {}
};

/// One timed campaign of `leg`; stats from the last rep (all reps are
/// bit-identical or the campaign itself is broken — checked by the caller
/// against the serial leg). The obs registry is reset around each rep so
/// the final snapshot covers exactly one campaign.
void run_scale_rep(const std::string& case_name, ScaleLeg& leg) {
  obs::Registry::global().reset();
  pipeline::ScenarioRunnerFactory factory =
      pipeline::make_case_runner_factory(case_name, leg.config, &leg.shards);
  auto t0 = std::chrono::steady_clock::now();
  leg.stats = pipeline::run_campaign(factory, leg.options);
  leg.secs.push_back(seconds_since(t0));
  leg.snapshot = obs::Registry::global().snapshot();
}

int run_scale(const util::Cli& cli, pipeline::CampaignOptions options,
              std::size_t jobs) {
  const std::string case_name =
      cli.get("case") == "all" ? std::string("II") : cli.get("case");
  options.runs = static_cast<std::size_t>(cli.get_int("scale"));
  options.seed_batch = static_cast<std::size_t>(cli.get_int("batch"));
  const std::size_t reps = static_cast<std::size_t>(cli.get_int("reps"));
  const double intensity = cli.get_double("faults");
  const double min_efficiency = cli.get_double("min-efficiency");

  pipeline::CaseRunnerConfig pooled;
  pooled.intensity = intensity;
  pooled.event_budget =
      static_cast<std::uint64_t>(cli.get_int("cycle-budget"));
  pooled.trace_round_trip = intensity > 0.0;
  pipeline::CaseRunnerConfig fresh = pooled;
  fresh.pooled = false;

  bench::section("Extension E2 (scale): amortized chaos campaign");
  const std::size_t hw = util::ThreadPool::hardware_threads();
  const std::size_t effective = std::min(jobs, hw);
  std::printf("case %s, %zu runs, intensity %g, --jobs %zu "
              "(%zu hardware threads -> %zu effective), %zu rep(s)\n\n",
              case_name.c_str(), options.runs, intensity, jobs, hw,
              effective, reps);

  // Warmup: one small pooled campaign pages in code and pool workers.
  {
    pipeline::CampaignOptions w = options;
    w.runs = std::min<std::size_t>(options.runs, 8);
    w.threads = jobs;
    pipeline::PhaseShards scratch(std::max<std::size_t>(jobs, 1));
    (void)pipeline::run_campaign(
        pipeline::make_case_runner_factory(case_name, pooled, &scratch), w);
  }

  pipeline::CampaignOptions serial_opts = options;
  serial_opts.threads = 1;
  pipeline::CampaignOptions parallel_opts = options;
  parallel_opts.threads = jobs;

  ScaleLeg serial(pooled, serial_opts);
  ScaleLeg parallel(pooled, parallel_opts);
  ScaleLeg fresh_leg(fresh, parallel_opts);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    run_scale_rep(case_name, serial);
    run_scale_rep(case_name, parallel);
    run_scale_rep(case_name, fresh_leg);
  }
  for (ScaleLeg* leg : {&serial, &parallel, &fresh_leg})
    leg->seconds = median(leg->secs);

  std::printf("serial (pooled):    %.2fs  %s\n", serial.seconds,
              pipeline::summarize(serial.stats).c_str());
  print_phases("phases:", serial.shards.merged());
  std::printf("--jobs %zu (pooled):  %.2fs\n", jobs, parallel.seconds);
  print_phases("phases:", parallel.shards.merged());
  std::printf("--jobs %zu (fresh):   %.2fs (per-run construction, "
              "pre-pool path)\n",
              jobs, fresh_leg.seconds);

  const bool stats_identical = serial.stats == parallel.stats &&
                               serial.stats == fresh_leg.stats;
  const bool obs_identical =
      serial.snapshot.deterministic_equal(parallel.snapshot) &&
      serial.snapshot.deterministic_equal(fresh_leg.snapshot);
  const double speedup = parallel.seconds > 0.0
                             ? serial.seconds / parallel.seconds
                             : 0.0;
  const double efficiency =
      effective > 0 ? speedup / static_cast<double>(effective) : 0.0;
  const double pool_gain = parallel.seconds > 0.0
                               ? fresh_leg.seconds / parallel.seconds
                               : 0.0;

  std::printf("\nstats bit-identical (serial == parallel == fresh): %s\n",
              stats_identical ? "yes" : "NO");
  std::printf("obs snapshots bit-identical:                       %s\n",
              obs_identical ? "yes" : "NO");
  std::printf("speedup %.2fx over serial at --jobs %zu; efficiency %.2f "
              "of %zu effective core(s); pooled %.2fx vs fresh\n",
              speedup, jobs, efficiency, effective, pool_gain);

  // cmp(1)-able stats for the tier-1 scaling gate.
  const std::string stats_out = cli.get("stats-out");
  if (!stats_out.empty()) {
    for (const auto& [suffix, leg] :
         {std::pair<const char*, const ScaleLeg*>{"serial", &serial},
          {"parallel", &parallel}}) {
      std::string path = stats_out + "." + suffix + ".json";
      std::ofstream os(path);
      if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      os << pipeline::stats_json(leg->stats);
    }
    std::printf("stats written to %s.{serial,parallel}.json\n",
                stats_out.c_str());
  }

  std::ofstream os(cli.get("json"));
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", cli.get("json").c_str());
    return 1;
  }
  os << "{\n  \"mode\": \"scale\",\n  \"case\": \"" << case_name
     << "\",\n  \"runs\": " << options.runs << ",\n  \"reps\": " << reps
     << ",\n  \"intensity\": " << intensity << ",\n  \"jobs\": " << jobs
     << ",\n  \"hardware_threads\": " << hw
     << ",\n  \"effective_jobs\": " << effective
     << ",\n  \"serial_seconds\": " << serial.seconds
     << ",\n  \"parallel_seconds\": " << parallel.seconds
     << ",\n  \"fresh_parallel_seconds\": " << fresh_leg.seconds
     << ",\n  \"speedup\": " << speedup
     << ",\n  \"efficiency\": " << efficiency
     << ",\n  \"pooled_vs_fresh\": " << pool_gain
     << ",\n  \"stats_identical\": "
     << (stats_identical ? "true" : "false")
     << ",\n  \"obs_identical\": " << (obs_identical ? "true" : "false")
     << ",\n  \"serial_phases\": ";
  json_phases(os, serial.shards.merged());
  os << ",\n  \"parallel_phases\": ";
  json_phases(os, parallel.shards.merged());
  os << ",\n  \"triggered\": " << serial.stats.triggered
     << ",\n  \"failed\": " << serial.stats.failed
     << ",\n  \"timed_out\": " << serial.stats.timed_out << "\n}\n";
  std::printf("timing written to %s\n", cli.get("json").c_str());

  if (!stats_identical || !obs_identical) return 1;
  if (min_efficiency > 0.0 && efficiency < min_efficiency) {
    std::fprintf(stderr,
                 "FAIL: efficiency %.2f below --min-efficiency %.2f\n",
                 efficiency, min_efficiency);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("runs", "seeds per case", "20");
  cli.add_flag("top-k", "detection cut-off", "5");
  cli.add_flag("first-seed", "first seed", "1");
  bench::add_jobs_flag(cli, "campaign worker threads");
  cli.add_flag("reps", "timed repetitions per leg (median reported)", "3");
  cli.add_flag("warmup", "untimed warmup seeds before timing, 0 = none",
               "4");
  cli.add_flag("batch",
               "seeds claimed per pool task (0 = auto, DESIGN.md §15)", "0");
  cli.add_flag("scale",
               "scale mode: run ONE chaos campaign of this many seeds "
               "through serial/parallel/fresh legs (0 = off)", "0");
  cli.add_flag("faults", "scale mode: fault intensity", "0.5");
  cli.add_flag("cycle-budget",
               "scale mode: watchdog event budget per run, 0 = unlimited",
               "50000000");
  cli.add_flag("min-efficiency",
               "scale mode: fail below this speedup / effective-cores "
               "ratio (0 = report only)", "0");
  cli.add_flag("stats-out",
               "scale mode: write cmp-able stats_json to "
               "PREFIX.{serial,parallel}.json", "");
  cli.add_flag("json", "timing output file", "BENCH_campaign.json");
  cli.add_flag("journal", "durable mode: run journal path (DESIGN.md §13)",
               "");
  cli.add_switch("resume", "durable mode: skip seeds already journaled");
  cli.add_flag("retries", "durable mode: bounded retries per failed seed",
               "0");
  cli.add_flag("journal-flush",
               "durable mode: per-worker journal append buffer size "
               "(1 = append-through)", "1");
  cli.add_flag("kill-after",
               "durable mode: SIGKILL self after N journal appends "
               "(crash-resume smoke)", "0");
  cli.add_flag("case",
               "case study to run: I, II, III, or all (durable mode needs "
               "a single case)", "all");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ObsSession obs_session(cli);

  const std::string case_name = cli.get("case");
  if (!bench::check_case(case_name, {"I", "II", "III", "all"})) return 2;

  pipeline::CampaignOptions options;
  options.runs = static_cast<std::size_t>(cli.get_int("runs"));
  options.k = static_cast<std::size_t>(cli.get_int("top-k"));
  options.first_seed = static_cast<std::uint64_t>(cli.get_int("first-seed"));
  options.seed_batch = static_cast<std::size_t>(cli.get_int("batch"));
  std::size_t jobs = bench::parse_jobs(cli);

  if (!cli.get("journal").empty()) return run_durable(cli, options, jobs);
  if (cli.get_int("scale") > 0) return run_scale(cli, options, jobs);

  const auto reps =
      std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("reps")));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup"));

  bench::section("Extension E2: randomized campaigns (trigger vs detect)");
  std::printf("jobs: %zu, %zu timed rep(s) per leg (median), warmup %zu "
              "seeds\n\n",
              jobs, reps, warmup);
  std::vector<CaseTiming> timings;
  const bool all = case_name == "all";

  if (all || case_name == "I")
    timings.push_back(run_both("case I (D=20ms, 10s)",
                               "case I  (D=20ms, 10s): ", "I", options, jobs,
                               reps, warmup));

  if (all || case_name == "II")
    timings.push_back(run_both("case II (20s)", "case II (20s):         ",
                               "II", options, jobs, reps, warmup));

  if (all || case_name == "III")
    timings.push_back(run_both("case III (9 nodes, 15s)",
                               "case III (9 nodes, 15s):", "III", options,
                               jobs, reps, warmup));

  double serial_total = 0.0, parallel_total = 0.0;
  bool all_identical = true;
  for (const CaseTiming& t : timings) {
    serial_total += t.serial_seconds;
    parallel_total += t.parallel_seconds;
    all_identical = all_identical && t.identical;
  }
  std::printf(
      "\nwall-clock medians: serial %.2fs, --jobs %zu %.2fs (speedup "
      "%.2fx); stats %s\n",
      serial_total, jobs, parallel_total,
      parallel_total > 0.0 ? serial_total / parallel_total : 0.0,
      all_identical ? "identical" : "DIVERGED");

  if (write_json(cli.get("json"), jobs, timings))
    std::printf("timing written to %s\n", cli.get("json").c_str());

  std::printf(
      "\nTrigger rate is a property of the workload (the bug's transience);"
      "\ndetection rate is the tool's contribution once a trace contains "
      "the symptom.\n");
  return all_identical ? 0 : 1;
}
