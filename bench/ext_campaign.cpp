// Extension E2 — randomized test campaigns: quantify how TRANSIENT each
// case-study bug is (trigger rate across seeds) versus how reliably
// Sentomist surfaces it when it does fire (top-k detection rate).
//
// Each case is run twice — serially and fanned out over --jobs pool
// workers — both to measure the multi-core speedup and to check, every
// time, that parallel campaigns produce bit-identical CampaignStats.
// Timings land in BENCH_campaign.json for tooling.
//
// Durable mode (DESIGN.md §13): with --journal PATH the driver instead
// runs ONE campaign of the case picked by --case, journaling every
// outcome; --resume skips already-journaled seeds, --retries bounds the
// retry policy, and --kill-after N SIGKILLs the process after N journal
// appends (the crash-resume smoke in scripts/tier1.sh). The --json output
// in this mode is the deterministic stats_json, so a killed-then-resumed
// campaign's file cmp(1)s byte-identical against an uninterrupted run's.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "obs_flags.hpp"
#include "pipeline/campaign.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

// ---- the three case-study runners -----------------------------------------

pipeline::AnalysisReport run_case1_seeded(std::uint64_t seed) {
  apps::Case1Config config;
  config.seed = seed;
  config.sample_periods_ms = {20};  // the vulnerable rate
  config.run_seconds = 10.0;
  apps::Case1Result r = apps::run_case1(config);
  return pipeline::analyze({{&r.runs[0].sensor_trace, 0}}, os::irq::kAdc);
}

pipeline::AnalysisReport run_case2_seeded(std::uint64_t seed) {
  apps::Case2Config config;
  config.seed = seed;
  apps::Case2Result r = apps::run_case2(config);
  return pipeline::analyze({{&r.relay_trace, 0}}, os::irq::kRadioSpi);
}

pipeline::AnalysisReport run_case3_seeded(std::uint64_t seed) {
  apps::Case3Config config;
  config.seed = seed;
  apps::Case3Result r = apps::run_case3(config);
  std::vector<pipeline::TaggedTrace> traces;
  for (net::NodeId src : r.sources)
    traces.push_back({&r.traces[src], 0});
  return analyze(traces, r.report_line);
}

pipeline::ScenarioRunner runner_for_case(const std::string& name) {
  if (name == "I") return run_case1_seeded;
  if (name == "II") return run_case2_seeded;
  return run_case3_seeded;
}

/// Durable-mode entry: one journaled (optionally resumed) campaign.
int run_durable(const util::Cli& cli, pipeline::CampaignOptions options,
                std::size_t jobs) {
  const std::string case_name = cli.get("case");
  if (case_name == "all") {
    std::fprintf(stderr,
                 "durable mode journals ONE campaign: pick --case I, II or "
                 "III\n");
    return 2;
  }
  pipeline::ScenarioRunner runner = runner_for_case(case_name);

  options.threads = jobs;
  options.journal_path = cli.get("journal");
  options.resume = cli.get_switch("resume");
  options.max_retries = static_cast<std::size_t>(cli.get_int("retries"));
  options.harness_faults.kill_after_appends =
      static_cast<std::uint64_t>(cli.get_int("kill-after"));

  bench::section("Extension E2 (durable): journaled campaign");
  std::printf("case %s, %zu seeds, --jobs %zu, journal %s%s\n",
              case_name.c_str(), options.runs, jobs,
              options.journal_path.c_str(),
              options.resume ? " (resume)" : "");

  pipeline::CampaignStats stats = pipeline::run_campaign(runner, options);
  std::printf("case %s: %s\n", case_name.c_str(),
              pipeline::summarize(stats).c_str());

  const std::string json_path = cli.get("json");
  std::ofstream os(json_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  os << pipeline::stats_json(stats);
  std::printf("deterministic stats written to %s\n", json_path.c_str());
  return 0;
}

struct CaseTiming {
  std::string name;
  std::size_t runs = 0;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool identical = false;

  double speedup() const {
    return parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Run the campaign serially and with `jobs` workers; print the summary
/// and record wall-clock for both.
CaseTiming run_both(const std::string& name, const char* printf_label,
                    const pipeline::ScenarioRunner& runner,
                    pipeline::CampaignOptions options, std::size_t jobs) {
  CaseTiming timing;
  timing.name = name;
  timing.runs = options.runs;

  options.threads = 1;
  auto t0 = std::chrono::steady_clock::now();
  pipeline::CampaignStats serial = pipeline::run_campaign(runner, options);
  timing.serial_seconds = seconds_since(t0);

  options.threads = jobs;
  t0 = std::chrono::steady_clock::now();
  pipeline::CampaignStats parallel = pipeline::run_campaign(runner, options);
  timing.parallel_seconds = seconds_since(t0);

  timing.identical = serial == parallel;
  std::printf("%s %s\n", printf_label, pipeline::summarize(serial).c_str());
  if (!timing.identical)
    std::printf("  !! parallel (--jobs %zu) stats DIVERGED from serial\n",
                jobs);
  return timing;
}

bool write_json(const std::string& path, std::size_t jobs,
                const std::vector<CaseTiming>& timings) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  double serial_total = 0.0, parallel_total = 0.0;
  os << "{\n  \"jobs\": " << jobs << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const CaseTiming& t = timings[i];
    serial_total += t.serial_seconds;
    parallel_total += t.parallel_seconds;
    os << "    {\"name\": \"" << t.name << "\", \"runs\": " << t.runs
       << ", \"serial_seconds\": " << t.serial_seconds
       << ", \"parallel_seconds\": " << t.parallel_seconds
       << ", \"speedup\": " << t.speedup()
       << ", \"identical\": " << (t.identical ? "true" : "false") << "}"
       << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  double speedup =
      parallel_total > 0.0 ? serial_total / parallel_total : 0.0;
  os << "  ],\n  \"total_serial_seconds\": " << serial_total
     << ",\n  \"total_parallel_seconds\": " << parallel_total
     << ",\n  \"speedup\": " << speedup << "\n}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("runs", "seeds per case", "20");
  cli.add_flag("top-k", "detection cut-off", "5");
  cli.add_flag("first-seed", "first seed", "1");
  bench::add_jobs_flag(cli, "campaign worker threads");
  cli.add_flag("json", "timing output file", "BENCH_campaign.json");
  cli.add_flag("journal", "durable mode: run journal path (DESIGN.md §13)",
               "");
  cli.add_switch("resume", "durable mode: skip seeds already journaled");
  cli.add_flag("retries", "durable mode: bounded retries per failed seed",
               "0");
  cli.add_flag("kill-after",
               "durable mode: SIGKILL self after N journal appends "
               "(crash-resume smoke)", "0");
  cli.add_flag("case",
               "case study to run: I, II, III, or all (durable mode needs "
               "a single case)", "all");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ObsSession obs_session(cli);

  const std::string case_name = cli.get("case");
  if (!bench::check_case(case_name, {"I", "II", "III", "all"})) return 2;

  pipeline::CampaignOptions options;
  options.runs = static_cast<std::size_t>(cli.get_int("runs"));
  options.k = static_cast<std::size_t>(cli.get_int("top-k"));
  options.first_seed = static_cast<std::uint64_t>(cli.get_int("first-seed"));
  std::size_t jobs = bench::parse_jobs(cli);

  if (!cli.get("journal").empty()) return run_durable(cli, options, jobs);

  bench::section("Extension E2: randomized campaigns (trigger vs detect)");
  std::printf("jobs: %zu (serial baseline rerun for the speedup check)\n\n",
              jobs);
  std::vector<CaseTiming> timings;
  const bool all = case_name == "all";

  if (all || case_name == "I")
    timings.push_back(run_both("case I (D=20ms, 10s)",
                               "case I  (D=20ms, 10s): ", run_case1_seeded,
                               options, jobs));

  if (all || case_name == "II")
    timings.push_back(run_both("case II (20s)", "case II (20s):         ",
                               run_case2_seeded, options, jobs));

  if (all || case_name == "III")
    timings.push_back(run_both("case III (9 nodes, 15s)",
                               "case III (9 nodes, 15s):", run_case3_seeded,
                               options, jobs));

  double serial_total = 0.0, parallel_total = 0.0;
  bool all_identical = true;
  for (const CaseTiming& t : timings) {
    serial_total += t.serial_seconds;
    parallel_total += t.parallel_seconds;
    all_identical = all_identical && t.identical;
  }
  std::printf(
      "\nwall-clock: serial %.2fs, --jobs %zu %.2fs (speedup %.2fx); "
      "stats %s\n",
      serial_total, jobs, parallel_total,
      parallel_total > 0.0 ? serial_total / parallel_total : 0.0,
      all_identical ? "identical" : "DIVERGED");

  if (write_json(cli.get("json"), jobs, timings))
    std::printf("timing written to %s\n", cli.get("json").c_str());

  std::printf(
      "\nTrigger rate is a property of the workload (the bug's transience);"
      "\ndetection rate is the tool's contribution once a trace contains "
      "the symptom.\n");
  return all_identical ? 0 : 1;
}
