// Extension E5 — a fourth case study beyond the paper: torn updates in
// Trickle-based dissemination.
//
// Nine nodes disseminate a (version, value) pair under Trickle timing;
// node 0 publishes updates. The buggy adopt path writes the version field,
// spends ~2.5 ms committing to flash, then writes the value — so a Trickle
// fire that preempts the flash commit broadcasts a TORN pair (new version,
// old value). Receivers adopt the wrong value and suppress the correct
// summary as "consistent": silent data corruption until the next version.
//
// The symptom lives in the FLASH-READY event procedure (its interval spans
// the adopt task and therefore the preempting broadcast); the Trickle
// timer's own intervals are control-flow-identical for torn and normal
// fires — a useful demonstration that picking the event type to anatomize
// matters. The detector runs with nu=0.1: the symptom rate here (a few
// per ~150 intervals) needs the outlier budget nu*l to exceed the number
// of buggy intervals, the documented guidance for choosing nu.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "ml/ocsvm.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "1");
  cli.add_flag("run-seconds", "virtual run length", "60");
  cli.add_flag("rows", "ranking rows to print", "7");
  cli.add_switch("fixed", "run the repaired (version-last) variant");
  if (!cli.parse(argc, argv)) return 1;

  apps::Case4Config config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.run_seconds = cli.get_double("run-seconds");
  config.fixed = cli.get_switch("fixed");

  bench::section("Extension E5: torn updates in Trickle dissemination");
  std::printf("9 nodes (3x3 grid), publisher = 0; %g s; seed %llu%s\n",
              config.run_seconds,
              static_cast<unsigned long long>(config.seed),
              config.fixed ? "; FIXED variant" : "");

  apps::Case4Result result = apps::run_case4(config);

  util::Table stats({"node", "version", "value", "summaries", "adoptions",
                     "torn broadcasts (truth)"});
  for (const auto& s : result.stats) {
    stats.add_row({util::cell(std::size_t(s.id)), util::cell(int(s.version)),
                   util::cell(int(s.value)), util::cell(s.summaries_sent),
                   util::cell(s.adoptions), util::cell(s.torn_broadcasts)});
  }
  std::fputs(stats.render().c_str(), stdout);
  std::printf(
      "updates published: %llu; torn broadcasts: %llu; corruption "
      "exposure: %.1f node-seconds\n",
      static_cast<unsigned long long>(result.updates_injected),
      static_cast<unsigned long long>(result.total_torn()),
      result.corruption_node_seconds);

  std::vector<pipeline::TaggedTrace> traces;
  for (const auto& t : result.traces) traces.push_back({&t, 0});

  pipeline::AnalysisOptions options;
  ml::OcsvmParams params;
  params.nu = 0.1;
  options.detector = std::make_shared<ml::OneClassSvm>(params);
  auto flash_line = static_cast<trace::IrqLine>(result.trickle_line + 1);
  pipeline::AnalysisReport report = analyze(traces, flash_line, options);

  bench::section(
      "Ranking over FLASH-READY intervals (index = [node, instance])");
  std::fputs(format_ranking_table(report, /*with_run=*/false,
                                  /*with_node=*/true,
                                  static_cast<std::size_t>(
                                      cli.get_int("rows")),
                                  2)
                 .c_str(),
             stdout);
  bench::print_quality(report);

  // Contrast: the Trickle timer's own intervals cannot see the tear.
  pipeline::AnalysisReport blind =
      analyze(traces, result.trickle_line, options);
  bench::section("Contrast: Trickle-timer intervals (wrong event type)");
  std::printf(
      "same traces, %zu intervals: first buggy interval at rank %zu of "
      "%zu\n(the torn fire executes the exact same instructions as a "
      "normal fire).\n",
      blind.samples.size(), blind.first_bug_rank(), blind.samples.size());
  return 0;
}
