// Extension E3 — chaos campaign: drive a case study (--case I, II or III;
// default II) through the deterministic fault-injection harness (DESIGN.md
// §9) across a fault-intensity grid and measure how gracefully the whole
// toolchain degrades.
//
// Each seeded run exercises the full ladder: faults perturb the simulated
// hardware and OS while the run records; the recorded trace then makes a
// save -> perturb -> lenient-load round-trip (truncation/corruption salvage)
// before analysis, whose detector may fall back to k-NN on a TrainingError.
// A run that still dies (e.g. the salvaged trace has no intervals) is
// isolated by the campaign as Failed; a livelocked run hits the watchdog
// budget and is TimedOut. The process itself must never abort.
//
// Self-checks, per intensity:
//   * serial vs --jobs campaigns must produce bit-identical CampaignStats
//     (fault schedules are drawn from per-run substreams, so thread count
//     cannot move them);
//   * the clean row (intensity 0) must match a baseline campaign with no
//     fault machinery wired at all — zero-fault plans consume no
//     randomness and salvage-load an unperturbed trace exactly.
//
// Detection-rate / first-rank degradation curves land in BENCH_chaos.json.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs_flags.hpp"
#include "pipeline/campaign.hpp"
#include "pipeline/worker_pool.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

// The per-seed ladder (scenario faults + trace save -> perturb -> salvage
// round-trip + analysis fallbacks) lives in the pooled case-runner
// factories (pipeline/worker_pool, DESIGN.md §15): each campaign worker
// amortizes its world/trace allocations across seeds, bit-identically to
// the historic fresh-construction runners.

/// Chaos-ladder factory at `intensity` (trace round-trip included).
pipeline::ScenarioRunnerFactory chaos_factory(const std::string& case_name,
                                              double intensity,
                                              std::uint64_t event_budget) {
  pipeline::CaseRunnerConfig config;
  config.intensity = intensity;
  config.event_budget = event_budget;
  config.trace_round_trip = true;
  return pipeline::make_case_runner_factory(case_name, config);
}

/// The unmodified scenario, no fault machinery wired at all (the
/// intensity-0 baseline).
pipeline::ScenarioRunnerFactory clean_factory(const std::string& case_name) {
  return pipeline::make_case_runner_factory(case_name, {});
}

struct GridRow {
  double intensity = 0.0;
  pipeline::CampaignStats stats;
  bool deterministic = false;  ///< serial == parallel
};

bool write_json(const std::string& path, std::size_t jobs,
                std::uint64_t event_budget, bool clean_matches_baseline,
                const std::vector<GridRow>& rows) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << "{\n  \"jobs\": " << jobs
     << ",\n  \"event_budget\": " << event_budget
     << ",\n  \"clean_matches_baseline\": "
     << (clean_matches_baseline ? "true" : "false")
     << ",\n  \"curve\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GridRow& row = rows[i];
    const pipeline::CampaignStats& s = row.stats;
    os << "    {\"intensity\": " << row.intensity
       << ", \"runs\": " << s.runs << ", \"triggered\": " << s.triggered
       << ", \"detected_top_k\": " << s.detected_top_k
       << ", \"detection_rate\": " << s.detection_rate()
       << ", \"mean_first_rank\": " << s.mean_first_rank()
       << ", \"failed\": " << s.failed << ", \"timed_out\": " << s.timed_out
       << ", \"degraded\": " << s.degraded << ", \"retried\": " << s.retried
       << ", \"deterministic\": " << (row.deterministic ? "true" : "false")
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("runs", "seeds per intensity", "12");
  cli.add_flag("top-k", "detection cut-off", "5");
  cli.add_flag("first-seed", "first seed", "1");
  bench::add_jobs_flag(cli, "campaign worker threads");
  cli.add_flag("case", "case study to drive through the ladder (I, II, III)",
               "II");
  cli.add_flag("cycle-budget",
               "watchdog event budget per run, 0 = unlimited",
               "50000000");
  cli.add_flag("faults",
               "extra fault intensity appended to the grid (0 = none)", "0");
  cli.add_flag("retries",
               "bounded retries per Failed/TimedOut seed (offset-seed "
               "schedule, collision-hopping)", "0");
  cli.add_flag("json", "curve output file", "BENCH_chaos.json");
  cli.add_flag("journal",
               "durable mode: journal one campaign at the --faults "
               "intensity to this path (DESIGN.md §13)", "");
  cli.add_switch("resume", "durable mode: skip seeds already journaled");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ObsSession obs_session(cli);

  const std::string case_name = cli.get("case");
  if (!bench::check_case(case_name, {"I", "II", "III"})) return 2;

  pipeline::CampaignOptions options;
  options.runs = static_cast<std::size_t>(cli.get_int("runs"));
  options.k = static_cast<std::size_t>(cli.get_int("top-k"));
  options.first_seed = static_cast<std::uint64_t>(cli.get_int("first-seed"));
  options.max_retries = static_cast<std::size_t>(cli.get_int("retries"));
  const auto event_budget =
      static_cast<std::uint64_t>(cli.get_int("cycle-budget"));
  std::size_t jobs = bench::parse_jobs(cli);

  // Durable mode: one journaled chaos campaign at the --faults intensity.
  // The JSON is the deterministic stats_json, so an interrupted-then-
  // resumed chaos campaign can be cmp(1)d against an uninterrupted one.
  if (!cli.get("journal").empty()) {
    const double intensity = cli.get_double("faults");
    options.threads = jobs;
    options.journal_path = cli.get("journal");
    options.resume = cli.get_switch("resume");
    bench::section("Extension E3 (durable): journaled chaos campaign");
    std::printf("case %s, intensity %g, %zu seeds, --jobs %zu, journal "
                "%s%s\n",
                case_name.c_str(), intensity, options.runs, jobs,
                options.journal_path.c_str(),
                options.resume ? " (resume)" : "");
    pipeline::CampaignStats stats = pipeline::run_campaign(
        chaos_factory(case_name, intensity, event_budget), options);
    std::printf("%s\n", pipeline::summarize(stats).c_str());
    std::ofstream os(cli.get("json"));
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", cli.get("json").c_str());
      return 1;
    }
    os << pipeline::stats_json(stats);
    std::printf("deterministic stats written to %s\n",
                cli.get("json").c_str());
    return 0;
  }

  bench::section("Extension E3: chaos campaign (fault-intensity grid)");
  std::printf("case %s, %zu seeds per intensity, top-%zu, "
              "--jobs %zu, event budget %llu\n\n",
              case_name.c_str(), options.runs, options.k, jobs,
              static_cast<unsigned long long>(event_budget));

  // Baseline: the unmodified scenario, no fault machinery wired at all.
  // The intensity-0 chaos row must reproduce it exactly (same rankings as
  // the seed Fig. 5 campaigns).
  pipeline::CampaignStats baseline;
  {
    pipeline::CampaignOptions opts = options;
    opts.threads = jobs;
    baseline = pipeline::run_campaign(clean_factory(case_name), opts);
    std::printf("baseline (no fault harness):  %s\n",
                pipeline::summarize(baseline).c_str());
  }

  // 4.0 is deliberately past the salvageable regime: some seeds land in
  // Failed/TimedOut there, exercising the isolation paths on every run.
  std::vector<double> grid = {0.0, 0.25, 0.5, 1.0, 4.0};
  if (double extra = cli.get_double("faults"); extra > 0.0)
    grid.push_back(extra);
  std::vector<GridRow> rows;
  bool all_deterministic = true;
  bool clean_matches_baseline = false;

  for (double intensity : grid) {
    pipeline::ScenarioRunnerFactory factory =
        chaos_factory(case_name, intensity, event_budget);

    pipeline::CampaignOptions serial_opts = options;
    serial_opts.threads = 1;
    pipeline::CampaignStats serial =
        pipeline::run_campaign(factory, serial_opts);

    pipeline::CampaignOptions parallel_opts = options;
    parallel_opts.threads = jobs;
    pipeline::CampaignStats parallel =
        pipeline::run_campaign(factory, parallel_opts);

    GridRow row;
    row.intensity = intensity;
    row.stats = serial;
    row.deterministic = serial == parallel;
    all_deterministic = all_deterministic && row.deterministic;
    if (intensity == 0.0) clean_matches_baseline = serial == baseline;

    std::printf("intensity %-4g                %s%s\n", intensity,
                pipeline::summarize(serial).c_str(),
                row.deterministic ? "" : "  !! NONDETERMINISTIC");
    rows.push_back(std::move(row));
  }

  std::printf("\nclean row reproduces baseline: %s\n",
              clean_matches_baseline ? "yes" : "NO");
  std::printf("serial == --jobs %zu at every intensity: %s\n", jobs,
              all_deterministic ? "yes" : "NO");

  // The curves the bench exists for: detection should degrade smoothly
  // with intensity while failed/timed_out absorb the runs that cannot be
  // analyzed, rather than the process dying.
  std::printf("\n%-10s %-10s %-15s %-8s %-9s %-9s\n", "intensity",
              "detect", "mean-1st-rank", "failed", "timed-out", "degraded");
  for (const GridRow& row : rows)
    std::printf("%-10g %-10.2f %-15.2f %-8zu %-9zu %-9zu\n", row.intensity,
                row.stats.detection_rate(), row.stats.mean_first_rank(),
                row.stats.failed, row.stats.timed_out, row.stats.degraded);

  if (write_json(cli.get("json"), jobs, event_budget, clean_matches_baseline,
                 rows))
    std::printf("\ncurves written to %s\n", cli.get("json").c_str());

  return (all_deterministic && clean_matches_baseline) ? 0 : 1;
}
