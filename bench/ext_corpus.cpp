// Extension E7 — corpus x detector evaluation matrix (DESIGN.md §16).
//
// Sweeps the built-in transient-bug corpus (>= 12 parameterized variants
// across the atomicity / ordering / shared-flag taxonomy) against six
// detectors (OCSVM, kNN, LOF, PCA, Mahalanobis, and the oracle-labelled
// DustMiner baseline), grading every ranking against the corpus's derived
// ground-truth interval labels. Writes BENCH_corpus.json.
//
// Self-check: unless --selfcheck-jobs 0, the sweep runs twice — serial and
// at --selfcheck-jobs workers — and the two deterministic JSON renderings
// must be byte-identical, or the driver exits nonzero. The per-seed label/
// rank cross-checks against campaign stats run inside run_sweep itself.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "corpus/corpus.hpp"
#include "corpus/eval.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace sent;

namespace {

// The tier-1 smoke subset: one fast variant per taxonomy class, covering
// three of the four applications.
const std::vector<std::string> kSmokeIds = {
    "osc-shared-buffer-d20", "osc-late-commit-d20", "fwd-busy-drop-i100"};

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    if (comma > pos) out.push_back(value.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

bool resolve_variants(const std::string& value,
                      std::vector<corpus::VariantSpec>& specs) {
  if (value == "all") {
    specs = corpus::builtin_corpus();
    return true;
  }
  const std::vector<std::string> ids =
      value == "smoke" ? kSmokeIds : split_csv(value);
  for (const std::string& id : ids) {
    const corpus::VariantSpec* spec = corpus::find_variant(id);
    if (spec == nullptr) {
      std::fprintf(stderr,
                   "unknown --variants entry %s (valid: all, smoke, %s)\n",
                   id.c_str(), corpus::corpus_ids().c_str());
      return false;
    }
    specs.push_back(*spec);
  }
  if (specs.empty()) {
    std::fprintf(stderr, "--variants selected nothing (valid: all, smoke, %s)\n",
                 corpus::corpus_ids().c_str());
    return false;
  }
  return true;
}

void print_matrix(const corpus::SweepResult& result) {
  bench::section("corpus x detector matrix (detection rate @ top-" +
                 std::to_string(result.options.k) + " | precision@" +
                 std::to_string(result.options.k) + ")");
  std::vector<std::string> header = {"variant", "class", "trig"};
  for (const std::string& d : corpus::detector_names()) header.push_back(d);
  util::Table table(header);
  // The precision column index for k inside ks (fallback: first entry).
  std::size_t pk = 0;
  for (std::size_t i = 0; i < result.options.ks.size(); ++i)
    if (result.options.ks[i] == result.options.k) pk = i;
  for (const corpus::VariantReport& vr : result.variants) {
    std::vector<std::string> row = {
        vr.id, vr.bug_class,
        std::to_string(vr.triggered) + "/" + std::to_string(vr.seeds)};
    for (const corpus::DetectorCell& cell : vr.cells) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.2f|%.2f", cell.detection_rate,
                    cell.precision[pk]);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\ncells: detection_rate|precision@%zu over triggered seeds; "
      "dustminer uses ORACLE labels.\n",
      result.options.ks[pk]);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("variants",
               "comma-separated variant ids, or 'all' / 'smoke'", "all");
  cli.add_flag("seeds", "seeds per variant", "5");
  cli.add_flag("first-seed", "first seed", "1");
  cli.add_flag("top-k", "detection cut-off rank", "5");
  cli.add_flag("run-scale", "virtual-duration multiplier", "1.0");
  cli.add_flag("selfcheck-jobs",
               "re-run serially and require byte-identical JSON "
               "(0 = skip the self-check)",
               "4");
  cli.add_flag("json", "write the metrics JSON here", "BENCH_corpus.json");
  cli.add_switch("list", "print the corpus manifest and exit");
  bench::add_jobs_flag(cli, "campaign workers");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_switch("list")) {
    util::Table table({"id", "class", "case", "marker", "params"});
    for (const corpus::VariantSpec& v : corpus::builtin_corpus()) {
      std::string params;
      for (const auto& [name, value] : v.params()) {
        if (!params.empty()) params += " ";
        params += name + "=" + value;
      }
      table.add_row(
          {v.id, corpus::to_string(v.bug_class), v.case_tag, v.marker,
           params});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
  }

  std::vector<corpus::VariantSpec> specs;
  if (!resolve_variants(cli.get("variants"), specs)) return 2;

  corpus::SweepOptions options;
  options.first_seed = static_cast<std::uint64_t>(
      cli.get_nonneg_int("first-seed"));
  options.seeds = static_cast<std::size_t>(cli.get_nonneg_int("seeds"));
  options.k = static_cast<std::size_t>(cli.get_nonneg_int("top-k"));
  options.run_scale = cli.get_double("run-scale");
  options.threads = bench::parse_jobs(cli);
  if (options.seeds == 0) {
    std::fprintf(stderr, "--seeds must be positive\n");
    return 2;
  }

  std::printf("corpus sweep: %zu variants x %zu detectors x %zu seeds "
              "(--jobs %zu, run-scale %g)\n",
              specs.size(), corpus::detector_names().size(), options.seeds,
              options.threads, options.run_scale);
  const corpus::SweepResult result = corpus::run_sweep(specs, options);
  const std::string json = corpus::sweep_json(result);

  const auto selfcheck_jobs =
      static_cast<std::size_t>(cli.get_nonneg_int("selfcheck-jobs"));
  if (selfcheck_jobs > 0) {
    corpus::SweepOptions serial = options;
    serial.threads = 1;
    corpus::SweepOptions parallel = options;
    parallel.threads = selfcheck_jobs;
    // Compare against whichever schedule the main sweep did NOT use (and
    // both when the main sweep was neither).
    for (const corpus::SweepOptions& other : {serial, parallel}) {
      if (other.threads == options.threads) continue;
      const std::string other_json =
          corpus::sweep_json(corpus::run_sweep(specs, other));
      if (other_json != json) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: sweep at --jobs %zu is not "
                     "byte-identical to --jobs %zu\n",
                     options.threads, other.threads);
        return 1;
      }
    }
    std::printf("self-check OK: serial and --jobs %zu sweeps byte-identical\n",
                selfcheck_jobs);
  }

  print_matrix(result);

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
