// Extension E7 — interleaving coverage as a test-adequacy signal
// (after the paper's reference [20], Lai et al.'s inter-context criteria).
//
// For the case-I workload, sweeps seeds and reports each run's
// interleaving coverage next to whether the data-pollution bug triggered.
// The link the table shows: pollution occurs only in runs whose coverage
// includes the ADC self-interleaving pair — the structural precondition
// of the race — so coverage is a cheap leading indicator of whether a
// randomized run even COULD have exposed the bug.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "core/coverage.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("runs", "seeds to sweep", "12");
  if (!cli.parse(argc, argv)) return 1;
  auto runs = static_cast<std::size_t>(cli.get_int("runs"));

  bench::section(
      "Extension E7: interleaving coverage vs bug triggering (case I, "
      "D=20ms)");
  util::Table table({"seed", "coverage ratio", "ADC self-overlap count",
                     "pollutions (truth)"});

  core::InterleavingCoverage cumulative;
  std::size_t with_self = 0, triggered_with_self = 0, triggered_without = 0;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    apps::Case1Config config;
    config.seed = seed;
    config.sample_periods_ms = {20};
    config.run_seconds = 10.0;
    apps::Case1Result r = apps::run_case1(config);
    core::InterleavingCoverage cov =
        core::measure_interleaving(r.runs[0].sensor_trace);
    cumulative.merge(cov);
    std::uint64_t self = cov.count(os::irq::kAdc, os::irq::kAdc);
    if (self > 0) {
      ++with_self;
      triggered_with_self += r.runs[0].pollutions > 0;
    } else {
      triggered_without += r.runs[0].pollutions > 0;
    }
    table.add_row({util::cell(seed), util::cell(cov.ratio(), 3),
                   util::cell(self), util::cell(r.runs[0].pollutions)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nruns with the ADC self-interleaving pair covered: %zu; of those, "
      "%zu triggered the bug.\nruns without it that triggered: %zu "
      "(structurally impossible; expect 0).\n",
      with_self, triggered_with_self, triggered_without);

  bench::section("Cumulative coverage over all runs");
  std::fputs(cumulative.render().c_str(), stdout);
  return 0;
}
