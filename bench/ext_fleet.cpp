// Extension E6 — resilient streaming fleet ingest (DESIGN.md §14).
//
// Drives N concurrent seeded case-II device streams through the
// stream::FleetIngest service, twice:
//
//   clean — every frame arrives intact and in order. The final report must
//           be BIT-IDENTICAL to pipeline::analyze over the same traces
//           (the batch≡streaming equivalence claim, also enforced by
//           tests/stream_parity_test.cpp);
//   chaos — the same frames pass through fault::perturb_frames first, so
//           the *ingest itself* sees corruption, truncation, loss,
//           duplicates, reordering and producer stalls. The service must
//           survive (quarantine, gap-skips, degradation — never a crash),
//           stay within the retained-memory bound, and produce identical
//           results at --jobs 1 and --jobs N.
//
// Throughput, the peak retained-bytes proxy, and the quarantine /
// degradation counters land in BENCH_fleet.json.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "fault/stream_chaos.hpp"
#include "obs_flags.hpp"
#include "stream/ingest.hpp"
#include "trace/framing.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace sent;

namespace {

struct Feed {
  std::uint32_t device = 0;
  std::vector<fault::ChaosFrame> attempts;  ///< sorted by send_tick
  std::size_t next = 0;
};

/// Offer every attempt whose send tick has come, advancing the service
/// clock until all feeds drain; backpressured frames retry next tick.
void drive(stream::FleetIngest& ingest, std::vector<Feed>& feeds) {
  for (;;) {
    bool any_left = false;
    for (Feed& feed : feeds) {
      while (feed.next < feed.attempts.size() &&
             feed.attempts[feed.next].send_tick <= ingest.now()) {
        stream::Admit admit =
            ingest.offer(feed.device, feed.attempts[feed.next].bytes);
        if (admit == stream::Admit::Backpressure) break;
        if (admit == stream::Admit::Rejected) {  // stream went terminal
          feed.next = feed.attempts.size();
          break;
        }
        ++feed.next;
      }
      any_left = any_left || feed.next < feed.attempts.size();
    }
    if (!any_left) break;
    ingest.tick();
  }
  ingest.finish_all();
}

bool reports_identical(const pipeline::AnalysisReport& a,
                       const pipeline::AnalysisReport& b) {
  if (a.samples.size() != b.samples.size()) return false;
  if (a.scores != b.scores) return false;
  if (a.ranking.size() != b.ranking.size()) return false;
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    if (a.ranking[i].sample_index != b.ranking[i].sample_index ||
        a.ranking[i].score != b.ranking[i].score)
      return false;
  }
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const pipeline::Sample& x = a.samples[i];
    const pipeline::Sample& y = b.samples[i];
    if (x.node_id != y.node_id || x.run != y.run ||
        x.has_bug != y.has_bug || x.bug_kinds != y.bug_kinds)
      return false;
    const core::EventInterval& p = x.interval;
    const core::EventInterval& q = y.interval;
    if (p.irq != q.irq || p.start_index != q.start_index ||
        p.end_index != q.end_index || p.start_cycle != q.start_cycle ||
        p.end_cycle != q.end_cycle || p.task_count != q.task_count ||
        p.seq_in_type != q.seq_in_type || p.truncated != q.truncated)
      return false;
  }
  return true;
}

struct ChaosOutcome {
  std::vector<stream::BoardEntry> board;
  std::vector<stream::StreamCounters> counters;
  std::vector<stream::ScoreMode> modes;
  std::size_t samples = 0;
  std::size_t peak_buffered = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t gap_skips = 0;
  std::uint64_t backpressure = 0;
  std::uint64_t scored_full = 0;
  std::uint64_t scored_cached = 0;
  std::uint64_t scored_featurize_only = 0;
  std::size_t poisoned_streams = 0;

  bool operator==(const ChaosOutcome& other) const {
    if (board.size() != other.board.size()) return false;
    for (std::size_t i = 0; i < board.size(); ++i) {
      if (board[i].score != other.board[i].score ||
          board[i].device != other.board[i].device ||
          board[i].label != other.board[i].label ||
          board[i].mode != other.board[i].mode)
        return false;
    }
    return counters == other.counters && modes == other.modes &&
           samples == other.samples &&
           peak_buffered == other.peak_buffered &&
           quarantined == other.quarantined &&
           gap_skips == other.gap_skips &&
           backpressure == other.backpressure &&
           scored_full == other.scored_full &&
           scored_cached == other.scored_cached &&
           scored_featurize_only == other.scored_featurize_only &&
           poisoned_streams == other.poisoned_streams;
  }
};

ChaosOutcome run_chaos_fleet(
    const std::vector<std::vector<std::vector<std::uint8_t>>>& frames,
    const stream::IngestConfig& base, double intensity, std::uint64_t seed,
    util::ThreadPool* pool) {
  stream::IngestConfig config = base;
  config.pool = pool;
  // Tight ladder thresholds so the chaos storm actually climbs it.
  config.rescore_backlog = 8;
  config.cached_backlog = 24;
  config.featurize_only_backlog = 64;

  stream::FleetIngest ingest(config);
  fault::StreamChaosPlan plan = fault::StreamChaosPlan::at_intensity(intensity);
  std::vector<Feed> feeds;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    Feed feed;
    feed.device = static_cast<std::uint32_t>(i);
    util::Rng rng =
        util::Rng(seed).substream("fleet-chaos-" + std::to_string(i));
    feed.attempts = fault::perturb_frames(frames[i], plan, rng);
    feeds.push_back(std::move(feed));
  }
  drive(ingest, feeds);

  ChaosOutcome out;
  out.board = ingest.board();
  out.modes = ingest.sample_modes();
  out.samples = ingest.sample_count();
  out.peak_buffered = ingest.peak_buffered_bytes();
  for (const stream::StreamStatus& st : ingest.status()) {
    out.counters.push_back(st.counters);
    out.quarantined += st.counters.frames_quarantined;
    out.gap_skips += st.counters.gap_skips;
    out.backpressure += st.counters.backpressure_signals;
    out.poisoned_streams += st.poisoned;
  }
  for (stream::ScoreMode mode : out.modes) {
    out.scored_full += mode == stream::ScoreMode::Full;
    out.scored_cached += mode == stream::ScoreMode::Cached;
    out.scored_featurize_only += mode == stream::ScoreMode::FeaturizeOnly;
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("streams", "concurrent device streams", "6");
  cli.add_flag("first-seed", "seed of the first stream's run", "1");
  cli.add_flag("run-seconds", "simulated seconds per device run", "2.0");
  cli.add_flag("chaos", "ingest-chaos intensity (0 = clean transport)", "1");
  bench::add_jobs_flag(cli, "detector worker threads");
  cli.add_flag("json", "output file", "BENCH_fleet.json");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ObsSession obs_session(cli);

  const auto streams = static_cast<std::size_t>(cli.get_int("streams"));
  const auto first_seed =
      static_cast<std::uint64_t>(cli.get_int("first-seed"));
  const double run_seconds = cli.get_double("run-seconds");
  const double chaos = cli.get_double("chaos");
  std::size_t jobs = bench::parse_jobs(cli);

  bench::section("Extension E6: streaming fleet ingest");
  std::printf("%zu case-II streams, run %.1fs each, chaos intensity %g, "
              "--jobs %zu\n\n",
              streams, run_seconds, chaos, jobs);

  // ---- record the fleet and slice every trace into frames ----------------
  std::vector<apps::Case2Result> results;
  results.reserve(streams);
  for (std::size_t i = 0; i < streams; ++i) {
    apps::Case2Config config;
    config.seed = first_seed + i;
    config.run_seconds = run_seconds;
    results.push_back(apps::run_case2(config));
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> frames;
  std::size_t total_frames = 0, total_bytes = 0;
  std::uint64_t total_events = 0;
  for (std::size_t i = 0; i < streams; ++i) {
    frames.push_back(trace::encode_trace(results[i].relay_trace,
                                         static_cast<std::uint32_t>(i)));
    total_frames += frames.back().size();
    for (const auto& f : frames.back()) total_bytes += f.size();
    total_events += results[i].relay_trace.lifecycle.size() +
                    results[i].relay_trace.instrs.size();
  }
  std::printf("encoded: %zu frames, %.2f MiB, %llu records\n", total_frames,
              static_cast<double>(total_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(total_events));

  util::ThreadPool pool(jobs);
  stream::IngestConfig base;
  base.line = os::irq::kRadioSpi;
  base.instr_table = results[0].relay_trace.instr_table;

  // ---- clean phase: batch parity -----------------------------------------
  pipeline::AnalysisOptions options;
  options.pool = &pool;

  auto t0 = std::chrono::steady_clock::now();
  stream::IngestConfig clean_config = base;
  clean_config.pool = &pool;
  stream::FleetIngest clean(clean_config);
  std::vector<Feed> clean_feeds;
  for (std::size_t i = 0; i < streams; ++i) {
    Feed feed;
    feed.device = static_cast<std::uint32_t>(i);
    feed.attempts.reserve(frames[i].size());
    for (std::size_t k = 0; k < frames[i].size(); ++k)
      feed.attempts.push_back(fault::ChaosFrame{frames[i][k], k});
    clean_feeds.push_back(std::move(feed));
  }
  drive(clean, clean_feeds);
  pipeline::AnalysisReport streamed = clean.final_report(options);
  const double clean_seconds = seconds_since(t0);

  std::vector<pipeline::TaggedTrace> tagged;
  for (std::size_t i = 0; i < streams; ++i)
    tagged.push_back({&results[i].relay_trace, i});
  pipeline::AnalysisReport batch =
      pipeline::analyze(tagged, os::irq::kRadioSpi, options);

  const bool parity = reports_identical(streamed, batch);
  std::printf("clean ingest: %zu samples, %.2fs, batch parity: %s\n",
              streamed.samples.size(), clean_seconds,
              parity ? "bit-identical" : "DIVERGED");

  // ---- chaos phase: the transport itself is hostile ----------------------
  t0 = std::chrono::steady_clock::now();
  ChaosOutcome outcome =
      run_chaos_fleet(frames, base, chaos, first_seed, &pool);
  const double chaos_seconds = seconds_since(t0);

  // Same storm, serial detector math: everything logical must match.
  util::ThreadPool serial_pool(1);
  ChaosOutcome serial =
      run_chaos_fleet(frames, base, chaos, first_seed, &serial_pool);
  const bool deterministic = outcome == serial;

  // Retained state must stay a small fraction of the stream volume — the
  // service holds windows, not traces.
  const std::size_t rss_bound = total_bytes / 4 + 256 * 1024;
  const bool rss_ok = outcome.peak_buffered <= rss_bound;

  std::printf("chaos ingest: %zu samples, %.2fs\n", outcome.samples,
              chaos_seconds);
  std::printf("  quarantined %llu frames, %llu gap skips, %llu "
              "backpressure signals, %zu poisoned streams\n",
              static_cast<unsigned long long>(outcome.quarantined),
              static_cast<unsigned long long>(outcome.gap_skips),
              static_cast<unsigned long long>(outcome.backpressure),
              outcome.poisoned_streams);
  std::printf("  scored: %llu full, %llu cached, %llu featurize-only\n",
              static_cast<unsigned long long>(outcome.scored_full),
              static_cast<unsigned long long>(outcome.scored_cached),
              static_cast<unsigned long long>(outcome.scored_featurize_only));
  std::printf("  peak retained bytes %zu (bound %zu): %s\n",
              outcome.peak_buffered, rss_bound, rss_ok ? "ok" : "EXCEEDED");
  std::printf("  --jobs 1 vs --jobs %zu: %s\n", jobs,
              deterministic ? "identical" : "DIVERGED");

  if (!outcome.board.empty()) {
    std::printf("\nlive outlier board (chaos run):\n");
    util::Table table({"rank", "device", "interval", "score", "mode"});
    for (std::size_t i = 0; i < outcome.board.size(); ++i) {
      const stream::BoardEntry& e = outcome.board[i];
      table.add_row({std::to_string(i + 1), std::to_string(e.device),
                     e.label, util::cell(e.score, 4),
                     stream::to_string(e.mode)});
    }
    std::printf("%s", table.render().c_str());
  }

  const double throughput =
      chaos_seconds > 0.0 ? static_cast<double>(total_frames) / chaos_seconds
                          : 0.0;
  std::ofstream os(cli.get("json"));
  if (os) {
    os << "{\n  \"streams\": " << streams << ",\n  \"jobs\": " << jobs
       << ",\n  \"chaos_intensity\": " << chaos
       << ",\n  \"frames\": " << total_frames
       << ",\n  \"encoded_bytes\": " << total_bytes
       << ",\n  \"records\": " << total_events
       << ",\n  \"clean_seconds\": " << clean_seconds
       << ",\n  \"chaos_seconds\": " << chaos_seconds
       << ",\n  \"frames_per_second\": " << throughput
       << ",\n  \"clean_parity\": " << (parity ? "true" : "false")
       << ",\n  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"samples\": " << outcome.samples
       << ",\n  \"quarantined_frames\": " << outcome.quarantined
       << ",\n  \"gap_skips\": " << outcome.gap_skips
       << ",\n  \"backpressure_signals\": " << outcome.backpressure
       << ",\n  \"poisoned_streams\": " << outcome.poisoned_streams
       << ",\n  \"scored_full\": " << outcome.scored_full
       << ",\n  \"scored_cached\": " << outcome.scored_cached
       << ",\n  \"scored_featurize_only\": "
       << outcome.scored_featurize_only
       << ",\n  \"peak_buffered_bytes\": " << outcome.peak_buffered
       << ",\n  \"rss_bound_bytes\": " << rss_bound
       << ",\n  \"rss_bound_ok\": " << (rss_ok ? "true" : "false")
       << "\n}\n";
    std::printf("\nresults written to %s\n", cli.get("json").c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", cli.get("json").c_str());
  }

  return (parity && deterministic && rss_ok) ? 0 : 1;
}
