// Extension E1 — bug localization (paper §VII future work).
//
// After Sentomist ranks the suspicious intervals, the localizer contrasts
// them against the normal population per static instruction and names the
// code the symptom lives in. Ground truth per case:
//   I   — the pollution is in Read.readDone / prepareAndSendPacket
//         (interleaved ADC handler writes into the unsent packet);
//   II  — the active drop path in Receive.receive (drop_busy);
//   III — the unhandled FAIL path in CtpForwardingEngine.sendTask.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "util/cli.hpp"

using namespace sent;

namespace {

void run_case(const std::string& title,
              const std::vector<pipeline::TaggedTrace>& traces,
              trace::IrqLine line, std::size_t k,
              const std::string& expected_object) {
  pipeline::AnalysisOptions options;
  options.keep_features = true;
  pipeline::AnalysisReport report = analyze(traces, line, options);
  core::Localization loc = pipeline::localize_top_k(report, k);

  bench::section(title);
  std::printf("contrasting the %zu most suspicious of %zu intervals\n\n", k,
              report.samples.size());
  std::fputs(pipeline::format_localization(loc).c_str(), stdout);

  std::size_t rank_of_expected = 0;
  for (std::size_t i = 0; i < loc.code_objects.size(); ++i) {
    if (loc.code_objects[i].code_object == expected_object) {
      rank_of_expected = i + 1;
      break;
    }
  }
  std::printf("\nknown-buggy code object '%s' localized at rank %zu of %zu\n",
              expected_object.c_str(), rank_of_expected,
              loc.code_objects.size());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  cli.add_flag("top-k", "suspicious intervals to contrast", "3");
  if (!cli.parse(argc, argv)) return 1;
  auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  auto k = static_cast<std::size_t>(cli.get_int("top-k"));

  {
    apps::Case1Config config;
    config.seed = seed;
    apps::Case1Result r = apps::run_case1(config);
    std::vector<pipeline::TaggedTrace> traces;
    for (std::size_t i = 0; i < r.runs.size(); ++i)
      traces.push_back({&r.runs[i].sensor_trace, i});
    run_case("E1 / case I: localize the data pollution", traces,
             os::irq::kAdc, k, "Read.readDone");
  }
  {
    apps::Case2Config config;
    config.seed = 3;
    apps::Case2Result r = apps::run_case2(config);
    run_case("E1 / case II: localize the active drop",
             {{&r.relay_trace, 0}}, os::irq::kRadioSpi, k,
             "Receive.receive");
  }
  {
    apps::Case3Config config;
    config.seed = seed;
    apps::Case3Result r = apps::run_case3(config);
    std::vector<pipeline::TaggedTrace> traces;
    for (net::NodeId src : r.sources) traces.push_back({&r.traces[src], 0});
    run_case("E1 / case III: localize the unhandled FAIL", traces,
             r.report_line, /*k=*/1, "CtpForwardingEngine.sendTask");
  }
  return 0;
}
