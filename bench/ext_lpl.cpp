// Extension E6 — low-power listening: the energy / bug-exposure tradeoff.
//
// LPL is how real deployments buy lifetime: the radio listens only a few
// percent of the time, and senders repeat each frame across a full wake
// interval. The repetition train holds the BUSY FLAG for tens of
// milliseconds instead of a couple — so the very mechanism that saves
// energy widens the race window of case II's active-drop bug by an order
// of magnitude. This bench sweeps the wake interval on the case-II
// scenario and reports both sides of the trade, plus whether Sentomist
// still pins the (now much more frequent) drops.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "hw/energy.hpp"
#include "util/cli.hpp"

using namespace sent;

namespace {

void run_row(util::Table& table, const std::string& label,
             apps::Case2Config config) {
  apps::Case2Result r = apps::run_case2(config);
  hw::EnergyBreakdown e =
      config.lpl.enabled
          ? hw::estimate_energy_lpl(r.relay_trace, r.relay_tx_airtime,
                                    config.lpl)
          : hw::estimate_energy(r.relay_trace, r.relay_tx_airtime);
  pipeline::AnalysisReport report =
      pipeline::analyze({{&r.relay_trace, 0}}, os::irq::kRadioSpi);
  double drop_pct = r.relay_received == 0
                        ? 0.0
                        : 100.0 * double(r.relay_dropped_busy) /
                              double(r.relay_received);
  table.add_row({label, util::cell(r.relay_received),
                 util::cell(r.relay_dropped_busy),
                 util::cell(drop_pct, 1) + "%",
                 util::cell(e.radio_rx_mj + e.radio_tx_mj, 0) + " mJ",
                 util::cell(report.first_bug_rank()),
                 util::cell(report.precision_at(std::max<std::size_t>(
                                1, std::min<std::size_t>(
                                       report.buggy_count(), 10))),
                            2)});
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "3");
  if (!cli.parse(argc, argv)) return 1;
  auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  bench::section(
      "Extension E6: LPL energy savings vs busy-flag bug exposure "
      "(case II, 20 s)");
  util::Table table({"relay radio mode", "arrivals", "active drops",
                     "drop rate", "relay radio energy", "first bug rank",
                     "precision@min(bugs,10)"});

  {
    apps::Case2Config config;
    config.seed = seed;
    run_row(table, "always-on", config);
  }
  for (double wake_ms : {50.0, 100.0, 200.0}) {
    apps::Case2Config config;
    config.seed = seed;
    config.lpl.enabled = true;
    config.lpl.wake_interval = sim::cycles_from_millis(wake_ms);
    config.lpl.on_duration = sim::cycles_from_millis(5);
    run_row(table,
            "LPL wake=" + std::to_string(int(wake_ms)) + "ms", config);
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe repetition train holds the busy flag for up to a full wake\n"
      "interval, so longer wake intervals save listening energy but turn\n"
      "the transient active-drop bug into a frequent one. Sentomist's\n"
      "ranking keeps isolating the drop intervals either way.\n");
  return 0;
}
