// Extension E4 — detection robustness under channel impairments.
//
// The paper's claim is that the buggy drop "is difficult to identify ...
// from other common wireless losses" (§VI-C). This bench turns wireless
// loss progressively up on case II — iid loss, then bursty Gilbert-Elliott
// fading — and checks whether the buggy ACTIVE drops still outrank the
// chaos. Wireless losses hit frames on the air (invisible to the relay's
// instruction counters), while active drops run the drop-path
// instructions, so detection should hold up; link retries under heavy loss
// add honest noise intervals.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

void run_row(util::Table& table, const std::string& label,
             apps::Case2Config config, std::size_t jobs) {
  apps::Case2Result r = apps::run_case2(config);
  pipeline::AnalysisOptions options;
  options.detector = pipeline::default_detector(jobs);
  pipeline::AnalysisReport report =
      pipeline::analyze({{&r.relay_trace, 0}}, os::irq::kRadioSpi, options);
  table.add_row({label, util::cell(r.relay_received),
                 util::cell(r.relay_dropped_busy),
                 util::cell(report.first_bug_rank()),
                 util::cell(report.inspection_depth_for_all()),
                 util::cell(report.precision_at(
                                std::max<std::size_t>(
                                    1, report.buggy_count())),
                            3)});
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "3");
  bench::add_jobs_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::size_t jobs = bench::parse_jobs(cli);

  bench::section("Extension E4: case II detection under channel impairments");
  util::Table table({"channel", "arrivals", "active drops",
                     "first bug rank", "depth for all", "precision@|bugs|"});

  {
    apps::Case2Config config;
    config.seed = seed;
    run_row(table, "clean", config, jobs);
  }
  for (double loss : {0.05, 0.15}) {
    apps::Case2Config config;
    config.seed = seed;
    config.loss_rate = loss;
    run_row(table, "iid loss " + std::to_string(int(loss * 100)) + "%",
            config, jobs);
  }
  {
    apps::Case2Config config;
    config.seed = seed;
    net::Channel::GilbertElliott model;
    model.loss_good = 0.02;
    model.loss_bad = 0.7;
    model.p_good_to_bad = 0.02;
    model.p_bad_to_good = 0.2;
    config.gilbert_elliott = model;
    run_row(table, "bursty (Gilbert-Elliott)", config, jobs);
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nWireless losses happen on the air and never execute relay code;\n"
      "the ACTIVE drops keep executing their distinct instruction path,\n"
      "which is why the ranking survives lossy and bursty channels.\n");
  return 0;
}
