// Extension E6 — interpreter-core throughput: virtual MIPS and events/sec
// for the bytecode dispatch engine versus the retained reference (closure)
// engine, measured on the three Fig-5 case studies.
//
// Each case runs under BOTH DispatchModes on the same seed. The timed
// region covers only the simulation (run_caseN); the Sentomist analysis
// runs afterwards so the numbers isolate the interpreter + event queue.
// Every run's traces are serialized and compared byte-for-byte across the
// two engines, and the Fig-5 outlier rankings must match exactly — the
// speedup claim is only meaningful if the substrates are observationally
// identical (DESIGN.md §12).
//
// Results land in BENCH_sim.json. --min-speedup / --min-mips turn the
// binary into a regression gate: the tier-1 script runs it with the floors
// recorded there and fails the build if the bytecode core regresses.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "pipeline/sentomist.hpp"
#include "sim/dispatch.hpp"
#include "trace/serialize.hpp"
#include "util/cli.hpp"

using namespace sent;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Everything one simulation run produces that the comparison needs.
struct Outcome {
  std::vector<trace::NodeTrace> traces;
  trace::IrqLine line = 0;  ///< event type the Fig-5 analysis targets
  std::uint64_t events = 0;
};

using CaseRunner = Outcome (*)(std::uint64_t seed);

Outcome run_fig5a(std::uint64_t seed) {
  apps::Case1Config config;
  config.seed = seed;
  config.sample_periods_ms = {20};  // the vulnerable rate
  config.run_seconds = 10.0;
  config.osc.maintenance_heavy_prob = 1.0;
  config.osc.heavy_iterations = 50000;
  config.osc.heavy_iteration_cost = 40;
  apps::Case1Result r = apps::run_case1(config);
  Outcome out;
  out.traces.push_back(std::move(r.runs[0].sensor_trace));
  out.line = os::irq::kAdc;
  out.events = r.events_executed;
  return out;
}

Outcome run_fig5b(std::uint64_t seed) {
  apps::Case2Config config;
  config.seed = seed;
  // Bench variant of the Fig-5b workload: large sensor reports. The relay
  // checksums one byte per loop iteration, so the payload range sets the
  // instruction density of the run (the busy-drop bug itself is
  // payload-agnostic).
  config.min_payload_bytes = 1024;
  config.max_payload_bytes = 2048;
  config.mean_interval_ms = 80.0;
  apps::Case2Result r = apps::run_case2(config);
  Outcome out;
  out.traces.push_back(std::move(r.relay_trace));
  out.line = os::irq::kRadioSpi;
  out.events = r.events_executed;
  return out;
}

Outcome run_fig5c(std::uint64_t seed) {
  apps::Case3Config config;
  config.seed = seed;
  // Bench variant of the Fig-5c workload: every non-root node reports at a
  // high rate, so the anatomized report handler (sample + encode loop)
  // dominates the run rather than radio airtime.
  config.num_sources = 8;
  config.app.report_period = sim::cycles_from_millis(8);
  config.app.report_stagger = config.app.report_period / 9;
  config.app.mean_event_on = sim::cycles_from_millis(10000);
  config.app.mean_event_off = sim::cycles_from_millis(500);
  config.app.encode_words = 8;
  config.app.heartbeat_period = sim::cycles_from_millis(3000);
  config.app.beacon_period = sim::cycles_from_millis(4000);
  config.app.heartbeat_padding = 8;
  apps::Case3Result r = apps::run_case3(config);
  Outcome out;
  for (net::NodeId src : r.sources)
    out.traces.push_back(std::move(r.traces[src]));
  out.line = r.report_line;
  out.events = r.events_executed;
  return out;
}

/// Serialize every trace into one buffer: byte equality of this string is
/// the bit-identity check (the format round-trips every recorded field).
std::string serialize_traces(const std::vector<trace::NodeTrace>& traces) {
  std::ostringstream os;
  for (const auto& t : traces) trace::save_trace(t, os);
  return os.str();
}

/// Canonical form of a Fig-5 ranking: sample order plus exact scores.
std::string ranking_signature(const pipeline::AnalysisReport& report) {
  std::ostringstream os;
  for (const auto& e : report.ranking) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%zu:%.17g;", e.sample_index, e.score);
    os << buf;
  }
  return os.str();
}

std::uint64_t total_instrs(const std::vector<trace::NodeTrace>& traces) {
  std::uint64_t n = 0;
  for (const auto& t : traces) n += t.instrs.size();
  return n;
}

/// One engine's measurement on one case.
struct ModeResult {
  double wall_seconds = 0.0;  ///< best over --reps
  std::uint64_t instrs = 0;
  std::uint64_t events = 0;
  std::string trace_blob;
  std::string ranking;

  double vmips() const {
    return wall_seconds > 0.0
               ? static_cast<double>(instrs) / wall_seconds / 1e6
               : 0.0;
  }
  double events_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(events) / wall_seconds
               : 0.0;
  }
};

ModeResult run_mode(CaseRunner runner, sim::DispatchMode mode,
                    std::uint64_t seed, int reps) {
  sim::set_dispatch_mode(mode);
  ModeResult result;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    Outcome out = runner(seed);
    double wall = seconds_since(t0);
    if (rep == 0 || wall < result.wall_seconds) result.wall_seconds = wall;
    if (rep == 0) {
      result.instrs = total_instrs(out.traces);
      result.events = out.events;
      result.trace_blob = serialize_traces(out.traces);
      // Ranking comes from the untimed analysis pass on the first rep-0
      // trace. One node is enough for the cross-engine identity check —
      // the serialized blob already compares every trace byte-for-byte,
      // and analyzing all of a dense multi-node run would dwarf the
      // simulation itself (the detector trains on every interval).
      std::vector<pipeline::TaggedTrace> tagged{{&out.traces.front(), 0}};
      result.ranking = ranking_signature(pipeline::analyze(tagged, out.line));
    }
  }
  return result;
}

struct CaseComparison {
  std::string name;
  ModeResult reference;
  ModeResult bytecode;
  bool traces_identical = false;
  bool rankings_identical = false;

  double speedup() const {
    return bytecode.wall_seconds > 0.0
               ? reference.wall_seconds / bytecode.wall_seconds
               : 0.0;
  }
};

CaseComparison run_case(const std::string& name, CaseRunner runner,
                        std::uint64_t seed, int reps) {
  CaseComparison cmp;
  cmp.name = name;
  cmp.reference =
      run_mode(runner, sim::DispatchMode::Reference, seed, reps);
  cmp.bytecode = run_mode(runner, sim::DispatchMode::Bytecode, seed, reps);
  cmp.traces_identical =
      cmp.reference.trace_blob == cmp.bytecode.trace_blob &&
      !cmp.bytecode.trace_blob.empty();
  cmp.rankings_identical = cmp.reference.ranking == cmp.bytecode.ranking;

  std::printf("%-26s ref %7.2f vMIPS  bytecode %7.2f vMIPS  "
              "speedup %5.2fx  traces %s  ranking %s\n",
              name.c_str(), cmp.reference.vmips(), cmp.bytecode.vmips(),
              cmp.speedup(), cmp.traces_identical ? "identical" : "DIVERGED",
              cmp.rankings_identical ? "identical" : "DIVERGED");
  std::printf("%-26s ref %7.3fs %9.0f ev/s   bytecode %7.3fs %9.0f ev/s  "
              "(%llu instrs, %llu events)\n",
              "", cmp.reference.wall_seconds,
              cmp.reference.events_per_sec(), cmp.bytecode.wall_seconds,
              cmp.bytecode.events_per_sec(),
              static_cast<unsigned long long>(cmp.bytecode.instrs),
              static_cast<unsigned long long>(cmp.bytecode.events));
  return cmp;
}

bool write_json(const std::string& path, int reps,
                const std::vector<CaseComparison>& cases) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  os << "{\n  \"reps\": " << reps << ",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseComparison& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\""
       << ", \"instrs\": " << c.bytecode.instrs
       << ", \"events\": " << c.bytecode.events << ",\n"
       << "     \"reference\": {\"wall_seconds\": "
       << c.reference.wall_seconds << ", \"vmips\": " << c.reference.vmips()
       << ", \"events_per_sec\": " << c.reference.events_per_sec() << "},\n"
       << "     \"bytecode\": {\"wall_seconds\": " << c.bytecode.wall_seconds
       << ", \"vmips\": " << c.bytecode.vmips()
       << ", \"events_per_sec\": " << c.bytecode.events_per_sec() << "},\n"
       << "     \"speedup\": " << c.speedup()
       << ", \"traces_identical\": "
       << (c.traces_identical ? "true" : "false")
       << ", \"rankings_identical\": "
       << (c.rankings_identical ? "true" : "false") << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "scenario seed", "1");
  cli.add_flag("reps", "timed repetitions per engine (best-of)", "3");
  cli.add_flag("json", "output file", "BENCH_sim.json");
  cli.add_flag("min-speedup",
               "fail unless every case's bytecode/reference speedup "
               "reaches this (0 = no floor)",
               "0");
  cli.add_flag("min-mips",
               "fail unless every case's bytecode vMIPS reaches this "
               "(0 = no floor)",
               "0");
  if (!cli.parse(argc, argv)) return 1;

  auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  int reps = static_cast<int>(cli.get_int("reps"));
  double min_speedup = std::stod(cli.get("min-speedup"));
  double min_mips = std::stod(cli.get("min-mips"));

  bench::section("Extension E6: bytecode vs reference dispatch throughput");
  std::printf("seed %llu, best of %d reps per engine\n\n",
              static_cast<unsigned long long>(seed), reps);

  std::vector<CaseComparison> cases;
  cases.push_back(run_case("case I (D=20ms, 10s)", run_fig5a, seed, reps));
  cases.push_back(run_case("case II (20s)", run_fig5b, seed, reps));
  cases.push_back(run_case("case III (9 nodes, 15s)", run_fig5c, seed, reps));

  bool ok = true;
  for (const CaseComparison& c : cases) {
    if (!c.traces_identical || !c.rankings_identical) {
      std::printf("!! %s: engines are not observationally identical\n",
                  c.name.c_str());
      ok = false;
    }
    if (min_speedup > 0.0 && c.speedup() < min_speedup) {
      std::printf("!! %s: speedup %.2fx below floor %.2fx\n", c.name.c_str(),
                  c.speedup(), min_speedup);
      ok = false;
    }
    if (min_mips > 0.0 && c.bytecode.vmips() < min_mips) {
      std::printf("!! %s: bytecode %.2f vMIPS below floor %.2f\n",
                  c.name.c_str(), c.bytecode.vmips(), min_mips);
      ok = false;
    }
  }

  if (write_json(cli.get("json"), reps, cases))
    std::printf("\nresults written to %s\n", cli.get("json").c_str());
  return ok ? 0 : 1;
}
