// Figure 5(a) — Case study I: data pollution in a single-hop data
// collection WSN (paper §VI-B).
//
// Five testing runs with sampling period D = 20, 40, 60, 80, 100 ms, 10 s
// each. The ADC event-handling intervals of all runs are pooled (~1100
// samples, the paper reports 1099), featured as instruction counters, and
// ranked by the one-class SVM. The paper's result: the top-ranked
// instances (all from run 1, e.g. [1, 76], [1, 176], ...) contain the
// data-pollution symptoms.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "obs_flags.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  cli.add_flag("run-seconds", "virtual seconds per testing run", "10");
  cli.add_flag("rows", "ranking rows to print from the top", "7");
  cli.add_switch("fixed", "run the repaired (double-buffered) variant");
  cli.add_switch("csv", "also dump the full ranking as CSV");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ObsSession obs_session(cli);

  apps::Case1Config config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.run_seconds = cli.get_double("run-seconds");
  config.fixed = cli.get_switch("fixed");

  bench::section("Case study I: data pollution (Figure 5a)");
  std::printf("testing runs: D = 20, 40, 60, 80, 100 ms; %g s each; seed %llu%s\n",
              config.run_seconds,
              static_cast<unsigned long long>(config.seed),
              config.fixed ? "; FIXED variant" : "");

  apps::Case1Result result = apps::run_case1(config);

  // In-text quantities (§VI-B): samples per run and trace sizes.
  util::Table runs_table({"run", "D (ms)", "ADC intervals", "packets sent",
                          "sink received", "pollutions (truth)",
                          "lifecycle items", "instr executed"});
  for (std::size_t r = 0; r < result.runs.size(); ++r) {
    const auto& run = result.runs[r];
    runs_table.add_row(
        {util::cell(r + 1), util::cell(run.sample_period_ms, 0),
         util::cell(run.readings), util::cell(run.packets_sent),
         util::cell(run.sink_received), util::cell(run.pollutions),
         util::cell(run.sensor_trace.lifecycle.size()),
         util::cell(run.sensor_trace.executed())});
  }
  std::fputs(runs_table.render().c_str(), stdout);

  std::vector<pipeline::TaggedTrace> traces;
  for (std::size_t r = 0; r < result.runs.size(); ++r)
    traces.push_back({&result.runs[r].sensor_trace, r});
  pipeline::AnalysisReport report = analyze(traces, os::irq::kAdc);

  bench::section("Ranking (ascending score; index = [run, instance])");
  std::fputs(format_ranking_table(report, /*with_run=*/true,
                                  /*with_node=*/false,
                                  static_cast<std::size_t>(
                                      cli.get_int("rows")),
                                  2)
                 .c_str(),
             stdout);

  bench::section("Detection quality");
  bench::print_quality(report);
  std::printf("total pollutions (ground truth):    %llu\n",
              static_cast<unsigned long long>(result.total_pollutions()));

  if (cli.get_switch("csv")) {
    util::Table csv({"rank", "run", "instance", "score", "bug"});
    for (std::size_t pos = 0; pos < report.ranking.size(); ++pos) {
      const auto& e = report.ranking[pos];
      const auto& s = report.samples[e.sample_index];
      csv.add_row({util::cell(pos + 1), util::cell(s.run + 1),
                   util::cell(s.interval.seq_in_type + 1),
                   util::cell(e.score, 6), s.has_bug ? "1" : "0"});
    }
    std::fputs(csv.to_csv().c_str(), stdout);
  }
  return 0;
}
