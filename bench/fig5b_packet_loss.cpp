// Figure 5(b) — Case study II: packet loss in a multi-hop data forwarding
// WSN (paper §VI-C).
//
// Three nodes: 0 (sink) <- 1 (relay) <- 2 (source). The source injects
// packets with randomized spacing for 20 s; the relay's SPI packet-arrival
// event procedure forwards each packet and ACTIVELY DROPS it when the
// radio's busy flag is set. The paper reports 195 intervals, of which
// exactly 3 contain the bug symptom — ranked as the top three.
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "obs_flags.hpp"
#include "pipeline/inspect.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "3");
  cli.add_flag("run-seconds", "virtual run length", "20");
  cli.add_flag("mean-interval-ms", "mean packet spacing at the source",
               "100");
  cli.add_flag("rows", "ranking rows to print from the top", "7");
  cli.add_switch("fixed", "run the repaired (queue-and-pump) variant");
  cli.add_switch("csv", "also dump the full ranking as CSV");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ObsSession obs_session(cli);

  apps::Case2Config config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.run_seconds = cli.get_double("run-seconds");
  config.mean_interval_ms = cli.get_double("mean-interval-ms");
  config.fixed = cli.get_switch("fixed");

  bench::section("Case study II: busy-flag packet drop (Figure 5b)");
  std::printf(
      "3-node chain 0 (sink) - 1 (relay) - 2 (source); %g s; mean spacing "
      "%g ms; seed %llu%s\n",
      config.run_seconds, config.mean_interval_ms,
      static_cast<unsigned long long>(config.seed),
      config.fixed ? "; FIXED variant" : "");

  apps::Case2Result result = apps::run_case2(config);

  util::Table stats({"source sent", "relay arrivals", "forwarded",
                     "actively dropped (busy)", "sink received"});
  stats.add_row({util::cell(result.source_sent),
                 util::cell(result.relay_received),
                 util::cell(result.relay_forwarded),
                 util::cell(result.relay_dropped_busy),
                 util::cell(result.sink_received)});
  std::fputs(stats.render().c_str(), stdout);

  std::vector<pipeline::TaggedTrace> traces{{&result.relay_trace, 0}};
  pipeline::AnalysisOptions options;
  options.keep_features = true;  // for the rank-1 inspection rendering
  pipeline::AnalysisReport report =
      analyze(traces, os::irq::kRadioSpi, options);

  bench::section("Ranking (ascending score; index = packet arrival #)");
  std::fputs(format_ranking_table(report, /*with_run=*/false,
                                  /*with_node=*/false,
                                  static_cast<std::size_t>(
                                      cli.get_int("rows")),
                                  2)
                 .c_str(),
             stdout);

  bench::section("Detection quality");
  bench::print_quality(report);

  bench::section("Manual inspection of the top-ranked interval");
  std::fputs(pipeline::render_interval_detail(result.relay_trace, report,
                                              /*rank_position=*/0,
                                              /*max_timeline_rows=*/14)
                 .c_str(),
             stdout);

  if (cli.get_switch("csv")) {
    util::Table csv({"rank", "instance", "score", "bug"});
    for (std::size_t pos = 0; pos < report.ranking.size(); ++pos) {
      const auto& e = report.ranking[pos];
      const auto& s = report.samples[e.sample_index];
      csv.add_row({util::cell(pos + 1),
                   util::cell(s.interval.seq_in_type + 1),
                   util::cell(e.score, 6), s.has_bug ? "1" : "0"});
    }
    std::fputs(csv.to_csv().c_str(), stdout);
  }
  return 0;
}
