// Figure 5(c) — Case study III: unhandled failure caused by two
// co-existing WSN protocols (paper §VI-D).
//
// Nine nodes (3x3 grid, node 0 = CTP root); four randomly-selected source
// nodes report readings over CTP during random event intervals; every node
// broadcasts a heartbeat each 500 ms. When CTP's sendTask calls the radio
// while the chip is busy with a heartbeat/beacon, the returned FAIL is
// unhandled: the `sending` mark is never reset and CTP hangs. The paper
// pools 95 report-timer intervals from the 4 sources and finds the bug
// symptom at rank 4 (after three false alarms), indexed [node, instance].
#include <cstdio>

#include "apps/scenarios.hpp"
#include "bench_util.hpp"
#include "obs_flags.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  cli.add_flag("run-seconds", "virtual run length", "15");
  cli.add_flag("rows", "ranking rows to print from the top", "7");
  cli.add_switch("fixed", "run the repaired (FAIL-handled) variant");
  cli.add_switch("csv", "also dump the full ranking as CSV");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::ObsSession obs_session(cli);

  apps::Case3Config config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.run_seconds = cli.get_double("run-seconds");
  config.fixed = cli.get_switch("fixed");

  bench::section("Case study III: CTP + heartbeat contention (Figure 5c)");
  std::printf("9 nodes (3x3 grid), root = 0; %g s; seed %llu%s\n",
              config.run_seconds,
              static_cast<unsigned long long>(config.seed),
              config.fixed ? "; FIXED variant" : "");

  apps::Case3Result result = apps::run_case3(config);

  std::printf("sources: ");
  for (auto s : result.sources) std::printf("%u ", s);
  std::printf("\n");

  util::Table stats({"node", "role", "reports", "heartbeats", "send FAILs",
                     "CTP hung (truth)"});
  for (const auto& s : result.stats) {
    std::string role = s.id == 0 ? "root" : (s.is_source ? "source" : "relay");
    stats.add_row({util::cell(std::size_t(s.id)), role,
                   util::cell(s.reports), util::cell(s.heartbeats_sent),
                   util::cell(s.send_fails), s.hung ? "YES" : ""});
  }
  std::fputs(stats.render().c_str(), stdout);
  std::printf("packets delivered to root: %llu\n",
              static_cast<unsigned long long>(result.delivered_to_root));

  std::vector<pipeline::TaggedTrace> traces;
  for (net::NodeId src : result.sources)
    traces.push_back({&result.traces[src], 0});
  pipeline::AnalysisReport report = analyze(traces, result.report_line);

  bench::section("Ranking (ascending score; index = [node, instance])");
  std::fputs(format_ranking_table(report, /*with_run=*/false,
                                  /*with_node=*/true,
                                  static_cast<std::size_t>(
                                      cli.get_int("rows")),
                                  2)
                 .c_str(),
             stdout);

  bench::section("Detection quality");
  bench::print_quality(report);
  std::printf("hung nodes (ground truth):          %zu\n",
              result.hung_nodes());

  // A hang whose failing sendTask was posted by the SPI event procedure
  // (forwarding pump) manifests in SPI intervals, not report-timer ones;
  // the paper's workflow anatomizes each event type in turn, so do the
  // same for the radio event type across ALL nodes.
  bench::section(
      "Second event type: SPI (radio) intervals across all nodes");
  std::vector<pipeline::TaggedTrace> all_traces;
  for (const auto& t : result.traces) all_traces.push_back({&t, 0});
  pipeline::AnalysisReport spi_report =
      analyze(all_traces, os::irq::kRadioSpi);
  bench::print_quality(spi_report);

  if (cli.get_switch("csv")) {
    util::Table csv({"rank", "node", "instance", "score", "bug"});
    for (std::size_t pos = 0; pos < report.ranking.size(); ++pos) {
      const auto& e = report.ranking[pos];
      const auto& s = report.samples[e.sample_index];
      csv.add_row({util::cell(pos + 1), util::cell(std::size_t(s.node_id)),
                   util::cell(s.interval.seq_in_type + 1),
                   util::cell(e.score, 6), s.has_bug ? "1" : "0"});
    }
    std::fputs(csv.to_csv().c_str(), stdout);
  }
  return 0;
}
