// Micro-benchmarks (google-benchmark): throughput of the pieces the
// Sentomist pipeline is built from — the emulator, the lifecycle parser,
// the featurizer, and the one-class SVM.
#include <benchmark/benchmark.h>

#include "apps/scenarios.hpp"
#include "core/anatomizer.hpp"
#include "core/features.hpp"
#include "ml/ocsvm.hpp"
#include "os/node.hpp"
#include "pipeline/campaign.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

// ------------------------------------------------------- event queue

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i)
      q.schedule_at(rng.below(1 << 20), [&sink] { ++sink; });
    q.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// ---------------------------------------------------------- emulator

void BM_MachineInterruptRate(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    os::Node node(0, q);
    std::uint64_t work = 0;
    mcu::CodeId handler = mcu::CodeBuilder("h", false)
                              .instr("a", [&] { ++work; })
                              .instr("b", [&] { ++work; })
                              .instr("c", [&] { ++work; })
                              .build(node.program());
    node.machine().register_handler(5, handler);
    trace::IrqLine line = node.timers().create("t");
    mcu::CodeId timer_handler =
        mcu::CodeBuilder("th", false)
            .instr("raise", [&] { node.machine().raise_irq(5); })
            .build(node.program());
    node.machine().register_handler(line, timer_handler);
    node.timers().start_periodic(line, 1000);
    q.run_until(sim::cycles_from_millis(100));
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_MachineInterruptRate);

// ----------------------------------------------------------- parsing

// A realistic trace to anatomize: case-I sensor node, one run.
const trace::NodeTrace& sample_trace() {
  static const trace::NodeTrace t = [] {
    apps::Case1Config config;
    config.seed = 5;
    config.sample_periods_ms = {20};
    config.run_seconds = 10.0;
    auto r = apps::run_case1(config);
    return r.runs[0].sensor_trace;
  }();
  return t;
}

void BM_AnatomizeTrace(benchmark::State& state) {
  const trace::NodeTrace& t = sample_trace();
  for (auto _ : state) {
    core::Anatomizer anatomizer(t);
    auto intervals = anatomizer.intervals_for(os::irq::kAdc);
    benchmark::DoNotOptimize(intervals.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(t.lifecycle.size()) * state.iterations());
}
BENCHMARK(BM_AnatomizeTrace);

void BM_InstructionCounters(benchmark::State& state) {
  const trace::NodeTrace& t = sample_trace();
  core::Anatomizer anatomizer(t);
  auto intervals = anatomizer.intervals_for(os::irq::kAdc);
  for (auto _ : state) {
    auto m = core::instruction_counters(t, intervals);
    benchmark::DoNotOptimize(m.rows.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(intervals.size()) *
                          state.iterations());
}
BENCHMARK(BM_InstructionCounters);

// --------------------------------------------------------------- SVM

void BM_OcsvmFitScore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(20);
    for (double& v : row) v = rng.normal();
    rows.push_back(std::move(row));
  }
  for (auto _ : state) {
    ml::OneClassSvm svm;
    auto scores = svm.score(rows);
    benchmark::DoNotOptimize(scores[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_OcsvmFitScore)->Arg(200)->Arg(1000);

// Kernel-matrix build fanned across a pool: Arg is the thread count, so
// comparing Arg(1) vs Arg(N) rows shows the parallel speedup directly.
void BM_OcsvmKernelParallel(benchmark::State& state) {
  const std::size_t n = 600;
  util::Rng rng(2);
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(40);
    for (double& v : row) v = rng.normal();
    rows.push_back(std::move(row));
  }
  ml::OcsvmParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  params.max_iter = 1;  // isolate the kernel build, not the SMO loop
  for (auto _ : state) {
    ml::OneClassSvm svm(params);
    svm.fit(rows);
    benchmark::DoNotOptimize(svm.rho());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n * n) *
                          state.iterations());
}
BENCHMARK(BM_OcsvmKernelParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// ------------------------------------------------------ whole pipeline

// A small case-II campaign with Arg worker threads; Arg(1) is the serial
// baseline for the multi-core fan-out speedup.
void BM_CampaignParallel(benchmark::State& state) {
  pipeline::CampaignOptions options;
  options.first_seed = 1;
  options.runs = 4;
  options.k = 5;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pipeline::CampaignStats stats = pipeline::run_campaign(
        [](std::uint64_t seed) {
          apps::Case2Config config;
          config.seed = seed;
          config.run_seconds = 5.0;
          auto r = apps::run_case2(config);
          return pipeline::analyze({{&r.relay_trace, 0}},
                                   os::irq::kRadioSpi);
        },
        options);
    benchmark::DoNotOptimize(stats.triggered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(options.runs) *
                          state.iterations());
}
BENCHMARK(BM_CampaignParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_Case2EndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    apps::Case2Config config;
    config.seed = 3;
    config.run_seconds = 5.0;
    auto r = apps::run_case2(config);
    benchmark::DoNotOptimize(r.relay_received);
  }
}
BENCHMARK(BM_Case2EndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
