// Micro-benchmarks: throughput of the pieces the Sentomist pipeline is
// built from — the emulator, the lifecycle parser, the featurizer, and the
// one-class SVM.
//
// Besides the google-benchmark suite, this binary owns the ML data-plane
// benchmark (DESIGN.md §10): an (l, d) grid timing the reference
// (per-element) vs optimized (norm-cached blocked) kernel build, the
// first-order vs WSS2+shrinking SMO solver, and compact-SV batch
// inference, written to BENCH_ml.json together with a small-input parity
// self-check. Flags:
//   --quick          small grid, skip the google-benchmark suite (CI smoke)
//   --ml-json PATH   where to write BENCH_ml.json (default ./BENCH_ml.json)
// The process exits nonzero if the parity check fails or the optimized
// kernel build does not beat the reference build.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenarios.hpp"
#include "core/anatomizer.hpp"
#include "core/features.hpp"
#include "ml/kernel.hpp"
#include "ml/ocsvm.hpp"
#include "os/node.hpp"
#include "pipeline/campaign.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace sent;

namespace {

// ------------------------------------------------------- event queue

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i)
      q.schedule_at(rng.below(1 << 20), [&sink] { ++sink; });
    q.run_all();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// ---------------------------------------------------------- emulator

void BM_MachineInterruptRate(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    os::Node node(0, q);
    std::uint64_t work = 0;
    mcu::CodeId handler = mcu::CodeBuilder("h", false)
                              .instr("a", [&] { ++work; })
                              .instr("b", [&] { ++work; })
                              .instr("c", [&] { ++work; })
                              .build(node.program());
    node.machine().register_handler(5, handler);
    trace::IrqLine line = node.timers().create("t");
    mcu::CodeId timer_handler =
        mcu::CodeBuilder("th", false)
            .instr("raise", [&] { node.machine().raise_irq(5); })
            .build(node.program());
    node.machine().register_handler(line, timer_handler);
    node.timers().start_periodic(line, 1000);
    q.run_until(sim::cycles_from_millis(100));
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_MachineInterruptRate);

// ----------------------------------------------------------- parsing

// A realistic trace to anatomize: case-I sensor node, one run.
const trace::NodeTrace& sample_trace() {
  static const trace::NodeTrace t = [] {
    apps::Case1Config config;
    config.seed = 5;
    config.sample_periods_ms = {20};
    config.run_seconds = 10.0;
    auto r = apps::run_case1(config);
    return r.runs[0].sensor_trace;
  }();
  return t;
}

void BM_AnatomizeTrace(benchmark::State& state) {
  const trace::NodeTrace& t = sample_trace();
  for (auto _ : state) {
    core::Anatomizer anatomizer(t);
    auto intervals = anatomizer.intervals_for(os::irq::kAdc);
    benchmark::DoNotOptimize(intervals.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(t.lifecycle.size()) * state.iterations());
}
BENCHMARK(BM_AnatomizeTrace);

void BM_InstructionCounters(benchmark::State& state) {
  const trace::NodeTrace& t = sample_trace();
  core::Anatomizer anatomizer(t);
  auto intervals = anatomizer.intervals_for(os::irq::kAdc);
  for (auto _ : state) {
    auto m = core::instruction_counters(t, intervals);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(intervals.size()) *
                          state.iterations());
}
BENCHMARK(BM_InstructionCounters);

// --------------------------------------------------------------- SVM

ml::Matrix random_matrix(std::size_t l, std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Matrix x(l, d);
  double* p = x.data();
  for (std::size_t i = 0, n = l * d; i < n; ++i) p[i] = rng.normal();
  return x;
}

void BM_OcsvmFitScore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ml::Matrix rows = random_matrix(n, 20, 2);
  for (auto _ : state) {
    ml::OneClassSvm svm;
    auto scores = svm.score(rows);
    benchmark::DoNotOptimize(scores[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_OcsvmFitScore)->Arg(200)->Arg(1000);

// Kernel-matrix build fanned across a pool: Arg is the thread count, so
// comparing Arg(1) vs Arg(N) rows shows the parallel speedup directly.
void BM_OcsvmKernelParallel(benchmark::State& state) {
  ml::Matrix rows = random_matrix(600, 40, 2);
  ml::OcsvmParams params;
  params.threads = static_cast<std::size_t>(state.range(0));
  params.max_iter = 1;  // isolate the kernel build, not the SMO loop
  for (auto _ : state) {
    ml::OneClassSvm svm(params);
    svm.fit(rows);
    benchmark::DoNotOptimize(svm.rho());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(600 * 600) *
                          state.iterations());
}
BENCHMARK(BM_OcsvmKernelParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// ------------------------------------------------------ whole pipeline

// A small case-II campaign with Arg worker threads; Arg(1) is the serial
// baseline for the multi-core fan-out speedup.
void BM_CampaignParallel(benchmark::State& state) {
  pipeline::CampaignOptions options;
  options.first_seed = 1;
  options.runs = 4;
  options.k = 5;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pipeline::CampaignStats stats = pipeline::run_campaign(
        [](std::uint64_t seed) {
          apps::Case2Config config;
          config.seed = seed;
          config.run_seconds = 5.0;
          auto r = apps::run_case2(config);
          return pipeline::analyze({{&r.relay_trace, 0}},
                                   os::irq::kRadioSpi);
        },
        options);
    benchmark::DoNotOptimize(stats.triggered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(options.runs) *
                          state.iterations());
}
BENCHMARK(BM_CampaignParallel)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_Case2EndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    apps::Case2Config config;
    config.seed = 3;
    config.run_seconds = 5.0;
    auto r = apps::run_case2(config);
    benchmark::DoNotOptimize(r.relay_received);
  }
}
BENCHMARK(BM_Case2EndToEnd)->Unit(benchmark::kMillisecond);

// --------------------------------------------- ML data-plane benchmark

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of fn(), in milliseconds.
template <typename Fn>
double time_best_ms(std::size_t reps, Fn&& fn) {
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    double t0 = now_ms();
    fn();
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

struct MlGridResult {
  std::size_t l = 0, d = 0;
  double kernel_ref_ms = 0, kernel_opt_ms = 0;
  double fit_ref_ms = 0, fit_opt_ms = 0;
  std::size_t iters_ref = 0, iters_opt = 0;
  std::size_t sv_count = 0;
  double decision_ref_ms = 0, decision_opt_ms = 0;
};

struct MlParity {
  double kernel_max_abs_diff = 0;
  double rho_diff = 0;
  double decision_max_abs_diff = 0;
  bool ok = false;
};

ml::OcsvmParams grid_params(bool reference) {
  ml::OcsvmParams p;
  p.nu = 0.1;
  p.reference = reference;
  return p;
}

MlGridResult run_ml_config(std::size_t l, std::size_t d) {
  MlGridResult res;
  res.l = l;
  res.d = d;
  ml::Matrix x = random_matrix(l, d, 0xfeed + l + d);
  ml::KernelSpec spec;  // RBF, auto gamma
  double gamma = ml::resolve_gamma(spec, d);
  const std::size_t reps = l >= 1000 ? 2 : 3;

  // Untimed warm-up: sizes both output buffers and faults their pages in,
  // so the timed reps measure the build itself rather than the first-touch
  // cost of a fresh l*l allocation.
  std::vector<double> k_ref, k_opt;
  ml::build_kernel_matrix_reference(spec, gamma, x, nullptr, k_ref);
  ml::build_kernel_matrix(spec, gamma, x, nullptr, k_opt);
  res.kernel_ref_ms = time_best_ms(reps, [&] {
    ml::build_kernel_matrix_reference(spec, gamma, x, nullptr, k_ref);
  });
  res.kernel_opt_ms = time_best_ms(reps, [&] {
    ml::build_kernel_matrix(spec, gamma, x, nullptr, k_opt);
  });

  ml::OneClassSvm ref(grid_params(true));
  res.fit_ref_ms = time_best_ms(1, [&] { ref.fit(x); });
  res.iters_ref = ref.iterations_used();

  ml::OneClassSvm opt(grid_params(false));
  res.fit_opt_ms = time_best_ms(1, [&] { opt.fit(x); });
  res.iters_opt = opt.iterations_used();
  res.sv_count = opt.support_vector_count();

  res.decision_ref_ms =
      time_best_ms(reps, [&] { ref.decision_batch(x); });
  res.decision_opt_ms =
      time_best_ms(reps, [&] { opt.decision_batch(x); });
  return res;
}

MlParity run_ml_parity() {
  MlParity parity;
  const std::size_t l = 80, d = 8;
  ml::Matrix x = random_matrix(l, d, 0xbeef);
  ml::KernelSpec spec;
  double gamma = ml::resolve_gamma(spec, d);

  std::vector<double> k_ref, k_opt;
  ml::build_kernel_matrix_reference(spec, gamma, x, nullptr, k_ref);
  ml::build_kernel_matrix(spec, gamma, x, nullptr, k_opt);
  for (std::size_t i = 0; i < k_ref.size(); ++i)
    parity.kernel_max_abs_diff =
        std::max(parity.kernel_max_abs_diff, std::abs(k_ref[i] - k_opt[i]));

  auto tight = [](bool reference) {
    ml::OcsvmParams p = grid_params(reference);
    p.tol = 1e-10;
    return p;
  };
  ml::OneClassSvm ref(tight(true)), opt(tight(false));
  ref.fit(x);
  opt.fit(x);
  parity.rho_diff = std::abs(ref.rho() - opt.rho());
  auto d_ref = ref.decision_batch(x);
  auto d_opt = opt.decision_batch(x);
  for (std::size_t i = 0; i < d_ref.size(); ++i)
    parity.decision_max_abs_diff = std::max(
        parity.decision_max_abs_diff, std::abs(d_ref[i] - d_opt[i]));

  parity.ok = parity.kernel_max_abs_diff < 1e-10 &&
              parity.rho_diff < 1e-7 && parity.decision_max_abs_diff < 1e-7;
  return parity;
}

int run_ml_bench(bool quick, const std::string& json_path) {
  std::vector<std::pair<std::size_t, std::size_t>> grid = {{300, 32},
                                                           {600, 64}};
  if (!quick) {
    grid.push_back({1000, 64});
    grid.push_back({2000, 64});
  }

  std::printf("ML data plane: reference vs optimized (%s grid)\n",
              quick ? "quick" : "full");
  MlParity parity = run_ml_parity();
  std::printf(
      "parity (l=80,d=8): kernel max|diff| %.3e, rho diff %.3e, "
      "decision max|diff| %.3e -> %s\n",
      parity.kernel_max_abs_diff, parity.rho_diff,
      parity.decision_max_abs_diff, parity.ok ? "OK" : "FAIL");

  std::vector<MlGridResult> results;
  for (auto [l, d] : grid) {
    MlGridResult r = run_ml_config(l, d);
    std::printf(
        "l=%4zu d=%3zu  kernel %8.2f -> %8.2f ms (x%.2f)  fit %8.2f -> "
        "%8.2f ms  iters %6zu -> %6zu  sv %4zu  batch %7.2f -> %7.2f ms\n",
        r.l, r.d, r.kernel_ref_ms, r.kernel_opt_ms,
        r.kernel_ref_ms / std::max(r.kernel_opt_ms, 1e-9), r.fit_ref_ms,
        r.fit_opt_ms, r.iters_ref, r.iters_opt, r.sv_count,
        r.decision_ref_ms, r.decision_opt_ms);
    results.push_back(r);
  }

  std::ofstream os(json_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  os << "{\n  \"bench\": \"ml_data_plane\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"parity\": {\n"
     << "    \"kernel_max_abs_diff\": " << parity.kernel_max_abs_diff
     << ",\n    \"rho_diff\": " << parity.rho_diff
     << ",\n    \"decision_max_abs_diff\": " << parity.decision_max_abs_diff
     << ",\n    \"ok\": " << (parity.ok ? "true" : "false") << "\n  },\n";
  os << "  \"grid\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MlGridResult& r = results[i];
    os << "    {\"l\": " << r.l << ", \"d\": " << r.d
       << ", \"kernel_ref_ms\": " << r.kernel_ref_ms
       << ", \"kernel_opt_ms\": " << r.kernel_opt_ms << ", \"kernel_speedup\": "
       << r.kernel_ref_ms / std::max(r.kernel_opt_ms, 1e-9)
       << ",\n     \"fit_ref_ms\": " << r.fit_ref_ms
       << ", \"fit_opt_ms\": " << r.fit_opt_ms
       << ", \"iters_ref\": " << r.iters_ref
       << ", \"iters_opt\": " << r.iters_opt
       << ", \"sv_count\": " << r.sv_count
       << ",\n     \"decision_batch_ref_ms\": " << r.decision_ref_ms
       << ", \"decision_batch_opt_ms\": " << r.decision_opt_ms << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  os.close();
  std::printf("wrote %s\n", json_path.c_str());

  if (!parity.ok) {
    std::fprintf(stderr, "ML parity self-check FAILED\n");
    return 1;
  }
  // The largest grid entry must show the optimized build winning.
  const MlGridResult& last = results.back();
  if (last.kernel_opt_ms >= last.kernel_ref_ms) {
    std::fprintf(stderr,
                 "optimized kernel build (%.2f ms) did not beat the "
                 "reference build (%.2f ms) at l=%zu d=%zu\n",
                 last.kernel_opt_ms, last.kernel_ref_ms, last.l, last.d);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string ml_json = "BENCH_ml.json";
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--ml-json") == 0 && i + 1 < argc) {
      ml_json = argv[++i];
    } else {
      fwd.push_back(argv[i]);
    }
  }

  int rc = run_ml_bench(quick, ml_json);
  if (rc != 0 || quick) return rc;

  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
