// Shared --metrics / --trace-out wiring for driver binaries (DESIGN.md §11).
//
// Declare the flags with add_obs_flags() before Cli::parse(), then construct
// one ObsSession after parsing: it enables the global Registry / TraceLog if
// the corresponding flag was given and writes the JSON outputs when it goes
// out of scope at the end of main().
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

namespace sent::bench {

inline void add_obs_flags(util::Cli& cli) {
  cli.add_flag("metrics", "write a metrics snapshot (JSON) to this file", "");
  cli.add_switch("metrics-timers",
                 "include the wall-clock timers section in --metrics output "
                 "(off by default: timers are outside the determinism "
                 "contract)");
  cli.add_flag("trace-out",
               "write a Chrome trace_event timeline (JSON) to this file", "");
}

class ObsSession {
 public:
  explicit ObsSession(const util::Cli& cli)
      : metrics_path_(cli.get("metrics")),
        include_timers_(cli.get_switch("metrics-timers")),
        trace_path_(cli.get("trace-out")) {
    if (!metrics_path_.empty()) obs::Registry::global().set_enabled(true);
    if (!trace_path_.empty()) obs::TraceLog::global().set_enabled(true);
  }

  ~ObsSession() {
    if (!metrics_path_.empty()) {
      std::ofstream os(metrics_path_);
      if (os) {
        os << obs::Registry::global().snapshot().to_json(include_timers_)
           << '\n';
        std::printf("metrics written to %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", metrics_path_.c_str());
      }
    }
    if (!trace_path_.empty() &&
        obs::TraceLog::global().write_chrome_json(trace_path_)) {
      std::printf("trace timeline written to %s\n", trace_path_.c_str());
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string metrics_path_;
  bool include_timers_ = false;
  std::string trace_path_;
};

}  // namespace sent::bench
