file(REMOVE_RECURSE
  "CMakeFiles/ext_baseline_dustminer.dir/ext_baseline_dustminer.cpp.o"
  "CMakeFiles/ext_baseline_dustminer.dir/ext_baseline_dustminer.cpp.o.d"
  "ext_baseline_dustminer"
  "ext_baseline_dustminer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_baseline_dustminer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
