# Empty compiler generated dependencies file for ext_baseline_dustminer.
# This may be replaced when dependencies are built.
