file(REMOVE_RECURSE
  "CMakeFiles/ext_case4_dissemination.dir/ext_case4_dissemination.cpp.o"
  "CMakeFiles/ext_case4_dissemination.dir/ext_case4_dissemination.cpp.o.d"
  "ext_case4_dissemination"
  "ext_case4_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_case4_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
