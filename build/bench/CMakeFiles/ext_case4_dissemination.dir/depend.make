# Empty dependencies file for ext_case4_dissemination.
# This may be replaced when dependencies are built.
