file(REMOVE_RECURSE
  "CMakeFiles/ext_coverage.dir/ext_coverage.cpp.o"
  "CMakeFiles/ext_coverage.dir/ext_coverage.cpp.o.d"
  "ext_coverage"
  "ext_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
