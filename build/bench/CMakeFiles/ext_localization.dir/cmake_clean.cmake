file(REMOVE_RECURSE
  "CMakeFiles/ext_localization.dir/ext_localization.cpp.o"
  "CMakeFiles/ext_localization.dir/ext_localization.cpp.o.d"
  "ext_localization"
  "ext_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
