# Empty dependencies file for ext_localization.
# This may be replaced when dependencies are built.
