file(REMOVE_RECURSE
  "CMakeFiles/ext_lpl.dir/ext_lpl.cpp.o"
  "CMakeFiles/ext_lpl.dir/ext_lpl.cpp.o.d"
  "ext_lpl"
  "ext_lpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
