# Empty dependencies file for ext_lpl.
# This may be replaced when dependencies are built.
