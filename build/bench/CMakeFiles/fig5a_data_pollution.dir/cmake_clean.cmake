file(REMOVE_RECURSE
  "CMakeFiles/fig5a_data_pollution.dir/fig5a_data_pollution.cpp.o"
  "CMakeFiles/fig5a_data_pollution.dir/fig5a_data_pollution.cpp.o.d"
  "fig5a_data_pollution"
  "fig5a_data_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_data_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
