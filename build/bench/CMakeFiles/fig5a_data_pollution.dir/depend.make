# Empty dependencies file for fig5a_data_pollution.
# This may be replaced when dependencies are built.
