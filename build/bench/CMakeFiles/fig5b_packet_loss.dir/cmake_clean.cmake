file(REMOVE_RECURSE
  "CMakeFiles/fig5b_packet_loss.dir/fig5b_packet_loss.cpp.o"
  "CMakeFiles/fig5b_packet_loss.dir/fig5b_packet_loss.cpp.o.d"
  "fig5b_packet_loss"
  "fig5b_packet_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_packet_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
