# Empty compiler generated dependencies file for fig5b_packet_loss.
# This may be replaced when dependencies are built.
