file(REMOVE_RECURSE
  "CMakeFiles/fig5c_ctp_heartbeat.dir/fig5c_ctp_heartbeat.cpp.o"
  "CMakeFiles/fig5c_ctp_heartbeat.dir/fig5c_ctp_heartbeat.cpp.o.d"
  "fig5c_ctp_heartbeat"
  "fig5c_ctp_heartbeat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_ctp_heartbeat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
