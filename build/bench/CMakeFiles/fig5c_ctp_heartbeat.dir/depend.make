# Empty dependencies file for fig5c_ctp_heartbeat.
# This may be replaced when dependencies are built.
