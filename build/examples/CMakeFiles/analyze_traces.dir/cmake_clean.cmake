file(REMOVE_RECURSE
  "CMakeFiles/analyze_traces.dir/analyze_traces.cpp.o"
  "CMakeFiles/analyze_traces.dir/analyze_traces.cpp.o.d"
  "analyze_traces"
  "analyze_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
