# Empty dependencies file for analyze_traces.
# This may be replaced when dependencies are built.
