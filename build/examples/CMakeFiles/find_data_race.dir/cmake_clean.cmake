file(REMOVE_RECURSE
  "CMakeFiles/find_data_race.dir/find_data_race.cpp.o"
  "CMakeFiles/find_data_race.dir/find_data_race.cpp.o.d"
  "find_data_race"
  "find_data_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_data_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
