# Empty compiler generated dependencies file for find_data_race.
# This may be replaced when dependencies are built.
