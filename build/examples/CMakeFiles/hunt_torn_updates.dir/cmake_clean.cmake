file(REMOVE_RECURSE
  "CMakeFiles/hunt_torn_updates.dir/hunt_torn_updates.cpp.o"
  "CMakeFiles/hunt_torn_updates.dir/hunt_torn_updates.cpp.o.d"
  "hunt_torn_updates"
  "hunt_torn_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hunt_torn_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
