# Empty compiler generated dependencies file for hunt_torn_updates.
# This may be replaced when dependencies are built.
