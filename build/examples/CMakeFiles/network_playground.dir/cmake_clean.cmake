file(REMOVE_RECURSE
  "CMakeFiles/network_playground.dir/network_playground.cpp.o"
  "CMakeFiles/network_playground.dir/network_playground.cpp.o.d"
  "network_playground"
  "network_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
