# Empty compiler generated dependencies file for network_playground.
# This may be replaced when dependencies are built.
