file(REMOVE_RECURSE
  "CMakeFiles/sent_apps.dir/apps/ctp_heartbeat.cpp.o"
  "CMakeFiles/sent_apps.dir/apps/ctp_heartbeat.cpp.o.d"
  "CMakeFiles/sent_apps.dir/apps/dissemination.cpp.o"
  "CMakeFiles/sent_apps.dir/apps/dissemination.cpp.o.d"
  "CMakeFiles/sent_apps.dir/apps/forwarding.cpp.o"
  "CMakeFiles/sent_apps.dir/apps/forwarding.cpp.o.d"
  "CMakeFiles/sent_apps.dir/apps/oscilloscope.cpp.o"
  "CMakeFiles/sent_apps.dir/apps/oscilloscope.cpp.o.d"
  "CMakeFiles/sent_apps.dir/apps/scenarios.cpp.o"
  "CMakeFiles/sent_apps.dir/apps/scenarios.cpp.o.d"
  "CMakeFiles/sent_apps.dir/apps/sink.cpp.o"
  "CMakeFiles/sent_apps.dir/apps/sink.cpp.o.d"
  "libsent_apps.a"
  "libsent_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
