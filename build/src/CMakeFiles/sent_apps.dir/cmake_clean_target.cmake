file(REMOVE_RECURSE
  "libsent_apps.a"
)
