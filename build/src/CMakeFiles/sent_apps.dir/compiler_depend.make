# Empty compiler generated dependencies file for sent_apps.
# This may be replaced when dependencies are built.
