
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anatomizer.cpp" "src/CMakeFiles/sent_core.dir/core/anatomizer.cpp.o" "gcc" "src/CMakeFiles/sent_core.dir/core/anatomizer.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/CMakeFiles/sent_core.dir/core/coverage.cpp.o" "gcc" "src/CMakeFiles/sent_core.dir/core/coverage.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/CMakeFiles/sent_core.dir/core/detector.cpp.o" "gcc" "src/CMakeFiles/sent_core.dir/core/detector.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/CMakeFiles/sent_core.dir/core/features.cpp.o" "gcc" "src/CMakeFiles/sent_core.dir/core/features.cpp.o.d"
  "/root/repo/src/core/int_reti.cpp" "src/CMakeFiles/sent_core.dir/core/int_reti.cpp.o" "gcc" "src/CMakeFiles/sent_core.dir/core/int_reti.cpp.o.d"
  "/root/repo/src/core/localizer.cpp" "src/CMakeFiles/sent_core.dir/core/localizer.cpp.o" "gcc" "src/CMakeFiles/sent_core.dir/core/localizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sent_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
