file(REMOVE_RECURSE
  "CMakeFiles/sent_core.dir/core/anatomizer.cpp.o"
  "CMakeFiles/sent_core.dir/core/anatomizer.cpp.o.d"
  "CMakeFiles/sent_core.dir/core/coverage.cpp.o"
  "CMakeFiles/sent_core.dir/core/coverage.cpp.o.d"
  "CMakeFiles/sent_core.dir/core/detector.cpp.o"
  "CMakeFiles/sent_core.dir/core/detector.cpp.o.d"
  "CMakeFiles/sent_core.dir/core/features.cpp.o"
  "CMakeFiles/sent_core.dir/core/features.cpp.o.d"
  "CMakeFiles/sent_core.dir/core/int_reti.cpp.o"
  "CMakeFiles/sent_core.dir/core/int_reti.cpp.o.d"
  "CMakeFiles/sent_core.dir/core/localizer.cpp.o"
  "CMakeFiles/sent_core.dir/core/localizer.cpp.o.d"
  "libsent_core.a"
  "libsent_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
