file(REMOVE_RECURSE
  "libsent_core.a"
)
