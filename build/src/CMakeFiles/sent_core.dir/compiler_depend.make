# Empty compiler generated dependencies file for sent_core.
# This may be replaced when dependencies are built.
