file(REMOVE_RECURSE
  "CMakeFiles/sent_hw.dir/hw/adc.cpp.o"
  "CMakeFiles/sent_hw.dir/hw/adc.cpp.o.d"
  "CMakeFiles/sent_hw.dir/hw/energy.cpp.o"
  "CMakeFiles/sent_hw.dir/hw/energy.cpp.o.d"
  "CMakeFiles/sent_hw.dir/hw/radio.cpp.o"
  "CMakeFiles/sent_hw.dir/hw/radio.cpp.o.d"
  "CMakeFiles/sent_hw.dir/hw/sensor.cpp.o"
  "CMakeFiles/sent_hw.dir/hw/sensor.cpp.o.d"
  "libsent_hw.a"
  "libsent_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
