file(REMOVE_RECURSE
  "libsent_hw.a"
)
