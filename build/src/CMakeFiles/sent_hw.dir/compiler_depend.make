# Empty compiler generated dependencies file for sent_hw.
# This may be replaced when dependencies are built.
