file(REMOVE_RECURSE
  "CMakeFiles/sent_mcu.dir/mcu/machine.cpp.o"
  "CMakeFiles/sent_mcu.dir/mcu/machine.cpp.o.d"
  "CMakeFiles/sent_mcu.dir/mcu/program.cpp.o"
  "CMakeFiles/sent_mcu.dir/mcu/program.cpp.o.d"
  "libsent_mcu.a"
  "libsent_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
