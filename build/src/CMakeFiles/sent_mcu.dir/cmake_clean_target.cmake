file(REMOVE_RECURSE
  "libsent_mcu.a"
)
