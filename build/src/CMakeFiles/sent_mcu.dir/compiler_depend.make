# Empty compiler generated dependencies file for sent_mcu.
# This may be replaced when dependencies are built.
