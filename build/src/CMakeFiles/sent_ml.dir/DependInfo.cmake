
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/detectors.cpp" "src/CMakeFiles/sent_ml.dir/ml/detectors.cpp.o" "gcc" "src/CMakeFiles/sent_ml.dir/ml/detectors.cpp.o.d"
  "/root/repo/src/ml/dustminer.cpp" "src/CMakeFiles/sent_ml.dir/ml/dustminer.cpp.o" "gcc" "src/CMakeFiles/sent_ml.dir/ml/dustminer.cpp.o.d"
  "/root/repo/src/ml/eigen.cpp" "src/CMakeFiles/sent_ml.dir/ml/eigen.cpp.o" "gcc" "src/CMakeFiles/sent_ml.dir/ml/eigen.cpp.o.d"
  "/root/repo/src/ml/kernel.cpp" "src/CMakeFiles/sent_ml.dir/ml/kernel.cpp.o" "gcc" "src/CMakeFiles/sent_ml.dir/ml/kernel.cpp.o.d"
  "/root/repo/src/ml/kfd.cpp" "src/CMakeFiles/sent_ml.dir/ml/kfd.cpp.o" "gcc" "src/CMakeFiles/sent_ml.dir/ml/kfd.cpp.o.d"
  "/root/repo/src/ml/ocsvm.cpp" "src/CMakeFiles/sent_ml.dir/ml/ocsvm.cpp.o" "gcc" "src/CMakeFiles/sent_ml.dir/ml/ocsvm.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/CMakeFiles/sent_ml.dir/ml/scaler.cpp.o" "gcc" "src/CMakeFiles/sent_ml.dir/ml/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sent_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sent_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
