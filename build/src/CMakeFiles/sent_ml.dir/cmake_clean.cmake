file(REMOVE_RECURSE
  "CMakeFiles/sent_ml.dir/ml/detectors.cpp.o"
  "CMakeFiles/sent_ml.dir/ml/detectors.cpp.o.d"
  "CMakeFiles/sent_ml.dir/ml/dustminer.cpp.o"
  "CMakeFiles/sent_ml.dir/ml/dustminer.cpp.o.d"
  "CMakeFiles/sent_ml.dir/ml/eigen.cpp.o"
  "CMakeFiles/sent_ml.dir/ml/eigen.cpp.o.d"
  "CMakeFiles/sent_ml.dir/ml/kernel.cpp.o"
  "CMakeFiles/sent_ml.dir/ml/kernel.cpp.o.d"
  "CMakeFiles/sent_ml.dir/ml/kfd.cpp.o"
  "CMakeFiles/sent_ml.dir/ml/kfd.cpp.o.d"
  "CMakeFiles/sent_ml.dir/ml/ocsvm.cpp.o"
  "CMakeFiles/sent_ml.dir/ml/ocsvm.cpp.o.d"
  "CMakeFiles/sent_ml.dir/ml/scaler.cpp.o"
  "CMakeFiles/sent_ml.dir/ml/scaler.cpp.o.d"
  "libsent_ml.a"
  "libsent_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
