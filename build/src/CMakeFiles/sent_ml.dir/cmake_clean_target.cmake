file(REMOVE_RECURSE
  "libsent_ml.a"
)
