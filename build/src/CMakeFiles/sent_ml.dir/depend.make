# Empty dependencies file for sent_ml.
# This may be replaced when dependencies are built.
