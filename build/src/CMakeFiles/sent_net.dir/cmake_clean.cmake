file(REMOVE_RECURSE
  "CMakeFiles/sent_net.dir/net/channel.cpp.o"
  "CMakeFiles/sent_net.dir/net/channel.cpp.o.d"
  "CMakeFiles/sent_net.dir/net/packet.cpp.o"
  "CMakeFiles/sent_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/sent_net.dir/net/topology.cpp.o"
  "CMakeFiles/sent_net.dir/net/topology.cpp.o.d"
  "libsent_net.a"
  "libsent_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
