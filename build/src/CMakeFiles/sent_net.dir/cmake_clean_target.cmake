file(REMOVE_RECURSE
  "libsent_net.a"
)
