# Empty compiler generated dependencies file for sent_net.
# This may be replaced when dependencies are built.
