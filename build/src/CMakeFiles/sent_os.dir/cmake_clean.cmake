file(REMOVE_RECURSE
  "CMakeFiles/sent_os.dir/os/kernel.cpp.o"
  "CMakeFiles/sent_os.dir/os/kernel.cpp.o.d"
  "CMakeFiles/sent_os.dir/os/node.cpp.o"
  "CMakeFiles/sent_os.dir/os/node.cpp.o.d"
  "CMakeFiles/sent_os.dir/os/timer.cpp.o"
  "CMakeFiles/sent_os.dir/os/timer.cpp.o.d"
  "libsent_os.a"
  "libsent_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
