file(REMOVE_RECURSE
  "libsent_os.a"
)
