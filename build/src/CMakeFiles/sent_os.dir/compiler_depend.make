# Empty compiler generated dependencies file for sent_os.
# This may be replaced when dependencies are built.
