file(REMOVE_RECURSE
  "CMakeFiles/sent_pipeline.dir/pipeline/campaign.cpp.o"
  "CMakeFiles/sent_pipeline.dir/pipeline/campaign.cpp.o.d"
  "CMakeFiles/sent_pipeline.dir/pipeline/inspect.cpp.o"
  "CMakeFiles/sent_pipeline.dir/pipeline/inspect.cpp.o.d"
  "CMakeFiles/sent_pipeline.dir/pipeline/sentomist.cpp.o"
  "CMakeFiles/sent_pipeline.dir/pipeline/sentomist.cpp.o.d"
  "libsent_pipeline.a"
  "libsent_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
