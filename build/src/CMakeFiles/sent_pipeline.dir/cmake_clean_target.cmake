file(REMOVE_RECURSE
  "libsent_pipeline.a"
)
