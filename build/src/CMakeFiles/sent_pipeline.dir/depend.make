# Empty dependencies file for sent_pipeline.
# This may be replaced when dependencies are built.
