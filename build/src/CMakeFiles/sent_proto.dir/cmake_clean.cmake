file(REMOVE_RECURSE
  "CMakeFiles/sent_proto.dir/proto/ctp.cpp.o"
  "CMakeFiles/sent_proto.dir/proto/ctp.cpp.o.d"
  "CMakeFiles/sent_proto.dir/proto/heartbeat.cpp.o"
  "CMakeFiles/sent_proto.dir/proto/heartbeat.cpp.o.d"
  "CMakeFiles/sent_proto.dir/proto/trickle.cpp.o"
  "CMakeFiles/sent_proto.dir/proto/trickle.cpp.o.d"
  "libsent_proto.a"
  "libsent_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
