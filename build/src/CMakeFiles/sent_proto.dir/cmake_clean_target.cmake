file(REMOVE_RECURSE
  "libsent_proto.a"
)
