# Empty dependencies file for sent_proto.
# This may be replaced when dependencies are built.
