file(REMOVE_RECURSE
  "CMakeFiles/sent_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/sent_sim.dir/sim/event_queue.cpp.o.d"
  "libsent_sim.a"
  "libsent_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
