file(REMOVE_RECURSE
  "libsent_sim.a"
)
