# Empty compiler generated dependencies file for sent_sim.
# This may be replaced when dependencies are built.
