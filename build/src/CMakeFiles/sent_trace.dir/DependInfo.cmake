
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/lifecycle.cpp" "src/CMakeFiles/sent_trace.dir/trace/lifecycle.cpp.o" "gcc" "src/CMakeFiles/sent_trace.dir/trace/lifecycle.cpp.o.d"
  "/root/repo/src/trace/profile.cpp" "src/CMakeFiles/sent_trace.dir/trace/profile.cpp.o" "gcc" "src/CMakeFiles/sent_trace.dir/trace/profile.cpp.o.d"
  "/root/repo/src/trace/recorder.cpp" "src/CMakeFiles/sent_trace.dir/trace/recorder.cpp.o" "gcc" "src/CMakeFiles/sent_trace.dir/trace/recorder.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/CMakeFiles/sent_trace.dir/trace/serialize.cpp.o" "gcc" "src/CMakeFiles/sent_trace.dir/trace/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sent_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
