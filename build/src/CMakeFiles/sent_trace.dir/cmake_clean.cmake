file(REMOVE_RECURSE
  "CMakeFiles/sent_trace.dir/trace/lifecycle.cpp.o"
  "CMakeFiles/sent_trace.dir/trace/lifecycle.cpp.o.d"
  "CMakeFiles/sent_trace.dir/trace/profile.cpp.o"
  "CMakeFiles/sent_trace.dir/trace/profile.cpp.o.d"
  "CMakeFiles/sent_trace.dir/trace/recorder.cpp.o"
  "CMakeFiles/sent_trace.dir/trace/recorder.cpp.o.d"
  "CMakeFiles/sent_trace.dir/trace/serialize.cpp.o"
  "CMakeFiles/sent_trace.dir/trace/serialize.cpp.o.d"
  "libsent_trace.a"
  "libsent_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
