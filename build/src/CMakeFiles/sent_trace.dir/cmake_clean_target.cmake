file(REMOVE_RECURSE
  "libsent_trace.a"
)
