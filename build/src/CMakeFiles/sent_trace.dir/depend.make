# Empty dependencies file for sent_trace.
# This may be replaced when dependencies are built.
