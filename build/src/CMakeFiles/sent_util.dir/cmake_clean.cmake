file(REMOVE_RECURSE
  "CMakeFiles/sent_util.dir/util/assert.cpp.o"
  "CMakeFiles/sent_util.dir/util/assert.cpp.o.d"
  "CMakeFiles/sent_util.dir/util/cli.cpp.o"
  "CMakeFiles/sent_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/sent_util.dir/util/log.cpp.o"
  "CMakeFiles/sent_util.dir/util/log.cpp.o.d"
  "CMakeFiles/sent_util.dir/util/rng.cpp.o"
  "CMakeFiles/sent_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/sent_util.dir/util/stats.cpp.o"
  "CMakeFiles/sent_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/sent_util.dir/util/table.cpp.o"
  "CMakeFiles/sent_util.dir/util/table.cpp.o.d"
  "libsent_util.a"
  "libsent_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sent_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
