file(REMOVE_RECURSE
  "libsent_util.a"
)
