# Empty dependencies file for sent_util.
# This may be replaced when dependencies are built.
