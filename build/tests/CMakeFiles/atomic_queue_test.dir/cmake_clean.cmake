file(REMOVE_RECURSE
  "CMakeFiles/atomic_queue_test.dir/atomic_queue_test.cpp.o"
  "CMakeFiles/atomic_queue_test.dir/atomic_queue_test.cpp.o.d"
  "atomic_queue_test"
  "atomic_queue_test.pdb"
  "atomic_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
