# Empty dependencies file for atomic_queue_test.
# This may be replaced when dependencies are built.
