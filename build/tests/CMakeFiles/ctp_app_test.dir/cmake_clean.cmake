file(REMOVE_RECURSE
  "CMakeFiles/ctp_app_test.dir/ctp_app_test.cpp.o"
  "CMakeFiles/ctp_app_test.dir/ctp_app_test.cpp.o.d"
  "ctp_app_test"
  "ctp_app_test.pdb"
  "ctp_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctp_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
