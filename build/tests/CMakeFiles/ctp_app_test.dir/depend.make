# Empty dependencies file for ctp_app_test.
# This may be replaced when dependencies are built.
