file(REMOVE_RECURSE
  "CMakeFiles/dustminer_test.dir/dustminer_test.cpp.o"
  "CMakeFiles/dustminer_test.dir/dustminer_test.cpp.o.d"
  "dustminer_test"
  "dustminer_test.pdb"
  "dustminer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dustminer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
