# Empty dependencies file for dustminer_test.
# This may be replaced when dependencies are built.
