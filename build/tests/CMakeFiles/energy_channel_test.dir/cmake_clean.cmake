file(REMOVE_RECURSE
  "CMakeFiles/energy_channel_test.dir/energy_channel_test.cpp.o"
  "CMakeFiles/energy_channel_test.dir/energy_channel_test.cpp.o.d"
  "energy_channel_test"
  "energy_channel_test.pdb"
  "energy_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
