# Empty compiler generated dependencies file for energy_channel_test.
# This may be replaced when dependencies are built.
