file(REMOVE_RECURSE
  "CMakeFiles/inspect_profile_test.dir/inspect_profile_test.cpp.o"
  "CMakeFiles/inspect_profile_test.dir/inspect_profile_test.cpp.o.d"
  "inspect_profile_test"
  "inspect_profile_test.pdb"
  "inspect_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
