# Empty dependencies file for inspect_profile_test.
# This may be replaced when dependencies are built.
