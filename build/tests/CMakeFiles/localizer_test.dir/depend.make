# Empty dependencies file for localizer_test.
# This may be replaced when dependencies are built.
