file(REMOVE_RECURSE
  "CMakeFiles/mcu_extra_test.dir/mcu_extra_test.cpp.o"
  "CMakeFiles/mcu_extra_test.dir/mcu_extra_test.cpp.o.d"
  "mcu_extra_test"
  "mcu_extra_test.pdb"
  "mcu_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcu_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
