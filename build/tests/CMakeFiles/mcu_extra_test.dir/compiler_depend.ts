# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mcu_extra_test.
