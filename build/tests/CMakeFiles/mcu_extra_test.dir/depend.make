# Empty dependencies file for mcu_extra_test.
# This may be replaced when dependencies are built.
