file(REMOVE_RECURSE
  "CMakeFiles/mcu_test.dir/mcu_test.cpp.o"
  "CMakeFiles/mcu_test.dir/mcu_test.cpp.o.d"
  "mcu_test"
  "mcu_test.pdb"
  "mcu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
