# Empty compiler generated dependencies file for mcu_test.
# This may be replaced when dependencies are built.
