file(REMOVE_RECURSE
  "CMakeFiles/ocsvm_reference_test.dir/ocsvm_reference_test.cpp.o"
  "CMakeFiles/ocsvm_reference_test.dir/ocsvm_reference_test.cpp.o.d"
  "ocsvm_reference_test"
  "ocsvm_reference_test.pdb"
  "ocsvm_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocsvm_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
