# Empty dependencies file for ocsvm_reference_test.
# This may be replaced when dependencies are built.
