file(REMOVE_RECURSE
  "CMakeFiles/trickle_test.dir/trickle_test.cpp.o"
  "CMakeFiles/trickle_test.dir/trickle_test.cpp.o.d"
  "trickle_test"
  "trickle_test.pdb"
  "trickle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trickle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
