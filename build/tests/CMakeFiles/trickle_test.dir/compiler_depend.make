# Empty compiler generated dependencies file for trickle_test.
# This may be replaced when dependencies are built.
