# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/mcu_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/localizer_test[1]_include.cmake")
include("/root/repo/build/tests/dustminer_test[1]_include.cmake")
include("/root/repo/build/tests/campaign_test[1]_include.cmake")
include("/root/repo/build/tests/energy_channel_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/mcu_extra_test[1]_include.cmake")
include("/root/repo/build/tests/ocsvm_reference_test[1]_include.cmake")
include("/root/repo/build/tests/atomic_queue_test[1]_include.cmake")
include("/root/repo/build/tests/trickle_test[1]_include.cmake")
include("/root/repo/build/tests/lpl_test[1]_include.cmake")
include("/root/repo/build/tests/inspect_profile_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/ctp_app_test[1]_include.cmake")
