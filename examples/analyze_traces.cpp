// sentomist-analyze: the offline back end as a command-line tool.
//
// Feed it one or more recorded trace files (trace::save_trace_file format,
// e.g. produced by examples/offline_analysis or your own harness), pick
// the event type and detector, and it prints the inspection ranking and,
// optionally, the symptom-to-code localization.
//
//   ./build/examples/analyze_traces --traces a.trace,b.trace --line 5
//       --detector knn --top 10 --localize 3
//
// With no --traces it demonstrates itself: records the three case-I runs
// to a temp directory first, then analyzes the files.
#include <cstdio>
#include <sstream>

#include "apps/scenarios.hpp"
#include "ml/detectors.hpp"
#include "ml/kfd.hpp"
#include "ml/ocsvm.hpp"
#include "pipeline/inspect.hpp"
#include "pipeline/sentomist.hpp"
#include "trace/serialize.hpp"
#include "util/cli.hpp"

using namespace sent;

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

std::shared_ptr<core::OutlierDetector> make_detector(
    const std::string& name) {
  if (name == "ocsvm") return std::make_shared<ml::OneClassSvm>();
  if (name == "pca") return std::make_shared<ml::PcaDetector>();
  if (name == "knn") return std::make_shared<ml::KnnDetector>();
  if (name == "lof") return std::make_shared<ml::LofDetector>();
  if (name == "mahalanobis")
    return std::make_shared<ml::MahalanobisDetector>();
  if (name == "kfd") return std::make_shared<ml::KernelFisherDetector>();
  std::fprintf(stderr, "unknown detector '%s'\n", name.c_str());
  return nullptr;
}

pipeline::FeatureKind make_features(const std::string& name, bool& ok) {
  ok = true;
  if (name == "instructions")
    return pipeline::FeatureKind::InstructionCounter;
  if (name == "functions") return pipeline::FeatureKind::CodeObject;
  if (name == "coarse") return pipeline::FeatureKind::Coarse;
  ok = false;
  std::fprintf(stderr, "unknown features '%s'\n", name.c_str());
  return pipeline::FeatureKind::InstructionCounter;
}

// Demo mode: record the case-I runs into files and return their paths.
std::vector<std::string> record_demo_traces() {
  apps::Case1Config config;
  config.seed = 5;
  config.sample_periods_ms = {20, 40, 60};
  config.run_seconds = 10.0;
  apps::Case1Result r = apps::run_case1(config);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < r.runs.size(); ++i) {
    std::string path =
        "/tmp/sentomist_demo_run" + std::to_string(i) + ".trace";
    trace::save_trace_file(r.runs[i].sensor_trace, path);
    paths.push_back(path);
  }
  std::printf("(demo mode: recorded %zu case-I traces under /tmp)\n\n",
              paths.size());
  return paths;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("traces", "comma-separated trace files", "");
  cli.add_flag("line", "interrupt line (event type) to anatomize", "5");
  cli.add_flag("detector",
               "ocsvm | pca | knn | lof | mahalanobis | kfd", "ocsvm");
  cli.add_flag("features", "instructions | functions | coarse",
               "instructions");
  cli.add_flag("top", "ranking rows to print", "10");
  cli.add_flag("localize",
               "contrast the k most suspicious intervals against the rest "
               "(0 = off)",
               "0");
  cli.add_flag("inspect",
               "render timeline + deviations for the top n intervals "
               "(0 = off)",
               "0");
  cli.add_switch("csv", "dump the full ranking as CSV instead of a table");
  if (!cli.parse(argc, argv)) return 1;

  std::vector<std::string> paths = split_commas(cli.get("traces"));
  if (paths.empty()) paths = record_demo_traces();

  std::vector<trace::NodeTrace> traces;
  traces.reserve(paths.size());
  for (const auto& path : paths) {
    traces.push_back(trace::load_trace_file(path));
    std::printf("loaded %-40s node %u, %zu lifecycle items\n", path.c_str(),
                traces.back().node_id, traces.back().lifecycle.size());
  }

  pipeline::AnalysisOptions options;
  options.detector = make_detector(cli.get("detector"));
  if (!options.detector) return 1;
  bool ok = false;
  options.features = make_features(cli.get("features"), ok);
  if (!ok) return 1;
  auto k_localize = static_cast<std::size_t>(cli.get_int("localize"));
  auto n_inspect = static_cast<std::size_t>(cli.get_int("inspect"));
  options.keep_features = k_localize > 0 || n_inspect > 0;

  std::vector<pipeline::TaggedTrace> tagged;
  for (std::size_t i = 0; i < traces.size(); ++i)
    tagged.push_back({&traces[i], i});
  auto line = static_cast<trace::IrqLine>(cli.get_int("line"));
  pipeline::AnalysisReport report = analyze(tagged, line, options);

  std::printf("\n%zu intervals of event type int(%d); detector %s\n\n",
              report.samples.size(), int(line),
              report.detector_name.c_str());
  if (cli.get_switch("csv")) {
    std::printf("rank,run,node,instance,score\n");
    for (std::size_t pos = 0; pos < report.ranking.size(); ++pos) {
      const auto& e = report.ranking[pos];
      const auto& s = report.samples[e.sample_index];
      std::printf("%zu,%zu,%u,%zu,%.6f\n", pos + 1, s.run + 1, s.node_id,
                  s.interval.seq_in_type + 1, e.score);
    }
  } else {
    std::fputs(
        format_ranking_table(report, /*with_run=*/traces.size() > 1,
                             /*with_node=*/false,
                             static_cast<std::size_t>(cli.get_int("top")), 2)
            .c_str(),
        stdout);
  }

  for (std::size_t pos = 0;
       pos < std::min(n_inspect, report.ranking.size()); ++pos) {
    const auto& s = report.samples[report.ranking[pos].sample_index];
    // Samples were tagged with run = input file index.
    if (s.run >= traces.size()) continue;
    std::printf("\n");
    std::fputs(
        pipeline::render_interval_detail(traces[s.run], report, pos)
            .c_str(),
        stdout);
  }

  if (k_localize > 0) {
    std::printf("\nsymptom-to-code localization (top %zu vs rest):\n\n",
                k_localize);
    std::fputs(pipeline::format_localization(
                   pipeline::localize_top_k(report, k_localize))
                   .c_str(),
               stdout);
  }
  return 0;
}
