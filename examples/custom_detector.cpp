// Plug-in detectors: Sentomist treats the outlier detector as a plug-in
// (paper §VI-E). This example implements a custom detector in ~25 lines —
// a z-score on the first feature column — plugs it into the pipeline, and
// compares its ranking of the case-II relay trace against the built-in
// one-class SVM and kNN detectors.
//
// Build & run:  ./build/examples/custom_detector
#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/scenarios.hpp"
#include "ml/detectors.hpp"
#include "pipeline/sentomist.hpp"
#include "util/stats.hpp"

using namespace sent;

namespace {

// A deliberately naive detector: |z-score| of each row's total activity.
// Lower score = more suspicious, matching the framework convention.
class TotalActivityZScore final : public core::OutlierDetector {
 public:
  std::string name() const override { return "total-activity-zscore"; }

  using core::OutlierDetector::score;
  std::vector<double> score(const ml::Matrix& rows) override {
    std::vector<double> totals;
    totals.reserve(rows.rows());
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      double t = 0.0;
      for (double v : rows.row(r)) t += v;
      totals.push_back(t);
    }
    double mu = util::mean(totals);
    double sigma = util::stddev(totals);
    if (sigma < 1e-12) sigma = 1.0;
    std::vector<double> scores(totals.size());
    for (std::size_t i = 0; i < totals.size(); ++i)
      scores[i] = -std::abs(totals[i] - mu) / sigma;
    return scores;
  }
};

}  // namespace

int main() {
  apps::Case2Config config;
  config.seed = 3;
  apps::Case2Result result = apps::run_case2(config);
  std::printf("case II relay: %llu arrivals, %llu actively dropped\n\n",
              static_cast<unsigned long long>(result.relay_received),
              static_cast<unsigned long long>(result.relay_dropped_busy));

  std::vector<std::shared_ptr<core::OutlierDetector>> detectors{
      pipeline::default_detector(),
      std::make_shared<ml::KnnDetector>(),
      std::make_shared<TotalActivityZScore>(),
  };

  std::vector<pipeline::TaggedTrace> traces{{&result.relay_trace, 0}};
  for (const auto& detector : detectors) {
    pipeline::AnalysisOptions options;
    options.detector = detector;
    pipeline::AnalysisReport report =
        analyze(traces, os::irq::kRadioSpi, options);
    auto ranks = report.bug_ranks();
    std::printf("%-24s -> buggy intervals at ranks:", detector->name().c_str());
    for (std::size_t r : ranks) std::printf(" %zu", r);
    std::printf("  (precision@3 = %.2f)\n", report.precision_at(3));
  }
  std::printf(
      "\nAny class with a score() method can drive the ranking; the\n"
      "framework handles anatomization, featurization and reporting.\n");
  return 0;
}
