// Developer workflow: my data-collection app sometimes reports corrupted
// packets — which of the thousands of event-procedure instances should I
// look at?
//
// Runs the Oscilloscope application (the paper's Figure-2 code) at a fast
// sampling rate under background load, then lets Sentomist rank the ADC
// event-handling intervals. Run with --fixed to see the repaired
// (double-buffered) firmware produce a quiet ranking instead.
//
// Build & run:  ./build/examples/find_data_race [--fixed]
#include <cstdio>

#include "apps/scenarios.hpp"
#include "pipeline/sentomist.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "5");
  cli.add_switch("fixed", "run the repaired firmware");
  if (!cli.parse(argc, argv)) return 1;

  apps::Case1Config config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.sample_periods_ms = {20};  // one aggressive run
  config.run_seconds = 20.0;
  config.fixed = cli.get_switch("fixed");

  std::printf("running Oscilloscope (%s firmware), D = 20 ms, 20 s...\n",
              config.fixed ? "repaired" : "buggy");
  apps::Case1Result result = apps::run_case1(config);
  const apps::Case1Run& run = result.runs[0];
  std::printf("%llu readings, %llu packets sent, %llu reached the sink\n",
              static_cast<unsigned long long>(run.readings),
              static_cast<unsigned long long>(run.packets_sent),
              static_cast<unsigned long long>(run.sink_received));

  pipeline::AnalysisReport report =
      pipeline::analyze({{&run.sensor_trace, 0}}, os::irq::kAdc);

  std::printf("\n%zu ADC event-handling intervals; inspect in this order:\n\n",
              report.samples.size());
  std::fputs(format_ranking_table(report, false, false, 8, 2).c_str(),
             stdout);

  if (report.buggy_count() > 0) {
    std::printf(
        "\nGround truth: %llu pollution(s) actually occurred; the first "
        "truly-buggy interval sits at rank %zu.\n",
        static_cast<unsigned long long>(run.pollutions),
        report.first_bug_rank());
  } else {
    std::printf("\nGround truth: no pollution occurred in this run.\n");
  }
  return 0;
}
