// Case study IV as a developer story: "nodes sometimes serve a stale
// value even though their version is current — where do I look?"
//
// Runs the Trickle dissemination network, shows the corruption happening
// (node-seconds of wrong values served), then lets Sentomist rank the
// flash-ready event-handling intervals and renders the top hit: a Trickle
// broadcast nested inside the adopt task's flash-commit window — the torn
// read, visible in the timeline.
//
// Build & run:  ./build/examples/hunt_torn_updates [--fixed]
#include <cstdio>

#include "apps/scenarios.hpp"
#include "ml/ocsvm.hpp"
#include "pipeline/inspect.hpp"
#include "pipeline/sentomist.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "1");
  cli.add_switch("fixed", "run the repaired (version-last) firmware");
  if (!cli.parse(argc, argv)) return 1;

  apps::Case4Config config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.fixed = cli.get_switch("fixed");

  std::printf("disseminating over 9 nodes for %g s (%s firmware)...\n",
              config.run_seconds, config.fixed ? "repaired" : "buggy");
  apps::Case4Result r = apps::run_case4(config);
  std::printf(
      "%llu versions published; %llu torn broadcasts; %.1f node-seconds "
      "of wrong values served\n",
      static_cast<unsigned long long>(r.updates_injected),
      static_cast<unsigned long long>(r.total_torn()),
      r.corruption_node_seconds);

  std::vector<pipeline::TaggedTrace> traces;
  for (std::size_t i = 0; i < r.traces.size(); ++i)
    traces.push_back({&r.traces[i], i});

  pipeline::AnalysisOptions options;
  ml::OcsvmParams params;
  params.nu = 0.1;  // symptom fraction here is a few percent
  options.detector = std::make_shared<ml::OneClassSvm>(params);
  options.keep_features = true;
  auto flash_line = static_cast<trace::IrqLine>(r.trickle_line + 1);
  pipeline::AnalysisReport report =
      pipeline::analyze(traces, flash_line, options);

  std::printf("\n%zu flash-ready intervals; inspect in this order:\n\n",
              report.samples.size());
  std::fputs(format_ranking_table(report, false, true, 6, 2).c_str(),
             stdout);

  // Render the highest-ranked TRUE hit (or rank 1 if none is marked).
  std::size_t pos = 0;
  for (std::size_t p = 0; p < report.ranking.size(); ++p) {
    if (report.samples[report.ranking[p].sample_index].has_bug) {
      pos = p;
      break;
    }
  }
  const auto& s = report.samples[report.ranking[pos].sample_index];
  std::printf("\n");
  std::fputs(pipeline::render_interval_detail(r.traces[s.run], report, pos,
                                              /*max_timeline_rows=*/20)
                 .c_str(),
             stdout);
  if (!config.fixed)
    std::printf(
        "\nThe int(%d) nested inside the adopt task's window is the "
        "Trickle\nbroadcast reading the half-written pair.\n",
        int(r.trickle_line));
  return 0;
}
