// Substrate tour (no ML): build a 4x4-grid sensor network running CTP plus
// the heartbeat protocol on the discrete-event emulator, run half a
// virtual minute, and print routing/delivery/liveness statistics.
//
// Shows the simulation layers on their own: event queue, channel +
// topology, radio chips, TinyOS-like nodes and the protocol stack.
//
// Build & run:  ./build/examples/network_playground [--loss 0.05]
#include <cstdio>
#include <memory>

#include "apps/ctp_heartbeat.hpp"
#include "hw/energy.hpp"
#include "hw/radio.hpp"
#include "net/topology.hpp"
#include "os/node.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "1");
  cli.add_flag("loss", "per-link frame loss probability", "0.02");
  cli.add_flag("seconds", "virtual run time", "30");
  if (!cli.parse(argc, argv)) return 1;

  const std::size_t rows = 4, cols = 4, n = rows * cols;
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  sim::EventQueue queue;
  net::Channel channel(queue, rng.substream("channel"));
  channel.set_loss_rate(cli.get_double("loss"));

  hw::RadioParams radio;
  radio.bits_per_second = 100000.0;

  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<std::unique_ptr<hw::RadioChip>> chips;
  std::vector<std::unique_ptr<apps::CtpHeartbeatApp>> ctp_apps;
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<net::NodeId>(i);
    nodes.push_back(std::make_unique<os::Node>(id, queue));
    chips.push_back(std::make_unique<hw::RadioChip>(
        queue, nodes[i]->machine(), channel, id,
        rng.substream("chip" + std::to_string(i)), radio));
    apps::CtpHeartbeatConfig config;
    config.is_root = (i == 0);
    config.is_source = (i % 3 == 1);  // a third of the nodes report
    config.fixed = true;              // repaired CTP: focus on the network
    ctp_apps.push_back(std::make_unique<apps::CtpHeartbeatApp>(
        *nodes[i], *chips[i], config,
        rng.substream("app" + std::to_string(i))));
  }
  net::make_grid(channel, rows, cols);
  for (auto& app : ctp_apps) app->start();

  double seconds = cli.get_double("seconds");
  queue.run_until(sim::cycles_from_seconds(seconds));

  std::printf("ran %.0f virtual seconds on a %zux%zu grid (loss %.0f%%)\n\n",
              seconds, rows, cols, cli.get_double("loss") * 100);

  util::Table table({"node", "role", "parent", "path ETX", "queue",
                     "alive neighbors", "reports", "hb skipped (busy)"});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& ctp = ctp_apps[i]->ctp();
    std::string parent = "-";
    if (ctp.parent()) parent = std::to_string(*ctp.parent());
    std::string etx = ctp.path_etx() == proto::CtpNode::kNoRoute
                          ? "-"
                          : std::to_string(ctp.path_etx());
    table.add_row(
        {util::cell(i),
         i == 0 ? "root" : (i % 3 == 1 ? "source" : "relay"), parent, etx,
         util::cell(ctp.queue_depth()),
         util::cell(ctp_apps[i]->heartbeat().alive_neighbors(
             queue.now(), sim::cycles_from_millis(1500))),
         util::cell(ctp_apps[i]->reports_attempted()),
         util::cell(ctp_apps[i]->heartbeat().skipped_busy())});
  }
  std::fputs(table.render().c_str(), stdout);

  // Per-node energy over the run (MCU from the trace, radio from the
  // chip's transmit airtime).
  double total_mj = 0.0;
  double max_duty = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sim::Cycle tx = chips[i]->tx_airtime();
    trace::NodeTrace t = nodes[i]->take_trace();
    hw::EnergyBreakdown e = hw::estimate_energy(t, tx);
    total_mj += e.total_mj();
    max_duty = std::max(max_duty, e.mcu_duty_cycle);
  }
  std::printf("\nnetwork energy over the run: %.1f mJ total "
              "(max MCU duty cycle %.3f%%)\n",
              total_mj, max_duty * 100.0);

  std::printf("packets delivered to the root: %llu\n",
              static_cast<unsigned long long>(
                  ctp_apps[0]->ctp().delivered_to_root()));
  std::printf("channel: %llu frames sent, %llu delivered, %llu collided, "
              "%llu lost\n",
              static_cast<unsigned long long>(channel.frames_sent()),
              static_cast<unsigned long long>(channel.frames_delivered()),
              static_cast<unsigned long long>(channel.frames_collided()),
              static_cast<unsigned long long>(channel.frames_lost()));
  return 0;
}
