// Front-end / back-end split: record now, analyze later.
//
// The real Sentomist runs as an Avrora monitor writing trace files, with
// the outlier analysis as a separate offline step. This example does the
// same: phase 1 runs the case-II scenario and saves the relay's trace to
// disk in the versioned text format; phase 2 loads the file back and runs
// the full analysis on it — no simulator required at analysis time.
//
// Build & run:  ./build/examples/offline_analysis [--trace-file /tmp/relay.trace]
#include <cstdio>

#include "apps/scenarios.hpp"
#include "pipeline/sentomist.hpp"
#include "trace/serialize.hpp"
#include "util/cli.hpp"

using namespace sent;

int main(int argc, char** argv) {
  util::Cli cli;
  cli.add_flag("seed", "experiment seed", "3");
  cli.add_flag("trace-file", "where to store the recorded trace",
               "/tmp/sentomist_relay.trace");
  if (!cli.parse(argc, argv)) return 1;
  std::string path = cli.get("trace-file");

  // ---- phase 1: test run + recording (the "front end") -------------------
  {
    apps::Case2Config config;
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    apps::Case2Result result = apps::run_case2(config);
    trace::save_trace_file(result.relay_trace, path);
    std::printf("phase 1: recorded %zu lifecycle items / %zu instruction "
                "executions to %s\n",
                result.relay_trace.lifecycle.size(),
                result.relay_trace.executed(), path.c_str());
  }

  // ---- phase 2: offline analysis (the "back end") -------------------------
  {
    trace::NodeTrace trace = trace::load_trace_file(path);
    std::printf("phase 2: loaded trace of node %u (run_end=%llu cycles)\n\n",
                trace.node_id,
                static_cast<unsigned long long>(trace.run_end));
    pipeline::AnalysisReport report =
        pipeline::analyze({{&trace, 0}}, os::irq::kRadioSpi);
    std::fputs(format_ranking_table(report, false, false, 5, 2).c_str(),
               stdout);
    std::printf("\nbuggy intervals (ground-truth markers) at ranks:");
    for (std::size_t r : report.bug_ranks()) std::printf(" %zu", r);
    std::printf("\n");
  }
  return 0;
}
