// Quickstart: the whole Sentomist workflow on a ten-line "application".
//
// 1. Build a one-node program: a periodic timer handler that posts a
//    processing task. One in ~40 events takes a rare extra path (our
//    planted "anomaly").
// 2. Run it for a few virtual seconds on the discrete-event MCU.
// 3. Anatomize the recorded lifecycle sequence into event-handling
//    intervals, feature them as instruction counters, and rank them with
//    the one-class SVM.
// 4. Print the ranking: the rare-path intervals surface at the top.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "ml/ocsvm.hpp"
#include "os/node.hpp"
#include "pipeline/sentomist.hpp"
#include "util/rng.hpp"

using namespace sent;

int main() {
  // --- 1. a node and its program -----------------------------------------
  sim::EventQueue queue;
  os::Node node(/*id=*/1, queue);
  util::Rng rng(42);

  int rare_hits = 0;
  bool rare_now = false;

  // A task posted by the handler: some deferred processing.
  mcu::CodeId task_code = mcu::CodeBuilder("processTask", /*is_task=*/true)
                              .instr("stage1", [] {})
                              .instr("stage2", [] {})
                              .build(node.program());
  trace::TaskId task = node.kernel().register_task(task_code);

  // The timer handler: normally samples and posts the task; rarely it
  // takes an extra "recovery" path — the behaviour we want Sentomist to
  // surface without being told about it.
  trace::IrqLine line = node.timers().create("sample");
  mcu::CodeId handler =
      mcu::CodeBuilder("SampleTimer.fired", /*is_task=*/false)
          .instr("sample", [&] { rare_now = rng.chance(1.0 / 40.0); })
          .branch_if("normal?", [&] { return !rare_now; }, "post")
          .instr("recovery_path", [&] { ++rare_hits; })
          .instr("recovery_more", [] {})
          .label("post")
          .instr("post_task", [&] { node.kernel().post(task); })
          .build(node.program());
  node.machine().register_handler(line, handler);

  // --- 2. run -------------------------------------------------------------
  node.timers().start_periodic(line, sim::cycles_from_millis(25));
  queue.run_until(sim::cycles_from_seconds(5));
  trace::NodeTrace trace = node.take_trace();
  std::printf("ran 5 virtual seconds: %zu lifecycle items, %zu executed "
              "instructions, %d rare paths taken\n",
              trace.lifecycle.size(), trace.executed(), rare_hits);

  // --- 3./4. analyze and print --------------------------------------------
  pipeline::AnalysisReport report =
      pipeline::analyze({{&trace, 0}}, line);
  std::printf("\n%zu event-handling intervals, detector %s\n\n",
              report.samples.size(), report.detector_name.c_str());
  std::fputs(
      format_ranking_table(report, /*with_run=*/false, /*with_node=*/false,
                           /*top=*/6, /*bottom=*/2)
          .c_str(),
      stdout);
  std::printf(
      "\nThe %d intervals that took the rare path should occupy the top "
      "ranks.\n",
      rare_hits);
  return 0;
}
