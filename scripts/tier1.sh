#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, then the concurrency tests again
# under ThreadSanitizer (SENT_SANITIZE=thread) so campaign fan-out and the
# thread pool are race-checked on every run.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

# ThreadSanitizer pass over the concurrency layer. Only the concurrency
# test binaries are built in this tree; they are run directly (gtest
# binaries are standalone) to keep the TSan pass cheap.
cmake -B build-tsan -S . -DSENT_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" --target thread_pool_test campaign_test
./build-tsan/tests/thread_pool_test
./build-tsan/tests/campaign_test

echo "tier-1 OK (incl. TSan concurrency pass)"
