#!/usr/bin/env bash
# Tier-1 verification: full build + ctest (both dispatch substrates), then
# the concurrency tests again under ThreadSanitizer (SENT_SANITIZE=thread),
# an ASan+UBSan pass over the failure-surface and dispatch-parity tests, a
# chaos smoke run so the injected-fault paths are exercised on every
# verify, and the interpreter-throughput gate (ext_sim).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

# Parity configuration: the retained closure/boxed substrate as the build
# default. The whole suite must stay green when every world is built on
# the reference engine — this is what keeps the bytecode core honest
# (DESIGN.md §12).
cmake -B build-refdispatch -S . -DSENT_REFERENCE_DISPATCH=ON
cmake --build build-refdispatch -j "${JOBS}"
ctest --test-dir build-refdispatch --output-on-failure -j "${JOBS}"

# ThreadSanitizer pass over the concurrency layer. Only the concurrency
# test binaries are built in this tree; they are run directly (gtest
# binaries are standalone) to keep the TSan pass cheap. obs_test joins the
# pass because the metrics shards are the newest lock-free surface: its
# merge-determinism tests hammer one registry from many threads.
cmake -B build-tsan -S . -DSENT_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" \
  --target thread_pool_test campaign_test worker_pool_test obs_test \
  stream_test stream_parity_test corpus_test
./build-tsan/tests/thread_pool_test
./build-tsan/tests/campaign_test
# The amortized campaign engine (DESIGN.md §15): worker-local arenas,
# chunked seed claiming and the per-worker journal buffers are the newest
# concurrency surface; the pooled-vs-fresh parity battery runs under TSan
# so a race in the reset path cannot hide behind determinism.
./build-tsan/tests/worker_pool_test
./build-tsan/tests/obs_test
# The streaming ingest layer shares the pool/obs-shard surface; its chaos
# determinism test replays the same hostile storm at --jobs 1 and 4, so
# TSan sees the detector math and metric shards race-free under load.
./build-tsan/tests/stream_test
./build-tsan/tests/stream_parity_test --gtest_filter='*Chaos*'
# The corpus sweep fans seeds over worker-local arenas and writes per-seed
# outcome slots concurrently; its jobs-parity test runs under TSan so a
# race in the slot writes or arena recycling cannot hide behind the
# byte-identical aggregation.
./build-tsan/tests/corpus_test --gtest_filter='*Jobs*'

# ASan+UBSan pass over the failure surface: fault injection, lenient trace
# salvage (including the seeded byte-mutation fuzz battery), campaign
# isolation, the anatomizer property battery, and the golden Fig. 5
# reruns push on exactly the code where memory and UB bugs would hide
# (salvaged prefixes, perturbed byte streams, exceptions unwinding across
# pool workers).
cmake -B build-asan -S . -DSENT_SANITIZE=address,undefined
cmake --build build-asan -j "${JOBS}" \
  --target fault_test serialize_test campaign_test worker_pool_test \
  journal_test cli_test \
  obs_test interval_property_test golden_fig5_test sim_test bytecode_test \
  dispatch_parity_test stream_test stream_parity_test corpus_test \
  eval_metrics_test
./build-asan/tests/fault_test
./build-asan/tests/serialize_test
./build-asan/tests/campaign_test
# World reset + buffer recycling under ASan/UBSan: reused slots, recycled
# trace buffers and reset-after-watchdog-unwind are exactly where
# lifetime bugs would hide (DESIGN.md §15).
./build-asan/tests/worker_pool_test
# journal_test joins the ASan pass for the durability layer (DESIGN.md
# §13): the journal-recovery byte-mutation fuzz battery, torn/failed
# commit chaos, and the fork+SIGKILL crash-resume test all run sanitized.
./build-asan/tests/journal_test
./build-asan/tests/cli_test
./build-asan/tests/obs_test
./build-asan/tests/interval_property_test
./build-asan/tests/golden_fig5_test
# The interpreter core and event engine under ASan/UBSan: the slab slots,
# the deferred-inline path, and the cross-substrate parity suite are
# exactly where lifetime bugs would hide (closures moved out of slots
# mid-flight, spilled wake-ups, operand-pool pointers).
./build-asan/tests/sim_test
./build-asan/tests/bytecode_test
./build-asan/tests/dispatch_parity_test
# The streaming ingest surface (DESIGN.md §14): the frame-decoder fuzz
# battery, quarantine/eviction paths, and the batch≡streaming parity suite
# all run sanitized — hostile bytes and salvage-after-poison are exactly
# where out-of-bounds reads would hide.
./build-asan/tests/stream_test
./build-asan/tests/stream_parity_test
# The corpus generator and metric layer sanitized: mutation-hook builds,
# trace-derived label derivation over recycled arena buffers, and the
# hand-fixture metric battery (DESIGN.md §16).
./build-asan/tests/corpus_test
./build-asan/tests/eval_metrics_test

# Chaos smoke: a small fault-intensity grid end to end. Exits nonzero on
# any process abort, nondeterminism across thread counts, or a clean row
# that fails to reproduce the no-harness baseline.
./build/bench/ext_chaos --runs 4 --jobs 2 --json build/BENCH_chaos_smoke.json

# Fleet-ingest soak smoke (DESIGN.md §14): multi-stream chaos through the
# streaming service. ext_fleet exits nonzero on batch≡streaming parity
# divergence, on any logical difference between serial and parallel
# detector math, or when peak retained bytes exceed the stream-volume
# bound (the RSS-growth gate). The deterministic metrics sections must
# also be byte-identical between --jobs 1 and --jobs 2 invocations.
./build/bench/ext_fleet --streams 4 --run-seconds 1.5 --chaos 2 --jobs 1 \
  --metrics build/metrics_fleet_j1.json --json build/BENCH_fleet_smoke.json
./build/bench/ext_fleet --streams 4 --run-seconds 1.5 --chaos 2 --jobs 2 \
  --metrics build/metrics_fleet_j2.json --json build/BENCH_fleet_smoke.json
cmp build/metrics_fleet_j1.json build/metrics_fleet_j2.json

# Observability smoke: --metrics must emit parseable JSON with the promised
# top-level sections, and the deterministic sections must be byte-identical
# between --jobs 1 and --jobs 2 campaigns of the same workload.
./build/bench/ext_campaign --runs 4 --jobs 1 \
  --metrics build/metrics_j1.json --json build/BENCH_campaign_smoke.json
./build/bench/ext_campaign --runs 4 --jobs 2 \
  --metrics build/metrics_j2.json --json build/BENCH_campaign_smoke.json
python3 - <<'EOF'
import json
snap = json.load(open("build/metrics_j1.json"))
for key in ("version", "counters", "gauges", "histograms"):
    assert key in snap, f"metrics snapshot missing {key!r}"
assert snap["counters"].get("campaign.runs", 0) > 0, "no campaign runs recorded"
EOF
cmp build/metrics_j1.json build/metrics_j2.json

# Scaling regression gate (DESIGN.md §15.5): a reduced chaos campaign
# through the amortized engine, serial vs --jobs 2, pooled vs fresh.
# ext_campaign --scale exits nonzero on any stats or obs-snapshot
# divergence between the three legs, or when parallel efficiency
# (speedup / min(jobs, hardware cores)) drops below the floor — 0.55
# tolerates single-core containers and scheduler noise while still
# catching a reintroduced hot-path lock, which lands far below it.
./build/bench/ext_campaign --scale 200 --jobs 2 --reps 2 --warmup 8 \
  --min-efficiency 0.55 --stats-out build/scale_stats \
  --json build/BENCH_scale_smoke.json
# The deterministic stats JSON must be byte-identical across schedules.
cmp build/scale_stats.serial.json build/scale_stats.parallel.json
rm -f build/scale_stats.serial.json build/scale_stats.parallel.json

# Crash-resume smoke (DESIGN.md §13): run a journaled campaign that
# SIGKILLs itself mid-flight (--kill-after), resume it, and require the
# resumed stats JSON to be byte-identical to an uninterrupted run's — at a
# different --jobs than the killed attempt, since resume must be
# schedule-independent. The killed child must die by signal (exit 137),
# not complete.
rm -f build/crash.journal build/stats_clean.journal \
  build/stats_resumed.json build/stats_clean.json
set +e
./build/bench/ext_campaign --case II --runs 8 --jobs 2 \
  --journal build/crash.journal \
  --kill-after 3 --json build/stats_killed.json > /dev/null 2>&1
KILLED_STATUS=$?
set -e
if [ "${KILLED_STATUS}" -ne 137 ]; then
  echo "crash-resume smoke: expected SIGKILL exit 137, got ${KILLED_STATUS}" >&2
  exit 1
fi
./build/bench/ext_campaign --case II --runs 8 --jobs 4 \
  --journal build/crash.journal \
  --resume --json build/stats_resumed.json
./build/bench/ext_campaign --case II --runs 8 --jobs 1 \
  --journal build/stats_clean.journal \
  --json build/stats_clean.json
cmp build/stats_resumed.json build/stats_clean.json
rm -f build/crash.journal build/stats_clean.journal

# ML data-plane smoke: the quick grid plus the built-in parity self-check
# (optimized vs reference kernel/solver/decision). micro_perf exits nonzero
# if parity fails or the optimized kernel build is not faster than the
# retained reference, so a silent perf or numerics regression fails tier-1.
./build/bench/micro_perf --quick --ml-json build/BENCH_ml.json
test -s build/BENCH_ml.json

# Corpus-evaluation smoke (DESIGN.md §16): a reduced corpus x detector
# sweep at --jobs 1 and --jobs 2; the deterministic metrics JSON must be
# byte-identical across schedules (the driver's own --selfcheck-jobs is
# disabled here because the cmp below IS the check, at smoke scale).
./build/bench/ext_corpus --variants smoke --seeds 2 --run-scale 0.25 \
  --selfcheck-jobs 0 --jobs 1 --json build/BENCH_corpus_j1.json
./build/bench/ext_corpus --variants smoke --seeds 2 --run-scale 0.25 \
  --selfcheck-jobs 0 --jobs 2 --json build/BENCH_corpus_j2.json
cmp build/BENCH_corpus_j1.json build/BENCH_corpus_j2.json
rm -f build/BENCH_corpus_j1.json build/BENCH_corpus_j2.json

# Interpreter-throughput gate: both dispatch engines on the three Fig-5
# cases. ext_sim exits nonzero if any serialized trace or ranking differs
# between the engines, if any case's speedup falls below the floor, or if
# the bytecode engine's virtual-MIPS drops below the floor. Floors are
# set well under the recorded numbers (BENCH_sim.json: ~7-11x, 96-190
# vMIPS) to absorb machine noise while still catching a fused-dispatch or
# event-pool regression, which lands at ~2x / ~20 vMIPS.
./build/bench/ext_sim --reps 3 --min-speedup 4.0 --min-mips 50 \
  --json build/BENCH_sim_smoke.json
test -s build/BENCH_sim_smoke.json

echo "tier-1 OK (incl. reference-dispatch suite + TSan concurrency/obs/stream/worker-pool/corpus + ASan/UBSan fault-surface/property/golden/dispatch-parity/stream/worker-pool/corpus + chaos + fleet soak + obs + scaling gate + corpus sweep parity + ML parity + vMIPS gate)"
