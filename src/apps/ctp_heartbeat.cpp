#include "apps/ctp_heartbeat.hpp"

#include "util/assert.hpp"

namespace sent::apps {

CtpHeartbeatApp::CtpHeartbeatApp(os::Node& node, hw::RadioChip& chip,
                                 CtpHeartbeatConfig config, util::Rng rng)
    : node_(node), chip_(chip), config_(config), rng_(rng) {
  config_.ctp.self = static_cast<net::NodeId>(node_.id());
  config_.ctp.is_root = config_.is_root;
  repaired_ = config_.fixed && config_.mutation == CtpMutation::None;
  config_.ctp.fix_send_fail = repaired_;
  ctp_ = std::make_unique<proto::CtpNode>(config_.ctp);
  heartbeat_ = std::make_unique<proto::Heartbeat>(
      static_cast<net::NodeId>(node_.id()), config_.heartbeat_padding);
  build_code();
}

void CtpHeartbeatApp::build_code() {
  auto& prog = node_.program();
  auto& kernel = node_.kernel();

  beacon_line_ = node_.timers().create("BeaconTimer");
  report_line_ = node_.timers().create("ReportTimer");
  heartbeat_line_ = node_.timers().create("HeartbeatTimer");
  retry_line_ = node_.timers().create("SendRetryTimer");

  // --- task CtpForwardingEngine.sendTask ----------------------------------
  // Mirrors the TinyOS forwarding engine's sendTask structure.
  {
    mcu::CodeBuilder b("CtpForwardingEngine.sendTask", /*is_task=*/true);
    b.ret_if_flag("guard_sending", sending_mirror_, true);
    b.ret_if("guard_empty", [this] { return !ctp_->has_pending(); });
    b.instr("set_sending", [this] {
      ctp_->mark_sending();
      sending_mirror_ = true;
    });
    b.branch_if(
        "subsend_call",
        [this] {
          return chip_.send(ctp_->head_for_send()) == hw::SendResult::Busy;
        },
        "fail");
    b.instr("accepted", [this] { ctp_->on_send_accepted(); });
    b.ret("done");
    b.label("fail");
    b.instr("handle_fail", [this] {
      // Buggy variant: on_send_fail leaves `sending` set — the hang.
      // Fixed variant: it clears the mark; we arm a retry below.
      if (ctp_->on_send_fail()) node_.mark_bug("ctp-hang");
      sending_mirror_ = ctp_->sending();
      if (repaired_ && !node_.timers().running(retry_line_))
        node_.timers().start_oneshot(retry_line_, config_.retry_delay);
    });
    mcu::CodeId id = b.build(prog);
    send_task_ = kernel.register_task(id);
  }

  // --- SPI handler ----------------------------------------------------------
  {
    mcu::CodeBuilder b("Radio.SpiHandler", /*is_task=*/false);
    b.label("top");
    b.ret_if("empty", [this] { return !chip_.has_event(); });
    b.instr("take", [this] {
      event_ = chip_.take_event();
      ev_kind_ = static_cast<std::uint32_t>(event_.kind);
      ev_am_ = event_.packet.am_type;
    });
    b.branch_if_u32(
        "is_txdone", ev_kind_, mcu::Cmp::Eq,
        static_cast<std::uint32_t>(hw::RadioChip::Event::Kind::TxDone),
        "txdone");
    b.branch_if_u32("is_beacon", ev_am_, mcu::Cmp::Eq, proto::am::kCtpBeacon,
                    "beacon");
    b.branch_if_u32("is_heartbeat", ev_am_, mcu::Cmp::Eq,
                    proto::am::kHeartbeat, "heartbeat");
    b.branch_if_u32("is_data", ev_am_, mcu::Cmp::Eq, proto::am::kCtpData,
                    "data");
    b.jump("unknown", "top");

    b.label("txdone");
    // Only CTP data sends are tracked by the forwarding engine; beacon and
    // heartbeat transmissions are fire-and-forget.
    b.branch_if_u32("txdone_not_data", ev_am_, mcu::Cmp::Ne,
                    proto::am::kCtpData, "top");
    b.instr("senddone", [this] {
      if (ctp_->on_send_done(event_.status))
        node_.kernel().post(send_task_);
      sending_mirror_ = ctp_->sending();
    });
    b.jump("txdone_next", "top");

    b.label("beacon");
    b.instr("update_routing", [this] { ctp_->on_beacon(event_.packet); });
    b.jump("beacon_next", "top");

    b.label("heartbeat");
    b.instr("update_liveness", [this] {
      heartbeat_->on_heartbeat(event_.packet, node_.queue().now());
    });
    b.jump("heartbeat_next", "top");

    b.label("data");
    b.instr("forward_enqueue", [this] {
      if (ctp_->enqueue_forward(event_.packet) && !ctp_->sending() &&
          !ctp_->config().is_root)
        node_.kernel().post(send_task_);
    });
    b.jump("data_next", "top");

    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(os::irq::kRadioSpi, id);
  }

  // --- beacon timer handler --------------------------------------------------
  {
    mcu::CodeBuilder b("BeaconTimer.fired", /*is_task=*/false);
    b.branch_if("check_busy", [this] { return chip_.busy(); }, "skip");
    b.instr("send_beacon", [this] {
      chip_.send(ctp_->make_beacon());
      ++beacons_sent_;
    });
    b.ret("done");
    b.label("skip");
    b.instr("skip_busy", [this] { ++beacons_skipped_; });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(beacon_line_, id);
  }

  // --- report timer handler (the anatomized event procedure) -----------------
  {
    mcu::CodeBuilder b("ReportTimer.fired", /*is_task=*/false);
    // Only an active source samples. event_active_ is flipped by the event
    // process, which start() runs for sources only — on every other node
    // the flag stays false, so the one flag test covers both roles.
    b.ret_if_flag("check_active", event_active_, false);
    b.instr("sample", [this] {
      reading_ = static_cast<std::uint16_t>(rng_.below(1024));
      reading32_ = reading_;
      ++reports_attempted_;
    });
    // Value-dependent calibration path: natural per-interval variation in
    // the instruction counter of normal instances.
    b.branch_if_u32("range_check", reading32_, mcu::Cmp::Lt, 512,
                    "low_range");
    b.add_u16("calibrate_high", reading_, 0xFFFF);  // reading_ -= 1
    b.label("low_range");
    // Bit-serial encoding loop (work proportional to set bits): natural
    // per-interval variation in the instruction counter. With
    // encode_words > 1 an outer pass repeats the encode once per payload
    // word; at 1 the emitted shape (and so the trace) is unchanged.
    const bool multi_word = config_.encode_words > 1;
    if (multi_word) {
      rounds_init_ = static_cast<std::uint16_t>(config_.encode_words);
      b.mov_u16("enc_rounds_init", enc_rounds_, rounds_init_);
      b.label("word_top");
    }
    b.mov_u16("enc_init", enc_tmp_, reading_);
    b.label("enc_top");
    b.branch_if_u16("enc_done", enc_tmp_, mcu::Cmp::Eq, 0, "enc_out");
    b.clear_lsb_u16("enc_step", enc_tmp_);
    b.jump("enc_loop", "enc_top");
    b.label("enc_out");
    if (multi_word) {
      b.add_u16("word_done", enc_rounds_, 0xFFFF);  // enc_rounds_ -= 1
      b.branch_if_u16("word_next", enc_rounds_, mcu::Cmp::Ne, 0, "word_top");
    }
    b.branch_if(
        "enqueue",
        [this] { return !ctp_->enqueue_local(reading_); }, "dropped");
    b.ret_if_flag("engine_busy", sending_mirror_, true);
    b.instr("post_send", [this] { node_.kernel().post(send_task_); });
    b.ret("done");
    b.label("dropped");
    b.instr("count_drop", [] {
      // Queue full or no route; the reading is lost. Statistics are kept
      // by CtpNode itself.
    });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(report_line_, id);
  }

  // --- heartbeat timer handler -------------------------------------------------
  {
    mcu::CodeBuilder b("HeartbeatTimer.fired", /*is_task=*/false);
    b.branch_if("check_busy", [this] { return chip_.busy(); }, "skip");
    b.instr("send_heartbeat",
            [this] { chip_.send(heartbeat_->make_heartbeat()); });
    b.ret("done");
    b.label("skip");
    b.instr("skip_busy", [this] { heartbeat_->count_skip_busy(); });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(heartbeat_line_, id);
  }

  // --- retry timer handler (armed by the fixed variant only) -----------------
  {
    mcu::CodeBuilder b("SendRetryTimer.fired", /*is_task=*/false);
    b.instr("repost", [this] { node_.kernel().post(send_task_); });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(retry_line_, id);
  }
}

void CtpHeartbeatApp::schedule_event_flip() {
  sim::Cycle mean =
      event_active_ ? config_.mean_event_on : config_.mean_event_off;
  auto delay = std::max<sim::Cycle>(
      static_cast<sim::Cycle>(rng_.exponential(static_cast<double>(mean))),
      sim::cycles_from_millis(50));
  node_.queue().schedule_after(delay, [this] {
    event_active_ = !event_active_;
    schedule_event_flip();
  });
}

void CtpHeartbeatApp::start() {
  auto phase = [this](sim::Cycle period) {
    return period + static_cast<sim::Cycle>(rng_.below(period));
  };
  node_.timers().start_periodic(beacon_line_, config_.beacon_period,
                                phase(config_.beacon_period));
  node_.timers().start_periodic(heartbeat_line_, config_.heartbeat_period,
                                phase(config_.heartbeat_period));
  if (config_.is_source) {
    sim::Cycle report_phase =
        config_.report_stagger != 0
            ? config_.report_period +
                  static_cast<sim::Cycle>(node_.id()) * config_.report_stagger
            : phase(config_.report_period);
    node_.timers().start_periodic(report_line_, config_.report_period,
                                  report_phase);
    schedule_event_flip();
  }
}

}  // namespace sent::apps
