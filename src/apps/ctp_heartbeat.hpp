// Case study III application: event detection over CTP, co-existing with a
// heartbeat protocol (paper §VI-D).
//
// Every node runs the same program image:
//   * CTP routing (periodic beacons, min-ETX parent) and forwarding
//     (bounded queue, `sending` mark, retransmissions) toward the root;
//   * a heartbeat broadcast every 500 ms;
//   * a report timer: while an external "event of interest" is active, a
//     source node samples a reading, enqueues it into CTP and pumps the
//     forwarding engine. This timer's interrupt line is the event type the
//     paper anatomizes ("the timeout event procedure ... the timer to
//     report sensing data").
//
// THE BUG: CTP's sendTask sets the `sending` mark, then calls the radio.
// When the chip is busy — e.g. this node's own heartbeat or beacon is
// still on air — send returns FAIL, which CTP does not handle: the mark is
// never reset, no send-done will arrive, and the node's CTP hangs forever
// (proto::CtpNode::on_send_fail). The fixed variant clears the mark and
// retries after a short delay.
#pragma once

#include <cstdint>
#include <memory>

#include "hw/radio.hpp"
#include "os/node.hpp"
#include "proto/ctp.hpp"
#include "proto/heartbeat.hpp"
#include "util/rng.hpp"

namespace sent::apps {

/// Corpus mutation hook (DESIGN.md §16): reintroduces the unhandled
/// send-FAIL `sending` hang into the REPAIRED app. `None` leaves the built
/// program bit-identical to the unmutated app.
enum class CtpMutation : std::uint8_t {
  None = 0,
  StuckSending,  ///< shared-flag: FAIL path leaves `sending` set forever
};

struct CtpHeartbeatConfig {
  bool is_root = false;
  bool is_source = false;

  sim::Cycle beacon_period = sim::cycles_from_millis(1000);
  sim::Cycle report_period = sim::cycles_from_millis(600);
  sim::Cycle heartbeat_period = sim::cycles_from_millis(500);

  /// Heartbeat payload padding; larger heartbeats hold the radio longer,
  /// widening the contention window with CTP.
  std::size_t heartbeat_padding = 96;

  /// External event-of-interest process: alternating active/idle phases
  /// with exponential durations.
  sim::Cycle mean_event_on = sim::cycles_from_millis(3000);
  sim::Cycle mean_event_off = sim::cycles_from_millis(1500);

  /// Words of sensing payload the report handler encodes per sample. At 1
  /// (the default) the handler bit-encodes just the reading, exactly the
  /// original shape; larger values wrap the encode loop in an outer
  /// per-word pass, modelling nodes that report multi-word records. This
  /// is the report path's instruction-density knob, like case II's
  /// payload range (the benches crank it; the bug is width-agnostic).
  std::size_t encode_words = 1;

  /// When nonzero, the report timer's initial phase is deterministic:
  /// period + node_id * report_stagger, instead of the random phase. Spaces
  /// the sources' report handlers apart in virtual time so their
  /// instruction chains don't interleave — a benchmarking aid (the bug does
  /// not depend on report phasing).
  sim::Cycle report_stagger = 0;

  /// Repaired variant: handle FAIL and retry after `retry_delay`.
  bool fixed = false;
  sim::Cycle retry_delay = sim::cycles_from_millis(10);

  /// Corpus mutation injected on top of the selected variant.
  CtpMutation mutation = CtpMutation::None;

  proto::CtpConfig ctp;  ///< self / is_root filled in by the app
};

class CtpHeartbeatApp {
 public:
  CtpHeartbeatApp(os::Node& node, hw::RadioChip& chip,
                  CtpHeartbeatConfig config, util::Rng rng);

  CtpHeartbeatApp(const CtpHeartbeatApp&) = delete;
  CtpHeartbeatApp& operator=(const CtpHeartbeatApp&) = delete;

  /// Start timers (with per-node random phases) and the event process.
  void start();

  /// The interrupt line of the report timer — the anatomized event type.
  trace::IrqLine report_line() const { return report_line_; }

  const proto::CtpNode& ctp() const { return *ctp_; }
  const proto::Heartbeat& heartbeat() const { return *heartbeat_; }

  bool event_active() const { return event_active_; }
  std::uint64_t reports_attempted() const { return reports_attempted_; }
  std::uint64_t beacons_sent() const { return beacons_sent_; }
  std::uint64_t beacons_skipped_busy() const { return beacons_skipped_; }

 private:
  os::Node& node_;
  hw::RadioChip& chip_;
  CtpHeartbeatConfig config_;
  util::Rng rng_;
  bool repaired_ = false;  ///< fixed AND unmutated: FAIL handled + retried

  std::unique_ptr<proto::CtpNode> ctp_;
  std::unique_ptr<proto::Heartbeat> heartbeat_;

  trace::IrqLine beacon_line_ = 0;
  trace::IrqLine report_line_ = 0;
  trace::IrqLine heartbeat_line_ = 0;
  trace::IrqLine retry_line_ = 0;
  trace::TaskId send_task_ = 0;

  hw::RadioChip::Event event_{};
  // Typed-op mirrors of the taken event, refreshed by the SPI handler's
  // "take" instruction so the dispatch branches read plain u32 state.
  std::uint32_t ev_kind_ = 0;  ///< static_cast of event_.kind
  std::uint32_t ev_am_ = 0;    ///< event_.packet.am_type
  /// Mirror of ctp_->sending(), refreshed by every host instruction that
  /// can change it (set_sending / handle_fail / senddone), so the sendTask
  /// and report-timer guards are plain flag tests.
  bool sending_mirror_ = false;
  bool event_active_ = false;
  std::uint16_t reading_ = 0;
  std::uint32_t reading32_ = 0;  ///< u32 mirror for the range_check branch
  std::uint16_t enc_tmp_ = 0;    ///< encoding-loop scratch register
  std::uint16_t enc_rounds_ = 0;  ///< outer-loop counter (encode_words > 1)
  std::uint16_t rounds_init_ = 0;  ///< constant source: config.encode_words
  std::uint64_t reports_attempted_ = 0, beacons_sent_ = 0,
                beacons_skipped_ = 0;

  void build_code();
  void schedule_event_flip();
};

}  // namespace sent::apps
