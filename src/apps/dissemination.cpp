#include "apps/dissemination.hpp"

#include "proto/am.hpp"
#include "util/assert.hpp"

namespace sent::apps {

DisseminationApp::DisseminationApp(os::Node& node, hw::RadioChip& chip,
                                   DisseminationConfig config, util::Rng rng)
    : node_(node),
      chip_(chip),
      config_(config),
      rng_(rng),
      trickle_(config.trickle, rng.substream("trickle")) {
  SENT_REQUIRE(config_.flash_delay_min <= config_.flash_delay_max);
  chip_.set_signal_txdone(false);  // summaries are fire-and-forget
  build_code();
}

void DisseminationApp::restart_trickle_timer(sim::Cycle delay) {
  if (node_.timers().running(trickle_line_))
    node_.timers().stop(trickle_line_);
  node_.timers().start_oneshot(trickle_line_, delay);
}

void DisseminationApp::build_code() {
  auto& prog = node_.program();
  auto& kernel = node_.kernel();

  trickle_line_ = node_.timers().create("TrickleTimer");
  flash_line_ = node_.timers().create("FlashReadyTimer");
  publish_line_ = node_.timers().create("PublishTimer");

  // --- task adoptTask ------------------------------------------------------
  // Applies a pending update. Step order is THE bug (see header).
  {
    mcu::CodeBuilder b("adoptTask", /*is_task=*/true);
    b.ret_if_flag("guard_pending", adopt_pending_, false);
    b.instr("write_first", [this] {
      const bool torn =
          !config_.fixed || config_.mutation == DissMutation::TornWrite;
      if (!torn) {
        value_ = pend_value_;  // publish ordering: payload first
      } else {
        version_ = pend_version_;  // BUG: version visible before the value
        version_ahead_of_value_ = true;
      }
    });
    b.set_u32("flash_begin", flash_remaining_,
              config_.flash_commit_iterations);
    b.label("flash_loop");
    b.add_u32("flash_program", flash_remaining_, ~std::uint32_t{0},  // -= 1
              config_.flash_commit_iteration_cost);
    b.branch_if_u32("flash_more", flash_remaining_, mcu::Cmp::Ne, 0,
                    "flash_loop");
    b.instr("write_second", [this] {
      const bool torn =
          !config_.fixed || config_.mutation == DissMutation::TornWrite;
      if (!torn) {
        version_ = pend_version_;  // version last: torn reads are harmless
      } else {
        value_ = pend_value_;
        version_ahead_of_value_ = false;
      }
      adopt_pending_ = false;
      ++adoptions_;
    });
    mcu::CodeId id = b.build(prog);
    adopt_task_ = kernel.register_task(id);
  }

  // --- SPI handler ----------------------------------------------------------
  {
    mcu::CodeBuilder b("Radio.SpiHandler", /*is_task=*/false);
    b.label("top");
    b.ret_if("empty", [this] { return !chip_.has_event(); });
    b.instr("take", [this] { event_ = chip_.take_event(); });
    b.branch_if(
        "is_dissemination",
        [this] {
          return event_.kind == hw::RadioChip::Event::Kind::RxDone &&
                 event_.packet.am_type == proto::am::kDissemination;
        },
        "summary");
    b.jump("other", "top");

    b.label("summary");
    b.instr("read_summary", [this] {
      rx_version_ = net::get_u16(event_.packet.payload, 0);
      rx_value_ = net::get_u16(event_.packet.payload, 2);
    });
    b.branch_if("check_same",
                [this] { return rx_version_ == version_; }, "consistent");
    b.branch_if("check_newer",
                [this] { return rx_version_ > version_; }, "newer");
    // Older: the sender is stale; reset Trickle so our summary reaches it
    // quickly.
    b.instr("stale_reset",
            [this] { restart_trickle_timer(trickle_.on_inconsistent()); });
    b.jump("stale_next", "top");

    b.label("consistent");
    b.instr("suppress", [this] { trickle_.on_consistent(); });
    b.jump("consistent_next", "top");

    b.label("newer");
    b.instr("stage_adopt", [this] {
      pend_version_ = rx_version_;
      pend_value_ = rx_value_;
      adopt_pending_ = true;
      // Flash-ready latency before the adopt work can run.
      if (!node_.timers().running(flash_line_)) {
        sim::Cycle delay =
            config_.flash_delay_min +
            static_cast<sim::Cycle>(rng_.below(
                config_.flash_delay_max - config_.flash_delay_min + 1));
        node_.timers().start_oneshot(flash_line_, delay);
      }
    });
    b.instr("newer_reset",
            [this] { restart_trickle_timer(trickle_.on_inconsistent()); });
    b.jump("newer_next", "top");

    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(os::irq::kRadioSpi, id);
  }

  // --- flash-ready handler ---------------------------------------------------
  {
    mcu::CodeBuilder b("FlashReady.fired", /*is_task=*/false);
    b.instr("post_adopt", [this] { node_.kernel().post(adopt_task_); });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(flash_line_, id);
  }

  // --- Trickle timer handler (the anatomized event type) ---------------------
  {
    mcu::CodeBuilder b("TrickleTimer.fired", /*is_task=*/false);
    b.instr("advance", [this] {
      proto::Trickle::Step step = trickle_.advance();
      should_transmit_ = step.transmit;
      next_delay_ = step.next_delay;
    });
    b.branch_if("check_tx", [this] { return !should_transmit_; }, "rearm");
    b.instr("build_summary", [this] {
      // Ground truth: reading the pair while the buggy adopt task has
      // written the version but not yet the value IS the torn broadcast.
      if (version_ahead_of_value_) {
        ++torn_;
        node_.mark_bug("torn-summary");
      }
    });
    b.branch_if("check_busy", [this] { return chip_.busy(); }, "busy");
    b.instr("send_summary", [this] {
      net::Packet p;
      p.dst = net::kBroadcast;
      p.am_type = proto::am::kDissemination;
      net::put_u16(p.payload, version_);
      net::put_u16(p.payload, value_);
      chip_.send(std::move(p));
      ++summaries_sent_;
    });
    b.jump("sent_next", "rearm");
    b.label("busy");
    b.instr("skip_busy", [this] { ++skipped_busy_; });
    b.label("rearm");
    b.instr("rearm_timer", [this] {
      node_.timers().start_oneshot(trickle_line_, next_delay_);
    });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(trickle_line_, id);
  }

  // --- publish handler (publisher node only; raised by the environment) ------
  {
    mcu::CodeBuilder b("Publish.fired", /*is_task=*/false);
    b.instr("bump_version", [this] {
      // The publisher updates atomically within one handler: the bug is
      // in the RECEIVERS' deferred adopt path.
      ++version_;
      value_ = staged_publish_value_;
    });
    b.instr("publish_reset",
            [this] { restart_trickle_timer(trickle_.on_inconsistent()); });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(publish_line_, id);
  }
}

void DisseminationApp::start() { restart_trickle_timer(trickle_.start()); }

void DisseminationApp::inject_update(std::uint16_t value) {
  SENT_REQUIRE_MSG(config_.is_publisher,
                   "inject_update on a non-publisher node");
  staged_publish_value_ = value;
  node_.machine().raise_irq(publish_line_);
}

}  // namespace sent::apps
