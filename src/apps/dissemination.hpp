// Case study IV (an extension beyond the paper's three): Trickle-driven
// value dissemination with a TORN-UPDATE transient bug.
//
// Every node runs a Drip-style dissemination client: it holds a
// (version, value) pair, broadcasts summaries under Trickle timing, adopts
// newer versions it hears, and resets Trickle on any inconsistency so
// updates sweep the network quickly. A designated publisher node injects
// new versions.
//
// THE BUG: adopting an update is deferred work — the SPI handler schedules
// it behind a flash-ready delay, and the adopt task then (1) writes the
// version field, (2) spends ~5 ms committing the value to flash, (3)
// writes the value field. If the Trickle timer fires during step (2), the
// summary-building handler preempts the task and reads a TORN pair:
// the NEW version with the OLD value. Nodes hearing that summary adopt
// the wrong value, and because their version is now current, the correct
// summary later looks "consistent" and is suppressed — the corruption is
// silent and permanent. The canonical fix is publish ordering: commit the
// value first and write the version LAST (fixed=true), which makes any
// torn read harmless (old version + anything is simply ignored).
#pragma once

#include <cstdint>

#include "hw/radio.hpp"
#include "os/node.hpp"
#include "proto/trickle.hpp"
#include "util/rng.hpp"

namespace sent::apps {

/// Corpus mutation hook (DESIGN.md §16): reintroduces the version-before-
/// value write ordering into the REPAIRED app. `None` leaves the built
/// program bit-identical to the unmutated app.
enum class DissMutation : std::uint8_t {
  None = 0,
  TornWrite,  ///< atomicity: version visible before the committed value
};

struct DisseminationConfig {
  bool is_publisher = false;

  proto::TrickleParams trickle;

  /// Flash-ready latency before the adopt task is posted (uniform range):
  /// page-erase plus write-queue time on a dataflash part.
  sim::Cycle flash_delay_min = sim::cycles_from_millis(30);
  sim::Cycle flash_delay_max = sim::cycles_from_millis(120);

  /// Duration of the in-task flash commit between the two field writes.
  std::uint32_t flash_commit_iterations = 25;
  std::uint32_t flash_commit_iteration_cost = 1500;  ///< ~5 ms total

  /// Repaired variant: value first, version last (publish ordering).
  bool fixed = false;

  /// Corpus mutation injected on top of the selected variant.
  DissMutation mutation = DissMutation::None;
};

class DisseminationApp {
 public:
  DisseminationApp(os::Node& node, hw::RadioChip& chip,
                   DisseminationConfig config, util::Rng rng);

  DisseminationApp(const DisseminationApp&) = delete;
  DisseminationApp& operator=(const DisseminationApp&) = delete;

  /// Start Trickle.
  void start();

  /// Environment hook (publisher only): stage the next value and raise the
  /// publish interrupt. Called from simulation events, not from MCU code.
  void inject_update(std::uint16_t value);

  /// The Trickle timer's interrupt line — the anatomized event type.
  trace::IrqLine trickle_line() const { return trickle_line_; }

  std::uint16_t version() const { return version_; }
  std::uint16_t value() const { return value_; }

  std::uint64_t summaries_sent() const { return summaries_sent_; }
  std::uint64_t summaries_suppressed() const {
    return trickle_.suppressions();
  }
  std::uint64_t sends_skipped_busy() const { return skipped_busy_; }
  std::uint64_t adoptions() const { return adoptions_; }
  std::uint64_t torn_broadcasts() const { return torn_; }

 private:
  os::Node& node_;
  hw::RadioChip& chip_;
  DisseminationConfig config_;
  util::Rng rng_;
  proto::Trickle trickle_;

  trace::IrqLine trickle_line_ = 0;
  trace::IrqLine flash_line_ = 0;
  trace::IrqLine publish_line_ = 0;
  trace::TaskId adopt_task_ = 0;

  // --- module state ---
  std::uint16_t version_ = 0;
  std::uint16_t value_ = 0;
  /// True between the buggy adopt task's version write and value write.
  bool version_ahead_of_value_ = false;

  std::uint16_t pend_version_ = 0;
  std::uint16_t pend_value_ = 0;
  bool adopt_pending_ = false;

  std::uint16_t staged_publish_value_ = 0;  ///< environment -> handler

  hw::RadioChip::Event event_{};
  std::uint16_t rx_version_ = 0;
  std::uint16_t rx_value_ = 0;
  std::uint32_t flash_remaining_ = 0;
  bool should_transmit_ = false;
  sim::Cycle next_delay_ = 0;

  std::uint64_t summaries_sent_ = 0, skipped_busy_ = 0, adoptions_ = 0,
                torn_ = 0;

  void build_code();
  void restart_trickle_timer(sim::Cycle delay);
};

}  // namespace sent::apps
