#include "apps/forwarding.hpp"

#include "util/assert.hpp"

namespace sent::apps {

// ---------------------------------------------------------------- source

RandomSourceApp::RandomSourceApp(os::Node& node, hw::RadioChip& chip,
                                 RandomSourceConfig config, util::Rng rng)
    : node_(node), chip_(chip), config_(config), rng_(rng) {
  chip_.set_signal_txdone(false);  // fire-and-forget sender
  timer_line_ = node_.timers().create("SendTimer");
  mcu::CodeBuilder b("SendTimer.fired", /*is_task=*/false);
  b.instr("send", [this] {
    net::Packet p;
    p.dst = config_.dst;
    p.am_type = proto::am::kForward;
    p.origin = node_.id();
    p.seq = seq_++;
    auto bytes = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(config_.min_payload_bytes),
        static_cast<std::int64_t>(config_.max_payload_bytes)));
    p.payload.assign(bytes, 0x5A);
    if (chip_.send(std::move(p)) == hw::SendResult::Ok)
      ++sent_;
    else
      ++skipped_busy_;
  });
  b.instr("reschedule", [this] {
    node_.timers().start_oneshot(timer_line_, next_delay());
  });
  mcu::CodeId id = b.build(node_.program());
  node_.machine().register_handler(timer_line_, id);
}

sim::Cycle RandomSourceApp::next_delay() {
  double mean = static_cast<double>(config_.mean_interval);
  auto delay = static_cast<sim::Cycle>(rng_.exponential(mean));
  return std::max(delay, config_.min_interval);
}

void RandomSourceApp::start() {
  node_.timers().start_oneshot(timer_line_, next_delay());
}

// ----------------------------------------------------------------- relay

RelayApp::RelayApp(os::Node& node, hw::RadioChip& chip, RelayConfig config)
    : node_(node), chip_(chip), config_(config) {
  switch (config_.mutation) {
    case RelayMutation::TornMailbox:
      build_torn_mailbox();
      break;
    case RelayMutation::PopFirst:
      build_pop_first();
      break;
    case RelayMutation::BusyDrop:
      build_buggy();
      break;
    case RelayMutation::None:
      if (config_.fixed)
        build_fixed();
      else
        build_buggy();
      break;
  }
}

void RelayApp::build_buggy() {
  // The paper's structure: the SPI packet-arrival event procedure calls
  // Receive.receive, which directly calls AMSend.send. No send-done is
  // consumed (fire-and-forget), so every SPI interrupt on this node is a
  // packet arrival — matching the paper's "each of the instances
  // corresponds to a packet arrival event".
  chip_.set_signal_txdone(false);
  mcu::CodeBuilder b("Receive.receive", /*is_task=*/false);
  b.label("top");
  b.ret_if("empty", [this] { return !chip_.has_event(); });
  b.instr("take", [this] {
    event_ = chip_.take_event();
    csum_len_ = static_cast<std::uint32_t>(event_.packet.payload.size());
    seq_mod8_ = event_.packet.seq % 8u;
    ++received_;
  });
  // Software checksum over the payload before forwarding: one loop
  // iteration per byte, so the counter varies with packet length. The loop
  // itself is typed bytecode; only the bound is loaded by the host call.
  b.set_u32("csum_init", csum_pos_, 0);
  b.label("csum_top");
  b.branch_if_u32_ge("csum_done", csum_pos_, csum_len_, "csum_out");
  b.add_u32("csum_step", csum_pos_, 1);
  b.jump("csum_loop", "csum_top");
  b.label("csum_out");
  b.instr("prepare_forward", [this] {
    event_.packet.dst = config_.next_hop;  // AMSend.send target
  });
  // Periodic link-statistics bookkeeping (every 8th sequence number), the
  // kind of data-dependent path real forwarding code has.
  b.branch_if_u32("stats_check", seq_mod8_, mcu::Cmp::Ne, 0, "no_stats");
  b.instr("update_stats", [] {});
  b.label("no_stats");
  b.instr("amsend_call", [this] {
    // Result checked by the following branch.
  });
  b.branch_if(
      "check_busy",
      [this] { return chip_.send(event_.packet) == hw::SendResult::Busy; },
      "drop");
  b.instr("sent", [this] { ++forwarded_; });
  b.jump("next", "top");
  b.label("drop");
  b.instr("drop_busy", [this] {
    // BUG: active drop because the radio's busy flag is set.
    ++dropped_busy_;
    node_.mark_bug("busy-drop");
  });
  b.jump("next2", "top");
  mcu::CodeId id = b.build(node_.program());
  node_.machine().register_handler(os::irq::kRadioSpi, id);
}

void RelayApp::build_fixed() {
  // Repaired design: queue arrivals, pump one send at a time, continue
  // from send-done. Requires TxDone signalling.
  chip_.set_signal_txdone(true);
  mcu::CodeBuilder b("Receive.receive", /*is_task=*/false);
  b.label("top");
  b.ret_if("empty", [this] { return !chip_.has_event(); });
  b.instr("take", [this] { event_ = chip_.take_event(); });
  b.branch_if(
      "is_txdone",
      [this] {
        return event_.kind == hw::RadioChip::Event::Kind::TxDone;
      },
      "txdone");
  b.instr("enqueue", [this] {
    ++received_;
    if (queue_.size() >= config_.queue_capacity) {
      ++dropped_full_;
      return;
    }
    net::Packet p = event_.packet;
    p.dst = config_.next_hop;
    queue_.push_back(std::move(p));
  });
  b.jump("pump_after_rx", "pump");
  b.label("txdone");
  b.instr("pop_sent", [this] {
    if (!queue_.empty()) {
      ++forwarded_;
      queue_.pop_front();
    }
  });
  b.label("pump");
  b.branch_if(
      "pump_check",
      [this] { return queue_.empty() || chip_.busy(); }, "next");
  b.instr("pump_send", [this] { chip_.send(queue_.front()); });
  b.label("next");
  b.jump("loop", "top");
  mcu::CodeId id = b.build(node_.program());
  node_.machine().register_handler(os::irq::kRadioSpi, id);
}

void RelayApp::build_torn_mailbox() {
  // Deferred-forwarding refactor of the repaired relay: the SPI handler
  // stages each arrival into a single-slot mailbox and posts forwardTask,
  // which checksums the slot and forwards it. THE MUTATION: the handler
  // writes the slot unconditionally — staging over a still-full mailbox
  // (the task may be mid-checksum under this very interrupt) tears the
  // packet the task is consuming: an atomicity violation across the
  // interrupt/task boundary. A Busy send leaves the slot staged for the
  // next arrival's post to retry, so every loss funnels through the
  // marked overwrite path.
  chip_.set_signal_txdone(false);
  {
    mcu::CodeBuilder b("forwardTask", /*is_task=*/true);
    b.ret_if_flag("guard_empty", mailbox_full_, false);
    b.instr("begin_read", [this] {
      csum_len_ = static_cast<std::uint32_t>(mailbox_.payload.size());
    });
    // Checksum directly over the mailbox slot, one (expensive) iteration
    // per byte: the whole loop is the window in which an arrival tears
    // the packet under us.
    b.set_u32("csum_init", csum_pos_, 0);
    b.label("csum_top");
    b.branch_if_u32_ge("csum_done", csum_pos_, csum_len_, "csum_out");
    b.add_u32("csum_step", csum_pos_, 1, config_.mailbox_iteration_cost);
    b.jump("csum_loop", "csum_top");
    b.label("csum_out");
    b.instr("send_staged", [this] {
      mailbox_.dst = config_.next_hop;
      if (chip_.send(mailbox_) == hw::SendResult::Ok) {
        ++forwarded_;
        mailbox_full_ = false;
      }
      // Busy: keep the slot staged; retried at the next arrival's post.
    });
    mcu::CodeId id = b.build(node_.program());
    forward_task_ = node_.kernel().register_task(id);
  }
  {
    mcu::CodeBuilder b("Receive.receive", /*is_task=*/false);
    b.label("top");
    b.ret_if("empty", [this] { return !chip_.has_event(); });
    b.instr("take", [this] {
      event_ = chip_.take_event();
      ++received_;
    });
    b.instr("stage", [this] {
      if (mailbox_full_) {
        // Ground truth: the slot still holds an unconsumed packet — this
        // overwrite is the torn forward.
        ++torn_overwrites_;
        node_.mark_bug("torn-mailbox");
      }
      mailbox_ = event_.packet;
      mailbox_full_ = true;
    });
    b.instr("post_forward",
            [this] { node_.kernel().post(forward_task_); });
    b.jump("next", "top");
    mcu::CodeId id = b.build(node_.program());
    node_.machine().register_handler(os::irq::kRadioSpi, id);
  }
}

void RelayApp::build_pop_first() {
  // Queueing refactor of the repaired relay that got the ORDER wrong: the
  // forward task pops the packet off the queue before the send result is
  // known. A Busy send then has nothing to retry — the packet the queue
  // already surrendered is simply gone.
  chip_.set_signal_txdone(false);
  {
    mcu::CodeBuilder b("forwardTask", /*is_task=*/true);
    b.ret_if("guard_empty", [this] { return queue_.empty(); });
    b.instr("pop", [this] {
      // Ordering bug: ownership leaves the queue here, one step early.
      popped_ = std::move(queue_.front());
      queue_.pop_front();
      csum_len_ = static_cast<std::uint32_t>(popped_.payload.size());
    });
    b.set_u32("csum_init", csum_pos_, 0);
    b.label("csum_top");
    b.branch_if_u32_ge("csum_done", csum_pos_, csum_len_, "csum_out");
    b.add_u32("csum_step", csum_pos_, 1);
    b.jump("csum_loop", "csum_top");
    b.label("csum_out");
    b.instr("send_popped", [this] {
      popped_.dst = config_.next_hop;
      if (chip_.send(popped_) == hw::SendResult::Ok) {
        send_lost_ = false;
        ++forwarded_;
      } else {
        // Ground truth: the surrendered packet is lost.
        send_lost_ = true;
        ++lost_pop_first_;
        node_.mark_bug("pop-first-loss");
      }
    });
    b.branch_if_flag("loss_check", send_lost_, false, "done_ok");
    // Loss-path bookkeeping loop: the error handling makes the symptom
    // visible in the interval's instruction counters.
    b.set_u32("log_init", log_remaining_, 6);
    b.label("log_top");
    b.add_u32("log_step", log_remaining_, ~std::uint32_t{0}, 400);  // -1
    b.branch_if_u32("log_more", log_remaining_, mcu::Cmp::Ne, 0, "log_top");
    b.label("done_ok");
    b.instr("repost", [this] {
      if (!queue_.empty()) node_.kernel().post(forward_task_);
    });
    mcu::CodeId id = b.build(node_.program());
    forward_task_ = node_.kernel().register_task(id);
  }
  {
    mcu::CodeBuilder b("Receive.receive", /*is_task=*/false);
    b.label("top");
    b.ret_if("empty", [this] { return !chip_.has_event(); });
    b.instr("take", [this] {
      event_ = chip_.take_event();
      ++received_;
    });
    b.instr("enqueue", [this] {
      if (queue_.size() >= config_.queue_capacity) {
        ++dropped_full_;
        return;
      }
      queue_.push_back(event_.packet);
    });
    b.instr("post_forward",
            [this] { node_.kernel().post(forward_task_); });
    b.jump("next", "top");
    mcu::CodeId id = b.build(node_.program());
    node_.machine().register_handler(os::irq::kRadioSpi, id);
  }
}

}  // namespace sent::apps
