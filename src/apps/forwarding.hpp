// Case study II applications: multi-hop packet forwarding (BlinkToRadio-
// style), nodes 0 (sink) <- 1 (relay) <- 2 (source).
//
// RandomSourceApp injects packet-arrival events at the relay by sending
// data packets at randomized (exponential) intervals — "by randomizing the
// packet sending ratio of node 2, we can inject a random sequence of packet
// arrival events for node 1 to handle" (§VI-C).
//
// RelayApp's packet-arrival event procedure is the paper's key function
// pair: Receive.receive directly calls AMSend.send to forward the packet.
//
// THE BUG: when a packet arrives while the radio chip's busy flag is still
// set from forwarding the previous packet (the flag spans the whole
// RTS/CTS/DATA/ACK exchange), AMSend.send fails and the packet is ACTIVELY
// DROPPED. The paper's fix — "the protocol should queue up a received
// packet and send it when the busy flag is cleared" — is the fixed=true
// variant, which buffers arrivals and pumps the queue from send-done.
#pragma once

#include <cstdint>
#include <deque>

#include "hw/radio.hpp"
#include "os/node.hpp"
#include "proto/am.hpp"
#include "util/rng.hpp"

namespace sent::apps {

// ---------------------------------------------------------------- source

struct RandomSourceConfig {
  net::NodeId dst = 1;                ///< next hop (the relay)
  sim::Cycle mean_interval = sim::cycles_from_millis(100);
  sim::Cycle min_interval = sim::cycles_from_millis(1);
  /// Payload length drawn uniformly per packet (sensor reports vary).
  std::size_t min_payload_bytes = 4;
  std::size_t max_payload_bytes = 16;
};

class RandomSourceApp {
 public:
  RandomSourceApp(os::Node& node, hw::RadioChip& chip,
                  RandomSourceConfig config, util::Rng rng);

  RandomSourceApp(const RandomSourceApp&) = delete;
  RandomSourceApp& operator=(const RandomSourceApp&) = delete;

  void start();

  std::uint64_t sent() const { return sent_; }
  std::uint64_t skipped_busy() const { return skipped_busy_; }

 private:
  os::Node& node_;
  hw::RadioChip& chip_;
  RandomSourceConfig config_;
  util::Rng rng_;
  trace::IrqLine timer_line_ = 0;
  std::uint16_t seq_ = 0;
  std::uint64_t sent_ = 0, skipped_busy_ = 0;

  sim::Cycle next_delay();
};

// ----------------------------------------------------------------- relay

/// Corpus mutation hooks (DESIGN.md §16). Each reintroduces one taxonomy
/// class of transient bug into the relay; `None` keeps the legacy
/// fixed/buggy selection by `RelayConfig::fixed` bit-identical.
enum class RelayMutation : std::uint8_t {
  None = 0,
  /// Shared-flag race: the legacy drop-on-busy receive path (the paper's
  /// case-II bug), selectable independently of `fixed`.
  BusyDrop,
  /// Atomicity: a deferred-forwarding refactor stages each arrival into a
  /// single-slot mailbox the forward task reads — the handler can overwrite
  /// the slot while the task is still consuming it.
  TornMailbox,
  /// Ordering: the forward task pops the queue BEFORE the send result is
  /// known, so a Busy send loses the packet it already surrendered.
  PopFirst,
};

struct RelayConfig {
  net::NodeId next_hop = 0;  ///< where forwarded packets go (the sink)
  bool fixed = false;        ///< queue-and-pump repaired variant
  std::size_t queue_capacity = 8;

  /// Corpus mutation; overrides `fixed`'s program selection when not None.
  RelayMutation mutation = RelayMutation::None;
  /// TornMailbox: cycles per checksum-loop iteration in the forward task.
  /// Stretches the window in which the slot is being read, so the tear
  /// probability is a swept corpus parameter.
  std::uint32_t mailbox_iteration_cost = 900;
};

class RelayApp {
 public:
  RelayApp(os::Node& node, hw::RadioChip& chip, RelayConfig config);

  RelayApp(const RelayApp&) = delete;
  RelayApp& operator=(const RelayApp&) = delete;

  std::uint64_t received() const { return received_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped_busy() const { return dropped_busy_; }
  std::uint64_t dropped_queue_full() const { return dropped_full_; }
  std::uint64_t torn_overwrites() const { return torn_overwrites_; }
  std::uint64_t lost_pop_first() const { return lost_pop_first_; }

 private:
  os::Node& node_;
  hw::RadioChip& chip_;
  RelayConfig config_;
  hw::RadioChip::Event event_{};
  std::deque<net::Packet> queue_;  // fixed + PopFirst variants
  std::uint32_t csum_pos_ = 0;     // checksum-loop scratch register
  std::uint32_t csum_len_ = 0;     // payload length of the taken packet
  std::uint32_t seq_mod8_ = 0;     // event_.packet.seq % 8, set by "take"

  // Mutation state (TornMailbox / PopFirst).
  trace::TaskId forward_task_ = 0;
  net::Packet mailbox_{};        // single staging slot (TornMailbox)
  bool mailbox_full_ = false;    // slot holds an unconsumed packet
  net::Packet popped_{};         // packet surrendered by the queue (PopFirst)
  bool send_lost_ = false;       // PopFirst: last send lost its packet
  std::uint32_t log_remaining_ = 0;  // loss-path bookkeeping loop

  std::uint64_t received_ = 0, forwarded_ = 0, dropped_busy_ = 0,
                dropped_full_ = 0, torn_overwrites_ = 0, lost_pop_first_ = 0;

  void build_buggy();
  void build_fixed();
  void build_torn_mailbox();
  void build_pop_first();
};

}  // namespace sent::apps
