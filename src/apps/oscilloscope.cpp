#include "apps/oscilloscope.hpp"

#include "util/assert.hpp"

namespace sent::apps {

OscilloscopeApp::OscilloscopeApp(os::Node& node, hw::AdcDevice& adc,
                                 hw::RadioChip& chip,
                                 OscilloscopeConfig config, util::Rng rng)
    : node_(node), adc_(adc), chip_(chip), config_(config), rng_(rng) {
  build_code();
}

void OscilloscopeApp::build_code() {
  auto& prog = node_.program();
  auto& kernel = node_.kernel();

  sample_line_ = node_.timers().create("SampleTimer");
  maintenance_line_ = node_.timers().create("MaintenanceTimer");

  // --- task prepareAndSendPacket -----------------------------------------
  // Sends the three collected readings to the sink in one data packet.
  {
    mcu::CodeBuilder b("prepareAndSendPacket", /*is_task=*/true);
    b.instr("prepare", [this] {
      // Building the payload reads the shared packet buffer — exactly the
      // data the interleaving bug can have polluted by now.
      // (The fixed variant reads the committed copy instead.)
      if (config_.mutation == OscMutation::LateCommit && !commit_done_) {
        // The deferred commit: correct only if no ADC interrupt has
        // overwritten packet_data_[0] since the post.
        send_buffer_ = packet_data_;
        commit_done_ = true;
      }
    });
    b.instr("send", [this] {
      const bool live_buffer =
          !config_.fixed || config_.mutation == OscMutation::SharedBuffer;
      const auto& buf = live_buffer ? packet_data_ : send_buffer_;
      net::Packet p;
      p.dst = config_.sink;
      p.am_type = proto::am::kOscilloscope;
      for (std::uint16_t v : buf) net::put_u16(p.payload, v);
      if (chip_.send(std::move(p)) == hw::SendResult::Ok) {
        ++packets_sent_;
      } else {
        ++skipped_busy_;
      }
    });
    b.set_flag("clear_pending", send_pending_, false);
    mcu::CodeId id = b.build(prog);
    send_task_ = kernel.register_task(id);
  }

  // --- task heavyTask ------------------------------------------------------
  // The "heavy-weighted event procedure" body: a long computation loop.
  // Pure counter arithmetic, so the whole task compiles to typed bytecode.
  {
    mcu::CodeBuilder b("heavyTask", /*is_task=*/true);
    b.set_u32("init", heavy_remaining_, config_.heavy_iterations);
    b.label("loop");
    b.add_u32("work", heavy_remaining_, ~std::uint32_t{0},  // -= 1
              config_.heavy_iteration_cost);
    b.branch_if_u32("more", heavy_remaining_, mcu::Cmp::Ne, 0, "loop");
    mcu::CodeId id = b.build(prog);
    heavy_task_ = kernel.register_task(id);
  }

  // --- ADC data-ready handler: Read.readDone (Figure 2) -------------------
  {
    mcu::CodeBuilder b("Read.readDone", /*is_task=*/false);
    b.instr("store_data", [this] {
      // packet->data[dataItem] = data;
      const bool live_buffer =
          !config_.fixed || config_.mutation == OscMutation::SharedBuffer;
      if (send_pending_ && live_buffer) {
        // Ground truth: a committed-but-unsent packet is being overwritten.
        ++pollutions_;
        node_.mark_bug("data-pollution");
      }
      if (send_pending_ && !commit_done_ &&
          config_.mutation == OscMutation::LateCommit) {
        // Ground truth: the task has not committed yet, so this write lands
        // in the triple the pending send will copy — same pollution, caused
        // by reordering the commit rather than by sharing the buffer.
        ++pollutions_;
        node_.mark_bug("late-commit-pollution");
      }
      packet_data_[data_item_] = adc_.value();
      ++readings_;
    });
    // Value-dependent filtering, as real sampling code has: spikes are
    // clamped and high-range readings take a calibration path. These
    // branches give normal intervals natural instruction-count variation.
    b.branch_if("spike_check",
                [this] { return packet_data_[data_item_] < 700; },
                "no_spike");
    b.instr("clamp_spike", [this] { packet_data_[data_item_] = 700; });
    b.label("no_spike");
    b.branch_if("range_check",
                [this] { return packet_data_[data_item_] < 520; },
                "low_range");
    b.instr("calibrate_high", [this] {
      packet_data_[data_item_] =
          static_cast<std::uint16_t>(packet_data_[data_item_] - 3);
    });
    b.label("low_range");
    // Delta/run-length encoding pass whose work is proportional to the set
    // bits of the reading — a data-dependent loop like real compression
    // code, giving the counter near-continuous variation across intervals.
    b.instr("enc_init", [this] { enc_tmp_ = packet_data_[data_item_]; });
    b.label("enc_top");
    b.branch_if_u16("enc_done", enc_tmp_, mcu::Cmp::Eq, 0, "enc_out");
    b.clear_lsb_u16("enc_step", enc_tmp_);
    b.jump("enc_loop", "enc_top");
    b.label("enc_out");
    b.add_u32("inc_item", data_item_, 1);
    b.ret_if_u32("check_three", data_item_, mcu::Cmp::Ne, 3);
    b.set_u32("reset_item", data_item_, 0);
    if (config_.mutation == OscMutation::PendingSkip) {
      // Shared-flag race: treat send_pending_ as a "send in flight" guard
      // and drop the fresh triple instead of posting. Correct-looking —
      // but the flag is cleared by the TASK, so any task-queue delay makes
      // the handler discard real data.
      b.branch_if_flag("flag_check", send_pending_, true, "skip_triple");
    }
    b.instr("post_send", [this] {
      if (config_.mutation == OscMutation::LateCommit) {
        commit_done_ = false;  // commit deferred into the task (the bug)
      } else if (config_.fixed) {
        send_buffer_ = packet_data_;  // commit a copy
      }
      send_pending_ = true;
      node_.kernel().post(send_task_);
    });
    if (config_.mutation == OscMutation::PendingSkip) {
      b.ret("posted");
      b.label("skip_triple");
      b.instr("drop_triple", [this] {
        // Ground truth: this triple never leaves the node.
        ++mutation_drops_;
        node_.mark_bug("pending-skip-drop");
      });
      // Error-path bookkeeping loop: the discard work makes the symptom
      // visible in the interval's instruction counters.
      b.set_u32("discard_init", discard_remaining_, 3);
      b.label("discard_top");
      b.add_u32("discard_step", discard_remaining_, ~std::uint32_t{0},  // -1
                600);
      b.branch_if_u32("discard_more", discard_remaining_, mcu::Cmp::Ne, 0,
                      "discard_top");
    }
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(os::irq::kAdc, id);
  }

  // --- sample timer handler: request an ADC conversion ---------------------
  {
    mcu::CodeBuilder b("SampleTimer.fired", /*is_task=*/false);
    b.instr("request_read", [this] { adc_.request_read(); });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(sample_line_, id);
  }

  // --- maintenance timer handler -------------------------------------------
  {
    mcu::CodeBuilder b("MaintenanceTimer.fired", /*is_task=*/false);
    b.ret_if("roll", [this] {
      return !rng_.chance(config_.maintenance_heavy_prob);
    });
    b.instr("post_heavy", [this] {
      ++heavy_tasks_;
      node_.kernel().post(heavy_task_);
    });
    mcu::CodeId id = b.build(prog);
    node_.machine().register_handler(maintenance_line_, id);
  }
}

void OscilloscopeApp::start() {
  node_.timers().start_periodic(sample_line_, config_.sample_period);
  if (config_.with_maintenance) {
    // Random initial phase decorrelates maintenance from sampling.
    sim::Cycle phase = static_cast<sim::Cycle>(
        rng_.below(config_.maintenance_period));
    node_.timers().start_periodic(maintenance_line_,
                                  config_.maintenance_period,
                                  config_.maintenance_period + phase);
  }
}

}  // namespace sent::apps
