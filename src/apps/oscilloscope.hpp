// Case study I application: single-hop data collection (Oscilloscope).
//
// Reproduces the paper's Figure 2 verbatim in structure:
//
//   event void Read.readDone(error_t error, uint16_t data) {
//     packet->data[dataItem] = data;
//     dataItem++;
//     if (dataItem == 3) { dataItem = 0; post prepareAndSendPacket(); }
//   }
//
// A periodic timer (period D) requests an ADC conversion; the ADC
// data-ready handler collects readings; every third reading posts a task
// that sends the three readings to the sink in one packet.
//
// THE BUG: readDone keeps writing into the same packet buffer the posted
// task will send. If the task is delayed past the next ADC interrupt —
// e.g. a heavy maintenance task is queued ahead of it — the fourth reading
// overwrites data[0] before the packet leaves: data pollution. The fixed
// variant double-buffers (readDone commits the triple into a send buffer
// when posting), which is the canonical repair.
//
// The optional "maintenance" event procedure models the paper's "another
// heavy-weighted event procedure": a low-rate timer that occasionally
// posts a long-running task, lengthening the task queue.
#pragma once

#include <array>
#include <cstdint>

#include "hw/adc.hpp"
#include "hw/radio.hpp"
#include "os/node.hpp"
#include "proto/am.hpp"
#include "util/rng.hpp"

namespace sent::apps {

/// Corpus mutation hooks (DESIGN.md §16). Each reintroduces exactly one
/// taxonomy class of transient bug into the REPAIRED app (`fixed = true`),
/// marking ground truth at the manifestation point. `None` leaves the
/// built program bit-identical to the unmutated app.
enum class OscMutation : std::uint8_t {
  None = 0,
  /// Atomicity: the send task reads the live packet buffer (the legacy
  /// Figure-2 bug, selectable independently of `fixed`).
  SharedBuffer,
  /// Ordering: the double-buffer commit is deferred from the posting
  /// handler into the task body — correct only if the task runs before
  /// the next ADC interrupt.
  LateCommit,
  /// Shared-flag race: the handler trusts `send_pending_` as a busy guard
  /// and drops the fresh triple whenever the previous send task has not
  /// cleared it yet.
  PendingSkip,
};

struct OscilloscopeConfig {
  net::NodeId sink = 0;

  /// Sampling period D (the application-specific parameter swept in the
  /// paper's case study I: 20/40/60/80/100 ms).
  sim::Cycle sample_period = sim::cycles_from_millis(20);

  /// Heavy maintenance event procedure.
  bool with_maintenance = true;
  sim::Cycle maintenance_period = sim::cycles_from_millis(800);
  double maintenance_heavy_prob = 0.35;  ///< chance a fire posts heavy work
  std::uint32_t heavy_iterations = 16;
  std::uint32_t heavy_iteration_cost = 18000;  ///< cycles per iteration

  /// Repaired (double-buffered) variant.
  bool fixed = false;

  /// Corpus mutation injected on top of the selected variant. Mutations
  /// other than SharedBuffer assume `fixed = true` (they perturb the
  /// repaired data path).
  OscMutation mutation = OscMutation::None;
};

class OscilloscopeApp {
 public:
  /// Builds all code objects into `node`'s program and registers handlers.
  /// The ADC and radio devices must outlive the app.
  OscilloscopeApp(os::Node& node, hw::AdcDevice& adc, hw::RadioChip& chip,
                  OscilloscopeConfig config, util::Rng rng);

  OscilloscopeApp(const OscilloscopeApp&) = delete;
  OscilloscopeApp& operator=(const OscilloscopeApp&) = delete;

  /// Start the sample (and maintenance) timers.
  void start();

  // ---- ground truth / statistics ----------------------------------------
  std::uint64_t readings() const { return readings_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t sends_skipped_busy() const { return skipped_busy_; }
  std::uint64_t pollutions() const { return pollutions_; }
  std::uint64_t heavy_tasks() const { return heavy_tasks_; }
  std::uint64_t mutation_drops() const { return mutation_drops_; }

 private:
  os::Node& node_;
  hw::AdcDevice& adc_;
  hw::RadioChip& chip_;
  OscilloscopeConfig config_;
  util::Rng rng_;

  trace::IrqLine sample_line_ = 0;
  trace::IrqLine maintenance_line_ = 0;
  trace::TaskId send_task_ = 0;
  trace::TaskId heavy_task_ = 0;

  // --- application state (what the nesC module's variables would be) ---
  std::uint32_t data_item_ = 0;
  std::array<std::uint16_t, 3> packet_data_{};  ///< the shared buffer (bug)
  std::array<std::uint16_t, 3> send_buffer_{};  ///< fixed variant only
  bool send_pending_ = false;  ///< instrumentation: packet committed, unsent
  bool commit_done_ = true;    ///< LateCommit: task has committed the triple
  std::uint32_t heavy_remaining_ = 0;
  std::uint32_t discard_remaining_ = 0;  ///< PendingSkip drop-path loop
  std::uint16_t enc_tmp_ = 0;  ///< encoding-loop scratch register

  std::uint64_t readings_ = 0, packets_sent_ = 0, skipped_busy_ = 0,
                pollutions_ = 0, heavy_tasks_ = 0, mutation_drops_ = 0;

  void build_code();
};

}  // namespace sent::apps
