#include "apps/scenarios.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <optional>

#include "apps/sink.hpp"
#include "fault/injector.hpp"
#include "net/topology.hpp"
#include "util/assert.hpp"

namespace sent::apps {

namespace {

using PhaseClock = std::chrono::steady_clock;

double seconds_since(PhaseClock::time_point t0) {
  return std::chrono::duration<double>(PhaseClock::now() - t0).count();
}

/// The run's event queue: the arena's pooled one (scrubbed by checkout)
/// when amortizing, a fresh local otherwise. Either way the world starts
/// from the same logical blank state.
sim::EventQueue& select_queue(WorldArena* arena,
                              std::optional<sim::EventQueue>& local) {
  if (arena) return arena->checkout_queue();
  return local.emplace();
}

/// Recycled trace capacity for a node about to be built (empty without an
/// arena — identical recording behaviour either way).
trace::NodeTrace buffer(WorldArena* arena) {
  return arena ? arena->take_buffer() : trace::NodeTrace{};
}

/// Build the run's injector when the plan has runtime faults; a clean plan
/// yields nullopt and the run proceeds exactly as before fault injection
/// existed (no substream derived, nothing scheduled).
std::optional<fault::FaultInjector> make_injector(sim::EventQueue& queue,
                                                  const fault::FaultPlan& plan,
                                                  const util::Rng& run_rng,
                                                  double run_seconds) {
  if (!plan.any_runtime()) return std::nullopt;
  return std::optional<fault::FaultInjector>(
      std::in_place, queue, plan, run_rng.substream("faults"),
      sim::cycles_from_seconds(run_seconds));
}

/// Attach the per-node fault surfaces (radio, clock, interrupts).
void attach_node_faults(std::optional<fault::FaultInjector>& injector,
                        os::Node& node, hw::RadioChip& chip) {
  if (!injector) return;
  injector->attach_radio(chip);
  injector->attach_clock(node.id(), node.timers());
  injector->attach_interrupts(node.id(), node.machine(), node.timers());
}

}  // namespace

// ------------------------------------------------------------- case I

std::uint64_t Case1Result::total_pollutions() const {
  std::uint64_t n = 0;
  for (const auto& run : runs) n += run.pollutions;
  return n;
}

Case1Result run_case1(const Case1Config& config, WorldArena* arena) {
  SENT_REQUIRE(!config.sample_periods_ms.empty());
  SENT_REQUIRE(config.run_seconds > 0);
  Case1Result result;
  util::Rng master(config.seed);

  for (std::size_t r = 0; r < config.sample_periods_ms.size(); ++r) {
    double d_ms = config.sample_periods_ms[r];
    util::Rng run_rng = master.substream("case1-run" + std::to_string(r));

    const PhaseClock::time_point t0 = PhaseClock::now();
    std::optional<sim::EventQueue> local_queue;
    sim::EventQueue& queue = select_queue(arena, local_queue);
    if (config.event_budget) queue.set_watchdog_budget(config.event_budget);
    net::Channel channel(queue, run_rng.substream("channel"));
    auto injector =
        make_injector(queue, config.faults, run_rng, config.run_seconds);

    os::Node sink_node(0, queue, buffer(arena));
    hw::RadioChip sink_chip(queue, sink_node.machine(), channel, 0,
                            run_rng.substream("sink-chip"), config.radio);
    SinkApp sink(sink_node, sink_chip);

    os::Node sensor_node(1, queue, buffer(arena));
    hw::RadioChip sensor_chip(queue, sensor_node.machine(), channel, 1,
                              run_rng.substream("sensor-chip"),
                              config.radio);
    sensor_chip.set_signal_txdone(false);  // Oscilloscope is fire-and-forget
    hw::AdcDevice adc(queue, sensor_node.machine(),
                      run_rng.substream("adc"));
    hw::SensorFn signal =
        hw::make_temperature_sensor(run_rng.substream("sensor-signal"));
    if (injector)
      signal = injector->wrap_sensor(std::move(signal), "adc-1");
    adc.set_sensor(std::move(signal));

    OscilloscopeConfig osc = config.osc;
    osc.sink = 0;
    osc.sample_period = sim::cycles_from_millis(d_ms);
    osc.fixed = config.fixed;
    OscilloscopeApp app(sensor_node, adc, sensor_chip, osc,
                        run_rng.substream("osc-app"));
    app.start();
    attach_node_faults(injector, sink_node, sink_chip);
    attach_node_faults(injector, sensor_node, sensor_chip);
    const PhaseClock::time_point t1 = PhaseClock::now();
    result.setup_seconds += std::chrono::duration<double>(t1 - t0).count();

    queue.run_until(sim::cycles_from_seconds(config.run_seconds));
    result.simulate_seconds += seconds_since(t1);
    result.events_executed += queue.executed();

    Case1Run run;
    run.sample_period_ms = d_ms;
    run.sensor_trace = sensor_node.take_trace();
    run.readings = app.readings();
    run.packets_sent = app.packets_sent();
    run.pollutions = app.pollutions();
    run.heavy_tasks = app.heavy_tasks();
    run.sink_received = sink.received(proto::am::kOscilloscope);
    result.runs.push_back(std::move(run));
    // The sink's trace is never consumed; bank its capacity for the next
    // sub-run / seed.
    if (arena) arena->recycle(sink_node.take_trace());
  }
  return result;
}

// ------------------------------------------------------------- case II

Case2Result run_case2(const Case2Config& config, WorldArena* arena) {
  SENT_REQUIRE(config.run_seconds > 0);
  util::Rng master(config.seed);
  util::Rng rng = master.substream("case2");

  const PhaseClock::time_point t0 = PhaseClock::now();
  std::optional<sim::EventQueue> local_queue;
  sim::EventQueue& queue = select_queue(arena, local_queue);
  if (config.event_budget) queue.set_watchdog_budget(config.event_budget);
  net::Channel channel(queue, rng.substream("channel"));
  auto injector =
      make_injector(queue, config.faults, rng, config.run_seconds);
  if (config.gilbert_elliott) {
    channel.set_gilbert_elliott(*config.gilbert_elliott);
  } else if (config.loss_rate > 0.0) {
    channel.set_loss_rate(config.loss_rate);
  }

  os::Node sink_node(0, queue, buffer(arena));
  hw::RadioChip sink_chip(queue, sink_node.machine(), channel, 0,
                          rng.substream("chip0"), config.radio);
  SinkApp sink(sink_node, sink_chip);

  os::Node relay_node(1, queue, buffer(arena));
  hw::RadioChip relay_chip(queue, relay_node.machine(), channel, 1,
                           rng.substream("chip1"), config.radio);
  RelayConfig relay_config;
  relay_config.next_hop = 0;
  relay_config.fixed = config.fixed;
  relay_config.mutation = config.relay_mutation;
  relay_config.mailbox_iteration_cost = config.relay_mailbox_iteration_cost;
  RelayApp relay(relay_node, relay_chip, relay_config);

  os::Node source_node(2, queue, buffer(arena));
  hw::RadioChip source_chip(queue, source_node.machine(), channel, 2,
                            rng.substream("chip2"), config.source_radio);
  RandomSourceConfig src_config;
  src_config.dst = 1;
  src_config.mean_interval = sim::cycles_from_millis(config.mean_interval_ms);
  src_config.min_payload_bytes = config.min_payload_bytes;
  src_config.max_payload_bytes = config.max_payload_bytes;
  RandomSourceApp source(source_node, source_chip, src_config,
                         rng.substream("source"));

  if (config.lpl.enabled) {
    sink_chip.set_lpl(config.lpl);
    relay_chip.set_lpl(config.lpl);
    source_chip.set_lpl(config.lpl);
  }

  net::make_chain(channel, {0, 1, 2});
  source.start();
  attach_node_faults(injector, sink_node, sink_chip);
  attach_node_faults(injector, relay_node, relay_chip);
  attach_node_faults(injector, source_node, source_chip);
  const PhaseClock::time_point t1 = PhaseClock::now();
  queue.run_until(sim::cycles_from_seconds(config.run_seconds));

  Case2Result result;
  result.setup_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.simulate_seconds = seconds_since(t1);
  result.events_executed = queue.executed();
  result.relay_tx_airtime = relay_chip.tx_airtime();
  result.relay_trace = relay_node.take_trace();
  result.source_sent = source.sent();
  result.relay_received = relay.received();
  result.relay_forwarded = relay.forwarded();
  result.relay_dropped_busy = relay.dropped_busy();
  result.sink_received = sink.received(proto::am::kForward);
  // Only the relay trace leaves with the result; bank the other two.
  if (arena) {
    arena->recycle(sink_node.take_trace());
    arena->recycle(source_node.take_trace());
  }
  return result;
}

// ------------------------------------------------------------- case III

std::size_t Case3Result::hung_nodes() const {
  std::size_t n = 0;
  for (const auto& s : stats) n += s.hung;
  return n;
}

Case3Result run_case3(const Case3Config& config, WorldArena* arena) {
  SENT_REQUIRE(config.run_seconds > 0);
  const std::size_t n = config.rows * config.cols;
  SENT_REQUIRE(n >= 2);
  SENT_REQUIRE(config.num_sources >= 1 && config.num_sources < n);
  util::Rng master(config.seed);
  util::Rng rng = master.substream("case3");

  const PhaseClock::time_point t0 = PhaseClock::now();
  std::optional<sim::EventQueue> local_queue;
  sim::EventQueue& queue = select_queue(arena, local_queue);
  if (config.event_budget) queue.set_watchdog_budget(config.event_budget);
  net::Channel channel(queue, rng.substream("channel"));
  auto injector =
      make_injector(queue, config.faults, rng, config.run_seconds);

  // "We randomly select sensor nodes as sources" — any node except the
  // root (node 0).
  std::vector<net::NodeId> candidates;
  for (std::size_t i = 1; i < n; ++i)
    candidates.push_back(static_cast<net::NodeId>(i));
  rng.shuffle(candidates);
  std::vector<net::NodeId> sources(candidates.begin(),
                                   candidates.begin() +
                                       static_cast<long>(config.num_sources));
  std::sort(sources.begin(), sources.end());
  auto is_source = [&](net::NodeId id) {
    return std::find(sources.begin(), sources.end(), id) != sources.end();
  };

  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<std::unique_ptr<hw::RadioChip>> chips;
  std::vector<std::unique_ptr<CtpHeartbeatApp>> ctp_apps;
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<net::NodeId>(i);
    nodes.push_back(std::make_unique<os::Node>(id, queue, buffer(arena)));
    chips.push_back(std::make_unique<hw::RadioChip>(
        queue, nodes[i]->machine(), channel, id,
        rng.substream("chip" + std::to_string(i)), config.radio));
    CtpHeartbeatConfig app_config = config.app;
    app_config.is_root = (i == 0);
    app_config.is_source = is_source(id);
    app_config.fixed = config.fixed;
    ctp_apps.push_back(std::make_unique<CtpHeartbeatApp>(
        *nodes[i], *chips[i], app_config,
        rng.substream("app" + std::to_string(i))));
  }
  net::make_grid(channel, config.rows, config.cols);
  for (auto& app : ctp_apps) app->start();
  for (std::size_t i = 0; i < n; ++i)
    attach_node_faults(injector, *nodes[i], *chips[i]);

  const PhaseClock::time_point t1 = PhaseClock::now();
  queue.run_until(sim::cycles_from_seconds(config.run_seconds));

  Case3Result result;
  result.setup_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.simulate_seconds = seconds_since(t1);
  result.events_executed = queue.executed();
  result.sources = sources;
  result.report_line = ctp_apps[0]->report_line();
  for (std::size_t i = 0; i < n; ++i) {
    Case3NodeStats s;
    s.id = static_cast<net::NodeId>(i);
    s.is_source = is_source(s.id);
    s.hung = ctp_apps[i]->ctp().hung();
    s.send_fails = ctp_apps[i]->ctp().send_fail_events();
    s.reports = ctp_apps[i]->reports_attempted();
    s.heartbeats_sent = ctp_apps[i]->heartbeat().sent();
    result.stats.push_back(s);
    if (i == 0) result.delivered_to_root =
        ctp_apps[i]->ctp().delivered_to_root();
    result.traces.push_back(nodes[i]->take_trace());
  }
  return result;
}

// ------------------------------------------------------------- case IV

std::size_t Case4Result::corrupted_nodes() const {
  std::size_t n = 0;
  for (const auto& s : stats) n += s.corrupted;
  return n;
}

std::uint64_t Case4Result::total_torn() const {
  std::uint64_t n = 0;
  for (const auto& s : stats) n += s.torn_broadcasts;
  return n;
}

Case4Result run_case4(const Case4Config& config, WorldArena* arena) {
  SENT_REQUIRE(config.run_seconds > 0);
  const std::size_t n = config.rows * config.cols;
  SENT_REQUIRE(n >= 2);
  util::Rng master(config.seed);
  util::Rng rng = master.substream("case4");

  const PhaseClock::time_point t0 = PhaseClock::now();
  std::optional<sim::EventQueue> local_queue;
  sim::EventQueue& queue = select_queue(arena, local_queue);
  if (config.event_budget) queue.set_watchdog_budget(config.event_budget);
  net::Channel channel(queue, rng.substream("channel"));
  auto injector =
      make_injector(queue, config.faults, rng, config.run_seconds);

  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<std::unique_ptr<hw::RadioChip>> chips;
  std::vector<std::unique_ptr<DisseminationApp>> diss_apps;
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<net::NodeId>(i);
    nodes.push_back(std::make_unique<os::Node>(id, queue, buffer(arena)));
    chips.push_back(std::make_unique<hw::RadioChip>(
        queue, nodes[i]->machine(), channel, id,
        rng.substream("chip" + std::to_string(i)), config.radio));
    DisseminationConfig app_config = config.app;
    app_config.is_publisher = (i == 0);
    app_config.fixed = config.fixed;
    diss_apps.push_back(std::make_unique<DisseminationApp>(
        *nodes[i], *chips[i], app_config,
        rng.substream("app" + std::to_string(i))));
  }
  net::make_grid(channel, config.rows, config.cols);
  for (auto& app : diss_apps) app->start();
  for (std::size_t i = 0; i < n; ++i)
    attach_node_faults(injector, *nodes[i], *chips[i]);

  // Environment: the publisher stages a new value at random times; track
  // the authoritative version -> value map for ground truth.
  std::map<std::uint16_t, std::uint16_t> published;
  std::uint64_t injected = 0;
  util::Rng update_rng = rng.substream("updates");
  std::function<void()> inject = [&] {
    auto value = static_cast<std::uint16_t>(update_rng.below(0xFFFF));
    ++injected;
    diss_apps[0]->inject_update(value);
    published[static_cast<std::uint16_t>(injected)] = value;
    sim::Cycle delay = std::max<sim::Cycle>(
        static_cast<sim::Cycle>(update_rng.exponential(
            config.mean_update_interval_s *
            static_cast<double>(sim::kCyclesPerSecond))),
        sim::cycles_from_millis(400));
    if (queue.now() + delay <
        sim::cycles_from_seconds(config.run_seconds) -
            sim::cycles_from_seconds(2.0))
      queue.schedule_after(delay, inject);
  };
  queue.schedule_at(sim::cycles_from_millis(500), inject);

  // Environment probe: sample every node's (version, value) at 2 Hz and
  // accumulate time spent disagreeing with the published value.
  double corruption_node_seconds = 0.0;
  std::function<void()> probe = [&] {
    for (const auto& app : diss_apps) {
      std::uint16_t v = app->version();
      if (v == 0) continue;
      auto it = published.find(v);
      if (it == published.end() || it->second != app->value())
        corruption_node_seconds += 0.5;
    }
    queue.schedule_after(sim::kCyclesPerSecond / 2, probe);
  };
  queue.schedule_at(sim::kCyclesPerSecond / 2, probe);

  const PhaseClock::time_point t1 = PhaseClock::now();
  queue.run_until(sim::cycles_from_seconds(config.run_seconds));

  Case4Result result;
  result.setup_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.simulate_seconds = seconds_since(t1);
  result.events_executed = queue.executed();
  result.corruption_node_seconds = corruption_node_seconds;
  result.trickle_line = diss_apps[0]->trickle_line();
  result.published_version = static_cast<std::uint16_t>(injected);
  result.updates_injected = injected;
  for (std::size_t i = 0; i < n; ++i) {
    Case4NodeStats s;
    s.id = static_cast<net::NodeId>(i);
    s.version = diss_apps[i]->version();
    s.value = diss_apps[i]->value();
    auto it = published.find(s.version);
    s.corrupted = s.version != 0 &&
                  (it == published.end() || it->second != s.value);
    s.summaries_sent = diss_apps[i]->summaries_sent();
    s.adoptions = diss_apps[i]->adoptions();
    s.torn_broadcasts = diss_apps[i]->torn_broadcasts();
    result.stats.push_back(s);
    result.traces.push_back(nodes[i]->take_trace());
  }
  return result;
}

}  // namespace sent::apps
