// End-to-end simulation scenarios for the three case studies (§VI).
//
// Each run_caseN builds a fresh world (event queue, channel, nodes, devices,
// applications), runs it for the configured virtual duration, and returns
// the recorded node traces plus application-level ground truth. The
// Sentomist pipeline consumes the traces; benches consume the ground truth
// to score rankings.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/ctp_heartbeat.hpp"
#include "apps/dissemination.hpp"
#include "apps/forwarding.hpp"
#include "apps/oscilloscope.hpp"
#include "apps/world_arena.hpp"
#include "fault/plan.hpp"
#include "hw/radio_params.hpp"
#include "trace/recorder.hpp"

namespace sent::apps {

// Every run_caseN accepts an optional WorldArena (worker-local amortized
// state, DESIGN.md §15). With an arena the run borrows the pooled event
// queue (reset first) and recycled trace buffers instead of allocating
// fresh ones, and banks its trace capacity back when the caller recycles
// the result; without one (the default) behaviour is exactly the historic
// fresh-construction path. The two paths are bit-identical — the parity
// battery in tests/worker_pool_test.cpp holds them to it.

// Every case config carries the same two robustness knobs (DESIGN.md §9):
//
//   faults       — fault-injection plan realized against the run's world
//                  from the run seed's "faults" substream. The default
//                  (all-zero) plan attaches nothing and consumes no
//                  randomness, so clean runs are bit-identical to builds
//                  that predate fault injection.
//   event_budget — watchdog: maximum simulation events for the run, 0 =
//                  unlimited. A run that exceeds it throws
//                  sim::WatchdogTimeout (campaigns classify it TimedOut).

// ------------------------------------------------------------- case I

struct Case1Config {
  std::uint64_t seed = 1;
  /// The paper's five testing runs: D = 20, 40, 60, 80, 100 ms.
  std::vector<double> sample_periods_ms = {20, 40, 60, 80, 100};
  double run_seconds = 10.0;
  bool fixed = false;
  fault::FaultPlan faults;
  std::uint64_t event_budget = 0;
  OscilloscopeConfig osc;  ///< base config; sample_period set per run
  hw::RadioParams radio = [] {
    hw::RadioParams p;
    p.bits_per_second = 76800.0;  // CC1000 at its maximum rate
    return p;
  }();
};

struct Case1Run {
  double sample_period_ms = 0;
  trace::NodeTrace sensor_trace;
  std::uint64_t readings = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t pollutions = 0;
  std::uint64_t heavy_tasks = 0;
  std::uint64_t sink_received = 0;
};

struct Case1Result {
  std::vector<Case1Run> runs;
  std::uint64_t events_executed = 0;  ///< summed over all sample periods
  /// Wall-clock phase split (world construction vs event-loop drain),
  /// summed over sample periods. Diagnostic only — never part of any
  /// determinism comparison.
  double setup_seconds = 0.0;
  double simulate_seconds = 0.0;
  std::uint64_t total_pollutions() const;
};

Case1Result run_case1(const Case1Config& config, WorldArena* arena = nullptr);

// ------------------------------------------------------------- case II

struct Case2Config {
  std::uint64_t seed = 1;
  double run_seconds = 20.0;
  double mean_interval_ms = 100.0;
  bool fixed = false;
  fault::FaultPlan faults;
  std::uint64_t event_budget = 0;

  /// Payload size range for the source's packets. The relay checksums one
  /// byte per loop iteration before forwarding, so payload size directly
  /// sets the run's instruction density (perf benches crank it up).
  std::size_t min_payload_bytes = 4;
  std::size_t max_payload_bytes = 16;

  /// Channel impairments (default: clean). Gilbert-Elliott, when set,
  /// overrides the iid loss rate.
  double loss_rate = 0.0;
  std::optional<net::Channel::GilbertElliott> gilbert_elliott;

  /// Corpus mutation injected into the relay (DESIGN.md §16), plus its
  /// window knob. None keeps the legacy fixed/buggy selection.
  RelayMutation relay_mutation = RelayMutation::None;
  std::uint32_t relay_mailbox_iteration_cost = 900;

  /// Low-power listening on every mote (default: always-on radios).
  hw::LplParams lpl;
  hw::RadioParams radio = [] {
    hw::RadioParams p;
    p.bits_per_second = 250000.0;  // CC2420-class rate: short busy windows
    // Firmware bookkeeping hold after each exchange: the quiet-channel
    // window in which new arrivals hit the busy flag and get dropped.
    p.post_tx_hold = sim::cycles_from_millis(3);
    return p;
  }();

  /// The source mote runs leaner firmware (no post-exchange hold) so it can
  /// emit closely-spaced packets — the random arrival process the relay
  /// must survive.
  hw::RadioParams source_radio = [] {
    hw::RadioParams p;
    p.bits_per_second = 250000.0;
    return p;
  }();
};

struct Case2Result {
  trace::NodeTrace relay_trace;
  std::uint64_t source_sent = 0;
  std::uint64_t relay_received = 0;
  std::uint64_t relay_forwarded = 0;
  std::uint64_t relay_dropped_busy = 0;
  std::uint64_t sink_received = 0;
  std::uint64_t events_executed = 0;
  sim::Cycle relay_tx_airtime = 0;  ///< for energy accounting
  double setup_seconds = 0.0;     ///< wall clock; diagnostic only
  double simulate_seconds = 0.0;  ///< wall clock; diagnostic only
};

Case2Result run_case2(const Case2Config& config, WorldArena* arena = nullptr);

// ------------------------------------------------------------- case III

struct Case3Config {
  std::uint64_t seed = 1;
  double run_seconds = 15.0;
  std::size_t rows = 3, cols = 3;  ///< 9 nodes, root = node 0
  std::size_t num_sources = 4;
  bool fixed = false;
  fault::FaultPlan faults;
  std::uint64_t event_budget = 0;
  CtpHeartbeatConfig app;  ///< base; role flags set per node
  hw::RadioParams radio = [] {
    hw::RadioParams p;
    p.bits_per_second = 100000.0;
    return p;
  }();
};

struct Case3NodeStats {
  net::NodeId id = 0;
  bool is_source = false;
  bool hung = false;
  std::uint64_t send_fails = 0;
  std::uint64_t reports = 0;
  std::uint64_t heartbeats_sent = 0;
};

struct Case3Result {
  std::vector<trace::NodeTrace> traces;  ///< indexed by node id
  std::vector<net::NodeId> sources;
  trace::IrqLine report_line = 0;
  std::vector<Case3NodeStats> stats;  ///< indexed by node id
  std::uint64_t delivered_to_root = 0;
  std::uint64_t events_executed = 0;
  double setup_seconds = 0.0;     ///< wall clock; diagnostic only
  double simulate_seconds = 0.0;  ///< wall clock; diagnostic only
  std::size_t hung_nodes() const;
};

Case3Result run_case3(const Case3Config& config, WorldArena* arena = nullptr);

// ------------------------------------------------------------- case IV
// (extension: Trickle dissemination with the torn-update bug)

struct Case4Config {
  std::uint64_t seed = 1;
  double run_seconds = 60.0;
  std::size_t rows = 3, cols = 3;  ///< node 0 publishes
  double mean_update_interval_s = 3.0;
  bool fixed = false;
  fault::FaultPlan faults;
  std::uint64_t event_budget = 0;
  DisseminationConfig app = [] {
    DisseminationConfig c;
    c.flash_commit_iterations = 12;  // ~2.5 ms tear window
    return c;
  }();  ///< base; is_publisher set per node
  hw::RadioParams radio = [] {
    hw::RadioParams p;
    p.bits_per_second = 100000.0;
    return p;
  }();
};

struct Case4NodeStats {
  net::NodeId id = 0;
  std::uint16_t version = 0;
  std::uint16_t value = 0;
  bool corrupted = false;  ///< value != the published value for version
  std::uint64_t summaries_sent = 0;
  std::uint64_t adoptions = 0;
  std::uint64_t torn_broadcasts = 0;
};

struct Case4Result {
  std::vector<trace::NodeTrace> traces;  ///< indexed by node id
  trace::IrqLine trickle_line = 0;
  std::vector<Case4NodeStats> stats;     ///< indexed by node id
  std::uint16_t published_version = 0;
  std::uint64_t updates_injected = 0;
  std::uint64_t events_executed = 0;
  /// Integrated damage: node-seconds spent holding a value that disagrees
  /// with the published value for the node's own version (sampled at 2 Hz
  /// by the environment). A torn adoption corrupts a node until the NEXT
  /// version sweeps through, so the exposure accumulates even though the
  /// end-of-run snapshot usually looks clean.
  double corruption_node_seconds = 0.0;
  double setup_seconds = 0.0;     ///< wall clock; diagnostic only
  double simulate_seconds = 0.0;  ///< wall clock; diagnostic only
  std::size_t corrupted_nodes() const;  ///< at end of run
  std::uint64_t total_torn() const;
};

Case4Result run_case4(const Case4Config& config, WorldArena* arena = nullptr);

}  // namespace sent::apps
