#include "apps/sink.hpp"

namespace sent::apps {

SinkApp::SinkApp(os::Node& node, hw::RadioChip& chip)
    : node_(node), chip_(chip) {
  chip_.set_signal_txdone(false);  // the sink never transmits data frames
  mcu::CodeBuilder b("Sink.SpiHandler", /*is_task=*/false);
  b.label("top");
  b.ret_if("empty", [this] { return !chip_.has_event(); });
  b.instr("take", [this] { event_ = chip_.take_event(); });
  b.instr("count", [this] {
    if (event_.kind == hw::RadioChip::Event::Kind::RxDone) {
      ++by_type_[event_.packet.am_type];
      ++total_;
      packets_.push_back(event_.packet);
    }
  });
  b.jump("loop", "top");
  mcu::CodeId id = b.build(node_.program());
  node_.machine().register_handler(os::irq::kRadioSpi, id);
}

std::uint64_t SinkApp::received(std::uint8_t am_type) const {
  auto it = by_type_.find(am_type);
  return it == by_type_.end() ? 0 : it->second;
}

}  // namespace sent::apps
