// Data sink application: drains radio events and counts received payloads
// per active-message type. Used as node 0 in case studies I and II.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hw/radio.hpp"
#include "os/node.hpp"

namespace sent::apps {

class SinkApp {
 public:
  SinkApp(os::Node& node, hw::RadioChip& chip);

  SinkApp(const SinkApp&) = delete;
  SinkApp& operator=(const SinkApp&) = delete;

  std::uint64_t received(std::uint8_t am_type) const;
  std::uint64_t received_total() const { return total_; }

  /// All received packets, in arrival order (tests inspect payloads).
  const std::vector<net::Packet>& packets() const { return packets_; }

 private:
  os::Node& node_;
  hw::RadioChip& chip_;
  hw::RadioChip::Event event_{};
  std::map<std::uint8_t, std::uint64_t> by_type_;
  std::uint64_t total_ = 0;
  std::vector<net::Packet> packets_;
};

}  // namespace sent::apps
