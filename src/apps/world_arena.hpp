// Worker-local world arena: the amortized-state half of the campaign
// engine (DESIGN.md §15).
//
// A campaign worker owns one WorldArena for its whole stint. Each seeded
// run checks the pooled event queue out (which scrubs it back to the
// just-constructed state while keeping the slot slab and heap storage) and
// pulls recycled NodeTrace buffers for its nodes, so the allocation churn
// of world construction — the slab growth and the multi-megabyte
// instruction streams — is paid once per worker instead of once per run.
// Everything else (nodes, chips, apps, fault injectors) is rebuilt per
// seed: those constructions are cheap and rebuilding keeps pooled runs
// bit-identical to fresh ones by construction.
//
// Not thread-safe; one arena per worker, never shared.
#pragma once

#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "trace/recorder.hpp"

namespace sent::apps {

class WorldArena {
 public:
  WorldArena() = default;
  WorldArena(const WorldArena&) = delete;
  WorldArena& operator=(const WorldArena&) = delete;

  /// Reset the pooled event queue to a fresh logical state and hand it
  /// out. Call once per run, before building the world on it.
  sim::EventQueue& checkout_queue() {
    queue_.reset();
    return queue_;
  }

  /// A scrubbed trace buffer carrying recycled capacity from an earlier
  /// run (or a plain empty NodeTrace when none is banked — the two are
  /// behaviourally identical).
  trace::NodeTrace take_buffer() {
    if (spare_.empty()) return trace::NodeTrace{};
    trace::NodeTrace t = std::move(spare_.back());
    spare_.pop_back();
    return t;
  }

  /// Bank a finished trace's capacity for a later run. The content is
  /// scrubbed immediately so a banked buffer can never leak data between
  /// seeds. The bank is bounded: runs can recycle more buffers than they
  /// take (the chaos ladder's salvage-loaded trace is allocated by the
  /// loader, not the arena), and an unbounded bank would grow the
  /// worker's footprint by one instruction stream per seed across a
  /// 10k-run campaign. Overflow buffers are simply freed.
  void recycle(trace::NodeTrace&& t) {
    if (spare_.size() >= kMaxBanked) return;
    t.clear_keep_capacity();
    spare_.push_back(std::move(t));
  }

  /// Recycle every trace in `ts` (leaves ts itself intact but with
  /// scrubbed, moved-from elements — callers recycle as the last touch).
  void recycle_all(std::vector<trace::NodeTrace>& ts) {
    for (trace::NodeTrace& t : ts) recycle(std::move(t));
  }

  std::size_t banked_buffers() const { return spare_.size(); }

 private:
  /// Plenty for the largest world (case III's 9 nodes) plus the chaos
  /// ladder's per-source salvaged traces, while keeping a worker's
  /// steady-state footprint flat.
  static constexpr std::size_t kMaxBanked = 32;

  sim::EventQueue queue_;
  std::vector<trace::NodeTrace> spare_;
};

}  // namespace sent::apps
