#include "core/anatomizer.hpp"

#include <algorithm>
#include <map>

#include "core/stream_anatomizer.hpp"

namespace sent::core {

using trace::LifecycleItem;
using trace::LifecycleKind;

Anatomizer::Anatomizer(const trace::NodeTrace& trace) : trace_(trace) {
  const auto& seq = trace_.lifecycle;
  // Whole-sequence validation first, so grammar violations surface with the
  // same diagnostics regardless of where the replay would trip over them.
  validate_lifecycle(seq);

  StreamAnatomizer machine;
  for (const auto& item : seq) machine.push(item);
  machine.finish(trace_.run_end);
  intervals_ = machine.drain();
  std::sort(intervals_.begin(), intervals_.end(),
            [](const EventInterval& a, const EventInterval& b) {
              return a.start_index < b.start_index;
            });
}

EventInterval Anatomizer::identify_instance(std::size_t int_index) const {
  const auto& seq = trace_.lifecycle;
  SENT_REQUIRE(int_index < seq.size());
  SENT_REQUIRE(seq[int_index].kind == LifecycleKind::Int);
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), int_index,
      [](const EventInterval& i, std::size_t idx) {
        return i.start_index < idx;
      });
  SENT_ASSERT(it != intervals_.end() && it->start_index == int_index);
  EventInterval interval = *it;
  interval.seq_in_type = 0;  // per-call identification carries no ordering
  return interval;
}

std::vector<EventInterval> Anatomizer::intervals_for(
    trace::IrqLine line) const {
  std::vector<EventInterval> out;
  const auto& seq = trace_.lifecycle;
  for (const EventInterval& interval : intervals_) {
    if (seq[interval.start_index].arg != line) continue;
    out.push_back(interval);
    out.back().seq_in_type = out.size() - 1;
  }
  return out;
}

std::vector<EventInterval> Anatomizer::all_intervals() const {
  std::vector<EventInterval> out = intervals_;
  std::map<trace::IrqLine, std::size_t> counters;
  for (EventInterval& interval : out)
    interval.seq_in_type = counters[interval.irq]++;
  return out;
}

std::vector<trace::IrqLine> Anatomizer::event_types() const {
  std::vector<trace::IrqLine> lines;
  for (const auto& item : trace_.lifecycle) {
    if (item.kind == LifecycleKind::Int) {
      auto line = static_cast<trace::IrqLine>(item.arg);
      if (std::find(lines.begin(), lines.end(), line) == lines.end())
        lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace sent::core
