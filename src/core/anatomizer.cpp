#include "core/anatomizer.hpp"

#include <algorithm>
#include <map>

namespace sent::core {

using trace::LifecycleItem;
using trace::LifecycleKind;

Anatomizer::Anatomizer(const trace::NodeTrace& trace) : trace_(trace) {
  const auto& seq = trace_.lifecycle;
  validate_lifecycle(seq);

  // Criterion 1: pair the i-th postTask with the i-th runTask.
  std::vector<std::size_t> posts, runs;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].kind == LifecycleKind::PostTask) posts.push_back(i);
    if (seq[i].kind == LifecycleKind::RunTask) runs.push_back(i);
  }
  SENT_ASSERT_MSG(runs.size() <= posts.size(),
                  "more runTask than postTask items");
  run_of_post_.assign(posts.size(), npos);
  for (std::size_t k = 0; k < runs.size(); ++k) {
    run_of_post_[k] = runs[k];
    // Cross-check: the FIFO pairing must agree on the task id.
    SENT_ASSERT_MSG(seq[posts[k]].arg == seq[runs[k]].arg,
                    "Criterion-1 pairing mismatch: postTask #"
                        << k << " posts task " << seq[posts[k]].arg
                        << " but runTask #" << k << " runs task "
                        << seq[runs[k]].arg);
  }
  post_indices_ = std::move(posts);
}

std::size_t Anatomizer::run_index_for_post(std::size_t post_index) const {
  // Find which k-th post this lifecycle index is.
  auto it = std::lower_bound(post_indices_.begin(), post_indices_.end(),
                             post_index);
  SENT_ASSERT(it != post_indices_.end() && *it == post_index);
  return run_of_post_[static_cast<std::size_t>(it - post_indices_.begin())];
}

EventInterval Anatomizer::identify_instance(std::size_t int_index) const {
  const auto& seq = trace_.lifecycle;
  SENT_REQUIRE(int_index < seq.size());
  SENT_REQUIRE(seq[int_index].kind == LifecycleKind::Int);

  EventInterval interval;
  interval.irq = static_cast<trace::IrqLine>(seq[int_index].arg);
  interval.start_index = int_index;
  interval.start_cycle = seq[int_index].cycle;

  // Line 1 of Figure 4: S <- the int-reti string of this int(n) item.
  auto s = match_int_reti(seq, int_index);
  if (!s) {
    // Handler still open when the recording stopped.
    interval.truncated = true;
    interval.end_index = seq.empty() ? 0 : seq.size() - 1;
    interval.end_cycle = trace_.run_end;
    return interval;
  }

  // Lines 2-3: loc <- index of the last reti of S.
  std::size_t loc = s->end;

  // Lines 4-5: P <- the handler's own postTask items (Criterion 2).
  std::vector<std::size_t> p = top_level_posts(seq, *s);

  // Lines 6-22: breadth-first expansion over task generations.
  while (!p.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t post_idx : p) {
      std::size_t r = run_index_for_post(post_idx);  // Criterion 1
      if (r == npos) {
        // Task never ran before the trace ended.
        interval.truncated = true;
        continue;
      }
      ++interval.task_count;
      loc = r;
      // Criterion 3: the posts made by this task.
      std::vector<std::size_t> q = posts_of_task_run(seq, r);
      next.insert(next.end(), q.begin(), q.end());
    }
    p = std::move(next);
  }

  interval.end_index = loc;
  const LifecycleItem& last = seq[loc];
  if (last.kind == LifecycleKind::RunTask) {
    if (last.end_cycle == 0) {
      // The last task was still running when recording stopped.
      interval.truncated = true;
    } else {
      interval.end_cycle = last.end_cycle;
    }
  } else {
    SENT_ASSERT(last.kind == LifecycleKind::Reti);
    interval.end_cycle = last.cycle;
  }
  if (interval.truncated) {
    // An incomplete instance extends to the end of the recording.
    interval.end_index = seq.size() - 1;
    interval.end_cycle = trace_.run_end;
  }
  SENT_ASSERT(interval.end_cycle >= interval.start_cycle);
  return interval;
}

std::vector<EventInterval> Anatomizer::intervals_for(
    trace::IrqLine line) const {
  std::vector<EventInterval> out;
  const auto& seq = trace_.lifecycle;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].kind == LifecycleKind::Int && seq[i].arg == line) {
      EventInterval interval = identify_instance(i);
      interval.seq_in_type = out.size();
      out.push_back(interval);
    }
  }
  return out;
}

std::vector<EventInterval> Anatomizer::all_intervals() const {
  std::vector<EventInterval> out;
  std::map<trace::IrqLine, std::size_t> counters;
  const auto& seq = trace_.lifecycle;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].kind == LifecycleKind::Int) {
      EventInterval interval = identify_instance(i);
      interval.seq_in_type = counters[interval.irq]++;
      out.push_back(interval);
    }
  }
  return out;
}

std::vector<trace::IrqLine> Anatomizer::event_types() const {
  std::vector<trace::IrqLine> lines;
  for (const auto& item : trace_.lifecycle) {
    if (item.kind == LifecycleKind::Int) {
      auto line = static_cast<trace::IrqLine>(item.arg);
      if (std::find(lines.begin(), lines.end(), line) == lines.end())
        lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace sent::core
