// Event-handling interval identification (paper §V-A, Definition 2 and the
// Figure 4 algorithm).
//
// An event-handling interval is the lifetime of one event procedure
// instance: it starts at the entry of the instance's interrupt handler and
// ends when the instance's last task completes (or at the handler's exit if
// it posted no tasks). Instance membership is resolved from the lifecycle
// sequence alone using the paper's three criteria:
//
//   Criterion 1 — the task posted via the i-th postTask is executed via the
//                 i-th runTask (single FIFO queue);
//   Criterion 2 — the top-level postTasks of an int-reti string are the
//                 handler's own posts;
//   Criterion 3 — postTasks between a runTask and the next runTask (outside
//                 nested int-reti strings) are posted by that task.
//
// The Figure 4 algorithm is a breadth-first search over task generations:
// handler posts -> their runTasks -> the posts inside those runs -> ...
// Intervals may overlap (instances interleave); that is deliberate — the
// featurizer counts everything executed inside the wall-clock window.
//
// Since the streaming refactor, the batch Anatomizer is a thin REPLAY over
// the push-mode state machine (core/stream_anatomizer.hpp): the whole
// lifecycle sequence is pushed through a StreamAnatomizer at construction
// and the emitted intervals are cached sorted by start index. Batch and
// streaming results are therefore bit-identical by construction.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/int_reti.hpp"
#include "trace/recorder.hpp"

namespace sent::core {

struct EventInterval {
  trace::IrqLine irq = 0;

  std::size_t start_index = 0;  ///< lifecycle index of the opening int(n)
  std::size_t end_index = 0;    ///< lifecycle index of the last item
                                ///< (matching reti, or last task's runTask)

  sim::Cycle start_cycle = 0;
  sim::Cycle end_cycle = 0;

  std::size_t task_count = 0;  ///< tasks belonging to this instance
  std::size_t seq_in_type = 0; ///< chronological index among same-type
                               ///< instances (the paper's `s` in [r, s])

  /// The trace ended before the instance completed; end_* reflect the end
  /// of the recording.
  bool truncated = false;

  sim::Cycle duration() const { return end_cycle - start_cycle; }
};

class Anatomizer {
 public:
  /// Validates the sequence, then replays it through the streaming state
  /// machine and caches every interval (sorted by start index). Throws
  /// (MalformedTrace / AssertionError) on concurrency-model violations.
  explicit Anatomizer(const trace::NodeTrace& trace);

  /// All event-handling intervals whose event type is interrupt line
  /// `line`, in chronological order of their int(n) items.
  std::vector<EventInterval> intervals_for(trace::IrqLine line) const;

  /// Intervals of every event type (chronological by start).
  std::vector<EventInterval> all_intervals() const;

  /// Interrupt lines present in the trace, ascending.
  std::vector<trace::IrqLine> event_types() const;

  /// Figure 4 for a single instance: identify the instance opening at
  /// lifecycle index `int_index`.
  EventInterval identify_instance(std::size_t int_index) const;

 private:
  const trace::NodeTrace& trace_;
  /// Every interval of the trace, sorted by start_index (one per Int item).
  std::vector<EventInterval> intervals_;
};

}  // namespace sent::core
