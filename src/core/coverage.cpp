#include "core/coverage.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace sent::core {

bool InterleavingCoverage::covered(trace::IrqLine outer,
                                   trace::IrqLine inner) const {
  return pairs.count({outer, inner}) > 0;
}

std::uint64_t InterleavingCoverage::count(trace::IrqLine outer,
                                          trace::IrqLine inner) const {
  auto it = pairs.find({outer, inner});
  return it == pairs.end() ? 0 : it->second;
}

double InterleavingCoverage::ratio() const {
  if (event_types.empty()) return 0.0;
  double possible = static_cast<double>(event_types.size()) *
                    static_cast<double>(event_types.size());
  return static_cast<double>(pairs.size()) / possible;
}

void InterleavingCoverage::merge(const InterleavingCoverage& other) {
  for (const auto& [pair, count] : other.pairs) pairs[pair] += count;
  for (trace::IrqLine line : other.event_types) {
    if (std::find(event_types.begin(), event_types.end(), line) ==
        event_types.end())
      event_types.push_back(line);
  }
  std::sort(event_types.begin(), event_types.end());
}

std::string InterleavingCoverage::render() const {
  util::Table table({"outer interval type", "overlapped by", "count"});
  for (const auto& [pair, count] : pairs) {
    std::string inner = std::to_string(int(pair.inner));
    if (pair.inner == pair.outer) inner += " (self)";
    table.add_row({"int(" + std::to_string(int(pair.outer)) + ")",
                   "int(" + inner + ")", util::cell(count)});
  }
  std::ostringstream os;
  os << table.render();
  os << "coverage ratio: " << ratio() << " (" << pairs.size() << " of "
     << event_types.size() * event_types.size() << " ordered pairs)\n";
  return os.str();
}

InterleavingCoverage measure_interleaving(const trace::NodeTrace& trace) {
  Anatomizer anatomizer(trace);
  InterleavingCoverage cov;
  cov.event_types = anatomizer.event_types();

  // Index every int() item by cycle for window queries.
  struct IntItem {
    sim::Cycle cycle;
    trace::IrqLine line;
    std::size_t index;
  };
  std::vector<IntItem> ints;
  for (std::size_t i = 0; i < trace.lifecycle.size(); ++i) {
    const auto& item = trace.lifecycle[i];
    if (item.kind == trace::LifecycleKind::Int)
      ints.push_back({item.cycle, static_cast<trace::IrqLine>(item.arg), i});
  }

  for (const auto& interval : anatomizer.all_intervals()) {
    auto lo = std::lower_bound(ints.begin(), ints.end(),
                               interval.start_cycle,
                               [](const IntItem& it, sim::Cycle c) {
                                 return it.cycle < c;
                               });
    for (auto it = lo;
         it != ints.end() && it->cycle <= interval.end_cycle; ++it) {
      if (it->index == interval.start_index) continue;  // the opener
      ++cov.pairs[{interval.irq, it->line}];
    }
  }
  return cov;
}

}  // namespace sent::core
