// Inter-context interleaving coverage (after Lai, Cheung & Chan's
// inter-context test adequacy criteria for nesC applications — the
// paper's reference [20]).
//
// A transient bug needs a particular interleaving to trigger, so a useful
// adequacy measure for a randomized test run is WHICH interleavings it
// exercised: for every event-handling interval of type A, which other
// event types B fired inside A's window (an "A overlapped-by B" context
// pair), and whether A was overlapped by another instance of its own type
// (self-interleaving — the shape behind case study I's data race).
//
// The ext_coverage bench shows the practical link: runs whose coverage
// includes the (ADC, ADC) self-pair are exactly the runs where the
// Oscilloscope pollution can trigger.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/anatomizer.hpp"

namespace sent::core {

struct ContextPair {
  trace::IrqLine outer = 0;  ///< interval's own event type
  trace::IrqLine inner = 0;  ///< event type firing inside its window
  auto operator<=>(const ContextPair&) const = default;
};

struct InterleavingCoverage {
  /// Observed (outer, inner) pairs with occurrence counts.
  std::map<ContextPair, std::uint64_t> pairs;
  /// Event types present in the trace.
  std::vector<trace::IrqLine> event_types;

  bool covered(trace::IrqLine outer, trace::IrqLine inner) const;
  std::uint64_t count(trace::IrqLine outer, trace::IrqLine inner) const;

  /// Observed pairs / all possible ordered pairs over the trace's event
  /// types (including self-pairs). In [0, 1].
  double ratio() const;

  /// Merge another run's observations (multi-run campaigns).
  void merge(const InterleavingCoverage& other);

  /// Aligned table of observed pairs.
  std::string render() const;
};

/// Measure the interleaving coverage of one trace: for every interval (of
/// every event type), record which event types have an int() item inside
/// the interval's wall-clock window (excluding the interval's own opening
/// item).
InterleavingCoverage measure_interleaving(const trace::NodeTrace& trace);

}  // namespace sent::core
