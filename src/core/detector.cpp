#include "core/detector.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sent::core {

std::vector<RankedSample> rank_ascending(const std::vector<double>& scores) {
  std::vector<RankedSample> ranked(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    ranked[i] = {i, scores[i]};
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedSample& a, const RankedSample& b) {
                     return a.score < b.score;
                   });
  return ranked;
}

void normalize_scores(std::vector<double>& scores) {
  double max_score = 0.0;
  for (double s : scores) max_score = std::max(max_score, s);
  if (max_score <= 0.0) return;
  for (double& s : scores) s /= max_score;
}

}  // namespace sent::core
