// Outlier-detector plug-in interface and score ranking (paper §V-C).
//
// Sentomist treats the detector as a plug-in: "one-class SVM is not the
// sole option ... Sentomist can actually plug in these outlier detection
// algorithms conveniently." Implementations live in src/ml.
//
// Score convention (the paper's): the score is a signed distance to the
// normal-region boundary — positive on the normal side, negative on the
// outlier side. LOWER SCORES ARE MORE SUSPICIOUS, so the ascending ranking
// is the manual-inspection priority order.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace sent::core {

class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  virtual std::string name() const = 0;

  /// Score every row (lower = more suspicious). The matrix must be
  /// non-empty with a positive column count.
  virtual std::vector<double> score(const ml::Matrix& rows) = 0;

  /// Convenience adapter for row-vector callers: copies into a flat
  /// Matrix and dispatches to the virtual overload. Implementations that
  /// declare their own score() should re-export it with
  /// `using core::OutlierDetector::score;`.
  std::vector<double> score(const std::vector<std::vector<double>>& rows) {
    return score(ml::Matrix::from_rows(rows));
  }
};

struct RankedSample {
  std::size_t index;  ///< row index in the feature matrix
  double score;
};

/// Ascending by score; ties broken by original index (stable).
std::vector<RankedSample> rank_ascending(const std::vector<double>& scores);

/// The paper's Figure-5 normalization (footnote 5): scale so the largest
/// positive score is exactly 1. No-op when no score is positive.
void normalize_scores(std::vector<double>& scores);

}  // namespace sent::core
