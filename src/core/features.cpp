#include "core/features.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace sent::core {

namespace {

// Iterate the instruction executions falling inside [start, end] and call
// `fn(instr_id)` for each. The instruction stream is chronological, so a
// binary search bounds the scan.
template <typename Fn>
void for_instrs_in_window(const trace::NodeTrace& trace,
                          const EventInterval& interval, Fn&& fn) {
  const auto& instrs = trace.instrs;
  auto lo = std::lower_bound(
      instrs.begin(), instrs.end(), interval.start_cycle,
      [](const trace::InstrExec& e, sim::Cycle c) { return e.cycle < c; });
  for (auto it = lo; it != instrs.end() && it->cycle <= interval.end_cycle;
       ++it) {
    fn(it->instr);
  }
}

}  // namespace

FeatureMatrix instruction_counters(
    const trace::NodeTrace& trace, std::span<const EventInterval> intervals) {
  SENT_REQUIRE_MSG(!trace.instr_table.empty(),
                   "trace has no instruction table");
  FeatureMatrix m;
  m.names.reserve(trace.instr_table.size());
  for (const auto& meta : trace.instr_table)
    m.names.push_back(meta.code_object + "/" + meta.name);

  // One flat allocation for the whole matrix; rows are zero-filled and
  // incremented in place (no per-interval scratch row).
  m.values = ml::Matrix(intervals.size(), trace.instr_table.size());
  for (std::size_t r = 0; r < intervals.size(); ++r) {
    std::span<double> row = m.values.row(r);
    for_instrs_in_window(trace, intervals[r], [&](trace::InstrId id) {
      SENT_ASSERT(id < row.size());
      row[id] += 1.0;
    });
  }
  return m;
}

FeatureMatrix coarse_features(const trace::NodeTrace& trace,
                              std::span<const EventInterval> intervals) {
  FeatureMatrix m;
  m.names = {"duration_cycles", "instr_executed", "task_count",
             "posts_in_window", "ints_in_window"};
  m.values = ml::Matrix(intervals.size(), m.names.size());
  for (std::size_t r = 0; r < intervals.size(); ++r) {
    const auto& interval = intervals[r];
    double instr_executed = 0;
    for_instrs_in_window(trace, interval,
                         [&](trace::InstrId) { instr_executed += 1.0; });
    double posts = 0, ints = 0;
    for (std::size_t i = interval.start_index;
         i <= interval.end_index && i < trace.lifecycle.size(); ++i) {
      const auto& item = trace.lifecycle[i];
      posts += item.kind == trace::LifecycleKind::PostTask;
      ints += item.kind == trace::LifecycleKind::Int;
    }
    std::span<double> row = m.values.row(r);
    row[0] = static_cast<double>(interval.duration());
    row[1] = instr_executed;
    row[2] = static_cast<double>(interval.task_count);
    row[3] = posts;
    row[4] = ints;
  }
  return m;
}

FeatureMatrix code_object_counters(
    const trace::NodeTrace& trace, std::span<const EventInterval> intervals) {
  SENT_REQUIRE_MSG(!trace.instr_table.empty(),
                   "trace has no instruction table");
  // Column per distinct code object, in order of first appearance.
  std::vector<std::string> objects;
  std::unordered_map<std::string, std::size_t> column;
  column.reserve(trace.instr_table.size());
  std::vector<std::size_t> instr_to_column(trace.instr_table.size());
  for (std::size_t i = 0; i < trace.instr_table.size(); ++i) {
    const std::string& name = trace.instr_table[i].code_object;
    auto [it, inserted] = column.try_emplace(name, objects.size());
    if (inserted) objects.push_back(name);
    instr_to_column[i] = it->second;
  }

  FeatureMatrix m;
  m.names = objects;
  m.values = ml::Matrix(intervals.size(), objects.size());
  for (std::size_t r = 0; r < intervals.size(); ++r) {
    std::span<double> row = m.values.row(r);
    for_instrs_in_window(trace, intervals[r], [&](trace::InstrId id) {
      row[instr_to_column[id]] += 1.0;
    });
  }
  return m;
}

void append_rows(FeatureMatrix& base, const FeatureMatrix& other) {
  if (base.names.empty() && base.empty()) {
    base = other;
    return;
  }
  SENT_REQUIRE_MSG(base.names == other.names,
                   "FeatureMatrix column layouts differ");
  base.values.append_rows(other.values);
}

}  // namespace sent::core
