#include "core/features.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace sent::core {

namespace {

// Iterate the instruction executions falling inside [start, end] and call
// `fn(instr_id)` for each. The instruction stream is chronological, so a
// binary search bounds the scan.
template <typename Fn>
void for_instrs_in_window(std::span<const trace::InstrExec> instrs,
                          const EventInterval& interval, Fn&& fn) {
  auto lo = std::lower_bound(
      instrs.begin(), instrs.end(), interval.start_cycle,
      [](const trace::InstrExec& e, sim::Cycle c) { return e.cycle < c; });
  for (auto it = lo; it != instrs.end() && it->cycle <= interval.end_cycle;
       ++it) {
    fn(it->instr);
  }
}

}  // namespace

std::vector<std::string> instruction_counter_names(
    const std::vector<trace::InstrMeta>& table) {
  std::vector<std::string> names;
  names.reserve(table.size());
  for (const auto& meta : table)
    names.push_back(meta.code_object + "/" + meta.name);
  return names;
}

void instruction_counter_row(std::span<const trace::InstrExec> instrs,
                             const EventInterval& interval,
                             std::span<double> row) {
  for_instrs_in_window(instrs, interval, [&](trace::InstrId id) {
    SENT_ASSERT(id < row.size());
    row[id] += 1.0;
  });
}

const std::vector<std::string>& coarse_feature_names() {
  static const std::vector<std::string> names = {
      "duration_cycles", "instr_executed", "task_count", "posts_in_window",
      "ints_in_window"};
  return names;
}

void coarse_row(std::span<const trace::InstrExec> instrs,
                std::span<const trace::LifecycleItem> items,
                std::size_t items_base, const EventInterval& interval,
                std::span<double> row) {
  SENT_ASSERT(interval.start_index >= items_base);
  double instr_executed = 0;
  for_instrs_in_window(instrs, interval,
                       [&](trace::InstrId) { instr_executed += 1.0; });
  double posts = 0, ints = 0;
  for (std::size_t i = interval.start_index;
       i <= interval.end_index && i - items_base < items.size(); ++i) {
    const auto& item = items[i - items_base];
    posts += item.kind == trace::LifecycleKind::PostTask;
    ints += item.kind == trace::LifecycleKind::Int;
  }
  row[0] = static_cast<double>(interval.duration());
  row[1] = instr_executed;
  row[2] = static_cast<double>(interval.task_count);
  row[3] = posts;
  row[4] = ints;
}

CodeObjectColumns CodeObjectColumns::build(
    const std::vector<trace::InstrMeta>& table) {
  CodeObjectColumns columns;
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(table.size());
  columns.instr_to_column.resize(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::string& name = table[i].code_object;
    auto [it, inserted] = index.try_emplace(name, columns.names.size());
    if (inserted) columns.names.push_back(name);
    columns.instr_to_column[i] = it->second;
  }
  return columns;
}

void code_object_row(std::span<const trace::InstrExec> instrs,
                     const CodeObjectColumns& columns,
                     const EventInterval& interval, std::span<double> row) {
  for_instrs_in_window(instrs, interval, [&](trace::InstrId id) {
    SENT_ASSERT(id < columns.instr_to_column.size());
    row[columns.instr_to_column[id]] += 1.0;
  });
}

FeatureMatrix instruction_counters(
    const trace::NodeTrace& trace, std::span<const EventInterval> intervals) {
  SENT_REQUIRE_MSG(!trace.instr_table.empty(),
                   "trace has no instruction table");
  FeatureMatrix m;
  m.names = instruction_counter_names(trace.instr_table);

  // One flat allocation for the whole matrix; rows are zero-filled and
  // incremented in place (no per-interval scratch row).
  m.values = ml::Matrix(intervals.size(), trace.instr_table.size());
  for (std::size_t r = 0; r < intervals.size(); ++r)
    instruction_counter_row(trace.instrs, intervals[r], m.values.row(r));
  return m;
}

FeatureMatrix coarse_features(const trace::NodeTrace& trace,
                              std::span<const EventInterval> intervals) {
  FeatureMatrix m;
  m.names = coarse_feature_names();
  m.values = ml::Matrix(intervals.size(), m.names.size());
  for (std::size_t r = 0; r < intervals.size(); ++r)
    coarse_row(trace.instrs, trace.lifecycle, 0, intervals[r],
               m.values.row(r));
  return m;
}

FeatureMatrix code_object_counters(
    const trace::NodeTrace& trace, std::span<const EventInterval> intervals) {
  SENT_REQUIRE_MSG(!trace.instr_table.empty(),
                   "trace has no instruction table");
  CodeObjectColumns columns = CodeObjectColumns::build(trace.instr_table);
  FeatureMatrix m;
  m.names = columns.names;
  m.values = ml::Matrix(intervals.size(), m.names.size());
  for (std::size_t r = 0; r < intervals.size(); ++r)
    code_object_row(trace.instrs, columns, intervals[r], m.values.row(r));
  return m;
}

void append_rows(FeatureMatrix& base, const FeatureMatrix& other) {
  if (base.names.empty() && base.empty()) {
    base = other;
    return;
  }
  SENT_REQUIRE_MSG(base.names == other.names,
                   "FeatureMatrix column layouts differ");
  base.values.append_rows(other.values);
}

}  // namespace sent::core
