// Interval featurization (paper §V-B).
//
// The primary abstraction is the INSTRUCTION COUNTER (Definition 4): a
// vector of N elements, N = total static instructions in the node program,
// whose i-th element is the number of times instruction i executed during
// the interval's wall-clock window. Counting over the window — including
// instructions contributed by *other* instances that interleave into it —
// is what makes buggy interleavings visible.
//
// Two cheaper abstractions are provided for the feature-ablation bench:
// coarse scalar features and per-code-object (function-level) counters.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/anatomizer.hpp"
#include "ml/matrix.hpp"
#include "trace/recorder.hpp"

namespace sent::core {

struct FeatureMatrix {
  std::vector<std::string> names;  ///< one per column
  ml::Matrix values;               ///< one row per interval (flat, row-major)

  std::size_t dim() const { return names.size(); }
  std::size_t size() const { return values.rows(); }
  bool empty() const { return values.empty(); }
  std::span<const double> row(std::size_t i) const { return values.row(i); }
};

/// Definition 4: one instruction-counter row per interval. Column i
/// corresponds to static instruction i of the trace's program.
FeatureMatrix instruction_counters(const trace::NodeTrace& trace,
                                   std::span<const EventInterval> intervals);

/// Ablation: scalar summary features (duration, executed instructions,
/// tasks, posts, preempting interrupts within the window).
FeatureMatrix coarse_features(const trace::NodeTrace& trace,
                              std::span<const EventInterval> intervals);

/// Ablation: execution counts aggregated per code object — roughly the
/// function-level granularity of Dustminer-style logging.
FeatureMatrix code_object_counters(const trace::NodeTrace& trace,
                                   std::span<const EventInterval> intervals);

/// Append `other`'s rows to `base` (column layouts must match). Used to
/// pool intervals from several nodes running the same program image.
void append_rows(FeatureMatrix& base, const FeatureMatrix& other);

// ---- per-interval row fills -----------------------------------------------
//
// The batch builders above and the streaming featurizer (src/stream) share
// these single-interval fills, so a row computed incrementally from a
// stream's retained buffers is bit-identical to the corresponding batch
// row by construction. `instrs` may be any chronologically sorted span
// that covers the interval's window; `row` must be zero-filled and sized
// to the abstraction's column count.

/// Column names for instruction_counters ("code_object/name" per entry).
std::vector<std::string> instruction_counter_names(
    const std::vector<trace::InstrMeta>& table);

/// Definition 4 row: per-static-instruction execution counts inside the
/// interval's wall-clock window.
void instruction_counter_row(std::span<const trace::InstrExec> instrs,
                             const EventInterval& interval,
                             std::span<double> row);

/// Column names for coarse_features.
const std::vector<std::string>& coarse_feature_names();

/// Coarse scalar row. `items` is a window of the lifecycle sequence whose
/// first element has absolute index `items_base`; it must cover the
/// interval (items_base <= interval.start_index).
void coarse_row(std::span<const trace::InstrExec> instrs,
                std::span<const trace::LifecycleItem> items,
                std::size_t items_base, const EventInterval& interval,
                std::span<double> row);

/// Static instruction -> code-object column mapping (columns in order of
/// first appearance in the table), shared by code_object_counters and the
/// streaming featurizer.
struct CodeObjectColumns {
  std::vector<std::string> names;
  std::vector<std::size_t> instr_to_column;

  static CodeObjectColumns build(const std::vector<trace::InstrMeta>& table);
};

/// Per-code-object execution-count row.
void code_object_row(std::span<const trace::InstrExec> instrs,
                     const CodeObjectColumns& columns,
                     const EventInterval& interval, std::span<double> row);

}  // namespace sent::core
