// Interval featurization (paper §V-B).
//
// The primary abstraction is the INSTRUCTION COUNTER (Definition 4): a
// vector of N elements, N = total static instructions in the node program,
// whose i-th element is the number of times instruction i executed during
// the interval's wall-clock window. Counting over the window — including
// instructions contributed by *other* instances that interleave into it —
// is what makes buggy interleavings visible.
//
// Two cheaper abstractions are provided for the feature-ablation bench:
// coarse scalar features and per-code-object (function-level) counters.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/anatomizer.hpp"
#include "ml/matrix.hpp"
#include "trace/recorder.hpp"

namespace sent::core {

struct FeatureMatrix {
  std::vector<std::string> names;  ///< one per column
  ml::Matrix values;               ///< one row per interval (flat, row-major)

  std::size_t dim() const { return names.size(); }
  std::size_t size() const { return values.rows(); }
  bool empty() const { return values.empty(); }
  std::span<const double> row(std::size_t i) const { return values.row(i); }
};

/// Definition 4: one instruction-counter row per interval. Column i
/// corresponds to static instruction i of the trace's program.
FeatureMatrix instruction_counters(const trace::NodeTrace& trace,
                                   std::span<const EventInterval> intervals);

/// Ablation: scalar summary features (duration, executed instructions,
/// tasks, posts, preempting interrupts within the window).
FeatureMatrix coarse_features(const trace::NodeTrace& trace,
                              std::span<const EventInterval> intervals);

/// Ablation: execution counts aggregated per code object — roughly the
/// function-level granularity of Dustminer-style logging.
FeatureMatrix code_object_counters(const trace::NodeTrace& trace,
                                   std::span<const EventInterval> intervals);

/// Append `other`'s rows to `base` (column layouts must match). Used to
/// pool intervals from several nodes running the same program image.
void append_rows(FeatureMatrix& base, const FeatureMatrix& other);

}  // namespace sent::core
