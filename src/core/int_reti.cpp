#include "core/int_reti.hpp"

#include <sstream>

namespace sent::core {

using trace::LifecycleItem;
using trace::LifecycleKind;

namespace {
[[noreturn]] void malformed(const char* what, std::size_t index) {
  std::ostringstream os;
  os << "malformed lifecycle sequence: " << what << " at item " << index;
  throw MalformedTrace(os.str());
}
}  // namespace

std::optional<IntRetiString> match_int_reti(
    std::span<const LifecycleItem> seq, std::size_t start) {
  SENT_REQUIRE(start < seq.size());
  SENT_REQUIRE_MSG(seq[start].kind == LifecycleKind::Int,
                   "match_int_reti must start at an int(n) item");
  // Pushdown recognition: the stack alphabet is just open-int markers, so
  // a depth counter suffices.
  std::size_t depth = 0;
  for (std::size_t i = start; i < seq.size(); ++i) {
    switch (seq[i].kind) {
      case LifecycleKind::Int:
        ++depth;
        break;
      case LifecycleKind::Reti:
        if (depth == 0) malformed("reti with no open handler", i);
        --depth;
        if (depth == 0) return IntRetiString{start, i};
        break;
      case LifecycleKind::RunTask:
        // Rule 2: tasks never run while a handler is active.
        malformed("runTask inside an int-reti string", i);
      case LifecycleKind::PostTask:
        break;
    }
  }
  return std::nullopt;  // truncated: handler still open at end of trace
}

std::vector<std::size_t> top_level_posts(
    std::span<const LifecycleItem> seq, const IntRetiString& s) {
  SENT_REQUIRE(s.start < s.end && s.end < seq.size());
  std::vector<std::size_t> posts;
  std::size_t depth = 0;
  for (std::size_t i = s.start; i <= s.end; ++i) {
    switch (seq[i].kind) {
      case LifecycleKind::Int:
        ++depth;
        break;
      case LifecycleKind::Reti:
        SENT_ASSERT(depth > 0);
        --depth;
        break;
      case LifecycleKind::PostTask:
        if (depth == 1) posts.push_back(i);  // directly inside the outer
        break;
      case LifecycleKind::RunTask:
        malformed("runTask inside an int-reti string", i);
    }
  }
  SENT_ASSERT(depth == 0);
  return posts;
}

std::vector<std::size_t> posts_of_task_run(
    std::span<const LifecycleItem> seq, std::size_t from) {
  SENT_REQUIRE(from < seq.size());
  SENT_REQUIRE_MSG(seq[from].kind == LifecycleKind::RunTask,
                   "posts_of_task_run must start at a runTask item");
  std::vector<std::size_t> posts;
  std::size_t depth = 0;
  for (std::size_t i = from + 1; i < seq.size(); ++i) {
    switch (seq[i].kind) {
      case LifecycleKind::Int:
        ++depth;
        break;
      case LifecycleKind::Reti:
        if (depth == 0) malformed("reti with no open handler", i);
        --depth;
        break;
      case LifecycleKind::PostTask:
        if (depth == 0) posts.push_back(i);
        break;
      case LifecycleKind::RunTask:
        if (depth == 0) return posts;  // next task starts: region over
        malformed("runTask inside an int-reti string", i);
    }
  }
  return posts;  // trace ended inside the region
}

std::size_t validate_lifecycle(std::span<const LifecycleItem> seq) {
  std::size_t depth = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    switch (seq[i].kind) {
      case LifecycleKind::Int:
        ++depth;
        break;
      case LifecycleKind::Reti:
        if (depth == 0) malformed("reti with no open handler", i);
        --depth;
        break;
      case LifecycleKind::RunTask:
        if (depth > 0) malformed("runTask inside an int-reti string", i);
        break;
      case LifecycleKind::PostTask:
        break;
    }
  }
  return depth;
}

}  // namespace sent::core
