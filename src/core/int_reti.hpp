// int-reti string recognition (paper §V-A, Definition 3).
//
// An int-reti string is the lifecycle subsequence collected during one
// interrupt handler run: it starts with int(n), ends with the matching
// reti, may contain postTask items and nested int-reti strings (handler
// preemption), and must NOT contain runTask items (a handler cannot be
// preempted by a task). Formally, the grammar G:
//
//     S -> int(n) R reti
//     R -> P | P S R
//     P -> postTask P | epsilon
//
// G is context-free and recognized by a pushdown automaton; since int/reti
// nest, no proper prefix of an int-reti string is itself in the grammar, so
// a left-to-right scan with a depth counter finds the unique matching reti.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "trace/lifecycle.hpp"
#include "util/assert.hpp"

namespace sent::core {

/// Thrown when a lifecycle sequence violates the concurrency model (e.g. a
/// runTask inside a handler, or a reti with no open handler). Indicates a
/// corrupt trace, not a user error.
class MalformedTrace : public util::AssertionError {
 public:
  using util::AssertionError::AssertionError;
};

struct IntRetiString {
  std::size_t start;  ///< index of the opening int(n) item
  std::size_t end;    ///< index of the matching reti item
};

/// Match the int-reti string opening at `start` (which must be an Int
/// item). Returns nullopt when the trace ends before the handler exits
/// (truncated recording). Throws MalformedTrace on grammar violations.
std::optional<IntRetiString> match_int_reti(
    std::span<const trace::LifecycleItem> seq, std::size_t start);

/// Criterion 2: the postTask items of an int-reti string that are NOT
/// inside nested int-reti substrings — i.e. the tasks posted by the
/// string's own interrupt handler. Returns their indices in order.
std::vector<std::size_t> top_level_posts(
    std::span<const trace::LifecycleItem> seq, const IntRetiString& s);

/// Criterion 3 support: postTask indices strictly between `from`
/// (exclusive) and the next RunTask item (or the end of the sequence),
/// excluding those inside int-reti substrings — i.e. the tasks posted by
/// the task started at `from` (which must be a RunTask item).
std::vector<std::size_t> posts_of_task_run(
    std::span<const trace::LifecycleItem> seq, std::size_t from);

/// Whole-sequence validation: every reti closes an int, every int is
/// eventually closed (unless the trace is truncated), no runTask occurs
/// inside a handler. Returns the number of unclosed handlers at the end.
std::size_t validate_lifecycle(std::span<const trace::LifecycleItem> seq);

}  // namespace sent::core
