#include "core/localizer.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/detector.hpp"
#include "util/assert.hpp"

namespace sent::core {

std::vector<bool> lowest_k(const std::vector<double>& scores,
                           std::size_t k) {
  SENT_REQUIRE(k >= 1);
  SENT_REQUIRE(k < scores.size());
  auto ranked = rank_ascending(scores);
  std::vector<bool> flags(scores.size(), false);
  for (std::size_t pos = 0; pos < k; ++pos)
    flags[ranked[pos].index] = true;
  return flags;
}

Localization localize(const FeatureMatrix& matrix,
                      const std::vector<bool>& suspicious) {
  SENT_REQUIRE(matrix.size() == suspicious.size());
  std::size_t n_suspicious = 0;
  for (bool b : suspicious) n_suspicious += b;
  SENT_REQUIRE_MSG(n_suspicious >= 1 && n_suspicious < matrix.size(),
                   "need at least one suspicious and one normal sample");

  const std::size_t d = matrix.dim();
  const auto n_normal =
      static_cast<double>(matrix.size() - n_suspicious);

  // Per-column means of the two groups and variance of the normal group.
  std::vector<double> mean_s(d, 0.0), mean_n(d, 0.0), var_n(d, 0.0);
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    auto& target = suspicious[r] ? mean_s : mean_n;
    std::span<const double> row = matrix.row(r);
    for (std::size_t j = 0; j < d; ++j) target[j] += row[j];
  }
  for (std::size_t j = 0; j < d; ++j) {
    mean_s[j] /= static_cast<double>(n_suspicious);
    mean_n[j] /= n_normal;
  }
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    if (suspicious[r]) continue;
    std::span<const double> row = matrix.row(r);
    for (std::size_t j = 0; j < d; ++j) {
      double delta = row[j] - mean_n[j];
      var_n[j] += delta * delta;
    }
  }

  Localization out;
  out.instructions.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    double sd = std::sqrt(var_n[j] / std::max(n_normal - 1.0, 1.0));
    // Floor the spread so constant-in-normal instructions that light up in
    // suspicious intervals get large but finite scores.
    sd = std::max(sd, 0.1);
    InstructionSuspicion s;
    s.instr = j;
    s.name = j < matrix.names.size() ? matrix.names[j] : "";
    s.suspicious_mean = mean_s[j];
    s.normal_mean = mean_n[j];
    s.score = std::abs(mean_s[j] - mean_n[j]) / sd;
    out.instructions.push_back(std::move(s));
  }
  std::stable_sort(out.instructions.begin(), out.instructions.end(),
                   [](const auto& a, const auto& b) {
                     return a.score > b.score;
                   });

  // Aggregate to code objects ("object/mnemonic" naming).
  std::map<std::string, double> by_object;
  for (const auto& instr : out.instructions) {
    std::string object = instr.name.substr(0, instr.name.find('/'));
    auto [it, inserted] = by_object.try_emplace(object, instr.score);
    if (!inserted) it->second = std::max(it->second, instr.score);
  }
  for (const auto& [object, score] : by_object)
    out.code_objects.push_back({object, score});
  std::stable_sort(out.code_objects.begin(), out.code_objects.end(),
                   [](const auto& a, const auto& b) {
                     return a.score > b.score;
                   });
  return out;
}

}  // namespace sent::core
