// Symptom-to-code localization (the paper's §VII future work: "extending
// Sentomist for achieving bug localization, i.e., locating bugs in source
// code level, by adopting the symptom-mining approach to correlate bug
// symptoms with source codes").
//
// Given the feature matrix (instruction counters) and the detector's
// ranking, the localizer contrasts the suspicious intervals against the
// normal ones per static instruction: instructions whose execution counts
// differ most (standardized mean difference, i.e. Cohen's d against the
// normal population's spread) are the code the symptom lives in. Scores
// aggregate to code objects, giving a "inspect these functions first"
// list to go with the "inspect these intervals first" ranking.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/features.hpp"

namespace sent::core {

struct InstructionSuspicion {
  std::size_t instr = 0;     ///< column / static instruction id
  std::string name;          ///< "codeObject/mnemonic"
  double score = 0.0;        ///< |standardized mean difference|, >= 0
  double suspicious_mean = 0.0;
  double normal_mean = 0.0;
};

struct CodeObjectSuspicion {
  std::string code_object;
  double score = 0.0;  ///< max suspicion over the object's instructions
};

struct Localization {
  /// Per-instruction suspicion, descending by score.
  std::vector<InstructionSuspicion> instructions;
  /// Per-code-object suspicion, descending by score.
  std::vector<CodeObjectSuspicion> code_objects;
};

/// Contrast the rows flagged `suspicious[i] == true` against the rest.
/// `matrix` must be the instruction-counter matrix (names formatted
/// "object/mnemonic"); at least one row on each side is required.
Localization localize(const FeatureMatrix& matrix,
                      const std::vector<bool>& suspicious);

/// Convenience: flag the k lowest-scored rows as suspicious.
std::vector<bool> lowest_k(const std::vector<double>& scores, std::size_t k);

}  // namespace sent::core
