#include "core/stream_anatomizer.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sent::core {

using trace::LifecycleItem;
using trace::LifecycleKind;

void StreamAnatomizer::push(const LifecycleItem& item) {
  SENT_REQUIRE_MSG(!finished_, "push() after finish()");
  SENT_REQUIRE_MSG(!poisoned_, "push() on a poisoned machine");
  const std::size_t index = index_;
  switch (item.kind) {
    case LifecycleKind::Int: on_int(item, index); break;
    case LifecycleKind::PostTask: on_post(item); break;
    case LifecycleKind::RunTask: on_run(item, index); break;
    case LifecycleKind::Reti: on_reti(item, index); break;
  }
  ++index_;
}

void StreamAnatomizer::on_int(const LifecycleItem& item, std::size_t index) {
  ++depth_;
  std::uint32_t idx = acquire_slot();
  Instance& inst = slab_[idx];
  inst.interval = EventInterval{};
  inst.interval.irq = static_cast<trace::IrqLine>(item.arg);
  inst.interval.start_index = index;
  inst.interval.start_cycle = item.cycle;
  inst.interval.seq_in_type = seq_in_type_[item.arg]++;
  inst.open_tasks = 0;
  inst.handler_open = true;
  inst.live = true;
  inst.end_index_candidate = 0;
  inst.end_cycle_candidate = 0;
  handler_stack_.push_back(idx);
}

void StreamAnatomizer::on_post(const LifecycleItem& item) {
  // Criterion 2 inside a handler, Criterion 3 inside a run region; a
  // depth-0 post before any runTask belongs to no instance.
  std::uint32_t owner =
      depth_ > 0 ? handler_stack_.back() : region_owner_;
  fifo_.emplace_back(owner, item.arg);
  if (owner != kNone) ++slab_[owner].open_tasks;
}

void StreamAnatomizer::on_run(const LifecycleItem& item, std::size_t index) {
  if (depth_ > 0) {
    poisoned_ = true;
    throw MalformedTrace("runTask inside an int-reti string at item " +
                         std::to_string(index));
  }
  // This runTask closes the previous run region before opening its own.
  if (region_owner_ != kNone) {
    std::uint32_t prev = region_owner_;
    region_owner_ = kNone;
    close_region_for(prev);
  }
  if (fifo_.empty()) {
    poisoned_ = true;
    throw MalformedTrace("more runTask than postTask items");
  }
  auto [owner, task_id] = fifo_.front();
  fifo_.pop_front();
  if (task_id != item.arg) {
    poisoned_ = true;
    SENT_ASSERT_MSG(false, "Criterion-1 pairing mismatch: postTask #"
                               << run_count_ << " posts task " << task_id
                               << " but runTask #" << run_count_
                               << " runs task " << item.arg);
  }
  ++run_count_;
  if (owner != kNone) {
    Instance& inst = slab_[owner];
    --inst.open_tasks;
    ++inst.interval.task_count;
    inst.end_index_candidate = index;
    inst.end_cycle_candidate = item.end_cycle;
    region_owner_ = owner;
  } else {
    region_owner_ = kNone;
  }
}

void StreamAnatomizer::on_reti(const LifecycleItem& item, std::size_t index) {
  if (depth_ == 0) {
    poisoned_ = true;
    throw MalformedTrace("reti with no open handler at item " +
                         std::to_string(index));
  }
  --depth_;
  std::uint32_t idx = handler_stack_.back();
  handler_stack_.pop_back();
  Instance& inst = slab_[idx];
  inst.handler_open = false;
  // A handler that posted nothing ends at its own reti (Figure 4 with an
  // empty P: loc stays at the string's end). Posted tasks cannot have run
  // yet — runTask items are illegal inside handlers — so open_tasks == 0
  // here means the instance is complete.
  if (inst.open_tasks == 0) emit(idx, index, item.cycle, false);
}

void StreamAnatomizer::close_region_for(std::uint32_t idx) {
  Instance& inst = slab_[idx];
  if (inst.handler_open || inst.open_tasks > 0) return;
  if (inst.end_cycle_candidate == 0) {
    // The instance's last task was still running when recording stopped;
    // the interval extends to the end of the recording (finish() stamps
    // the final end_index / end_cycle).
    inst.interval.truncated = true;
    return;
  }
  emit(idx, inst.end_index_candidate, inst.end_cycle_candidate, false);
}

void StreamAnatomizer::finish(sim::Cycle run_end) {
  SENT_REQUIRE_MSG(!finished_, "finish() called twice");
  finished_ = true;
  // Close the trailing run region exactly as a next runTask would have:
  // instances whose last task completed are emitted complete, not
  // truncated, matching the batch BFS (its loc is that task's item).
  if (!poisoned_ && region_owner_ != kNone) {
    std::uint32_t prev = region_owner_;
    region_owner_ = kNone;
    close_region_for(prev);
  }
  // Everything still live — open handlers, instances with unrun posts, and
  // instances whose last task never completed — is truncated: the batch
  // path extends all of these to the last item and run_end.
  const std::size_t last_index = index_ == 0 ? 0 : index_ - 1;
  std::vector<std::uint32_t> remaining;
  for (std::uint32_t idx = 0; idx < slab_.size(); ++idx)
    if (slab_[idx].live) remaining.push_back(idx);
  std::sort(remaining.begin(), remaining.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return slab_[a].interval.start_index <
                     slab_[b].interval.start_index;
            });
  for (std::uint32_t idx : remaining) emit(idx, last_index, run_end, true);
  handler_stack_.clear();
  fifo_.clear();
}

void StreamAnatomizer::emit(std::uint32_t idx, std::size_t end_index,
                            sim::Cycle end_cycle, bool truncated) {
  Instance& inst = slab_[idx];
  inst.interval.end_index = end_index;
  inst.interval.end_cycle = end_cycle;
  inst.interval.truncated = truncated;
  if (inst.interval.end_cycle < inst.interval.start_cycle) {
    poisoned_ = true;
    throw MalformedTrace("interval ends before it starts (start cycle " +
                         std::to_string(inst.interval.start_cycle) +
                         ", end cycle " +
                         std::to_string(inst.interval.end_cycle) + ")");
  }
  ready_.push_back(inst.interval);
  release(idx);
}

std::vector<EventInterval> StreamAnatomizer::drain() {
  std::vector<EventInterval> out = std::move(ready_);
  ready_.clear();
  return out;
}

std::uint32_t StreamAnatomizer::acquire_slot() {
  ++live_count_;
  if (!free_slots_.empty()) {
    std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void StreamAnatomizer::release(std::uint32_t idx) {
  slab_[idx].live = false;
  free_slots_.push_back(idx);
  --live_count_;
}

std::optional<std::size_t> StreamAnatomizer::earliest_open_start_index()
    const {
  std::optional<std::size_t> best;
  for (const Instance& inst : slab_)
    if (inst.live && (!best || inst.interval.start_index < *best))
      best = inst.interval.start_index;
  return best;
}

std::optional<sim::Cycle> StreamAnatomizer::earliest_open_start_cycle()
    const {
  std::optional<sim::Cycle> best;
  for (const Instance& inst : slab_)
    if (inst.live && (!best || inst.interval.start_cycle < *best))
      best = inst.interval.start_cycle;
  return best;
}

std::size_t StreamAnatomizer::state_bytes() const {
  return slab_.capacity() * sizeof(Instance) +
         fifo_.size() * sizeof(std::pair<std::uint32_t, std::uint32_t>) +
         ready_.capacity() * sizeof(EventInterval) +
         handler_stack_.capacity() * sizeof(std::uint32_t);
}

}  // namespace sent::core
