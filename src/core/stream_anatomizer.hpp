// Push-mode event-interval anatomizer: the Criterion-1/2/3 logic of the
// batch Anatomizer (paper §V-A, Figure 4) recast as an incremental state
// machine.
//
// Items are pushed one at a time; an interval is emitted the moment its
// boundary is determined — when the handler's reti arrives (no tasks), or
// when the depth-0 region of the instance's last task closes (the next
// runTask begins, or the trace ends). The batch Anatomizer is a thin replay
// over this machine, so the two produce bit-identical intervals by
// construction; the streaming fleet-ingest service (src/stream) drives the
// same machine frame by frame.
//
// The Figure-4 breadth-first search becomes bookkeeping on the fly:
//
//   Criterion 1 — a FIFO of posted-task tickets: the i-th runTask pops the
//                 i-th ticket (task ids are cross-checked);
//   Criterion 2 — a stack of open handlers: a postTask at depth > 0 is
//                 owned by the innermost open instance;
//   Criterion 3 — a depth-0 postTask is owned by whichever instance's task
//                 opened the current run region (the span from a runTask to
//                 the next runTask).
//
// Memory is bounded by the number of IN-FLIGHT instances and unconsumed
// task tickets, not by the trace length: completed instances leave the slab
// as soon as they are emitted. That is what makes long-running streaming
// ingest possible at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/anatomizer.hpp"
#include "core/int_reti.hpp"
#include "trace/lifecycle.hpp"

namespace sent::core {

class StreamAnatomizer {
 public:
  /// Consume the next lifecycle item. Throws MalformedTrace when the item
  /// violates the concurrency model (reti with no open handler, runTask
  /// inside a handler, runTask with no matching postTask, Criterion-1 task
  /// id mismatch). After a throw the machine is poisoned: further push()
  /// calls are rejected, but intervals already emitted stay valid and
  /// finish() still flushes the in-flight state (salvaged prefix).
  void push(const trace::LifecycleItem& item);

  /// End of input: close the current run region normally, then flush every
  /// remaining in-flight instance as truncated, ending at the last pushed
  /// item and `run_end` — exactly the batch semantics for a recording that
  /// stopped mid-instance.
  void finish(sim::Cycle run_end);

  /// Move out the intervals emitted so far (in emission order, which is
  /// boundary-determination order, not start order).
  std::vector<EventInterval> drain();

  /// Emitted-but-not-drained interval count (cheap readiness probe).
  std::size_t ready_count() const { return ready_.size(); }

  bool finished() const { return finished_; }
  bool poisoned() const { return poisoned_; }

  /// Items successfully consumed so far (== the index the next item gets).
  std::size_t items_seen() const { return index_; }

  std::size_t open_instances() const { return live_count_; }
  std::size_t outstanding_tasks() const { return fifo_.size(); }

  /// Smallest start index / cycle over in-flight instances; nullopt when
  /// none are open. Streaming consumers use these as retention floors for
  /// their instruction/lifecycle buffers.
  std::optional<std::size_t> earliest_open_start_index() const;
  std::optional<sim::Cycle> earliest_open_start_cycle() const;

  /// Rough retained-state footprint (slab + ticket FIFO + ready queue), the
  /// machine's contribution to a stream's memory proxy.
  std::size_t state_bytes() const;

 private:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  struct Instance {
    EventInterval interval;  ///< start_*/irq/seq_in_type set at open
    std::size_t open_tasks = 0;  ///< posted but not yet run
    bool handler_open = true;
    bool live = false;
    /// Candidate end from the instance's most recent runTask (Figure 4's
    /// `loc`); end_cycle_candidate == 0 means that task never completed.
    std::size_t end_index_candidate = 0;
    sim::Cycle end_cycle_candidate = 0;
  };

  void on_int(const trace::LifecycleItem& item, std::size_t index);
  void on_post(const trace::LifecycleItem& item);
  void on_run(const trace::LifecycleItem& item, std::size_t index);
  void on_reti(const trace::LifecycleItem& item, std::size_t index);

  /// Called when instance `idx`'s current run region closes: emit it if it
  /// is complete, or mark it truncated (last task never completed) so
  /// finish() extends it to the end of the recording.
  void close_region_for(std::uint32_t idx);
  void emit(std::uint32_t idx, std::size_t end_index, sim::Cycle end_cycle,
            bool truncated);
  std::uint32_t acquire_slot();
  void release(std::uint32_t idx);

  std::vector<Instance> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;

  std::vector<std::uint32_t> handler_stack_;  ///< innermost open instances
  /// Criterion-1 ticket FIFO: (owning instance or kNone, task id).
  std::deque<std::pair<std::uint32_t, std::uint32_t>> fifo_;
  /// Instance owning the current depth-0 run region (kNone outside any
  /// owned region).
  std::uint32_t region_owner_ = kNone;

  /// Per-event-type chronological counters (the paper's `s` in [r, s]),
  /// keyed by the full int(n) argument.
  std::unordered_map<std::uint32_t, std::size_t> seq_in_type_;

  std::vector<EventInterval> ready_;
  std::size_t index_ = 0;
  std::size_t depth_ = 0;
  std::size_t run_count_ = 0;  ///< runTask items consumed (Criterion-1 k)
  bool finished_ = false;
  bool poisoned_ = false;
};

}  // namespace sent::core
