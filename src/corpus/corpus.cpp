#include "corpus/corpus.hpp"

#include <cstdio>

#include "core/anatomizer.hpp"
#include "os/irq.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace sent::corpus {

const char* to_string(BugClass c) {
  switch (c) {
    case BugClass::Atomicity: return "atomicity";
    case BugClass::Ordering: return "ordering";
    case BugClass::SharedFlag: return "shared-flag";
  }
  return "?";
}

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

VariantSpec case1(std::string id, BugClass cls, apps::OscMutation m,
                  std::string marker, double period_ms,
                  std::uint32_t heavy_iters, std::string description) {
  VariantSpec v;
  v.id = std::move(id);
  v.bug_class = cls;
  v.case_tag = "I";
  v.marker = std::move(marker);
  v.description = std::move(description);
  v.run_seconds = 10.0;
  v.osc_mutation = m;
  v.sample_period_ms = period_ms;
  v.heavy_iterations = heavy_iters;
  return v;
}

VariantSpec case2(std::string id, BugClass cls, apps::RelayMutation m,
                  std::string marker, double mean_ms, double hold_ms,
                  std::uint32_t mailbox_cost, std::string description) {
  VariantSpec v;
  v.id = std::move(id);
  v.bug_class = cls;
  v.case_tag = "II";
  v.marker = std::move(marker);
  v.description = std::move(description);
  v.run_seconds = 20.0;
  v.relay_mutation = m;
  v.mean_interval_ms = mean_ms;
  v.post_tx_hold_ms = hold_ms;
  v.mailbox_iteration_cost = mailbox_cost;
  return v;
}

VariantSpec case3(std::string id, std::size_t padding,
                  std::string description) {
  VariantSpec v;
  v.id = std::move(id);
  v.bug_class = BugClass::SharedFlag;
  v.case_tag = "III";
  v.marker = "ctp-hang";
  v.description = std::move(description);
  v.run_seconds = 15.0;
  v.ctp_mutation = apps::CtpMutation::StuckSending;
  v.heartbeat_padding = padding;
  return v;
}

VariantSpec case4(std::string id, std::uint32_t tear_iters,
                  std::string description) {
  VariantSpec v;
  v.id = std::move(id);
  v.bug_class = BugClass::Atomicity;
  v.case_tag = "IV";
  v.marker = "torn-summary";
  v.description = std::move(description);
  v.run_seconds = 40.0;
  v.diss_mutation = apps::DissMutation::TornWrite;
  v.flash_commit_iterations = tear_iters;
  return v;
}

std::vector<VariantSpec> build_corpus() {
  std::vector<VariantSpec> c;
  // --- case I: oscilloscope ----------------------------------------------
  c.push_back(case1("osc-shared-buffer-d20", BugClass::Atomicity,
                    apps::OscMutation::SharedBuffer, "data-pollution", 20, 16,
                    "send task reads the live packet buffer (Fig. 2)"));
  c.push_back(case1("osc-shared-buffer-d40", BugClass::Atomicity,
                    apps::OscMutation::SharedBuffer, "data-pollution", 40, 24,
                    "shared packet buffer at D = 40 ms, heavier task"));
  c.back().run_seconds = 20.0;  // rarer interleaving at D = 40
  c.push_back(case1("osc-late-commit-d20", BugClass::Ordering,
                    apps::OscMutation::LateCommit, "late-commit-pollution",
                    20, 16,
                    "double-buffer commit deferred into the send task"));
  c.push_back(case1("osc-late-commit-d40", BugClass::Ordering,
                    apps::OscMutation::LateCommit, "late-commit-pollution",
                    40, 24, "deferred commit at D = 40 ms, heavier task"));
  c.back().run_seconds = 20.0;
  c.push_back(case1("osc-pending-skip-d20", BugClass::SharedFlag,
                    apps::OscMutation::PendingSkip, "pending-skip-drop", 20,
                    48,
                    "handler drops the triple while send_pending_ is set"));
  // --- case II: forwarding relay -----------------------------------------
  c.push_back(case2("fwd-busy-drop-i100", BugClass::SharedFlag,
                    apps::RelayMutation::BusyDrop, "busy-drop", 100, 3, 900,
                    "active drop on the radio busy flag (paper case II)"));
  c.push_back(case2("fwd-busy-drop-i60", BugClass::SharedFlag,
                    apps::RelayMutation::BusyDrop, "busy-drop", 60, 3, 900,
                    "busy-flag drop under heavier arrival pressure"));
  c.push_back(case2("fwd-torn-mailbox", BugClass::Atomicity,
                    apps::RelayMutation::TornMailbox, "torn-mailbox", 100, 3,
                    2500,
                    "handler overwrites the staging slot mid-checksum"));
  c.push_back(case2("fwd-pop-first", BugClass::Ordering,
                    apps::RelayMutation::PopFirst, "pop-first-loss", 100, 3,
                    900, "queue pop ordered before send confirmation"));
  // --- case IV: dissemination --------------------------------------------
  c.push_back(case4("dis-torn-write-w12", 12,
                    "version written before the committed value (~2.5 ms)"));
  c.push_back(case4("dis-torn-write-w24", 24,
                    "torn write with a doubled flash-commit window"));
  // --- case III: CTP + heartbeat -----------------------------------------
  c.push_back(case3("ctp-stuck-p96", 96,
                    "send-FAIL leaves `sending` set forever (paper case "
                    "III)"));
  c.push_back(case3("ctp-stuck-p160", 160,
                    "stuck `sending` under longer heartbeat airtime"));
  return c;
}

}  // namespace

const std::vector<VariantSpec>& builtin_corpus() {
  static const std::vector<VariantSpec> corpus = build_corpus();
  return corpus;
}

const VariantSpec* find_variant(const std::string& id) {
  for (const VariantSpec& v : builtin_corpus())
    if (v.id == id) return &v;
  return nullptr;
}

std::string corpus_ids() {
  std::string out;
  for (const VariantSpec& v : builtin_corpus()) {
    if (!out.empty()) out += ", ";
    out += v.id;
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> VariantSpec::params() const {
  std::vector<std::pair<std::string, std::string>> p;
  p.emplace_back("run_seconds", fmt_double(run_seconds));
  if (case_tag == "I") {
    p.emplace_back("sample_period_ms", fmt_double(sample_period_ms));
    p.emplace_back("heavy_iterations", std::to_string(heavy_iterations));
  } else if (case_tag == "II") {
    p.emplace_back("mean_interval_ms", fmt_double(mean_interval_ms));
    p.emplace_back("post_tx_hold_ms", fmt_double(post_tx_hold_ms));
    if (relay_mutation == apps::RelayMutation::TornMailbox)
      p.emplace_back("mailbox_iteration_cost",
                     std::to_string(mailbox_iteration_cost));
  } else if (case_tag == "III") {
    p.emplace_back("heartbeat_padding", std::to_string(heartbeat_padding));
  } else if (case_tag == "IV") {
    p.emplace_back("flash_commit_iterations",
                   std::to_string(flash_commit_iterations));
  }
  return p;
}

// ------------------------------------------------------------------ labels

GroundTruth derive_ground_truth(
    const std::vector<pipeline::TaggedTrace>& traces, trace::IrqLine line,
    const std::string& kind) {
  GroundTruth truth;
  truth.marker = kind;
  for (const pipeline::TaggedTrace& tagged : traces) {
    const trace::NodeTrace& trace = *tagged.trace;
    for (const trace::BugMarker& bug : trace.bugs)
      if (bug.kind == kind) ++truth.marker_events;
    core::Anatomizer anatomizer(trace);
    for (const core::EventInterval& interval : anatomizer.intervals_for(line)) {
      std::size_t hits = 0;
      for (const trace::BugMarker& bug : trace.bugs) {
        if (bug.kind != kind) continue;
        if (bug.cycle >= interval.start_cycle &&
            bug.cycle <= interval.end_cycle)
          ++hits;
      }
      if (hits == 0) continue;
      IntervalLabel label;
      label.node_id = trace.node_id;
      label.run = tagged.run;
      label.seq_in_type = interval.seq_in_type;
      label.start_cycle = interval.start_cycle;
      label.end_cycle = interval.end_cycle;
      label.marker_hits = hits;
      truth.labels.push_back(label);
    }
  }
  return truth;
}

std::string ground_truth_text(const GroundTruth& truth) {
  std::string out = "marker=" + truth.marker +
                    " events=" + std::to_string(truth.marker_events) +
                    " labels=" + std::to_string(truth.labels.size()) + "\n";
  for (const IntervalLabel& l : truth.labels) {
    out += "node=" + std::to_string(l.node_id) +
           " run=" + std::to_string(l.run) +
           " seq=" + std::to_string(l.seq_in_type) +
           " start=" + std::to_string(l.start_cycle) +
           " end=" + std::to_string(l.end_cycle) +
           " hits=" + std::to_string(l.marker_hits) + "\n";
  }
  return out;
}

std::uint64_t ground_truth_digest(const GroundTruth& truth) {
  return util::fnv1a64(ground_truth_text(truth));
}

// -------------------------------------------------------------- generation

std::vector<pipeline::TaggedTrace> VariantRun::tagged() const {
  std::vector<pipeline::TaggedTrace> out;
  out.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i)
    out.push_back({&traces[i], runs[i]});
  return out;
}

VariantRun run_variant(const VariantSpec& spec, std::uint64_t seed,
                       double run_scale, apps::WorldArena* arena,
                       bool baseline) {
  SENT_REQUIRE_MSG(run_scale > 0.0, "run_scale must be positive");
  VariantRun out;
  const double seconds = spec.run_seconds * run_scale;
  if (spec.case_tag == "I") {
    apps::Case1Config c;
    c.seed = seed;
    c.sample_periods_ms = {spec.sample_period_ms};
    c.run_seconds = seconds;
    c.fixed = true;
    c.osc.heavy_iterations = spec.heavy_iterations;
    c.osc.mutation =
        baseline ? apps::OscMutation::None : spec.osc_mutation;
    apps::Case1Result r = apps::run_case1(c, arena);
    out.traces.push_back(std::move(r.runs[0].sensor_trace));
    out.runs.push_back(0);
    out.line = os::irq::kAdc;
  } else if (spec.case_tag == "II") {
    apps::Case2Config c;
    c.seed = seed;
    c.run_seconds = seconds;
    c.mean_interval_ms = spec.mean_interval_ms;
    c.fixed = true;
    c.relay_mutation =
        baseline ? apps::RelayMutation::None : spec.relay_mutation;
    c.relay_mailbox_iteration_cost = spec.mailbox_iteration_cost;
    c.radio.post_tx_hold = sim::cycles_from_millis(spec.post_tx_hold_ms);
    apps::Case2Result r = apps::run_case2(c, arena);
    out.traces.push_back(std::move(r.relay_trace));
    out.runs.push_back(0);
    out.line = os::irq::kRadioSpi;
  } else if (spec.case_tag == "III") {
    apps::Case3Config c;
    c.seed = seed;
    c.run_seconds = seconds;
    c.fixed = true;
    c.app.heartbeat_padding = spec.heartbeat_padding;
    c.app.mutation =
        baseline ? apps::CtpMutation::None : spec.ctp_mutation;
    apps::Case3Result r = apps::run_case3(c, arena);
    for (net::NodeId src : r.sources) {
      out.traces.push_back(std::move(r.traces[src]));
      out.runs.push_back(0);
    }
    out.line = r.report_line;
    if (arena) arena->recycle_all(r.traces);
  } else if (spec.case_tag == "IV") {
    apps::Case4Config c;
    c.seed = seed;
    c.run_seconds = seconds;
    c.fixed = true;
    c.app.flash_commit_iterations = spec.flash_commit_iterations;
    c.app.mutation =
        baseline ? apps::DissMutation::None : spec.diss_mutation;
    apps::Case4Result r = apps::run_case4(c, arena);
    for (trace::NodeTrace& t : r.traces) {
      out.traces.push_back(std::move(t));
      out.runs.push_back(0);
    }
    // The tear is only visible in FLASH-READY intervals (they span the
    // preempting broadcast); the Trickle timer's own intervals are
    // control-flow-identical for torn and normal fires (see ext E5).
    out.line = static_cast<trace::IrqLine>(r.trickle_line + 1);
  } else {
    SENT_REQUIRE_MSG(false, "unknown corpus case tag");
  }
  out.truth = derive_ground_truth(out.tagged(), out.line, spec.marker);
  return out;
}

}  // namespace sent::corpus
