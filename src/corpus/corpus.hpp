// Transient-bug corpus (DESIGN.md §16).
//
// The paper validates Sentomist on three case-study anecdotes; the corpus
// turns that into a measurable claim. Each VariantSpec names one seeded
// mutation — an atomicity violation, an ordering bug, or a shared-flag
// race across the interrupt/task boundary (Sun et al.'s disentanglement
// taxonomy) — injected into one of the existing applications via its
// config-level mutation hook. Running a variant yields node traces whose
// ground-truth labels are DERIVED FROM THE TRACE ITSELF: the mutated code
// marks the exact cycle at which the bug manifests, and every anatomized
// interval of the case's event type whose window contains such a marker is
// labelled buggy. No interval is ever hand-labelled.
//
// The same spec with its mutation stripped (`baseline = true`) is the
// control: it must produce zero markers and therefore zero labels, which
// tests/corpus_test.cpp enforces for every variant.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "apps/scenarios.hpp"
#include "pipeline/sentomist.hpp"

namespace sent::corpus {

/// Sun et al.'s interrupt-disentanglement taxonomy classes.
enum class BugClass : std::uint8_t { Atomicity, Ordering, SharedFlag };

const char* to_string(BugClass c);

/// One parameterized transient-bug variant. Only the knobs of the variant's
/// case are meaningful; the rest keep their defaults and are omitted from
/// params().
struct VariantSpec {
  std::string id;           ///< stable corpus id, e.g. "osc-late-commit-d20"
  BugClass bug_class = BugClass::Atomicity;
  std::string case_tag;     ///< "I", "II", "III" or "IV"
  std::string marker;       ///< trace marker kind = the ground-truth key
  std::string description;
  double run_seconds = 10.0;

  // --- case I knobs ---
  apps::OscMutation osc_mutation = apps::OscMutation::None;
  double sample_period_ms = 20.0;
  std::uint32_t heavy_iterations = 16;

  // --- case II knobs ---
  apps::RelayMutation relay_mutation = apps::RelayMutation::None;
  double mean_interval_ms = 100.0;
  double post_tx_hold_ms = 3.0;
  std::uint32_t mailbox_iteration_cost = 900;

  // --- case IV knobs ---
  apps::DissMutation diss_mutation = apps::DissMutation::None;
  std::uint32_t flash_commit_iterations = 12;

  // --- case III knobs ---
  apps::CtpMutation ctp_mutation = apps::CtpMutation::None;
  std::size_t heartbeat_padding = 96;

  /// Canonical (name, value) list of the knobs this variant's case reads —
  /// the golden manifest's parameter record.
  std::vector<std::pair<std::string, std::string>> params() const;
};

/// The built-in corpus: >= 12 variants covering all three taxonomy classes
/// across the four applications. Order is stable (manifest order).
const std::vector<VariantSpec>& builtin_corpus();

/// Lookup by id; nullptr when unknown.
const VariantSpec* find_variant(const std::string& id);

/// Comma-joined list of valid ids (for usage errors).
std::string corpus_ids();

// ---------------------------------------------------------------- labels

/// Ground-truth label for one anatomized interval: the (node, run,
/// interval-window) coordinates the detectors are graded against.
struct IntervalLabel {
  std::uint32_t node_id = 0;
  std::size_t run = 0;
  std::size_t seq_in_type = 0;  ///< chronological index among same-type
  sim::Cycle start_cycle = 0;
  sim::Cycle end_cycle = 0;
  std::size_t marker_hits = 0;  ///< markers of the variant's kind inside

  bool operator==(const IntervalLabel&) const = default;
};

struct GroundTruth {
  std::string marker;                 ///< the kind that was matched
  std::vector<IntervalLabel> labels;  ///< analysis-sample order
  std::size_t marker_events = 0;      ///< raw markers of that kind seen

  bool triggered() const { return !labels.empty(); }
};

/// Derive ground truth for `traces` (in analysis order) at event type
/// `line`: anatomize each trace and label every interval whose
/// [start_cycle, end_cycle] window contains >= 1 marker of `kind`. This is
/// an independent derivation of pipeline::analyze()'s per-sample has_bug
/// flag; tests/corpus_test.cpp holds the two to agreement.
GroundTruth derive_ground_truth(
    const std::vector<pipeline::TaggedTrace>& traces, trace::IrqLine line,
    const std::string& kind);

/// Canonical text serialization (one line per label) and its FNV-1a digest
/// — the golden manifest's drift detector.
std::string ground_truth_text(const GroundTruth& truth);
std::uint64_t ground_truth_digest(const GroundTruth& truth);

// ------------------------------------------------------------ generation

/// The product of one seeded variant run: the traces to analyze, their run
/// tags, the anatomized event type, and the derived ground truth.
struct VariantRun {
  std::vector<trace::NodeTrace> traces;  ///< owned, analysis order
  std::vector<std::size_t> runs;         ///< per-trace testing-run tag
  trace::IrqLine line = 0;
  GroundTruth truth;

  /// Borrowed views over `traces` in analysis order.
  std::vector<pipeline::TaggedTrace> tagged() const;
};

/// Simulate `spec` at `seed` and derive its ground truth. `run_scale`
/// multiplies the variant's virtual duration (smoke tests shrink it).
/// `baseline = true` strips the mutation (the unmutated control).
/// An arena, when given, donates pooled buffers exactly as in campaigns.
VariantRun run_variant(const VariantSpec& spec, std::uint64_t seed,
                       double run_scale = 1.0,
                       apps::WorldArena* arena = nullptr,
                       bool baseline = false);

}  // namespace sent::corpus
