#include "corpus/eval.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "core/anatomizer.hpp"
#include "core/detector.hpp"
#include "ml/detectors.hpp"
#include "ml/dustminer.hpp"
#include "util/assert.hpp"

namespace sent::corpus {

// ---- metric primitives ----------------------------------------------------

double precision_at(const std::vector<bool>& ranked_truth, std::size_t k) {
  const std::size_t depth = std::min(k, ranked_truth.size());
  if (depth == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < depth; ++i)
    if (ranked_truth[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(depth);
}

double recall_at(const std::vector<bool>& ranked_truth, std::size_t k) {
  std::size_t total = 0, hits = 0;
  for (std::size_t i = 0; i < ranked_truth.size(); ++i) {
    if (!ranked_truth[i]) continue;
    ++total;
    if (i < k) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

double mean_rank(const std::vector<bool>& ranked_truth) {
  std::size_t total = 0, rank_sum = 0;
  for (std::size_t i = 0; i < ranked_truth.size(); ++i) {
    if (!ranked_truth[i]) continue;
    ++total;
    rank_sum += i + 1;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(rank_sum) / static_cast<double>(total);
}

std::size_t first_rank(const std::vector<bool>& ranked_truth) {
  for (std::size_t i = 0; i < ranked_truth.size(); ++i)
    if (ranked_truth[i]) return i + 1;
  return 0;
}

double detection_rate(const std::vector<std::size_t>& first_ranks,
                      std::size_t k) {
  if (first_ranks.empty()) return 0.0;
  std::size_t detected = 0;
  for (std::size_t r : first_ranks)
    if (r > 0 && r <= k) ++detected;
  return static_cast<double>(detected) /
         static_cast<double>(first_ranks.size());
}

// ---- sweep ----------------------------------------------------------------

const std::vector<std::string>& detector_names() {
  static const std::vector<std::string> names = {
      "ocsvm", "knn", "lof", "pca", "mahalanobis", "dustminer"};
  return names;
}

namespace {

std::shared_ptr<core::OutlierDetector> make_detector(
    const std::string& name) {
  if (name == "knn") return std::make_shared<ml::KnnDetector>();
  if (name == "lof") return std::make_shared<ml::LofDetector>();
  if (name == "pca") return std::make_shared<ml::PcaDetector>();
  if (name == "mahalanobis")
    return std::make_shared<ml::MahalanobisDetector>();
  SENT_REQUIRE_MSG(false, "unknown plug-in detector");
  return nullptr;
}

std::vector<bool> ranked_truth_of(
    const std::vector<pipeline::Sample>& samples,
    const std::vector<pipeline::RankedEntry>& ranking) {
  std::vector<bool> rt(ranking.size());
  for (std::size_t i = 0; i < ranking.size(); ++i)
    rt[i] = samples[ranking[i].sample_index].has_bug;
  return rt;
}

DetectorSeedOutcome grade(const std::vector<bool>& ranked_truth,
                          const SweepOptions& options) {
  DetectorSeedOutcome out;
  out.first_rank = first_rank(ranked_truth);
  out.seed_mean_rank = mean_rank(ranked_truth);
  out.precision.reserve(options.ks.size());
  out.recall.reserve(options.ks.size());
  for (std::size_t k : options.ks) {
    out.precision.push_back(precision_at(ranked_truth, k));
    out.recall.push_back(recall_at(ranked_truth, k));
  }
  return out;
}

/// DustMiner baseline with ORACLE labels: the ground-truth interval labels
/// are handed straight to the miner (its idealized best case — Sentomist's
/// whole point is that those labels normally require extensive manual
/// effort). Interval score = -(sum over the mined bad-discriminative
/// patterns of occurrences x pattern score); lower = more suspicious, the
/// shared ranking convention.
std::vector<double> dustminer_scores(
    const VariantRun& vr, const pipeline::AnalysisReport& report) {
  // Per-interval code-object sequences across all traces, in the exact
  // sample order analyze() used (trace order, chronological intervals).
  std::vector<std::vector<std::uint32_t>> sequences;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint32_t> name_ids;
  for (const trace::NodeTrace& trace : vr.traces) {
    core::Anatomizer anatomizer(trace);
    const std::vector<core::EventInterval> intervals =
        anatomizer.intervals_for(vr.line);
    std::vector<std::string> local_names;
    std::vector<std::vector<std::uint32_t>> local =
        ml::code_object_sequences(trace, intervals, &local_names);
    std::vector<std::uint32_t> remap(local_names.size());
    for (std::size_t i = 0; i < local_names.size(); ++i) {
      auto [it, inserted] = name_ids.try_emplace(
          local_names[i], static_cast<std::uint32_t>(names.size()));
      if (inserted) names.push_back(local_names[i]);
      remap[i] = it->second;
    }
    for (std::vector<std::uint32_t>& seq : local) {
      for (std::uint32_t& id : seq) id = remap[id];
      sequences.push_back(std::move(seq));
    }
  }
  SENT_REQUIRE_MSG(sequences.size() == report.samples.size(),
                   "dustminer sequence count disagrees with the pipeline");

  std::vector<double> scores(sequences.size(), 0.0);
  std::vector<bool> labels_bad(sequences.size());
  std::size_t bad = 0;
  for (std::size_t i = 0; i < report.samples.size(); ++i) {
    labels_bad[i] = report.samples[i].has_bug;
    if (labels_bad[i]) ++bad;
  }
  if (bad == 0 || bad == sequences.size()) return scores;  // degenerate

  ml::Dustminer miner;
  const std::vector<ml::MinedPattern> patterns =
      miner.mine(sequences, labels_bad, names);
  for (const ml::MinedPattern& pattern : patterns) {
    if (!pattern.more_frequent_in_bad) continue;
    std::vector<std::uint32_t> needle;
    needle.reserve(pattern.events.size());
    bool known = true;
    for (const std::string& event : pattern.events) {
      auto it = name_ids.find(event);
      if (it == name_ids.end()) {
        known = false;
        break;
      }
      needle.push_back(it->second);
    }
    if (!known || needle.empty()) continue;
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      const std::vector<std::uint32_t>& seq = sequences[i];
      if (seq.size() < needle.size()) continue;
      std::size_t occurrences = 0;
      for (std::size_t j = 0; j + needle.size() <= seq.size(); ++j) {
        if (std::equal(needle.begin(), needle.end(), seq.begin() + j))
          ++occurrences;
      }
      scores[i] -= static_cast<double>(occurrences) * pattern.score;
    }
  }
  return scores;
}

}  // namespace

SweepResult run_sweep(const std::vector<VariantSpec>& specs,
                      const SweepOptions& options) {
  SENT_REQUIRE_MSG(!options.ks.empty(), "SweepOptions::ks must be non-empty");
  SweepResult result;
  result.options = options;
  result.variants.reserve(specs.size());

  for (const VariantSpec& spec : specs) {
    std::vector<SeedOutcome> outcomes(options.seeds);

    pipeline::ScenarioRunnerFactory factory =
        [&spec, &options, &outcomes](std::size_t) -> pipeline::ScenarioRunner {
      auto arena = std::make_shared<apps::WorldArena>();
      return [&spec, &options, &outcomes,
              arena](std::uint64_t seed) -> pipeline::AnalysisReport {
        VariantRun vr =
            run_variant(spec, seed, options.run_scale, arena.get());
        const std::vector<pipeline::TaggedTrace> tagged = vr.tagged();
        pipeline::AnalysisOptions aopts;
        aopts.keep_features = true;
        pipeline::AnalysisReport report =
            pipeline::analyze(tagged, vr.line, aopts);

        // The derived labels and the pipeline's marker matching are two
        // independent implementations of the same definition; a sweep that
        // lets them drift apart is grading against the wrong truth.
        SENT_REQUIRE_MSG(
            report.buggy_count() == vr.truth.labels.size(),
            "corpus labels disagree with pipeline ground truth");

        SeedOutcome out;
        out.triggered = vr.truth.triggered();
        out.label_digest = ground_truth_digest(vr.truth);
        out.samples = report.samples.size();
        out.labeled = vr.truth.labels.size();
        out.detectors.reserve(detector_names().size());
        for (const std::string& name : detector_names()) {
          std::vector<bool> rt;
          if (name == "ocsvm") {
            rt = ranked_truth_of(report.samples, report.ranking);
          } else if (name == "dustminer") {
            const std::vector<double> scores = dustminer_scores(vr, report);
            const std::vector<core::RankedSample> ranking =
                core::rank_ascending(scores);
            rt.resize(ranking.size());
            for (std::size_t i = 0; i < ranking.size(); ++i)
              rt[i] = report.samples[ranking[i].index].has_bug;
          } else {
            pipeline::AnalysisReport alt;
            alt.samples = report.samples;
            pipeline::AnalysisOptions dopts;
            dopts.detector = make_detector(name);
            pipeline::score_and_rank(alt, report.features, dopts);
            rt = ranked_truth_of(alt.samples, alt.ranking);
          }
          out.detectors.push_back(grade(rt, options));
        }
        SENT_REQUIRE_MSG(
            out.detectors.front().first_rank == report.first_bug_rank(),
            "sweep grading disagrees with the report's first bug rank");

        // Each seed owns one pre-allocated slot, so concurrent workers
        // never write the same element; aggregation below reads them in
        // seed order after the campaign joins.
        outcomes[seed - options.first_seed] = std::move(out);
        for (trace::NodeTrace& t : vr.traces) arena->recycle(std::move(t));
        return report;
      };
    };

    pipeline::CampaignOptions copts;
    copts.first_seed = options.first_seed;
    copts.runs = options.seeds;
    copts.k = options.k;
    copts.threads = options.threads;
    const pipeline::CampaignStats stats = pipeline::run_campaign(factory, copts);
    SENT_REQUIRE_MSG(stats.failed == 0 && stats.timed_out == 0,
                     "corpus sweep run failed");

    // Cross-check the campaign's own accounting against the per-seed
    // grades: same triggered set, same OCSVM first ranks.
    std::size_t triggered = 0;
    std::vector<std::size_t> ocsvm_first_ranks;
    for (const SeedOutcome& out : outcomes) {
      if (!out.triggered) continue;
      ++triggered;
      ocsvm_first_ranks.push_back(out.detectors.front().first_rank);
    }
    SENT_REQUIRE_MSG(stats.triggered == triggered &&
                         stats.first_ranks == ocsvm_first_ranks,
                     "sweep grading disagrees with campaign stats");

    VariantReport vr;
    vr.id = spec.id;
    vr.bug_class = to_string(spec.bug_class);
    vr.case_tag = spec.case_tag;
    vr.marker = spec.marker;
    vr.params = spec.params();
    vr.seeds = options.seeds;
    vr.triggered = triggered;
    for (const SeedOutcome& out : outcomes) {
      vr.samples_total += out.samples;
      vr.labels_total += out.labeled;
    }

    for (std::size_t d = 0; d < detector_names().size(); ++d) {
      DetectorCell cell;
      cell.detector = detector_names()[d];
      cell.precision.assign(options.ks.size(), 0.0);
      cell.recall.assign(options.ks.size(), 0.0);
      std::size_t trig = 0;
      for (const SeedOutcome& out : outcomes) {
        if (!out.triggered) continue;
        ++trig;
        const DetectorSeedOutcome& g = out.detectors[d];
        if (g.first_rank > 0 && g.first_rank <= options.k)
          cell.detection_rate += 1.0;
        cell.mean_first_rank += static_cast<double>(g.first_rank);
        cell.mean_rank += g.seed_mean_rank;
        for (std::size_t i = 0; i < options.ks.size(); ++i) {
          cell.precision[i] += g.precision[i];
          cell.recall[i] += g.recall[i];
        }
      }
      if (trig > 0) {
        const double n = static_cast<double>(trig);
        cell.detection_rate /= n;
        cell.mean_first_rank /= n;
        cell.mean_rank /= n;
        for (std::size_t i = 0; i < options.ks.size(); ++i) {
          cell.precision[i] /= n;
          cell.recall[i] /= n;
        }
      }
      vr.cells.push_back(std::move(cell));
    }
    vr.outcomes = std::move(outcomes);
    result.variants.push_back(std::move(vr));
  }
  return result;
}

namespace {

std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string json_num_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ",";
    out += json_num(values[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string sweep_json(const SweepResult& result) {
  const SweepOptions& o = result.options;
  std::string out = "{\n";
  out += "  \"first_seed\": " + std::to_string(o.first_seed) + ",\n";
  out += "  \"seeds\": " + std::to_string(o.seeds) + ",\n";
  out += "  \"k\": " + std::to_string(o.k) + ",\n";
  out += "  \"run_scale\": " + json_num(o.run_scale) + ",\n";
  out += "  \"ks\": [";
  for (std::size_t i = 0; i < o.ks.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(o.ks[i]);
  }
  out += "],\n  \"detectors\": [";
  for (std::size_t i = 0; i < detector_names().size(); ++i) {
    if (i) out += ",";
    out += "\"" + detector_names()[i] + "\"";
  }
  out += "],\n  \"variants\": [\n";
  for (std::size_t v = 0; v < result.variants.size(); ++v) {
    const VariantReport& vr = result.variants[v];
    out += "    {\n";
    out += "      \"id\": \"" + vr.id + "\",\n";
    out += "      \"class\": \"" + vr.bug_class + "\",\n";
    out += "      \"case\": \"" + vr.case_tag + "\",\n";
    out += "      \"marker\": \"" + vr.marker + "\",\n";
    out += "      \"params\": {";
    for (std::size_t i = 0; i < vr.params.size(); ++i) {
      if (i) out += ", ";
      out += "\"" + vr.params[i].first + "\": \"" + vr.params[i].second +
             "\"";
    }
    out += "},\n";
    out += "      \"seeds\": " + std::to_string(vr.seeds) + ",\n";
    out += "      \"triggered\": " + std::to_string(vr.triggered) + ",\n";
    out += "      \"trigger_rate\": " +
           json_num(vr.seeds == 0 ? 0.0
                                  : static_cast<double>(vr.triggered) /
                                        static_cast<double>(vr.seeds)) +
           ",\n";
    out += "      \"samples\": " + std::to_string(vr.samples_total) + ",\n";
    out += "      \"labels\": " + std::to_string(vr.labels_total) + ",\n";
    out += "      \"label_digests\": [";
    for (std::size_t i = 0; i < vr.outcomes.size(); ++i) {
      if (i) out += ",";
      out += json_hex(vr.outcomes[i].label_digest);
    }
    out += "],\n      \"cells\": [\n";
    for (std::size_t d = 0; d < vr.cells.size(); ++d) {
      const DetectorCell& cell = vr.cells[d];
      out += "        {\"detector\": \"" + cell.detector + "\"";
      out += ", \"detection_rate\": " + json_num(cell.detection_rate);
      out += ", \"mean_first_rank\": " + json_num(cell.mean_first_rank);
      out += ", \"mean_rank\": " + json_num(cell.mean_rank);
      out += ", \"precision\": " + json_num_array(cell.precision);
      out += ", \"recall\": " + json_num_array(cell.recall);
      out += "}";
      out += (d + 1 < vr.cells.size()) ? ",\n" : "\n";
    }
    out += "      ]\n    }";
    out += (v + 1 < result.variants.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace sent::corpus
