// Corpus x detector evaluation harness (DESIGN.md §16).
//
// Grades every detector's ascending ranking against the corpus's derived
// ground-truth labels. Metric conventions (unit-tested against hand
// fixtures in tests/eval_metrics_test.cpp):
//
//   precision@k  — buggy fraction of the top min(k, n) ranked intervals;
//                  0 when the ranking or k is empty.
//   recall@k     — labelled intervals inside the top k over all labelled
//                  intervals; 0 when nothing is labelled.
//   mean rank    — mean 1-based rank of the labelled intervals; 0 when
//                  nothing is labelled.
//   first rank   — 1-based rank of the best-ranked labelled interval; 0
//                  when nothing is labelled.
//   detection    — fraction of triggered seeds whose first rank lands in
//                  the top k; 0 when no seed triggered (a corpus cell that
//                  never manifests has demonstrated nothing).
//
// A sweep fans variant seeds through the amortized campaign engine
// (worker-local WorldArena runners, chunked seed claiming), writes every
// per-seed outcome into its own pre-allocated slot, and aggregates in seed
// order — so sweep_json() is byte-identical for every thread count, which
// bench/ext_corpus and scripts/tier1.sh cmp(1) directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "pipeline/campaign.hpp"

namespace sent::corpus {

// ---- metric primitives ----------------------------------------------------
// `ranked_truth[i]` says whether the interval at rank i+1 is labelled.

double precision_at(const std::vector<bool>& ranked_truth, std::size_t k);
double recall_at(const std::vector<bool>& ranked_truth, std::size_t k);
double mean_rank(const std::vector<bool>& ranked_truth);
std::size_t first_rank(const std::vector<bool>& ranked_truth);
double detection_rate(const std::vector<std::size_t>& first_ranks,
                      std::size_t k);

// ---- sweep ----------------------------------------------------------------

/// The evaluated detectors, in matrix-column order: ocsvm, knn, lof, pca,
/// mahalanobis, dustminer (the labelled baseline).
const std::vector<std::string>& detector_names();

struct SweepOptions {
  std::uint64_t first_seed = 1;
  std::size_t seeds = 5;
  std::size_t k = 5;  ///< detection cut-off rank
  std::vector<std::size_t> ks = {1, 3, 5, 10};  ///< precision/recall curve
  std::size_t threads = 1;
  double run_scale = 1.0;
};

/// One detector's grades for one (variant, seed) cell.
struct DetectorSeedOutcome {
  std::size_t first_rank = 0;
  double seed_mean_rank = 0.0;
  std::vector<double> precision;  ///< per SweepOptions::ks
  std::vector<double> recall;     ///< per SweepOptions::ks

  bool operator==(const DetectorSeedOutcome&) const = default;
};

/// Everything recorded for one (variant, seed) run.
struct SeedOutcome {
  bool triggered = false;
  std::uint64_t label_digest = 0;
  std::size_t samples = 0;   ///< anatomized intervals scored
  std::size_t labeled = 0;   ///< ground-truth labelled intervals
  std::vector<DetectorSeedOutcome> detectors;  ///< per detector_names()

  bool operator==(const SeedOutcome&) const = default;
};

/// One detector's aggregate over a variant's triggered seeds.
struct DetectorCell {
  std::string detector;
  double detection_rate = 0.0;
  double mean_first_rank = 0.0;
  double mean_rank = 0.0;
  std::vector<double> precision;  ///< per SweepOptions::ks, seed-averaged
  std::vector<double> recall;

  bool operator==(const DetectorCell&) const = default;
};

struct VariantReport {
  std::string id;
  std::string bug_class;
  std::string case_tag;
  std::string marker;
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t seeds = 0;
  std::size_t triggered = 0;
  std::size_t samples_total = 0;
  std::size_t labels_total = 0;
  std::vector<SeedOutcome> outcomes;  ///< seed order
  std::vector<DetectorCell> cells;    ///< per detector_names()
};

struct SweepResult {
  SweepOptions options;  ///< as given (threads excluded from the JSON)
  std::vector<VariantReport> variants;
};

/// Run the corpus sweep: for each spec, a campaign over
/// [first_seed, first_seed + seeds) through worker-local arenas; each
/// seed's report is scored by every detector. Self-checks that the
/// campaign's own trigger/first-rank accounting (pipeline::analyze
/// has_bug) agrees with the independently derived corpus labels — a
/// mismatch throws.
SweepResult run_sweep(const std::vector<VariantSpec>& specs,
                      const SweepOptions& options);

/// Deterministic JSON rendering (stable key order, %.10g doubles).
/// Excludes threads and wall-clock, so serial and parallel sweeps of the
/// same workload render byte-identically.
std::string sweep_json(const SweepResult& result);

}  // namespace sent::corpus
