#include "fault/harness.hpp"

#include <csignal>

#include "util/rng.hpp"

namespace sent::fault {

namespace {

/// Substream for one (kind, index) harness decision. The harness layer is
/// nowhere near a hot path (one draw per attempt / per commit), so the
/// string build is irrelevant and buys fully independent streams.
util::Rng keyed_stream(std::uint64_t key, const char* kind,
                       std::uint64_t index) {
  return util::Rng(key).substream(std::string("harness-") + kind + "-" +
                                  std::to_string(index));
}

}  // namespace

HarnessInjector::HarnessInjector(HarnessFaultPlan plan) : plan_(plan) {}

void HarnessInjector::maybe_abort_runner(std::uint64_t seed,
                                         std::uint32_t attempt) const {
  if (plan_.runner_abort_prob <= 0.0) return;
  util::Rng rng = keyed_stream(seed, "abort", attempt);
  if (rng.chance(plan_.runner_abort_prob)) {
    throw HarnessAbort("harness fault: injected runner abort (seed " +
                       std::to_string(seed) + ", attempt " +
                       std::to_string(attempt) + ")");
  }
}

HarnessInjector::CommitFault HarnessInjector::commit_fault(
    std::uint64_t commit_index) const {
  util::Rng rng = keyed_stream(0x9a11, "commit", commit_index);
  // One stream decides both faults so their draws cannot alias: first the
  // IO error (the commit never reaches the disk), then the torn write.
  if (plan_.journal_io_error_prob > 0.0 &&
      rng.chance(plan_.journal_io_error_prob)) {
    return CommitFault::IoError;
  }
  if (plan_.journal_short_write_prob > 0.0 &&
      rng.chance(plan_.journal_short_write_prob)) {
    return CommitFault::ShortWrite;
  }
  return CommitFault::None;
}

double HarnessInjector::short_write_keep_fraction(
    std::uint64_t commit_index) const {
  util::Rng rng = keyed_stream(0x9a11, "shortwrite", commit_index);
  return rng.uniform();
}

void HarnessInjector::maybe_kill(std::uint64_t appends) const {
  if (plan_.kill_after_appends == 0) return;
  if (appends >= plan_.kill_after_appends) std::raise(SIGKILL);
}

}  // namespace sent::fault
