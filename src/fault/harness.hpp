// Harness self-chaos (DESIGN.md §13): fault injection aimed at the
// campaign machinery itself.
//
// src/fault's FaultPlan shakes the simulated system; a HarnessFaultPlan
// shakes the thing running the campaign — the runner invocation, the
// journal's commit path, and the process itself. The durability claims
// ("a SIGKILLed campaign resumes bit-identical", "a torn journal write is
// truncated, not trusted") are only claims until something injects those
// failures on every verify run; this plan is how they get exercised.
//
// Determinism matches the rest of the fault layer: every decision is a
// pure function of the plan plus a stable key (the run's primary seed and
// attempt index, or the commit index), drawn from label-keyed Rng
// substreams. A chaos campaign therefore aborts the same attempts and
// tears the same commits at any --jobs, and — crucially for resume — a
// re-run of a seed after a crash sees exactly the decisions the original
// run saw.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sent::fault {

/// Thrown into the campaign by an injected runner abort. Derives from
/// std::runtime_error so the campaign's per-run isolation treats it like
/// any real runner failure (RunStatus::Failed).
class HarnessAbort : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Pure description of how hard to shake the harness. Holds no randomness.
struct HarnessFaultPlan {
  /// Per-attempt probability that the runner invocation is aborted with a
  /// HarnessAbort before it starts (keyed by primary seed + attempt index,
  /// so retries of the same seed draw independently).
  double runner_abort_prob = 0.0;

  /// Per-commit probability that the journal's atomic commit writes only
  /// a prefix of its bytes before the rename lands (a torn write — the
  /// recovery scan must truncate it, never trust it).
  double journal_short_write_prob = 0.0;

  /// Per-commit probability that the commit fails outright with an IO
  /// error (the writer must absorb it and retry on the next commit).
  double journal_io_error_prob = 0.0;

  /// After this many journal appends, the process raises SIGKILL —
  /// the real thing, not an exception: destructors do not run, buffers
  /// are not flushed. 0 disables. This is how the crash-resume smoke
  /// dies at a deterministic point mid-campaign.
  std::uint64_t kill_after_appends = 0;

  bool any() const {
    return runner_abort_prob > 0.0 || journal_short_write_prob > 0.0 ||
           journal_io_error_prob > 0.0 || kill_after_appends > 0;
  }
};

/// Realizes a HarnessFaultPlan. Construction draws nothing; every query
/// derives its own substream from the queried key.
class HarnessInjector {
 public:
  explicit HarnessInjector(HarnessFaultPlan plan);

  const HarnessFaultPlan& plan() const { return plan_; }

  /// Throws HarnessAbort when the plan aborts attempt `attempt` (0-based)
  /// of the run whose primary seed is `seed`.
  void maybe_abort_runner(std::uint64_t seed, std::uint32_t attempt) const;

  /// Decision for journal commit #`commit_index`.
  enum class CommitFault { None, ShortWrite, IoError };
  CommitFault commit_fault(std::uint64_t commit_index) const;

  /// For a ShortWrite: fraction of the serialized bytes to keep, in
  /// [0, 1). Deterministic per commit index.
  double short_write_keep_fraction(std::uint64_t commit_index) const;

  /// Raise SIGKILL if `appends` has reached the plan's kill point.
  void maybe_kill(std::uint64_t appends) const;

 private:
  HarnessFaultPlan plan_;
};

}  // namespace sent::fault
