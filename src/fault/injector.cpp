#include "fault/injector.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace sent::fault {

namespace {

// Planned-vs-realized bookkeeping (DESIGN.md §11): `*_planned` counts what
// attach time scheduled, `*_realized` what actually perturbed the run — the
// gap a fault-coverage claim must report (ZOFI's lesson). All values are a
// pure function of (plan, seed), so they live in the deterministic metrics
// sections. Handles register as one block on first use.
struct Metrics {
  obs::Counter busy_planned =
      obs::Registry::global().counter("fault.radio_busy_planned");
  obs::Counter busy_realized =
      obs::Registry::global().counter("fault.radio_busy_realized");
  obs::Counter mute_planned =
      obs::Registry::global().counter("fault.radio_mute_planned");
  obs::Counter mute_realized =
      obs::Registry::global().counter("fault.radio_mute_realized");
  obs::Counter sensor_stuck_planned =
      obs::Registry::global().counter("fault.sensor_stuck_planned");
  obs::Counter sensor_stuck_realized =
      obs::Registry::global().counter("fault.sensor_stuck_realized");
  obs::Counter sensor_spikes =
      obs::Registry::global().counter("fault.sensor_spikes_realized");
  obs::Counter clock_drift_nodes =
      obs::Registry::global().counter("fault.clock_drift_nodes");
  obs::Counter spurious_planned =
      obs::Registry::global().counter("fault.spurious_irq_planned");
  obs::Counter spurious_realized =
      obs::Registry::global().counter("fault.spurious_irq_realized");
  obs::Counter irq_drops =
      obs::Registry::global().counter("fault.irq_drops_realized");
  obs::Counter trace_truncations =
      obs::Registry::global().counter("fault.trace_truncations");
  obs::Counter trace_corruptions =
      obs::Registry::global().counter("fault.trace_corruptions");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

FaultInjector::FaultInjector(sim::EventQueue& queue, FaultPlan plan,
                             util::Rng rng, sim::Cycle horizon)
    : queue_(queue), plan_(plan), rng_(rng), horizon_(horizon) {
  SENT_REQUIRE_MSG(horizon >= queue.now(),
                   "fault horizon " << horizon << " precedes now "
                                    << queue.now());
}

std::vector<sim::Cycle> FaultInjector::draw_poisson(util::Rng& rng,
                                                    double per_s) const {
  std::vector<sim::Cycle> starts;
  if (per_s <= 0.0) return starts;
  const double mean_gap =
      static_cast<double>(sim::kCyclesPerSecond) / per_s;
  double t = static_cast<double>(queue_.now());
  const double end = static_cast<double>(horizon_);
  for (;;) {
    t += rng.exponential(mean_gap);
    if (t >= end) return starts;
    starts.push_back(static_cast<sim::Cycle>(t));
  }
}

void FaultInjector::attach_radio(hw::RadioChip& chip) {
  const std::string id = std::to_string(chip.node_id());
  if (plan_.radio_stuck_busy_per_s > 0.0) {
    util::Rng sub = rng_.substream("radio-busy-" + id);
    const sim::Cycle dur = sim::cycles_from_millis(plan_.radio_stuck_busy_ms);
    for (sim::Cycle at : draw_poisson(sub, plan_.radio_stuck_busy_per_s)) {
      ++counts_.busy_windows;
      Metrics::get().busy_planned.inc();
      // Windows are clamped to the horizon so a run that stops there is
      // never left with the chip wedged by a half-expired fault.
      const sim::Cycle d = std::min(dur, horizon_ - at);
      queue_.schedule_at(at, [&chip, d] {
        Metrics::get().busy_realized.inc();
        chip.inject_stuck_busy(d);
      });
    }
  }
  if (plan_.radio_mute_per_s > 0.0) {
    util::Rng sub = rng_.substream("radio-mute-" + id);
    const sim::Cycle dur = sim::cycles_from_millis(plan_.radio_mute_ms);
    for (sim::Cycle at : draw_poisson(sub, plan_.radio_mute_per_s)) {
      ++counts_.mute_windows;
      Metrics::get().mute_planned.inc();
      const sim::Cycle d = std::min(dur, horizon_ - at);
      queue_.schedule_at(at, [&chip, d] {
        Metrics::get().mute_realized.inc();
        chip.inject_mute(d);
      });
    }
  }
}

hw::SensorFn FaultInjector::wrap_sensor(hw::SensorFn inner,
                                        const std::string& label) {
  if (plan_.sensor_stuck_per_s <= 0.0 && plan_.sensor_spike_prob <= 0.0)
    return inner;
  util::Rng sub = rng_.substream("sensor-" + label);
  auto starts = draw_poisson(sub, plan_.sensor_stuck_per_s);
  counts_.sensor_stuck_windows += starts.size();
  Metrics::get().sensor_stuck_planned.inc(starts.size());
  const sim::Cycle dur = sim::cycles_from_millis(plan_.sensor_stuck_ms);
  const double spike_prob = plan_.sensor_spike_prob;
  const double spike = plan_.sensor_spike_counts;

  // Mutable state shared by all calls; the sensor is sampled at
  // non-decreasing cycles, so a cursor over the window list suffices.
  struct State {
    util::Rng rng;                      // spike draws
    std::vector<sim::Cycle> starts;
    std::size_t cursor = 0;
    std::optional<std::uint16_t> held;  // stuck-at value of current window
  };
  auto st = std::make_shared<State>(
      State{sub.substream("spikes"), std::move(starts), 0, std::nullopt});

  return [inner, st, dur, spike_prob, spike](sim::Cycle now) -> std::uint16_t {
    // Drop expired windows (and the value they held).
    while (st->cursor < st->starts.size() &&
           st->starts[st->cursor] + dur <= now) {
      ++st->cursor;
      st->held.reset();
    }
    const bool stuck = st->cursor < st->starts.size() &&
                       st->starts[st->cursor] <= now;
    if (stuck) {
      // Stuck-at: freeze at the first value sampled inside the window.
      if (!st->held) {
        st->held = inner(now);
        Metrics::get().sensor_stuck_realized.inc();
      }
      return *st->held;
    }
    double v = static_cast<double>(inner(now));
    if (spike_prob > 0.0 && st->rng.chance(spike_prob)) {
      v += spike;
      Metrics::get().sensor_spikes.inc();
    }
    return static_cast<std::uint16_t>(std::clamp(v, 0.0, 1023.0));
  };
}

void FaultInjector::attach_clock(std::uint32_t node_id,
                                 os::TimerService& timers) {
  if (plan_.clock_drift_ppm <= 0.0) return;
  util::Rng sub = rng_.substream("clock-" + std::to_string(node_id));
  Metrics::get().clock_drift_nodes.inc();
  timers.set_drift_ppm(
      sub.uniform(-plan_.clock_drift_ppm, plan_.clock_drift_ppm));
}

void FaultInjector::attach_interrupts(std::uint32_t node_id,
                                      mcu::Machine& machine,
                                      os::TimerService& timers) {
  const std::string id = std::to_string(node_id);
  if (plan_.spurious_irq_per_s > 0.0) {
    util::Rng sub = rng_.substream("spurious-" + id);
    for (sim::Cycle at : draw_poisson(sub, plan_.spurious_irq_per_s)) {
      ++counts_.spurious_irqs;
      Metrics::get().spurious_planned.inc();
      // The line is picked at fire time from whatever handlers are bound
      // then (Rule 1: only a line's own handler can run), but the pick
      // itself is pre-drawn so scheduling order never shifts the stream.
      const std::uint64_t pick = sub.next();
      queue_.schedule_at(at, [&machine, &timers, pick] {
        auto lines = machine.bound_lines();
        if (lines.empty()) return;
        Metrics::get().spurious_realized.inc();
        const trace::IrqLine line = lines[pick % lines.size()];
        // A spurious interrupt on a timer line is an early compare match;
        // a raw raise would run the handler with the slot still armed and
        // break the driver's restart invariant.
        if (timers.owns(line)) {
          timers.fire_early(line);
          return;
        }
        machine.raise_irq(line);
      });
    }
  }
  if (plan_.drop_irq_prob > 0.0) {
    auto drop_rng =
        std::make_shared<util::Rng>(rng_.substream("irq-drop-" + id));
    const double p = plan_.drop_irq_prob;
    machine.set_irq_drop_hook([drop_rng, p](trace::IrqLine) {
      if (!drop_rng->chance(p)) return false;
      Metrics::get().irq_drops.inc();
      return true;
    });
  }
}

std::string FaultInjector::perturb_trace_text(std::string text,
                                              const FaultPlan& plan,
                                              util::Rng& rng) {
  if (!plan.any_trace() || text.empty()) return text;
  if (plan.trace_truncate_prob > 0.0 &&
      rng.chance(plan.trace_truncate_prob)) {
    Metrics::get().trace_truncations.inc();
    text.resize(static_cast<std::size_t>(rng.below(text.size() + 1)));
  }
  if (plan.trace_corrupt_prob > 0.0 && !text.empty() &&
      rng.chance(plan.trace_corrupt_prob)) {
    Metrics::get().trace_corruptions.inc();
    // Rewrite one byte with a character that can never be valid in a
    // numeric field, so the corruption is detectable rather than silent.
    static constexpr char kGarbage[] = {'X', '*', '?', '!', '#'};
    text[rng.below(text.size())] =
        kGarbage[rng.below(sizeof(kGarbage))];
  }
  return text;
}

FaultPlan FaultPlan::at_intensity(double intensity) {
  FaultPlan p;
  if (intensity <= 0.0) return p;
  p.radio_stuck_busy_per_s = 2.0 * intensity;
  p.radio_mute_per_s = 1.0 * intensity;
  p.sensor_stuck_per_s = 0.5 * intensity;
  p.sensor_spike_prob = 0.01 * intensity;
  p.clock_drift_ppm = 50.0 * intensity;
  p.spurious_irq_per_s = 5.0 * intensity;
  p.drop_irq_prob = 0.002 * intensity;
  p.trace_truncate_prob = 0.15 * intensity;
  p.trace_corrupt_prob = 0.15 * intensity;
  return p;
}

}  // namespace sent::fault
