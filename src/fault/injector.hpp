// FaultInjector — realizes a FaultPlan against one run's world.
//
// Construction draws nothing. Each attach_* call derives an independent,
// label-keyed Rng substream (keyed by the attached component's node id), so
// the faults one component sees do not depend on how many other components
// are attached or in which order other substreams are consumed. All window
// schedules are drawn eagerly at attach time over [now, horizon); only the
// pre-drawn events are then placed on the simulation queue. That makes a
// chaos run a pure function of (plan, seed): bit-identical at any campaign
// thread count.
//
// Layer map:
//   attach_radio      — hardware: stuck-busy + mute windows
//   wrap_sensor       — hardware: stuck-at windows + glitch spikes
//   attach_clock      — hardware: per-node crystal drift (timer ppm)
//   attach_interrupts — OS: spurious raises + dropped raises
//   perturb_trace_text— trace I/O: truncation / corruption (static; used
//                       on save/load round-trips)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "hw/radio.hpp"
#include "hw/sensor.hpp"
#include "mcu/machine.hpp"
#include "os/timer.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace sent::fault {

class FaultInjector {
 public:
  /// Faults are scheduled over [queue.now(), horizon).
  FaultInjector(sim::EventQueue& queue, FaultPlan plan, util::Rng rng,
                sim::Cycle horizon);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  FaultInjector(FaultInjector&&) = default;

  // ---- hardware layer ----------------------------------------------------

  /// Schedule stuck-busy and mute windows on a radio chip.
  void attach_radio(hw::RadioChip& chip);

  /// Wrap a sensor signal with stuck-at windows and glitch spikes. The
  /// label keys the substream (use e.g. "adc-<node>").
  hw::SensorFn wrap_sensor(hw::SensorFn inner, const std::string& label);

  /// Draw this node's crystal drift and apply it to its timer service.
  void attach_clock(std::uint32_t node_id, os::TimerService& timers);

  // ---- OS layer ----------------------------------------------------------

  /// Schedule spurious interrupt raises (on lines with bound handlers at
  /// fire time) and install the dropped-raise filter on a machine. A
  /// spurious raise that lands on a timer line is routed through the timer
  /// service as an early fire so driver bookkeeping stays consistent.
  void attach_interrupts(std::uint32_t node_id, mcu::Machine& machine,
                         os::TimerService& timers);

  // ---- trace I/O layer ---------------------------------------------------

  /// Perturb a serialized trace per the plan: maybe truncate at a random
  /// offset, maybe corrupt one random line. Zero-probability plans return
  /// the text unchanged without consuming any randomness.
  static std::string perturb_trace_text(std::string text,
                                        const FaultPlan& plan,
                                        util::Rng& rng);

  // ---- bookkeeping -------------------------------------------------------

  struct Counts {
    std::uint64_t busy_windows = 0;
    std::uint64_t mute_windows = 0;
    std::uint64_t sensor_stuck_windows = 0;
    std::uint64_t spurious_irqs = 0;  ///< scheduled (delivery may coalesce)
  };
  const Counts& counts() const { return counts_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  sim::EventQueue& queue_;
  FaultPlan plan_;
  util::Rng rng_;
  sim::Cycle horizon_;
  Counts counts_;

  /// Poisson window starts over [now, horizon) at `per_s` windows/second.
  std::vector<sim::Cycle> draw_poisson(util::Rng& rng, double per_s) const;
};

}  // namespace sent::fault
