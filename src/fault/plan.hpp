// Deterministic fault-injection plans (DESIGN.md §9).
//
// A FaultPlan is a pure description of how hard to shake the system: rates
// and magnitudes for perturbations at three layers —
//
//   hardware  — radio stuck-busy / mute windows, sensor stuck-at readings
//               and spikes, per-node clock (crystal) drift;
//   OS / sim  — spurious interrupts delivered between instructions and
//               dropped interrupt raises (lost wakeups);
//   trace I/O — record truncation / corruption on save/load round-trips.
//
// The plan holds no randomness. A FaultInjector realizes a plan against one
// run's world using a substream of that run's util::Rng, so for a fixed
// (plan, seed) every fault lands at the same virtual cycle no matter how
// many campaign worker threads are running — chaos campaigns stay
// bit-identical across --jobs (ZOFI-style injection into running programs,
// made reproducible).
#pragma once

#include "sim/time.hpp"

namespace sent::fault {

struct FaultPlan {
  // ---- hardware: radio ---------------------------------------------------
  /// Mean stuck-busy windows per simulated second per radio (Poisson). A
  /// window freezes the chip's busy flag high while the transceiver is
  /// idle, so application sends fail with SendResult::Busy — exactly the
  /// §VI-C failure the busy-flag bugs race against.
  double radio_stuck_busy_per_s = 0.0;
  double radio_stuck_busy_ms = 5.0;  ///< window duration

  /// Mean receiver-mute windows per simulated second per radio (Poisson).
  /// Frames arriving inside a window are dropped before the chip sees
  /// them, like a desensitized front end.
  double radio_mute_per_s = 0.0;
  double radio_mute_ms = 10.0;

  // ---- hardware: sensor --------------------------------------------------
  /// Mean stuck-at windows per simulated second per sensor (Poisson): the
  /// reading freezes at the value sampled on window entry.
  double sensor_stuck_per_s = 0.0;
  double sensor_stuck_ms = 50.0;

  /// Per-conversion probability of an additive glitch spike.
  double sensor_spike_prob = 0.0;
  double sensor_spike_counts = 200.0;  ///< added ADC counts (clamped to 1023)

  // ---- hardware: clock ---------------------------------------------------
  /// Per-node crystal drift: each attached node draws a drift uniformly in
  /// [-clock_drift_ppm, +clock_drift_ppm] and applies it to its timers.
  double clock_drift_ppm = 0.0;

  // ---- OS / sim ----------------------------------------------------------
  /// Mean spurious interrupts per simulated second per node (Poisson). A
  /// spurious raise targets a uniformly chosen bound line; delivery goes
  /// through the normal machine step so concurrency rules 1–3 hold.
  double spurious_irq_per_s = 0.0;

  /// Probability that any single raise_irq is silently dropped (a lost
  /// wakeup — the fault class that wedges LPL/CTP state machines).
  double drop_irq_prob = 0.0;

  // ---- trace I/O ---------------------------------------------------------
  /// Probability that a serialized trace is truncated at a random point on
  /// its save/load round-trip.
  double trace_truncate_prob = 0.0;

  /// Probability that one random line of a serialized trace is corrupted
  /// (a byte rewritten).
  double trace_corrupt_prob = 0.0;

  /// True when any hardware- or OS-layer knob is nonzero (trace faults are
  /// applied separately on round-trips and do not require an injector).
  bool any_runtime() const {
    return radio_stuck_busy_per_s > 0.0 || radio_mute_per_s > 0.0 ||
           sensor_stuck_per_s > 0.0 || sensor_spike_prob > 0.0 ||
           clock_drift_ppm > 0.0 || spurious_irq_per_s > 0.0 ||
           drop_irq_prob > 0.0;
  }

  bool any_trace() const {
    return trace_truncate_prob > 0.0 || trace_corrupt_prob > 0.0;
  }

  bool any() const { return any_runtime() || any_trace(); }

  /// Canonical chaos grid point: every rate/probability scales linearly
  /// with `intensity` (0 = clean, 1 = the bench's full storm); magnitudes
  /// (window lengths, spike size) stay fixed so intensity sweeps frequency,
  /// not fault shape.
  static FaultPlan at_intensity(double intensity);
};

}  // namespace sent::fault
