#include "fault/stream_chaos.hpp"

#include <algorithm>

namespace sent::fault {

StreamChaosPlan StreamChaosPlan::at_intensity(double intensity) {
  StreamChaosPlan plan;
  plan.corrupt_prob = 0.05 * intensity;
  plan.truncate_prob = 0.02 * intensity;
  plan.drop_prob = 0.03 * intensity;
  plan.dup_prob = 0.05 * intensity;
  plan.reorder_prob = 0.20 * intensity;
  plan.stall_prob = 0.01 * intensity;
  return plan;
}

std::vector<ChaosFrame> perturb_frames(
    const std::vector<std::vector<std::uint8_t>>& frames,
    const StreamChaosPlan& plan, util::Rng& rng) {
  std::vector<ChaosFrame> out;
  out.reserve(frames.size());
  std::uint64_t stall_shift = 0;  // a stalled producer delays everything after
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (plan.stall_prob > 0.0 && rng.chance(plan.stall_prob))
      stall_shift += plan.stall_ticks;
    if (plan.drop_prob > 0.0 && rng.chance(plan.drop_prob)) continue;

    ChaosFrame attempt;
    attempt.bytes = frames[i];
    attempt.send_tick = i + stall_shift;
    if (plan.truncate_prob > 0.0 && !attempt.bytes.empty() &&
        rng.chance(plan.truncate_prob)) {
      attempt.bytes.resize(
          static_cast<std::size_t>(rng.below(attempt.bytes.size())));
    }
    if (plan.corrupt_prob > 0.0 && !attempt.bytes.empty() &&
        rng.chance(plan.corrupt_prob)) {
      std::size_t pos = static_cast<std::size_t>(
          rng.below(attempt.bytes.size()));
      // XOR with a nonzero mask always changes the byte, so a "corrupted"
      // frame is never accidentally intact.
      attempt.bytes[pos] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (plan.reorder_prob > 0.0 && plan.reorder_ticks > 0 &&
        rng.chance(plan.reorder_prob)) {
      attempt.send_tick += 1 + rng.below(plan.reorder_ticks);
    }
    if (plan.dup_prob > 0.0 && rng.chance(plan.dup_prob)) {
      ChaosFrame dup = attempt;
      dup.send_tick += 1 + rng.below(plan.reorder_ticks ? plan.reorder_ticks
                                                        : 1);
      out.push_back(std::move(dup));
    }
    out.push_back(std::move(attempt));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ChaosFrame& a, const ChaosFrame& b) {
                     return a.send_tick < b.send_tick;
                   });
  return out;
}

}  // namespace sent::fault
