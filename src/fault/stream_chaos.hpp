// Ingest-path chaos (DESIGN.md §14).
//
// The runtime FaultPlan shakes the *system under test*; a StreamChaosPlan
// shakes the *transport between the fleet and the ingest service*: frames
// get corrupted, truncated, dropped, duplicated, delayed out of order, or
// held back by a stalled producer. perturb_frames() is pure — it rewrites
// an encoded frame sequence into delivery attempts with logical-tick
// delays, holding no randomness of its own — so for a fixed (plan, rng
// substream) the same storm hits the ingest byte for byte at any --jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sent::fault {

struct StreamChaosPlan {
  double corrupt_prob = 0.0;   ///< one byte of the frame is rewritten
  double truncate_prob = 0.0;  ///< frame cut short at a random point
  double drop_prob = 0.0;      ///< frame never arrives
  double dup_prob = 0.0;       ///< frame delivered a second time, later
  double reorder_prob = 0.0;   ///< frame delayed past its successors
  std::uint64_t reorder_ticks = 8;  ///< max reorder delay (uniform 1..max)
  /// Per-frame probability the producer goes silent BEFORE sending it;
  /// the stall delays this and every later frame of the stream, so it
  /// exercises the ingest's stall watchdog rather than a single gap.
  double stall_prob = 0.0;
  std::uint64_t stall_ticks = 96;

  bool any() const {
    return corrupt_prob > 0.0 || truncate_prob > 0.0 || drop_prob > 0.0 ||
           dup_prob > 0.0 || reorder_prob > 0.0 || stall_prob > 0.0;
  }

  /// Canonical chaos grid point, mirroring FaultPlan::at_intensity: rates
  /// scale linearly with `intensity`, magnitudes stay fixed.
  static StreamChaosPlan at_intensity(double intensity);
};

/// One delivery attempt: offer `bytes` once the stream's logical send clock
/// reaches `send_tick` (the driver maps ticks onto FleetIngest::tick()).
struct ChaosFrame {
  std::vector<std::uint8_t> bytes;
  std::uint64_t send_tick = 0;
};

/// Rewrite an encoded frame sequence (trace::encode_trace output) into
/// delivery attempts, sorted by send_tick (ties keep encode order). With a
/// default plan this is the identity schedule: one attempt per frame at
/// ticks 0..N-1.
std::vector<ChaosFrame> perturb_frames(
    const std::vector<std::vector<std::uint8_t>>& frames,
    const StreamChaosPlan& plan, util::Rng& rng);

}  // namespace sent::fault
