#include "hw/adc.hpp"

#include "util/assert.hpp"

namespace sent::hw {

AdcDevice::AdcDevice(sim::EventQueue& queue, mcu::Machine& machine,
                     util::Rng rng)
    : queue_(queue),
      machine_(machine),
      rng_(rng),
      sensor_(make_constant_sensor(0)),
      mean_latency_(sim::cycles_from_micros(200)),
      jitter_(sim::cycles_from_micros(40)) {}

void AdcDevice::set_sensor(SensorFn sensor) {
  SENT_REQUIRE(sensor != nullptr);
  sensor_ = std::move(sensor);
}

void AdcDevice::set_conversion_time(sim::Cycle mean, sim::Cycle jitter) {
  SENT_REQUIRE(mean > 0);
  SENT_REQUIRE(jitter <= mean);
  mean_latency_ = mean;
  jitter_ = jitter;
}

bool AdcDevice::request_read() {
  if (busy_) {
    ++dropped_;
    return false;
  }
  busy_ = true;
  sim::Cycle latency = mean_latency_;
  if (jitter_ > 0) {
    latency = mean_latency_ - jitter_ +
              static_cast<sim::Cycle>(rng_.below(2 * jitter_ + 1));
  }
  // Conversion-complete is never cancelled, so it can ride the queue's
  // deferred-inline path when it turns out to be the next event.
  queue_.schedule_or_inline(queue_.now() + latency, [this] {
    busy_ = false;
    value_ = sensor_(queue_.now());
    ++conversions_;
    machine_.raise_irq(os::irq::kAdc);
  });
  return true;
}

}  // namespace sent::hw
