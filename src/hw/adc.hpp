// ADC device.
//
// The application requests a conversion (Read.read in TinyOS); after the
// conversion time (plus small jitter) the chip latches a sensor reading and
// raises the ADC data-ready interrupt — the event type of case study I.
#pragma once

#include <cstdint>

#include "hw/sensor.hpp"
#include "mcu/machine.hpp"
#include "os/irq.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace sent::hw {

class AdcDevice {
 public:
  AdcDevice(sim::EventQueue& queue, mcu::Machine& machine, util::Rng rng);

  void set_sensor(SensorFn sensor);

  /// Mean conversion latency (default ~200 us) and uniform jitter bound.
  void set_conversion_time(sim::Cycle mean, sim::Cycle jitter);

  /// Start a conversion. Ignored (returns false) if one is in flight —
  /// real ADCs drop overlapping requests.
  bool request_read();

  /// Latched reading; valid from the data-ready interrupt until the next
  /// conversion completes.
  std::uint16_t value() const { return value_; }

  bool busy() const { return busy_; }

  std::uint64_t conversions() const { return conversions_; }
  std::uint64_t dropped_requests() const { return dropped_; }

 private:
  sim::EventQueue& queue_;
  mcu::Machine& machine_;
  util::Rng rng_;
  SensorFn sensor_;
  sim::Cycle mean_latency_;
  sim::Cycle jitter_;
  bool busy_ = false;
  std::uint16_t value_ = 0;
  std::uint64_t conversions_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sent::hw
