#include "hw/energy.hpp"

#include "util/assert.hpp"

namespace sent::hw {

EnergyBreakdown estimate_energy(const trace::NodeTrace& trace,
                                sim::Cycle tx_airtime,
                                const EnergyParams& params,
                                const mcu::MachineCosts& costs) {
  SENT_REQUIRE(trace.run_end > 0);
  SENT_REQUIRE(tx_airtime <= trace.run_end);

  // Active MCU cycles: executed instruction costs plus the dispatch
  // overhead of every lifecycle transition.
  sim::Cycle active = 0;
  for (const auto& e : trace.instrs) {
    SENT_REQUIRE(e.instr < trace.instr_table.size());
    active += trace.instr_table[e.instr].cycles;
  }
  for (const auto& item : trace.lifecycle) {
    switch (item.kind) {
      case trace::LifecycleKind::Int:
        active += costs.int_entry + costs.wakeup;
        break;
      case trace::LifecycleKind::Reti:
        active += costs.reti;
        break;
      case trace::LifecycleKind::RunTask:
        active += costs.run_task + costs.task_ret;
        break;
      case trace::LifecycleKind::PostTask:
        break;  // accounted inside the posting instruction's cost
    }
  }
  active = std::min(active, trace.run_end);

  auto seconds = [](sim::Cycle c) { return sim::seconds_from_cycles(c); };
  double active_s = seconds(active);
  double sleep_s = seconds(trace.run_end - active);
  double tx_s = seconds(tx_airtime);
  double rx_s = seconds(trace.run_end - tx_airtime);

  EnergyBreakdown out;
  out.mcu_active_mj = params.mcu_active_mw * active_s;
  out.mcu_sleep_mj = params.mcu_sleep_mw * sleep_s;
  out.radio_tx_mj = params.radio_tx_mw * tx_s;
  out.radio_rx_mj = params.radio_rx_mw * rx_s;
  out.mcu_duty_cycle =
      static_cast<double>(active) / static_cast<double>(trace.run_end);
  return out;
}

EnergyBreakdown estimate_energy_lpl(const trace::NodeTrace& trace,
                                    sim::Cycle tx_airtime,
                                    const LplParams& lpl,
                                    const EnergyParams& params,
                                    const mcu::MachineCosts& costs) {
  EnergyBreakdown out = estimate_energy(trace, tx_airtime, params, costs);
  if (!lpl.enabled) return out;
  // The idle-listening share shrinks to the LPL duty cycle.
  double rx_s = sim::seconds_from_cycles(trace.run_end - tx_airtime);
  out.radio_rx_mj = params.radio_rx_mw * rx_s * lpl.duty_cycle();
  return out;
}

}  // namespace sent::hw
