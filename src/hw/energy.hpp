// Per-node energy accounting.
//
// WSN applications are event-driven precisely to save energy (§III); this
// meter quantifies it. MCU energy is derived from the recorded trace
// (active cycles = executed instruction costs plus dispatch overheads,
// everything else is sleep); radio energy from the chip's accumulated
// transmit airtime, with the receiver assumed always listening when not
// transmitting (CC1000 without low-power listening). Power constants are
// Mica2-flavoured and overridable.
#pragma once

#include "hw/radio_params.hpp"
#include "mcu/machine.hpp"
#include "sim/time.hpp"
#include "trace/recorder.hpp"

namespace sent::hw {

struct EnergyParams {
  // Milliwatts.
  double mcu_active_mw = 24.0;  ///< ATmega128L active @ 3V
  double mcu_sleep_mw = 0.03;   ///< power-save mode
  double radio_tx_mw = 76.0;    ///< CC1000 @ 0 dBm
  double radio_rx_mw = 36.0;    ///< receive / listen
};

struct EnergyBreakdown {
  // Millijoules.
  double mcu_active_mj = 0.0;
  double mcu_sleep_mj = 0.0;
  double radio_tx_mj = 0.0;
  double radio_rx_mj = 0.0;

  double total_mj() const {
    return mcu_active_mj + mcu_sleep_mj + radio_tx_mj + radio_rx_mj;
  }
  /// Fraction of the run the MCU was awake.
  double mcu_duty_cycle = 0.0;
};

/// Estimate a node's energy over its recorded run. `tx_airtime` is the
/// radio's total transmit time (RadioChip::tx_airtime()); `costs` must
/// match the machine's configured dispatch costs.
EnergyBreakdown estimate_energy(const trace::NodeTrace& trace,
                                sim::Cycle tx_airtime,
                                const EnergyParams& params = {},
                                const mcu::MachineCosts& costs = {});

/// Same, for a node running low-power listening: the receiver only
/// listens for the LPL duty cycle of its idle time (afterglow and
/// forced-on windows are second-order and ignored).
EnergyBreakdown estimate_energy_lpl(const trace::NodeTrace& trace,
                                    sim::Cycle tx_airtime,
                                    const LplParams& lpl,
                                    const EnergyParams& params = {},
                                    const mcu::MachineCosts& costs = {});

}  // namespace sent::hw
