#include "hw/radio.hpp"

#include "util/assert.hpp"

namespace sent::hw {

const char* to_string(TxStatus status) {
  switch (status) {
    case TxStatus::Success: return "Success";
    case TxStatus::NoCts: return "NoCts";
    case TxStatus::NoAck: return "NoAck";
    case TxStatus::ChannelStuck: return "ChannelStuck";
  }
  return "?";
}

RadioChip::RadioChip(sim::EventQueue& queue, mcu::Machine& machine,
                     net::Channel& channel, net::NodeId node_id,
                     util::Rng rng, RadioParams params)
    : queue_(queue),
      machine_(machine),
      channel_(channel),
      node_id_(node_id),
      rng_(rng),
      params_(params) {
  channel_.add_node(node_id_, this);
}

SendResult RadioChip::send(net::Packet packet) {
  if (busy_) {
    ++sends_rejected_;
    return SendResult::Busy;
  }
  ++sends_accepted_;
  busy_ = true;
  outgoing_ = std::move(packet);
  outgoing_.src = node_id_;
  cca_attempts_ = 0;
  rts_retries_ = 0;
  data_retries_ = 0;
  start_csma();
  return SendResult::Ok;
}

void RadioChip::set_lpl(const LplParams& lpl) {
  SENT_REQUIRE(!busy_);
  if (lpl.enabled) {
    SENT_REQUIRE(lpl.on_duration >= 1);
    SENT_REQUIRE(lpl.wake_interval > lpl.on_duration);
  }
  lpl_ = lpl;
  lpl_phase_ = rng_.below(std::max<sim::Cycle>(lpl.wake_interval, 1));
}

bool RadioChip::listening(sim::Cycle now) const {
  if (!lpl_.enabled) return true;
  if (state_ != TxState::Idle || busy_) return true;  // transceiver active
  if (now < awake_until_) return true;                // afterglow
  sim::Cycle in_cycle = (now + lpl_phase_) % lpl_.wake_interval;
  return in_cycle < lpl_.on_duration;
}

RadioChip::Event RadioChip::take_event() {
  SENT_REQUIRE_MSG(!events_.empty(), "take_event on empty chip event queue");
  Event e = std::move(events_.front());
  events_.pop_front();
  return e;
}

void RadioChip::inject_stuck_busy(sim::Cycle duration) {
  if (busy_ || state_ != TxState::Idle) return;  // honestly busy already
  busy_ = true;
  fault_busy_ = true;
  ++fault_busy_windows_;
  queue_.schedule_after(duration, [this] {
    // Only clear what the fault set; a send() cannot have started while
    // the flag was held, so no real exchange can own busy_ here.
    if (fault_busy_) {
      fault_busy_ = false;
      busy_ = false;
    }
  });
}

void RadioChip::inject_mute(sim::Cycle duration) {
  deaf_until_ = std::max(deaf_until_, queue_.now() + duration);
}

void RadioChip::arm_timer(sim::Cycle delay, void (RadioChip::*fn)()) {
  SENT_ASSERT(pending_timer_ == 0);
  pending_timer_ = queue_.schedule_after(delay, [this, fn] {
    pending_timer_ = 0;
    (this->*fn)();
  });
}

void RadioChip::disarm_timer() {
  if (pending_timer_ != 0) {
    queue_.cancel(pending_timer_);
    pending_timer_ = 0;
  }
}

void RadioChip::start_csma() {
  state_ = TxState::Csma;
  cca();
}

sim::Cycle RadioChip::transmit_own(const net::Packet& frame) {
  sim::Cycle air = params_.airtime(frame.size_bytes());
  channel_.transmit(node_id_, frame, air);
  antenna_free_at_ = queue_.now() + air;
  tx_airtime_ += air;
  return antenna_free_at_;
}

sim::Cycle RadioChip::schedule_control(net::Packet frame) {
  sim::Cycle air = params_.airtime(frame.size_bytes());
  sim::Cycle start =
      std::max(queue_.now() + params_.turnaround, antenna_free_at_);
  antenna_free_at_ = start + air;
  tx_airtime_ += air;
  queue_.schedule_or_inline(start, [this, frame = std::move(frame), air] {
    channel_.transmit(node_id_, frame, air);
  });
  return antenna_free_at_;
}

void RadioChip::cca() {
  SENT_ASSERT(state_ == TxState::Csma);
  // The antenna may be reserved by a pending control response that has not
  // hit the air yet; treat that like a busy carrier.
  if (queue_.now() < antenna_free_at_) {
    sim::Cycle backoff =
        params_.backoff_slot * (1 + rng_.below(params_.max_backoff_slots));
    if (++cca_attempts_ >= params_.max_cca_attempts) {
      complete(TxStatus::ChannelStuck);
      return;
    }
    arm_timer(backoff, &RadioChip::cca);
    return;
  }
  if (!channel_.carrier_busy(node_id_)) {
    if (lpl_.enabled) {
      // BoX-MAC: no handshake; start the repetition train that spans a
      // full wake interval of every neighbour.
      state_ = TxState::LplTrain;
      train_acked_ = false;
      train_deadline_ = queue_.now() + lpl_.wake_interval +
                        params_.airtime(outgoing_.size_bytes());
      lpl_send_repetition();
      return;
    }
    // Channel clear: broadcast data goes straight out; unicast data starts
    // the RTS/CTS handshake.
    if (outgoing_.dst == net::kBroadcast) {
      send_data();
    } else {
      send_rts();
    }
    return;
  }
  if (++cca_attempts_ >= params_.max_cca_attempts) {
    complete(TxStatus::ChannelStuck);
    return;
  }
  sim::Cycle backoff =
      params_.backoff_slot *
      (1 + rng_.below(params_.max_backoff_slots));
  arm_timer(backoff, &RadioChip::cca);
}

void RadioChip::send_rts() {
  net::Packet rts;
  rts.type = net::FrameType::Rts;
  rts.dst = outgoing_.dst;
  rts.seq = outgoing_.seq;
  sim::Cycle rts_air = params_.airtime(rts.size_bytes());
  transmit_own(rts);
  state_ = TxState::WaitCts;
  net::Packet cts;  // sized like the expected reply
  cts.type = net::FrameType::Cts;
  sim::Cycle deadline = rts_air + params_.turnaround +
                        params_.airtime(cts.size_bytes()) +
                        params_.timeout_slack;
  arm_timer(deadline, &RadioChip::on_cts_timeout);
}

void RadioChip::on_cts_timeout() {
  SENT_ASSERT(state_ == TxState::WaitCts);
  if (++rts_retries_ >= params_.max_rts_retries) {
    complete(TxStatus::NoCts);
    return;
  }
  start_csma();
}

void RadioChip::send_data() {
  sim::Cycle air = params_.airtime(outgoing_.size_bytes());
  transmit_own(outgoing_);
  state_ = TxState::SendData;
  if (outgoing_.dst == net::kBroadcast) {
    // Broadcasts complete when the frame leaves the antenna.
    arm_timer(air, &RadioChip::on_ack_timeout);  // reused as "tx finished"
    return;
  }
  net::Packet ack;
  ack.type = net::FrameType::Ack;
  state_ = TxState::WaitAck;
  sim::Cycle deadline = air + params_.turnaround +
                        params_.airtime(ack.size_bytes()) +
                        params_.timeout_slack;
  arm_timer(deadline, &RadioChip::on_ack_timeout);
}

void RadioChip::lpl_send_repetition() {
  SENT_ASSERT(state_ == TxState::LplTrain);
  sim::Cycle air = params_.airtime(outgoing_.size_bytes());
  transmit_own(outgoing_);
  // Check back when this repetition leaves the air, leaving the inter-
  // repetition gap wide enough for a returning ACK (turnaround + ACK
  // airtime + one more turnaround of guard so the ACK's tail never
  // collides with the next repetition's head).
  arm_timer(air + 2 * params_.turnaround + params_.airtime(6),
            &RadioChip::on_lpl_repetition_done);
}

void RadioChip::on_lpl_repetition_done() {
  if (state_ != TxState::LplTrain) return;  // completed via ACK meanwhile
  if (train_acked_) {
    complete(TxStatus::Success);
    return;
  }
  if (queue_.now() >= train_deadline_) {
    // Broadcast trains are done after one full wake interval; unicast
    // trains without an ACK count as a failed attempt.
    if (outgoing_.dst == net::kBroadcast) {
      complete(TxStatus::Success);
    } else if (++data_retries_ >= params_.max_data_retries) {
      complete(TxStatus::NoAck);
    } else {
      start_csma();  // another train
    }
    return;
  }
  lpl_send_repetition();
}

void RadioChip::on_ack_timeout() {
  if (state_ == TxState::SendData) {
    // Broadcast airtime finished.
    complete(TxStatus::Success);
    return;
  }
  SENT_ASSERT(state_ == TxState::WaitAck);
  if (++data_retries_ >= params_.max_data_retries) {
    complete(TxStatus::NoAck);
    return;
  }
  start_csma();
}

void RadioChip::complete(TxStatus status) {
  disarm_timer();
  state_ = TxState::Idle;
  if (status == TxStatus::Success)
    ++tx_success_;
  else
    ++tx_failed_;
  auto finish = [this, status] {
    busy_ = false;
    if (signal_txdone_)
      push_event(Event{Event::Kind::TxDone, outgoing_, status});
  };
  if (params_.post_tx_hold == 0) {
    finish();
  } else {
    // The busy flag outlives the on-air exchange by the firmware's
    // post-processing time; send() keeps failing meanwhile.
    queue_.schedule_or_inline(queue_.now() + params_.post_tx_hold, finish);
  }
}

void RadioChip::push_event(Event event) {
  events_.push_back(std::move(event));
  machine_.raise_irq(os::irq::kRadioSpi);
}

void RadioChip::on_frame(const net::Packet& frame) {
  if (queue_.now() < deaf_until_) {
    ++missed_muted_;  // injected mute window: front end never sees it
    return;
  }
  switch (frame.type) {
    case net::FrameType::Rts: {
      if (frame.dst != node_id_) return;  // overheard, address filter
      if (!listening(queue_.now())) return;  // asleep: sender will retry
      // Respond with CTS only when our own transmitter is quiet; an
      // ignored RTS makes the sender retry, which is the real behaviour.
      if (state_ != TxState::Idle) return;
      net::Packet cts;
      cts.type = net::FrameType::Cts;
      cts.dst = frame.src;
      cts.seq = frame.seq;
      schedule_control(std::move(cts));
      return;
    }
    case net::FrameType::Cts: {
      if (frame.dst != node_id_) return;
      if (state_ != TxState::WaitCts) return;  // late CTS, ignore
      disarm_timer();
      // Latch the transition now so a duplicate CTS during the turnaround
      // cannot schedule a second data transmission.
      state_ = TxState::SendData;
      queue_.schedule_or_inline(queue_.now() + params_.turnaround, [this] {
        if (state_ == TxState::SendData && busy_) send_data();
      });
      return;
    }
    case net::FrameType::Ack: {
      if (frame.dst != node_id_) return;
      if (state_ == TxState::LplTrain) {
        // The receiver woke and acknowledged: stop the train at the next
        // repetition boundary (the current frame is already on the air).
        train_acked_ = true;
        return;
      }
      if (state_ != TxState::WaitAck) return;
      complete(TxStatus::Success);
      return;
    }
    case net::FrameType::Data: {
      if (frame.dst != node_id_ && frame.dst != net::kBroadcast) return;
      if (!listening(queue_.now())) {
        ++missed_asleep_;
        return;
      }
      if (lpl_.enabled) {
        // Activity afterglow: stay awake to catch follow-up traffic.
        awake_until_ = queue_.now() + lpl_.afterglow;
        // Repetition trains deliver the same frame several times while we
        // are awake; deduplicate on (src, seq) for the MCU's benefit.
        if (frame.src == last_rx_src_ && frame.seq == last_rx_seq_ &&
            have_last_rx_) {
          return;
        }
        last_rx_src_ = frame.src;
        last_rx_seq_ = frame.seq;
        have_last_rx_ = true;
      }
      ++rx_frames_;
      if (frame.dst == node_id_) {
        // Link-layer ACK goes out first (half-duplex antenna, like a real
        // radio's hardware/driver auto-ACK); the MCU sees the packet only
        // once the ACK has left the air, so application sends triggered by
        // this arrival cannot collide with our own ACK.
        net::Packet ack;
        ack.type = net::FrameType::Ack;
        ack.dst = frame.src;
        ack.seq = frame.seq;
        sim::Cycle done = schedule_control(std::move(ack));
        queue_.schedule_or_inline(done, [this, frame] {
          push_event(Event{Event::Kind::RxDone, frame, TxStatus::Success});
        });
      } else {
        push_event(Event{Event::Kind::RxDone, frame, TxStatus::Success});
      }
      return;
    }
  }
}

}  // namespace sent::hw
