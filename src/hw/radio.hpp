// CC1000-style radio chip.
//
// The chip exposes exactly the surface the paper's case studies depend on:
//
//   * a `send` that FAILS IMMEDIATELY (returns Busy) when the busy flag is
//     set — the flag is set for the whole RTS/CTS/DATA/ACK exchange and
//     "cleared only if it is done when a corresponding ACK packet arrives"
//     (§VI-C); case study II's bug actively drops a packet on this result
//     and case study III's CTP leaves its state machine wedged on it;
//   * an SPI interrupt raised for every chip event (packet arrival or send
//     completion), the event type of case study II;
//   * chip-autonomous CSMA with random backoff plus automatic CTS and ACK
//     responses, so control traffic occupies the channel without MCU help.
//
// MCU-facing methods (send / take_event / busy) are called from virtual
// instructions; everything else runs on the simulation event queue.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "hw/radio_params.hpp"
#include "mcu/machine.hpp"
#include "net/channel.hpp"
#include "os/irq.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace sent::hw {

/// Immediate result of RadioChip::send (SUCCESS/EBUSY in TinyOS terms).
enum class SendResult : std::uint8_t { Ok, Busy };

/// Final status of an accepted transmission.
enum class TxStatus : std::uint8_t {
  Success,       ///< ACK received (or broadcast airtime finished)
  NoCts,         ///< RTS retries exhausted without CTS
  NoAck,         ///< DATA retries exhausted without ACK
  ChannelStuck,  ///< carrier never cleared (CCA attempts exhausted)
};

const char* to_string(TxStatus status);

class RadioChip final : public net::RadioListener {
 public:
  RadioChip(sim::EventQueue& queue, mcu::Machine& machine,
            net::Channel& channel, net::NodeId node_id, util::Rng rng,
            RadioParams params = {});

  RadioChip(const RadioChip&) = delete;
  RadioChip& operator=(const RadioChip&) = delete;

  // ---- MCU-facing API -------------------------------------------------

  /// Begin a transmission. Returns Busy (and does nothing) if a previous
  /// transmission is still in progress. On Ok the busy flag is set until a
  /// TxDone event is delivered.
  SendResult send(net::Packet packet);

  bool busy() const { return busy_; }

  /// When disabled, send completions do not queue a TxDone event or raise
  /// the SPI interrupt (fire-and-forget firmware configuration); the busy
  /// flag still clears and statistics still count. Packet arrivals always
  /// interrupt. Default: enabled.
  void set_signal_txdone(bool enabled) { signal_txdone_ = enabled; }

  /// Enable low-power listening. Frames ending outside a wake window (and
  /// outside forced-on periods: own TX in progress, recent activity
  /// afterglow) are missed. Data sends become repetition trains spanning a
  /// wake interval, and the busy flag is held for the WHOLE train — which
  /// is how LPL widens busy-flag race windows. Must be set before the
  /// first send.
  void set_lpl(const LplParams& lpl);
  bool lpl_enabled() const { return lpl_.enabled; }

  /// True when the receiver is listening at `now` (testing/energy).
  bool listening(sim::Cycle now) const;

  std::uint64_t frames_missed_asleep() const { return missed_asleep_; }

  // ---- fault-injection hooks (src/fault) --------------------------------

  /// Freeze the busy flag high for `duration` while the transceiver is
  /// idle: application sends fail with SendResult::Busy until the window
  /// ends. Ignored (no effect) when a real exchange is in progress —
  /// the flag is then already honestly busy.
  void inject_stuck_busy(sim::Cycle duration);

  /// Deafen the receiver until now + `duration`: frames on the air are
  /// dropped before the chip reacts to them (no CTS/ACK responses, no RX
  /// events). Overlapping windows extend the deadline.
  void inject_mute(sim::Cycle duration);

  std::uint64_t fault_busy_windows() const { return fault_busy_windows_; }
  std::uint64_t frames_missed_muted() const { return missed_muted_; }

  struct Event {
    enum class Kind : std::uint8_t { RxDone, TxDone };
    Kind kind;
    net::Packet packet;            ///< received frame / the sent packet
    TxStatus status = TxStatus::Success;  ///< TxDone only
  };

  bool has_event() const { return !events_.empty(); }
  std::size_t pending_events() const { return events_.size(); }
  Event take_event();

  // ---- channel listener ------------------------------------------------

  void on_frame(const net::Packet& frame) override;

  // ---- statistics -------------------------------------------------------

  std::uint64_t sends_accepted() const { return sends_accepted_; }
  std::uint64_t sends_rejected_busy() const { return sends_rejected_; }
  std::uint64_t tx_success() const { return tx_success_; }
  std::uint64_t tx_failed() const { return tx_failed_; }
  std::uint64_t rx_frames() const { return rx_frames_; }

  /// Total transmit airtime (all own frames incl. control responses), for
  /// energy accounting.
  sim::Cycle tx_airtime() const { return tx_airtime_; }

  const RadioParams& params() const { return params_; }
  net::NodeId node_id() const { return node_id_; }

 private:
  enum class TxState : std::uint8_t {
    Idle,
    Csma,       ///< carrier sensing / backing off
    WaitCts,    ///< RTS sent, awaiting CTS
    SendData,   ///< DATA on air (broadcast or post-CTS unicast)
    WaitAck,    ///< DATA sent, awaiting ACK
    LplTrain,   ///< LPL repetition train in progress
  };

  sim::EventQueue& queue_;
  mcu::Machine& machine_;
  net::Channel& channel_;
  net::NodeId node_id_;
  util::Rng rng_;
  RadioParams params_;

  bool busy_ = false;
  bool signal_txdone_ = true;
  TxState state_ = TxState::Idle;
  // Fault-injection state: busy flag held high by an injected window (not
  // by a real exchange), and the receiver-mute deadline.
  bool fault_busy_ = false;
  sim::Cycle deaf_until_ = 0;
  std::uint64_t fault_busy_windows_ = 0;
  std::uint64_t missed_muted_ = 0;
  /// Half-duplex antenna: no two own transmissions may overlap. Control
  /// responses (CTS/ACK) and state-machine frames all serialize on this.
  sim::Cycle antenna_free_at_ = 0;
  sim::Cycle tx_airtime_ = 0;

  LplParams lpl_;
  sim::Cycle lpl_phase_ = 0;       ///< wake-schedule offset
  sim::Cycle awake_until_ = 0;     ///< afterglow deadline
  sim::Cycle train_deadline_ = 0;  ///< end of the current repetition train
  bool train_acked_ = false;
  std::uint64_t missed_asleep_ = 0;
  // LPL repetition-train dedup at the receiver.
  net::NodeId last_rx_src_ = 0;
  std::uint16_t last_rx_seq_ = 0;
  bool have_last_rx_ = false;
  net::Packet outgoing_;
  std::uint32_t cca_attempts_ = 0;
  std::uint32_t rts_retries_ = 0;
  std::uint32_t data_retries_ = 0;
  sim::EventId pending_timer_ = 0;  // backoff or timeout event

  std::deque<Event> events_;

  std::uint64_t sends_accepted_ = 0, sends_rejected_ = 0;
  std::uint64_t tx_success_ = 0, tx_failed_ = 0, rx_frames_ = 0;

  void start_csma();
  void cca();
  void send_rts();
  void send_data();
  void lpl_send_repetition();
  void on_lpl_repetition_done();
  /// Transmit an own frame now, marking the antenna occupied. Returns the
  /// cycle at which the frame leaves the air.
  sim::Cycle transmit_own(const net::Packet& frame);
  /// Schedule a control response (CTS/ACK) after the RX->TX turnaround,
  /// serialized behind any own transmission. Returns its end cycle.
  sim::Cycle schedule_control(net::Packet frame);
  void on_cts_timeout();
  void on_ack_timeout();
  void complete(TxStatus status);
  void push_event(Event event);
  void arm_timer(sim::Cycle delay, void (RadioChip::*fn)());
  void disarm_timer();
};

}  // namespace sent::hw
