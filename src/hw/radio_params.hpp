// Radio chip timing parameters.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace sent::hw {

struct RadioParams {
  /// Effective over-the-air bit rate. CC1000 on Mica2 is 19.2 kbps; the
  /// case-study scenarios that need shorter busy windows configure a
  /// 250 kbps (CC2420-class) rate instead.
  double bits_per_second = 19200.0;

  /// CSMA backoff slot; a backoff draws uniformly 1..16 slots.
  sim::Cycle backoff_slot = sim::cycles_from_micros(300);
  std::uint32_t max_backoff_slots = 16;

  /// Give up carrier-sensing after this many busy CCA checks.
  std::uint32_t max_cca_attempts = 24;

  /// RTS attempts (each preceded by CSMA) before reporting NoCts.
  std::uint32_t max_rts_retries = 3;

  /// DATA attempts awaiting ACK before reporting NoAck.
  std::uint32_t max_data_retries = 3;

  /// RX->TX turnaround before automatic CTS/ACK responses.
  sim::Cycle turnaround = sim::cycles_from_micros(200);

  /// Extra slack added to CTS/ACK wait deadlines.
  sim::Cycle timeout_slack = sim::cycles_from_micros(500);

  /// How long the busy flag stays set after a transmission finishes,
  /// modelling the firmware's post-exchange SPI/bookkeeping work. During
  /// the hold the channel is quiet but send() still fails — the window in
  /// which case study II's arrivals get actively dropped.
  sim::Cycle post_tx_hold = 0;

  /// Airtime of a frame of `bytes` bytes at this bit rate.
  sim::Cycle airtime(std::size_t bytes) const {
    double seconds = static_cast<double>(bytes) * 8.0 / bits_per_second;
    sim::Cycle c = sim::cycles_from_seconds(seconds);
    return c > 0 ? c : 1;
  }
};

/// Low-power listening (BoX-MAC-2 style duty cycling). The receiver wakes
/// for `on_duration` every `wake_interval` and sleeps otherwise; a sender
/// repeats its data frame back-to-back for a full wake interval so every
/// neighbour's wake window overlaps at least one repetition (unicast
/// trains stop early when the ACK arrives). RTS/CTS is not used in LPL
/// mode — the repetition train itself serializes the medium.
struct LplParams {
  bool enabled = false;
  sim::Cycle wake_interval = sim::cycles_from_millis(100);
  sim::Cycle on_duration = sim::cycles_from_millis(6);
  /// Stay-awake extension after hearing or sending traffic.
  sim::Cycle afterglow = sim::cycles_from_millis(10);

  /// Listening duty cycle (fraction of time the receiver is on when idle).
  double duty_cycle() const {
    return static_cast<double>(on_duration) /
           static_cast<double>(wake_interval);
  }
};

}  // namespace sent::hw
