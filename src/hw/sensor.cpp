#include "hw/sensor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

namespace sent::hw {

SensorFn make_temperature_sensor(util::Rng rng, double base, double amplitude,
                                 sim::Cycle period, double noise,
                                 double spike, double spike_prob) {
  auto state = std::make_shared<util::Rng>(rng);
  return [=](sim::Cycle now) -> std::uint16_t {
    double phase = 2.0 * std::numbers::pi *
                   static_cast<double>(now % period) /
                   static_cast<double>(period);
    double v = base + amplitude * std::sin(phase) + state->normal(0.0, noise);
    if (state->chance(spike_prob)) v += spike;
    v = std::clamp(v, 0.0, 1023.0);
    return static_cast<std::uint16_t>(v);
  };
}

SensorFn make_constant_sensor(std::uint16_t value) {
  return [value](sim::Cycle) { return value; };
}

SensorFn make_counter_sensor() {
  auto counter = std::make_shared<std::uint16_t>(0);
  return [counter](sim::Cycle) -> std::uint16_t {
    return (*counter)++ % 1024;
  };
}

}  // namespace sent::hw
