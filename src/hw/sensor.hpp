// Synthetic environmental sensor models.
//
// Substitution note (DESIGN.md §2): the paper samples a real temperature
// channel through the mote ADC; we generate a plausible signal (slow
// sinusoid + Gaussian noise + rare spikes) so the ADC path and the data
// values it produces exercise the same application code.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace sent::hw {

/// Maps virtual time to a 10-bit ADC reading (0..1023).
using SensorFn = std::function<std::uint16_t(sim::Cycle)>;

/// Temperature-like signal: `base` counts, diurnal-ish sinusoid of
/// `amplitude` counts with `period`, Gaussian noise with `noise` stddev,
/// and a spike of +`spike` counts with probability `spike_prob` per sample.
SensorFn make_temperature_sensor(util::Rng rng, double base = 500.0,
                                 double amplitude = 60.0,
                                 sim::Cycle period = sim::kCyclesPerSecond * 60,
                                 double noise = 4.0, double spike = 120.0,
                                 double spike_prob = 0.002);

/// Constant reading (tests).
SensorFn make_constant_sensor(std::uint16_t value);

/// Monotonic ramp wrapping at 1024 (tests: makes readings identifiable).
SensorFn make_counter_sensor();

}  // namespace sent::hw
