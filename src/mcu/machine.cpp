#include "mcu/machine.hpp"

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace sent::mcu {

namespace {

// Registered as one block on first use (DESIGN.md §11).
struct Metrics {
  obs::Counter raises = obs::Registry::global().counter("mcu.irq_raises");
  obs::Counter delivered =
      obs::Registry::global().counter("mcu.interrupts_delivered");
  obs::Counter dropped =
      obs::Registry::global().counter("mcu.interrupts_dropped");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

Machine::Machine(sim::EventQueue& queue, trace::Recorder& recorder,
                 const Program& program)
    : queue_(queue), recorder_(recorder), program_(program) {}

void Machine::set_task_provider(TaskProvider* provider) {
  SENT_REQUIRE(provider != nullptr);
  provider_ = provider;
}

void Machine::register_handler(trace::IrqLine line, CodeId handler) {
  SENT_REQUIRE(line < handlers_.size());
  SENT_REQUIRE_MSG(handlers_[line] == kNoHandler,
                   "line " << int(line) << " already has a handler");
  SENT_REQUIRE_MSG(!program_.code(handler).is_task,
                   "cannot bind a task as an interrupt handler");
  handlers_[line] = handler;
}

void Machine::raise_irq(trace::IrqLine line) {
  SENT_REQUIRE(line < 64);
  SENT_REQUIRE_MSG(handlers_[line] != kNoHandler,
                   "IRQ raised on unbound line " << int(line));
  Metrics::get().raises.inc();
  if (irq_drop_hook_ && irq_drop_hook_(line)) {
    ++irqs_dropped_;
    Metrics::get().dropped.inc();
    return;
  }
  pending_ |= (1ULL << line);
  // If this raise happens from inside an executing instruction, the current
  // step schedules its own continuation and will see the pending bit there.
  if (!step_scheduled_ && !in_step_) schedule_step(costs_.wakeup);
}

void Machine::notify_task_posted() {
  if (!step_scheduled_ && !in_step_) schedule_step(costs_.wakeup);
}

void Machine::disable_interrupts() { ++atomic_depth_; }

void Machine::enable_interrupts() {
  SENT_REQUIRE_MSG(atomic_depth_ > 0,
                   "enable_interrupts without matching disable");
  --atomic_depth_;
  // Pending lines latched during the atomic section get delivered at the
  // next step boundary; make sure one is scheduled if we are between
  // steps (enable from outside an instruction is unusual but legal).
  if (atomic_depth_ == 0 && pending_ != 0 && !step_scheduled_ && !in_step_)
    schedule_step(costs_.wakeup);
}

std::vector<trace::IrqLine> Machine::bound_lines() const {
  std::vector<trace::IrqLine> lines;
  for (std::size_t line = 0; line < handlers_.size(); ++line) {
    if (handlers_[line] != kNoHandler)
      lines.push_back(static_cast<trace::IrqLine>(line));
  }
  return lines;
}

bool Machine::sleeping() const {
  return frames_.empty() && pending_ == 0 && !step_scheduled_;
}

void Machine::schedule_step(std::uint32_t delay) {
  SENT_ASSERT(!step_scheduled_);
  step_scheduled_ = true;
  queue_.schedule_after(delay, [this] {
    step_scheduled_ = false;
    step();
  });
}

int Machine::deliverable_irq() const {
  if (pending_ == 0 || atomic_depth_ > 0) return -1;
  bool in_handler = !frames_.empty() && frames_.back().is_handler;
  int ceiling = 64;  // lines strictly below this may be delivered
  if (in_handler) {
    if (nesting_ == NestingPolicy::None) return -1;
    ceiling = frames_.back().line;  // only strictly higher priority nests
  }
  for (int line = 0; line < ceiling; ++line) {
    if (pending_ & (1ULL << line)) return line;
  }
  return -1;
}

void Machine::step() {
  struct StepGuard {
    bool& flag;
    explicit StepGuard(bool& f) : flag(f) { flag = true; }
    ~StepGuard() { flag = false; }
  } guard(in_step_);

  // 1. Interrupt delivery wins over everything (Rule 2).
  if (int line = deliverable_irq(); line >= 0) {
    pending_ &= ~(1ULL << line);
    ++ints_delivered_;
    Metrics::get().delivered.inc();
    recorder_.on_int(queue_.now(), static_cast<trace::IrqLine>(line));
    frames_.push_back(Frame{handlers_[static_cast<std::size_t>(line)], 0,
                            /*is_handler=*/true,
                            static_cast<trace::IrqLine>(line), 0});
    schedule_step(costs_.int_entry);
    return;
  }

  // 2. Execute / retire the active frame.
  if (!frames_.empty()) {
    Frame& frame = frames_.back();
    const CodeObject& code = program_.code(frame.code);
    if (frame.pc >= code.instrs.size()) {
      // Frame retired.
      if (frame.is_handler) {
        recorder_.on_reti(queue_.now(), frame.line);
        frames_.pop_back();
        schedule_step(costs_.reti);
      } else {
        recorder_.on_task_end(frame.run_item_index, queue_.now());
        frames_.pop_back();
        schedule_step(costs_.task_ret);
      }
      return;
    }
    const Instr& instr = code.instrs[frame.pc];
    recorder_.on_instr(queue_.now(), instr.global_id);
    StepAction action = instr.fn();
    // NOTE: instr.fn may post tasks or raise IRQs (via devices) but cannot
    // mutate the frame stack; `frame` stays valid.
    switch (action.kind) {
      case StepAction::Kind::Next:
        ++frame.pc;
        break;
      case StepAction::Kind::Jump:
        SENT_ASSERT_MSG(action.target < code.instrs.size(),
                        "jump target out of range in " << code.name);
        frame.pc = action.target;
        break;
      case StepAction::Kind::Return:
        frame.pc = static_cast<std::uint32_t>(code.instrs.size());
        break;
    }
    schedule_step(instr.cost);
    return;
  }

  // 3. No frame: start the next task (Rule 3, FIFO).
  SENT_ASSERT_MSG(provider_ != nullptr, "machine has no task provider");
  if (provider_->has_task()) {
    auto [task, code_id] = provider_->pop_task();
    SENT_ASSERT_MSG(program_.code(code_id).is_task,
                    "task queue yielded a non-task code object");
    std::size_t run_idx = recorder_.on_run_task(queue_.now(), task);
    frames_.push_back(
        Frame{code_id, 0, /*is_handler=*/false, 0, run_idx});
    schedule_step(costs_.run_task);
    return;
  }

  // 4. Nothing to do: sleep. A raise_irq / notify_task_posted wakes us.
}

}  // namespace sent::mcu
