#include "mcu/machine.hpp"

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace sent::mcu {

namespace {

// Registered as one block on first use (DESIGN.md §11).
struct Metrics {
  obs::Counter raises = obs::Registry::global().counter("mcu.irq_raises");
  obs::Counter delivered =
      obs::Registry::global().counter("mcu.interrupts_delivered");
  obs::Counter dropped =
      obs::Registry::global().counter("mcu.interrupts_dropped");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

Machine::Machine(sim::EventQueue& queue, trace::Recorder& recorder,
                 const Program& program)
    : queue_(queue),
      recorder_(recorder),
      program_(program),
      bytecode_(sim::dispatch_mode() == sim::DispatchMode::Bytecode) {}

Machine::~Machine() { flush_metrics(); }

void Machine::flush_metrics() {
  if (pending_raises_ == 0 && pending_delivered_ == 0 &&
      pending_dropped_ == 0) {
    return;
  }
  const Metrics& m = Metrics::get();
  if (pending_raises_ != 0) m.raises.inc(pending_raises_);
  if (pending_delivered_ != 0) m.delivered.inc(pending_delivered_);
  if (pending_dropped_ != 0) m.dropped.inc(pending_dropped_);
  pending_raises_ = pending_delivered_ = pending_dropped_ = 0;
}

void Machine::set_task_provider(TaskProvider* provider) {
  SENT_REQUIRE(provider != nullptr);
  provider_ = provider;
}

void Machine::register_handler(trace::IrqLine line, CodeId handler) {
  SENT_REQUIRE(line < handlers_.size());
  SENT_REQUIRE_MSG(handlers_[line] == kNoHandler,
                   "line " << int(line) << " already has a handler");
  SENT_REQUIRE_MSG(!program_.code(handler).is_task,
                   "cannot bind a task as an interrupt handler");
  SENT_REQUIRE_MSG(program_.code(handler).built_for == mode(),
                   "code object " << program_.code(handler).name
                                  << " was built for a different dispatch "
                                     "mode than this machine");
  handlers_[line] = handler;
}

void Machine::raise_irq(trace::IrqLine line) {
  SENT_REQUIRE(line < 64);
  SENT_REQUIRE_MSG(handlers_[line] != kNoHandler,
                   "IRQ raised on unbound line " << int(line));
  ++pending_raises_;
  if (irq_drop_hook_ && irq_drop_hook_(line)) {
    ++irqs_dropped_;
    ++pending_dropped_;
    return;
  }
  pending_ |= (1ULL << line);
  // If this raise happens from inside an executing instruction, the current
  // step schedules its own continuation and will see the pending bit there.
  if (!step_scheduled_ && !in_step_) wake(costs_.wakeup);
}

void Machine::notify_task_posted() {
  if (!step_scheduled_ && !in_step_) wake(costs_.wakeup);
}

void Machine::disable_interrupts() { ++atomic_depth_; }

void Machine::enable_interrupts() {
  SENT_REQUIRE_MSG(atomic_depth_ > 0,
                   "enable_interrupts without matching disable");
  --atomic_depth_;
  // Pending lines latched during the atomic section get delivered at the
  // next step boundary; make sure one is scheduled if we are between
  // steps (enable from outside an instruction is unusual but legal).
  if (atomic_depth_ == 0 && pending_ != 0 && !step_scheduled_ && !in_step_)
    wake(costs_.wakeup);
}

std::vector<trace::IrqLine> Machine::bound_lines() const {
  std::vector<trace::IrqLine> lines;
  for (std::size_t line = 0; line < handlers_.size(); ++line) {
    if (handlers_[line] != kNoHandler)
      lines.push_back(static_cast<trace::IrqLine>(line));
  }
  return lines;
}

bool Machine::sleeping() const {
  return frames_.empty() && pending_ == 0 && !step_scheduled_;
}

void Machine::schedule_step(std::uint32_t delay) {
  SENT_ASSERT(!step_scheduled_);
  step_scheduled_ = true;
  queue_.schedule_after(delay, [this] {
    step_scheduled_ = false;
    step();
  });
}

void Machine::wake(std::uint32_t delay) {
  SENT_ASSERT(!step_scheduled_);
  step_scheduled_ = true;
  auto fire = [this] {
    step_scheduled_ = false;
    step();
  };
  // Wake-ups are raised from inside device event closures; on the bytecode
  // substrate they ride the queue's deferred-inline path and usually skip
  // the heap entirely. The reference engine keeps the scheduled round-trip
  // (its pre-bytecode cost profile).
  if (bytecode_) {
    queue_.schedule_or_inline(queue_.now() + delay, fire);
  } else {
    queue_.schedule_after(delay, fire);
  }
}

int Machine::deliverable_irq() const {
  if (pending_ == 0 || atomic_depth_ > 0) return -1;
  bool in_handler = !frames_.empty() && frames_.back().is_handler;
  int ceiling = 64;  // lines strictly below this may be delivered
  if (in_handler) {
    if (nesting_ == NestingPolicy::None) return -1;
    ceiling = frames_.back().line;  // only strictly higher priority nests
  }
  for (int line = 0; line < ceiling; ++line) {
    if (pending_ & (1ULL << line)) return line;
  }
  return -1;
}

/// Bytecode dispatch: one fixed-size record per instruction, executed by a
/// dense switch. Branch targets are pre-resolved word offsets; end-of-object
/// branches were rewritten to kRetIf* at build time, so no taken branch
/// needs a range check here.
///
/// Typed ops (everything past the four host-class ops) touch only plain
/// application state: they cannot schedule or cancel events, raise IRQs,
/// post tasks, or enter atomic sections. So once the event queue grants an
/// InlineAllowance, a run of typed ops executes in this one fused loop —
/// each step still recorded at its exact cycle and still charged against
/// the watchdog budget, but with no queue traffic and no trip through the
/// step ladder in between. The loop falls back to the outer ladder at the
/// first host-class op, frame exit, or allowance boundary.
std::uint32_t Machine::exec_bytecode(Frame& frame, const CodeObject& code) {
  const Word* const words = code.words.data();
  const auto end = static_cast<std::uint32_t>(code.words.size());
  std::uint32_t pc = frame.pc;
  sim::Cycle now = queue_.now();
  std::uint64_t fused = 0;  // steps executed beyond the one we entered with
  // Fuse window, resolved lazily on the first typed continuation: a step
  // at time `at` may run inline iff steps_left > 0 and at <= inline_until.
  bool allow_known = false;
  sim::Cycle inline_until = 0;
  std::uint64_t steps_left = 0;
  // Trace records batch through a stack buffer: appending straight to the
  // recorder would force the vector's size/capacity back through memory on
  // every iteration (the typed stores may alias anything heap-allocated).
  constexpr std::size_t kBuf = 128;
  trace::InstrExec buf[kBuf];
  std::size_t buffered = 0;
  std::vector<trace::InstrExec>& sink = recorder_.instr_sink();
  const auto flush = [&] {
    sink.insert(sink.end(), buf, buf + buffered);
    buffered = 0;
  };

  for (;;) {
    const Word* w = words + pc;
    const Op op = static_cast<Op>(w[0]);
    const Word a = w[3];
    const Word b = w[4];
    std::uint32_t next = pc + kInstrWords;

    if (op <= Op::kRetIfHost) {
      // Host-class op: the closure may schedule events, raise IRQs or post
      // tasks, so settle the fused run's clock and trace before calling it
      // and let the outer ladder take over afterwards. It cannot mutate
      // the frame stack; `frame` and `w` stay valid.
      flush();
      if (fused != 0) queue_.commit_inline(now, fused);
      recorder_.on_instr(now, w[2]);
      switch (op) {
        case Op::kCallHost: {
          const StepAction action = code.hosts[a]();
          switch (action.kind) {
            case StepAction::Kind::Next:
              break;
            case StepAction::Kind::Jump:
              next = action.target * kInstrWords;
              SENT_ASSERT_MSG(next < end,
                              "jump target out of range in " << code.name);
              break;
            case StepAction::Kind::Return:
              next = end;
              break;
          }
          break;
        }
        case Op::kHostAction:
          code.actions[a]();
          break;
        case Op::kBranchIfHost:
          if (code.preds[a]()) next = w[5];
          break;
        default:  // Op::kRetIfHost
          if (code.preds[a]()) next = end;
          break;
      }
      frame.pc = next;
      return w[1];
    }

    if (buffered == kBuf) flush();
    buf[buffered++] = {now, w[2]};
    switch (op) {
      case Op::kJump:
        next = w[5];
        break;
      case Op::kRet:
        next = end;
        break;
      case Op::kSetFlag:
        *code.flags[a] = b != 0;
        break;
      case Op::kBranchIfFlag:
        if (*code.flags[a] == (b != 0)) next = w[5];
        break;
      case Op::kRetIfFlag:
        if (*code.flags[a] == (b != 0)) next = end;
        break;
      case Op::kAddU32:
        *code.u32s[a] += b;
        break;
      case Op::kSetU32:
        *code.u32s[a] = b;
        break;
      case Op::kAddU64:
        *code.u64s[a] += b;
        break;
      case Op::kAddU16: {
        std::uint16_t* p = code.u16s[a];
        *p = static_cast<std::uint16_t>(*p + b);
        break;
      }
      case Op::kMovU16:
        *code.u16s[a] = *code.u16s[b];
        break;
      case Op::kClearLsbU16: {
        std::uint16_t* p = code.u16s[a];
        *p = static_cast<std::uint16_t>(*p & (*p - 1));
        break;
      }
      case Op::kBranchIfU32Eq:
        if (*code.u32s[a] == b) next = w[5];
        break;
      case Op::kBranchIfU32Ne:
        if (*code.u32s[a] != b) next = w[5];
        break;
      case Op::kBranchIfU32Lt:
        if (*code.u32s[a] < b) next = w[5];
        break;
      case Op::kBranchIfU32Ge:
        if (*code.u32s[a] >= b) next = w[5];
        break;
      case Op::kRetIfU32Eq:
        if (*code.u32s[a] == b) next = end;
        break;
      case Op::kRetIfU32Ne:
        if (*code.u32s[a] != b) next = end;
        break;
      case Op::kRetIfU32Lt:
        if (*code.u32s[a] < b) next = end;
        break;
      case Op::kRetIfU32Ge:
        if (*code.u32s[a] >= b) next = end;
        break;
      case Op::kBranchIfU16Eq:
        if (*code.u16s[a] == b) next = w[5];
        break;
      case Op::kBranchIfU16Ne:
        if (*code.u16s[a] != b) next = w[5];
        break;
      case Op::kRetIfU16Eq:
        if (*code.u16s[a] == b) next = end;
        break;
      case Op::kRetIfU16Ne:
        if (*code.u16s[a] != b) next = end;
        break;
      case Op::kBranchIfU32GeMem:
        if (*code.u32s[a] >= *code.u32s[b]) next = w[5];
        break;
      default:  // Op::kRetIfU32GeMem
        if (*code.u32s[a] >= *code.u32s[b]) next = end;
        break;
    }

    const std::uint32_t cost = w[1];
    if (next >= end) {
      // Frame exit: retirement is its own step with recorder + frame-stack
      // effects; hand it to the outer ladder.
      flush();
      if (fused != 0) queue_.commit_inline(now, fused);
      frame.pc = next;
      return cost;
    }
    if (!allow_known) {
      allow_known = true;
      sim::InlineAllowance allow;
      // Strict `<` against the next live event keeps FIFO order at equal
      // timestamps (an already-queued event beats a continuation scheduled
      // now), hence the -1 folded into the single bound below.
      if (queue_.inline_allowance(allow) && allow.next_event != 0) {
        inline_until = std::min(allow.horizon, allow.next_event - 1);
        steps_left = allow.steps;
      }
    }
    const sim::Cycle at = now + cost;
    if (steps_left == 0 || at > inline_until) {
      flush();
      if (fused != 0) queue_.commit_inline(now, fused);
      frame.pc = next;
      return cost;
    }
    --steps_left;
    ++fused;
    now = at;
    pc = next;
  }
}

/// Reference dispatch: the pre-bytecode closure-per-instruction path, kept
/// for parity testing.
std::uint32_t Machine::exec_reference(Frame& frame, const CodeObject& code) {
  const Instr& instr = code.ref_instrs[frame.pc];
  recorder_.on_instr(queue_.now(), instr.global_id);
  StepAction action = instr.fn();
  // NOTE: instr.fn may post tasks or raise IRQs (via devices) but cannot
  // mutate the frame stack; `frame` stays valid.
  switch (action.kind) {
    case StepAction::Kind::Next:
      ++frame.pc;
      break;
    case StepAction::Kind::Jump:
      SENT_ASSERT_MSG(action.target < code.ref_instrs.size(),
                      "jump target out of range in " << code.name);
      frame.pc = action.target;
      break;
    case StepAction::Kind::Return:
      frame.pc = static_cast<std::uint32_t>(code.ref_instrs.size());
      break;
  }
  return instr.cost;
}

bool Machine::step_once(std::uint32_t& delay) {
  // 1. Interrupt delivery wins over everything (Rule 2).
  if (int line = deliverable_irq(); line >= 0) {
    pending_ &= ~(1ULL << line);
    ++ints_delivered_;
    ++pending_delivered_;
    recorder_.on_int(queue_.now(), static_cast<trace::IrqLine>(line));
    frames_.push_back(Frame{handlers_[static_cast<std::size_t>(line)], 0,
                            /*is_handler=*/true,
                            static_cast<trace::IrqLine>(line), 0});
    delay = costs_.int_entry;
    return true;
  }

  // 2. Execute / retire the active frame.
  if (!frames_.empty()) {
    Frame& frame = frames_.back();
    const CodeObject& code = program_.code(frame.code);
    const std::uint32_t frame_end = static_cast<std::uint32_t>(
        bytecode_ ? code.words.size() : code.ref_instrs.size());
    if (frame.pc >= frame_end) {
      // Frame retired.
      if (frame.is_handler) {
        recorder_.on_reti(queue_.now(), frame.line);
        frames_.pop_back();
        delay = costs_.reti;
      } else {
        recorder_.on_task_end(frame.run_item_index, queue_.now());
        frames_.pop_back();
        delay = costs_.task_ret;
      }
      return true;
    }
    delay = bytecode_ ? exec_bytecode(frame, code)
                      : exec_reference(frame, code);
    return true;
  }

  // 3. No frame: start the next task (Rule 3, FIFO).
  SENT_ASSERT_MSG(provider_ != nullptr, "machine has no task provider");
  if (provider_->has_task()) {
    auto [task, code_id] = provider_->pop_task();
    SENT_ASSERT_MSG(program_.code(code_id).is_task,
                    "task queue yielded a non-task code object");
    SENT_ASSERT_MSG(program_.code(code_id).built_for == mode(),
                    "task code object was built for a different dispatch "
                    "mode than this machine");
    std::size_t run_idx = recorder_.on_run_task(queue_.now(), task);
    frames_.push_back(
        Frame{code_id, 0, /*is_handler=*/false, 0, run_idx});
    delay = costs_.run_task;
    return true;
  }

  // 4. Nothing to do: sleep. A raise_irq / notify_task_posted wakes us.
  return false;
}

void Machine::step() {
  struct StepGuard {
    bool& flag;
    explicit StepGuard(bool& f) : flag(f) { flag = true; }
    ~StepGuard() { flag = false; }
  } guard(in_step_);

  // The continuation chain: while the event queue proves no other event
  // fires at or before this machine's next step, execute it here instead
  // of round-tripping through the heap. This is the bytecode engine's main
  // throughput lever (DESIGN.md §12); the reference engine always pays the
  // original per-step heap traffic.
  std::uint32_t delay = 0;
  while (step_once(delay)) {
    if (bytecode_ && queue_.try_step_inline(queue_.now() + delay)) continue;
    schedule_step(delay);
    return;
  }
}

}  // namespace sent::mcu
