// The virtual MCU.
//
// Implements the paper's three concurrency rules (§III):
//   Rule 1 — an interrupt handler is triggered only by its own hardware
//            interrupt line;
//   Rule 2 — handlers and tasks run to completion unless preempted by
//            (other) interrupt handlers;
//   Rule 3 — tasks are posted by handlers or other tasks and executed FIFO.
//
// Execution is driven by the shared discrete-event queue: each machine step
// (deliver an interrupt, execute one instruction, start a task, retire a
// frame) is one event, and its cycle cost delays the next step. Devices
// raise interrupt lines asynchronously; a raised line is delivered at the
// next step boundary if the preemption rule allows, otherwise it stays
// pending. A sleeping machine (no frames, no runnable task) schedules
// nothing and is woken by raise_irq / notify_task_posted.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mcu/program.hpp"
#include "sim/event_queue.hpp"
#include "trace/recorder.hpp"

namespace sent::mcu {

/// Source of runnable tasks; implemented by the OS kernel (FIFO queue).
class TaskProvider {
 public:
  virtual ~TaskProvider() = default;
  virtual bool has_task() = 0;
  /// Pop the next task FIFO; also returns its code object.
  virtual std::pair<trace::TaskId, CodeId> pop_task() = 0;
};

/// Whether interrupt handlers may nest.
enum class NestingPolicy {
  HigherPriority,  ///< a strictly lower-numbered line preempts a handler
  None,            ///< handlers never preempt handlers
};

/// Fixed micro-costs of machine operations, in cycles (AVR-flavoured).
struct MachineCosts {
  std::uint32_t int_entry = 4;   ///< vector dispatch into a handler
  std::uint32_t reti = 4;        ///< return from interrupt
  std::uint32_t run_task = 6;    ///< scheduler dequeue + call
  std::uint32_t task_ret = 2;    ///< task frame retirement
  std::uint32_t wakeup = 4;      ///< leave sleep mode
};

class Machine {
 public:
  Machine(sim::EventQueue& queue, trace::Recorder& recorder,
          const Program& program);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Install the kernel's task queue. Must be set before run.
  void set_task_provider(TaskProvider* provider);

  /// Bind an interrupt line to its (non-task) handler code object.
  /// Rule 1: one handler per line, one line per handler binding.
  void register_handler(trace::IrqLine line, CodeId handler);

  /// Device-facing: raise an interrupt line. Latched until delivered; a
  /// second raise while latched is absorbed (level-triggered latch), which
  /// mirrors a real IRQ flag register.
  void raise_irq(trace::IrqLine line);

  /// Kernel-facing: a task was posted; wake the machine if sleeping.
  void notify_task_posted();

  /// Atomic sections (AVR cli/sei): while interrupts are disabled, raised
  /// lines stay pending and are delivered when re-enabled. Call from
  /// instruction bodies to model nesC `atomic` blocks. Disabling is
  /// counted so nested atomic sections compose.
  void disable_interrupts();
  void enable_interrupts();
  bool interrupts_enabled() const { return atomic_depth_ == 0; }

  void set_nesting(NestingPolicy policy) { nesting_ = policy; }
  void set_costs(const MachineCosts& costs) { costs_ = costs; }

  /// True when the machine has no active frame, no pending IRQ and no
  /// scheduled step (i.e. the MCU is in a sleep state).
  bool sleeping() const;

  /// Depth of the frame stack (0 = idle/sleeping, 1 = task or handler,
  /// >1 = nested preemption). Exposed for tests.
  std::size_t frame_depth() const { return frames_.size(); }

  /// Number of interrupt deliveries so far (tests/benches).
  std::uint64_t interrupts_delivered() const { return ints_delivered_; }

  /// Lines that currently have a handler bound, ascending (fault
  /// injection: the legal targets for a spurious raise under Rule 1).
  std::vector<trace::IrqLine> bound_lines() const;
  bool handler_bound(trace::IrqLine line) const {
    return line < handlers_.size() && handlers_[line] != kNoHandler;
  }

  /// Fault-injection hook: when set, every raise_irq consults the filter
  /// and a `true` return silently drops the raise (a lost wakeup). The
  /// latch is never set, so an absorbed re-raise cannot resurrect it.
  void set_irq_drop_hook(std::function<bool(trace::IrqLine)> hook) {
    irq_drop_hook_ = std::move(hook);
  }
  std::uint64_t irqs_dropped() const { return irqs_dropped_; }

  /// Dispatch substrate this machine executes (sampled at construction).
  sim::DispatchMode mode() const {
    return bytecode_ ? sim::DispatchMode::Bytecode
                     : sim::DispatchMode::Reference;
  }

  /// Push the batched obs counters into the global registry. Called from
  /// the destructor; the dispatch loop itself only bumps plain integers
  /// (keeping the hot path branch-free, DESIGN.md §12).
  void flush_metrics();

 private:
  struct Frame {
    CodeId code;
    /// Bytecode mode: word offset into CodeObject::words. Reference mode:
    /// instruction index into CodeObject::ref_instrs.
    std::uint32_t pc = 0;
    bool is_handler = false;
    trace::IrqLine line = 0;          // handlers only
    std::size_t run_item_index = 0;   // tasks only: recorder patch handle
  };

  sim::EventQueue& queue_;
  trace::Recorder& recorder_;
  const Program& program_;
  const bool bytecode_;  // dispatch substrate, sampled at construction
  TaskProvider* provider_ = nullptr;
  NestingPolicy nesting_ = NestingPolicy::HigherPriority;
  MachineCosts costs_;

  std::vector<Frame> frames_;
  std::uint64_t pending_ = 0;  // bitmask of raised lines (max 64 lines)
  std::vector<CodeId> handlers_ = std::vector<CodeId>(64, kNoHandler);
  bool step_scheduled_ = false;
  bool in_step_ = false;  // step() will schedule its own continuation
  std::uint32_t atomic_depth_ = 0;
  std::uint64_t ints_delivered_ = 0;
  std::function<bool(trace::IrqLine)> irq_drop_hook_;
  std::uint64_t irqs_dropped_ = 0;

  // Batched obs metrics (flushed by flush_metrics / the destructor).
  std::uint64_t pending_raises_ = 0;
  std::uint64_t pending_delivered_ = 0;
  std::uint64_t pending_dropped_ = 0;

  static constexpr CodeId kNoHandler = ~CodeId{0};

  void schedule_step(std::uint32_t delay);
  /// Wake from sleep: like schedule_step, but on the bytecode substrate the
  /// step rides the queue's deferred-inline path (raises come from inside
  /// device event closures, so the heap round-trip is usually avoidable).
  void wake(std::uint32_t delay);
  void step();
  /// One machine step (deliver / execute / start / retire). Returns true
  /// with the cycle cost of the step in `delay` when a continuation is
  /// due, false when the machine goes to sleep. step() either enqueues the
  /// continuation or — bytecode mode, when the event queue proves nothing
  /// else fires first — executes it inline without a heap round-trip.
  bool step_once(std::uint32_t& delay);
  std::uint32_t exec_bytecode(Frame& frame, const CodeObject& code);
  std::uint32_t exec_reference(Frame& frame, const CodeObject& code);

  /// Lowest-numbered pending line deliverable under the preemption rule,
  /// or -1 if none.
  int deliverable_irq() const;
};

}  // namespace sent::mcu
