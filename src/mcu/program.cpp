#include "mcu/program.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sent::mcu {

namespace {

/// Branch ops whose label lands at (or past) the end of the code object are
/// rewritten to their return counterpart at build time, so the dispatch
/// loop never range-checks a taken branch.
Op ret_variant(Op op) {
  switch (op) {
    case Op::kJump: return Op::kRet;
    case Op::kBranchIfHost: return Op::kRetIfHost;
    case Op::kBranchIfFlag: return Op::kRetIfFlag;
    case Op::kBranchIfU32Eq: return Op::kRetIfU32Eq;
    case Op::kBranchIfU32Ne: return Op::kRetIfU32Ne;
    case Op::kBranchIfU32Lt: return Op::kRetIfU32Lt;
    case Op::kBranchIfU32Ge: return Op::kRetIfU32Ge;
    case Op::kBranchIfU16Eq: return Op::kRetIfU16Eq;
    case Op::kBranchIfU16Ne: return Op::kRetIfU16Ne;
    case Op::kBranchIfU32GeMem: return Op::kRetIfU32GeMem;
    default: return op;
  }
}

template <typename Vec, typename T>
Word pool_add(Vec& vec, T&& value) {
  vec.push_back(std::forward<T>(value));
  return static_cast<Word>(vec.size() - 1);
}

bool cmp_u32(std::uint32_t lhs, Cmp cmp, std::uint32_t rhs) {
  switch (cmp) {
    case Cmp::Eq: return lhs == rhs;
    case Cmp::Ne: return lhs != rhs;
    case Cmp::Lt: return lhs < rhs;
    case Cmp::Ge: return lhs >= rhs;
  }
  return false;
}

}  // namespace

// ---- Program --------------------------------------------------------------

CodeId Program::add(CodeObject code, std::vector<std::string> instr_names) {
  SENT_REQUIRE_MSG(by_name_.find(std::string_view(code.name)) ==
                       by_name_.end(),
                   "duplicate code object name: " << code.name);
  SENT_REQUIRE_MSG(!code.words.empty(),
                   "code object " << code.name << " has no instructions");
  SENT_ASSERT(code.words.size() % kInstrWords == 0);
  SENT_ASSERT(instr_names.size() == code.instr_count());
  CodeId id = static_cast<CodeId>(codes_.size());
  const std::size_t n = code.instr_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto gid = static_cast<trace::InstrId>(instr_table_.size());
    Word* w = code.words.data() + i * kInstrWords;
    w[2] = gid;
    if (!code.ref_instrs.empty()) code.ref_instrs[i].global_id = gid;
    instr_table_.push_back({code.name, std::move(instr_names[i]), w[1]});
  }
  by_name_.emplace(code.name, id);
  codes_.push_back(std::move(code));
  return id;
}

CodeId Program::find(std::string_view name) const {
  auto it = by_name_.find(name);
  SENT_REQUIRE_MSG(it != by_name_.end(), "no code object named " << name);
  return it->second;
}

// ---- CodeBuilder ----------------------------------------------------------

CodeBuilder::CodeBuilder(std::string name, bool is_task)
    : name_(std::move(name)), is_task_(is_task) {}

CodeBuilder::Draft& CodeBuilder::push(std::string name, std::uint32_t cost,
                                      Op op) {
  Draft d;
  d.name = std::move(name);
  d.cost = cost;
  d.op = op;
  drafts_.push_back(std::move(d));
  return drafts_.back();
}

CodeBuilder& CodeBuilder::instr(std::string name, std::function<void()> fn,
                                std::uint32_t cost) {
  SENT_REQUIRE(fn != nullptr);
  push(std::move(name), cost, Op::kHostAction).action = std::move(fn);
  return *this;
}

CodeBuilder& CodeBuilder::branch_if(std::string name,
                                    std::function<bool()> pred,
                                    std::string label, std::uint32_t cost) {
  SENT_REQUIRE(pred != nullptr);
  Draft& d = push(std::move(name), cost, Op::kBranchIfHost);
  d.pred = std::move(pred);
  d.label = std::move(label);
  return *this;
}

CodeBuilder& CodeBuilder::jump(std::string name, std::string label,
                               std::uint32_t cost) {
  push(std::move(name), cost, Op::kJump).label = std::move(label);
  return *this;
}

CodeBuilder& CodeBuilder::ret(std::string name, std::uint32_t cost) {
  push(std::move(name), cost, Op::kRet);
  return *this;
}

CodeBuilder& CodeBuilder::ret_if(std::string name, std::function<bool()> pred,
                                 std::uint32_t cost) {
  SENT_REQUIRE(pred != nullptr);
  push(std::move(name), cost, Op::kRetIfHost).pred = std::move(pred);
  return *this;
}

CodeBuilder& CodeBuilder::call_host(std::string name, InstrFn fn,
                                    std::uint32_t cost) {
  SENT_REQUIRE(fn != nullptr);
  push(std::move(name), cost, Op::kCallHost).host = std::move(fn);
  return *this;
}

CodeBuilder& CodeBuilder::set_flag(std::string name, bool& flag, bool value,
                                   std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kSetFlag);
  d.flag = &flag;
  d.imm = value ? 1 : 0;
  return *this;
}

CodeBuilder& CodeBuilder::add_u32(std::string name, std::uint32_t& var,
                                  std::uint32_t delta, std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kAddU32);
  d.u32 = &var;
  d.imm = delta;
  return *this;
}

CodeBuilder& CodeBuilder::set_u32(std::string name, std::uint32_t& var,
                                  std::uint32_t value, std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kSetU32);
  d.u32 = &var;
  d.imm = value;
  return *this;
}

CodeBuilder& CodeBuilder::add_u64(std::string name, std::uint64_t& var,
                                  std::uint32_t delta, std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kAddU64);
  d.u64 = &var;
  d.imm = delta;
  return *this;
}

CodeBuilder& CodeBuilder::add_u16(std::string name, std::uint16_t& var,
                                  std::uint16_t delta, std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kAddU16);
  d.u16 = &var;
  d.imm = delta;
  return *this;
}

CodeBuilder& CodeBuilder::mov_u16(std::string name, std::uint16_t& dst,
                                  std::uint16_t& src, std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kMovU16);
  d.u16 = &dst;
  d.u16b = &src;
  return *this;
}

CodeBuilder& CodeBuilder::clear_lsb_u16(std::string name, std::uint16_t& var,
                                        std::uint32_t cost) {
  push(std::move(name), cost, Op::kClearLsbU16).u16 = &var;
  return *this;
}

CodeBuilder& CodeBuilder::branch_if_flag(std::string name, bool& flag,
                                         bool when, std::string label,
                                         std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kBranchIfFlag);
  d.flag = &flag;
  d.imm = when ? 1 : 0;
  d.label = std::move(label);
  return *this;
}

CodeBuilder& CodeBuilder::ret_if_flag(std::string name, bool& flag, bool when,
                                      std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kRetIfFlag);
  d.flag = &flag;
  d.imm = when ? 1 : 0;
  return *this;
}

namespace {

Op branch_op_u32(Cmp cmp) {
  switch (cmp) {
    case Cmp::Eq: return Op::kBranchIfU32Eq;
    case Cmp::Ne: return Op::kBranchIfU32Ne;
    case Cmp::Lt: return Op::kBranchIfU32Lt;
    case Cmp::Ge: return Op::kBranchIfU32Ge;
  }
  return Op::kBranchIfU32Eq;
}

Op ret_op_u32(Cmp cmp) {
  switch (cmp) {
    case Cmp::Eq: return Op::kRetIfU32Eq;
    case Cmp::Ne: return Op::kRetIfU32Ne;
    case Cmp::Lt: return Op::kRetIfU32Lt;
    case Cmp::Ge: return Op::kRetIfU32Ge;
  }
  return Op::kRetIfU32Eq;
}

}  // namespace

CodeBuilder& CodeBuilder::branch_if_u32(std::string name, std::uint32_t& var,
                                        Cmp cmp, std::uint32_t imm,
                                        std::string label,
                                        std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, branch_op_u32(cmp));
  d.u32 = &var;
  d.imm = imm;
  d.label = std::move(label);
  return *this;
}

CodeBuilder& CodeBuilder::ret_if_u32(std::string name, std::uint32_t& var,
                                     Cmp cmp, std::uint32_t imm,
                                     std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, ret_op_u32(cmp));
  d.u32 = &var;
  d.imm = imm;
  return *this;
}

CodeBuilder& CodeBuilder::branch_if_u16(std::string name, std::uint16_t& var,
                                        Cmp cmp, std::uint16_t imm,
                                        std::string label,
                                        std::uint32_t cost) {
  SENT_REQUIRE_MSG(cmp == Cmp::Eq || cmp == Cmp::Ne,
                   "u16 compares support Eq/Ne only");
  Draft& d = push(std::move(name), cost,
                  cmp == Cmp::Eq ? Op::kBranchIfU16Eq : Op::kBranchIfU16Ne);
  d.u16 = &var;
  d.imm = imm;
  d.label = std::move(label);
  return *this;
}

CodeBuilder& CodeBuilder::ret_if_u16(std::string name, std::uint16_t& var,
                                     Cmp cmp, std::uint16_t imm,
                                     std::uint32_t cost) {
  SENT_REQUIRE_MSG(cmp == Cmp::Eq || cmp == Cmp::Ne,
                   "u16 compares support Eq/Ne only");
  Draft& d = push(std::move(name), cost,
                  cmp == Cmp::Eq ? Op::kRetIfU16Eq : Op::kRetIfU16Ne);
  d.u16 = &var;
  d.imm = imm;
  return *this;
}

CodeBuilder& CodeBuilder::branch_if_u32_ge(std::string name,
                                           std::uint32_t& lhs,
                                           std::uint32_t& rhs,
                                           std::string label,
                                           std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kBranchIfU32GeMem);
  d.u32 = &lhs;
  d.u32b = &rhs;
  d.label = std::move(label);
  return *this;
}

CodeBuilder& CodeBuilder::ret_if_u32_ge(std::string name, std::uint32_t& lhs,
                                        std::uint32_t& rhs,
                                        std::uint32_t cost) {
  Draft& d = push(std::move(name), cost, Op::kRetIfU32GeMem);
  d.u32 = &lhs;
  d.u32b = &rhs;
  return *this;
}

CodeBuilder& CodeBuilder::label(std::string label) {
  SENT_REQUIRE_MSG(!labels_.count(label), "duplicate label " << label);
  labels_[std::move(label)] = static_cast<std::uint32_t>(drafts_.size());
  return *this;
}

std::uint32_t CodeBuilder::resolve_target(const Draft& d) const {
  auto it = labels_.find(d.label);
  SENT_REQUIRE_MSG(it != labels_.end(),
                   "undefined label " << d.label << " in " << name_);
  return it->second;
}

void CodeBuilder::emit_bytecode(CodeObject& code) {
  const bool bytecode = code.built_for == sim::DispatchMode::Bytecode;
  const std::size_t n = drafts_.size();
  code.words.reserve(n * kInstrWords);
  for (Draft& d : drafts_) {
    Op op = d.op;
    Word a = 0;
    Word b = 0;
    Word t = 0;
    if (!d.label.empty()) {
      const std::uint32_t target = resolve_target(d);
      if (target >= n) {
        // A label at the very end of the object means "branch to return".
        op = ret_variant(op);
      } else {
        t = target * kInstrWords;
      }
    }
    switch (op) {
      // The closure pools are only populated on the bytecode path; in
      // reference mode the same closures move into ref_instrs instead.
      case Op::kCallHost:
        if (bytecode) a = pool_add(code.hosts, std::move(d.host));
        break;
      case Op::kHostAction:
        if (bytecode) a = pool_add(code.actions, std::move(d.action));
        break;
      case Op::kBranchIfHost:
      case Op::kRetIfHost:
        if (bytecode) a = pool_add(code.preds, std::move(d.pred));
        break;
      case Op::kJump:
      case Op::kRet:
        break;
      case Op::kSetFlag:
      case Op::kBranchIfFlag:
      case Op::kRetIfFlag:
        a = pool_add(code.flags, d.flag);
        b = d.imm;
        break;
      case Op::kAddU32:
      case Op::kSetU32:
      case Op::kBranchIfU32Eq:
      case Op::kBranchIfU32Ne:
      case Op::kBranchIfU32Lt:
      case Op::kBranchIfU32Ge:
      case Op::kRetIfU32Eq:
      case Op::kRetIfU32Ne:
      case Op::kRetIfU32Lt:
      case Op::kRetIfU32Ge:
        a = pool_add(code.u32s, d.u32);
        b = d.imm;
        break;
      case Op::kAddU64:
        a = pool_add(code.u64s, d.u64);
        b = d.imm;
        break;
      case Op::kAddU16:
      case Op::kClearLsbU16:
      case Op::kBranchIfU16Eq:
      case Op::kBranchIfU16Ne:
      case Op::kRetIfU16Eq:
      case Op::kRetIfU16Ne:
        a = pool_add(code.u16s, d.u16);
        b = d.imm;
        break;
      case Op::kMovU16:
        a = pool_add(code.u16s, d.u16);
        b = pool_add(code.u16s, d.u16b);
        break;
      case Op::kBranchIfU32GeMem:
      case Op::kRetIfU32GeMem:
        a = pool_add(code.u32s, d.u32);
        b = pool_add(code.u32s, d.u32b);
        break;
    }
    code.words.push_back(static_cast<Word>(op));
    code.words.push_back(d.cost);
    code.words.push_back(0);  // global_id, patched in Program::add
    code.words.push_back(a);
    code.words.push_back(b);
    code.words.push_back(t);
  }
}

void CodeBuilder::emit_reference(CodeObject& code) {
  // Materialize the pre-bytecode closure-per-instruction form. Typed ops
  // lower to the same little lambdas applications used to write by hand,
  // so behaviour (and therefore traces) matches the bytecode path exactly.
  const std::uint32_t end = static_cast<std::uint32_t>(drafts_.size());
  code.ref_instrs.reserve(drafts_.size());
  for (Draft& d : drafts_) {
    // Straight-line behaviour, if this draft has any.
    std::function<void()> action;
    // Predicate for conditional branch / conditional return drafts.
    std::function<bool()> pred;
    bool is_branch = false;  // taken pred/jump goes to `target`
    bool is_ret_if = false;  // taken pred returns
    std::uint32_t target = 0;
    if (!d.label.empty()) target = resolve_target(d);

    InstrFn fn;
    switch (d.op) {
      case Op::kCallHost:
        fn = std::move(d.host);
        break;
      case Op::kHostAction:
        action = std::move(d.action);
        break;
      case Op::kBranchIfHost:
        pred = std::move(d.pred);
        is_branch = true;
        break;
      case Op::kRetIfHost:
        pred = std::move(d.pred);
        is_ret_if = true;
        break;
      case Op::kJump:
        fn = [target, end] {
          return target >= end ? StepAction::ret() : StepAction::jump(target);
        };
        break;
      case Op::kRet:
        fn = [] { return StepAction::ret(); };
        break;
      case Op::kSetFlag:
        action = [p = d.flag, v = d.imm != 0] { *p = v; };
        break;
      case Op::kBranchIfFlag:
        pred = [p = d.flag, v = d.imm != 0] { return *p == v; };
        is_branch = true;
        break;
      case Op::kRetIfFlag:
        pred = [p = d.flag, v = d.imm != 0] { return *p == v; };
        is_ret_if = true;
        break;
      case Op::kAddU32:
        action = [p = d.u32, delta = d.imm] { *p += delta; };
        break;
      case Op::kSetU32:
        action = [p = d.u32, v = d.imm] { *p = v; };
        break;
      case Op::kAddU64:
        action = [p = d.u64, delta = d.imm] { *p += delta; };
        break;
      case Op::kAddU16:
        action = [p = d.u16, delta = d.imm] {
          *p = static_cast<std::uint16_t>(*p + delta);
        };
        break;
      case Op::kMovU16:
        action = [dst = d.u16, src = d.u16b] { *dst = *src; };
        break;
      case Op::kClearLsbU16:
        action = [p = d.u16] {
          *p = static_cast<std::uint16_t>(*p & (*p - 1));
        };
        break;
      case Op::kBranchIfU32Eq:
      case Op::kBranchIfU32Ne:
      case Op::kBranchIfU32Lt:
      case Op::kBranchIfU32Ge:
      case Op::kRetIfU32Eq:
      case Op::kRetIfU32Ne:
      case Op::kRetIfU32Lt:
      case Op::kRetIfU32Ge: {
        Cmp cmp;
        switch (d.op) {
          case Op::kBranchIfU32Eq:
          case Op::kRetIfU32Eq: cmp = Cmp::Eq; break;
          case Op::kBranchIfU32Ne:
          case Op::kRetIfU32Ne: cmp = Cmp::Ne; break;
          case Op::kBranchIfU32Lt:
          case Op::kRetIfU32Lt: cmp = Cmp::Lt; break;
          default: cmp = Cmp::Ge; break;
        }
        pred = [p = d.u32, cmp, imm = d.imm] { return cmp_u32(*p, cmp, imm); };
        is_branch = d.op == Op::kBranchIfU32Eq || d.op == Op::kBranchIfU32Ne ||
                    d.op == Op::kBranchIfU32Lt || d.op == Op::kBranchIfU32Ge;
        is_ret_if = !is_branch;
        break;
      }
      case Op::kBranchIfU16Eq:
      case Op::kRetIfU16Eq:
        pred = [p = d.u16, imm = d.imm] { return *p == imm; };
        is_branch = d.op == Op::kBranchIfU16Eq;
        is_ret_if = !is_branch;
        break;
      case Op::kBranchIfU16Ne:
      case Op::kRetIfU16Ne:
        pred = [p = d.u16, imm = d.imm] { return *p != imm; };
        is_branch = d.op == Op::kBranchIfU16Ne;
        is_ret_if = !is_branch;
        break;
      case Op::kBranchIfU32GeMem:
      case Op::kRetIfU32GeMem:
        pred = [l = d.u32, r = d.u32b] { return *l >= *r; };
        is_branch = d.op == Op::kBranchIfU32GeMem;
        is_ret_if = !is_branch;
        break;
    }

    if (action) {
      fn = [f = std::move(action)] {
        f();
        return StepAction::next();
      };
    } else if (is_branch) {
      fn = [p = std::move(pred), target, end] {
        if (!p()) return StepAction::next();
        return target >= end ? StepAction::ret() : StepAction::jump(target);
      };
    } else if (is_ret_if) {
      fn = [p = std::move(pred)] {
        return p() ? StepAction::ret() : StepAction::next();
      };
    }
    SENT_ASSERT(fn != nullptr);
    code.ref_instrs.push_back(Instr{d.cost, std::move(fn), 0});
  }
}

CodeId CodeBuilder::build(Program& program) {
  SENT_REQUIRE_MSG(!built_, "CodeBuilder::build called twice");
  built_ = true;
  CodeObject code;
  code.name = name_;  // keep name_ for resolve_target error messages
  code.is_task = is_task_;
  code.built_for = sim::dispatch_mode();
  if (code.built_for == sim::DispatchMode::Reference) {
    emit_reference(code);  // consumes the closures
    emit_bytecode(code);   // metadata words only
  } else {
    emit_bytecode(code);
  }
  std::vector<std::string> names;
  names.reserve(drafts_.size());
  for (Draft& d : drafts_) names.push_back(std::move(d.name));
  return program.add(std::move(code), std::move(names));
}

}  // namespace sent::mcu
