#include "mcu/program.hpp"

#include "util/assert.hpp"

namespace sent::mcu {

CodeId Program::add(CodeObject code) {
  SENT_REQUIRE_MSG(!by_name_.count(code.name),
                   "duplicate code object name: " << code.name);
  SENT_REQUIRE_MSG(!code.instrs.empty(),
                   "code object " << code.name << " has no instructions");
  CodeId id = static_cast<CodeId>(codes_.size());
  for (auto& instr : code.instrs) {
    SENT_REQUIRE_MSG(instr.fn != nullptr,
                     "null instruction fn in " << code.name);
    instr.global_id = static_cast<trace::InstrId>(instr_table_.size());
    instr_table_.push_back({code.name, instr.name, instr.cost});
  }
  by_name_[code.name] = id;
  codes_.push_back(std::move(code));
  return id;
}

const CodeObject& Program::code(CodeId id) const {
  SENT_REQUIRE(id < codes_.size());
  return codes_[id];
}

CodeId Program::find(const std::string& name) const {
  auto it = by_name_.find(name);
  SENT_REQUIRE_MSG(it != by_name_.end(), "no code object named " << name);
  return it->second;
}

CodeBuilder::CodeBuilder(std::string name, bool is_task) {
  code_.name = std::move(name);
  code_.is_task = is_task;
}

CodeBuilder& CodeBuilder::instr(std::string name, std::function<void()> fn,
                                std::uint32_t cost) {
  SENT_REQUIRE(fn != nullptr);
  code_.instrs.push_back(Instr{
      std::move(name), cost,
      [f = std::move(fn)]() {
        f();
        return StepAction::next();
      },
      0});
  return *this;
}

CodeBuilder& CodeBuilder::branch_if(std::string name,
                                    std::function<bool()> pred,
                                    std::string label, std::uint32_t cost) {
  SENT_REQUIRE(pred != nullptr);
  pending_.push_back(
      {code_.instrs.size(), std::move(label), /*conditional=*/true, pred});
  // Placeholder fn; patched in build() once the label resolves.
  code_.instrs.push_back(Instr{std::move(name), cost, nullptr, 0});
  return *this;
}

CodeBuilder& CodeBuilder::jump(std::string name, std::string label,
                               std::uint32_t cost) {
  pending_.push_back(
      {code_.instrs.size(), std::move(label), /*conditional=*/false, {}});
  code_.instrs.push_back(Instr{std::move(name), cost, nullptr, 0});
  return *this;
}

CodeBuilder& CodeBuilder::ret(std::string name, std::uint32_t cost) {
  code_.instrs.push_back(
      Instr{std::move(name), cost, [] { return StepAction::ret(); }, 0});
  return *this;
}

CodeBuilder& CodeBuilder::ret_if(std::string name, std::function<bool()> pred,
                                 std::uint32_t cost) {
  SENT_REQUIRE(pred != nullptr);
  code_.instrs.push_back(Instr{std::move(name), cost,
                               [p = std::move(pred)]() {
                                 return p() ? StepAction::ret()
                                            : StepAction::next();
                               },
                               0});
  return *this;
}

CodeBuilder& CodeBuilder::label(std::string label) {
  SENT_REQUIRE_MSG(!labels_.count(label), "duplicate label " << label);
  labels_[std::move(label)] =
      static_cast<std::uint32_t>(code_.instrs.size());
  return *this;
}

CodeId CodeBuilder::build(Program& program) {
  SENT_REQUIRE_MSG(!built_, "CodeBuilder::build called twice");
  built_ = true;
  for (const auto& p : pending_) {
    auto it = labels_.find(p.label);
    SENT_REQUIRE_MSG(it != labels_.end(),
                     "undefined label " << p.label << " in " << code_.name);
    std::uint32_t target = it->second;
    // A label at the very end of the object means "jump to return".
    Instr& instr = code_.instrs[p.instr_index];
    if (p.conditional) {
      instr.fn = [pred = p.pred, target, end = code_.instrs.size()]() {
        if (!pred()) return StepAction::next();
        return target >= end ? StepAction::ret() : StepAction::jump(target);
      };
    } else {
      instr.fn = [target, end = code_.instrs.size()]() {
        return target >= end ? StepAction::ret() : StepAction::jump(target);
      };
    }
  }
  return program.add(std::move(code_));
}

}  // namespace sent::mcu
