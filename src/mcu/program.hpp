// Program representation for the virtual MCU.
//
// Applications (and the OS/protocol code they link against) are expressed
// as *code objects* — interrupt handlers and tasks — each a sequence of
// virtual instructions. A virtual instruction models a short straight-line
// basic block of machine code: it has a static identity (a global index in
// the node program, per Definition 4 of the paper), a cycle cost, and a
// behaviour. The machine executes instructions one at a time and delivers
// interrupts only between instructions, which is exactly the granularity at
// which the paper's transient interleavings occur.
//
// Behaviour is encoded as compact bytecode (DESIGN.md §12): each
// instruction is a fixed kInstrWords-word record executed by a tight switch
// in Machine::step. Common behaviours — flag tests, counter bumps, field
// compares — are dedicated typed ops that read and write application state
// through operand pools of raw pointers; arbitrary C++ closures survive
// behind the host-call escape hatch (Op::kCallHost and friends), which is
// what CodeBuilder's generic instr/branch_if/ret_if lower to. The
// pre-bytecode closure representation (ref_instrs) is still materialized
// when the process runs in DispatchMode::Reference, so the parity suite can
// pin the two paths against each other.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/dispatch.hpp"
#include "trace/recorder.hpp"
#include "util/assert.hpp"

namespace sent::mcu {

/// Identifier of a code object within one Program.
using CodeId = std::uint32_t;

/// Default cycle cost of one virtual instruction (a handful of AVR ops).
inline constexpr std::uint32_t kDefaultInstrCost = 8;

/// One bytecode operand word.
using Word = std::uint32_t;

/// Words per instruction record: [op, cost, global_id, a, b, t].
///   op        — Op discriminant
///   cost      — cycles charged per execution
///   global_id — index into the program instruction table (Definition 4)
///   a         — first operand: pool index (host closure or state pointer)
///   b         — second operand: immediate, or a second pointer-pool index
///   t         — branch target, as a *word* offset into the code object
inline constexpr std::uint32_t kInstrWords = 6;

/// Bytecode operations. Branch ops whose label resolves to the end of the
/// code object are rewritten to their kRetIf* counterpart at build time, so
/// the dispatch loop never range-checks targets.
enum class Op : Word {
  // Host-call escape hatch: behaviour lives in a C++ closure.
  kCallHost,      ///< a=hosts: full StepAction protocol (jump/ret/next)
  kHostAction,    ///< a=actions: void call, fall through
  kBranchIfHost,  ///< a=preds: branch to t when pred() is true
  kRetIfHost,     ///< a=preds: return when pred() is true

  // Control flow with no behaviour attached.
  kJump,  ///< unconditional branch to t
  kRet,   ///< return from the code object

  // Typed state ops: operands are pointers into application state.
  kSetFlag,       ///< *flags[a] = (b != 0)
  kBranchIfFlag,  ///< branch to t when *flags[a] == (b != 0)
  kRetIfFlag,     ///< return when *flags[a] == (b != 0)

  kAddU32,       ///< *u32s[a] += b (wrapping; b=0xffffffff decrements)
  kSetU32,       ///< *u32s[a] = b
  kAddU64,       ///< *u64s[a] += b
  kAddU16,       ///< *u16s[a] += b (truncating; b=0xffff decrements)
  kMovU16,       ///< *u16s[a] = *u16s[b] (register-to-register copy)
  kClearLsbU16,  ///< *u16s[a] &= *u16s[a] - 1 (Kernighan popcount step)

  kBranchIfU32Eq,  ///< branch to t when *u32s[a] == b
  kBranchIfU32Ne,  ///< branch to t when *u32s[a] != b
  kBranchIfU32Lt,  ///< branch to t when *u32s[a] <  b
  kBranchIfU32Ge,  ///< branch to t when *u32s[a] >= b
  kRetIfU32Eq,     ///< return when *u32s[a] == b
  kRetIfU32Ne,     ///< return when *u32s[a] != b
  kRetIfU32Lt,     ///< return when *u32s[a] <  b
  kRetIfU32Ge,     ///< return when *u32s[a] >= b

  kBranchIfU16Eq,  ///< branch to t when *u16s[a] == b
  kBranchIfU16Ne,  ///< branch to t when *u16s[a] != b
  kRetIfU16Eq,     ///< return when *u16s[a] == b
  kRetIfU16Ne,     ///< return when *u16s[a] != b

  kBranchIfU32GeMem,  ///< branch to t when *u32s[a] >= *u32s[b]
  kRetIfU32GeMem,     ///< return when *u32s[a] >= *u32s[b]
};

/// What the machine should do after executing an instruction (host-call
/// protocol, and the whole story of the reference closure path).
struct StepAction {
  enum class Kind : std::uint8_t { Next, Jump, Return };
  Kind kind = Kind::Next;
  std::uint32_t target = 0;  ///< instruction index within the code object

  static StepAction next() { return {}; }
  static StepAction jump(std::uint32_t t) { return {Kind::Jump, t}; }
  static StepAction ret() { return {Kind::Return, 0}; }
};

/// Behaviour of one virtual instruction on the reference (closure) path.
using InstrFn = std::function<StepAction()>;

/// Reference-path instruction: a closure per instruction, as the simulator
/// worked before the bytecode core. Materialized only when built under
/// DispatchMode::Reference.
struct Instr {
  std::uint32_t cost;        ///< cycles charged per execution
  InstrFn fn;                ///< behaviour; never null
  trace::InstrId global_id;  ///< index into the program instruction table
};

struct CodeObject {
  std::string name;      ///< e.g. "Read.readDone" or "prepareAndSendPacket"
  bool is_task = false;  ///< task (posted/run) vs interrupt handler

  /// Dispatch mode this object was built for; the machine refuses to run a
  /// mismatched object (the mode must not change between build and run).
  sim::DispatchMode built_for = sim::DispatchMode::Bytecode;

  /// Bytecode, kInstrWords words per instruction (always emitted; carries
  /// cost and global_id metadata even on the reference path).
  std::vector<Word> words;

  // Operand pools, indexed by the a/b words (bytecode mode only).
  std::vector<std::function<StepAction()>> hosts;
  std::vector<std::function<void()>> actions;
  std::vector<std::function<bool()>> preds;
  std::vector<bool*> flags;
  std::vector<std::uint32_t*> u32s;
  std::vector<std::uint16_t*> u16s;
  std::vector<std::uint64_t*> u64s;

  /// Closure-per-instruction representation (reference mode only).
  std::vector<Instr> ref_instrs;

  std::size_t instr_count() const { return words.size() / kInstrWords; }
};

/// A node's complete program: all code objects plus the flat static
/// instruction table that instruction counters are indexed by.
class Program {
 public:
  /// Register a code object; assigns global ids to its instructions.
  /// `instr_names` are the per-instruction mnemonics, moved into the
  /// instruction table (one entry per record in code.words).
  CodeId add(CodeObject code, std::vector<std::string> instr_names);

  /// Inline: resolved once per machine step in the dispatch loop.
  const CodeObject& code(CodeId id) const {
    SENT_ASSERT(id < codes_.size());
    return codes_[id];
  }
  std::size_t code_count() const { return codes_.size(); }

  /// Total number of static instructions (the N of Definition 4).
  std::size_t instr_count() const { return instr_table_.size(); }

  /// Instruction metadata table, for traces and reports.
  const std::vector<trace::InstrMeta>& instr_table() const {
    return instr_table_;
  }

  /// Find a code object by name; throws if absent. Heterogeneous: accepts
  /// string literals and string_views without building a std::string.
  CodeId find(std::string_view name) const;

 private:
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct NameEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::vector<CodeObject> codes_;
  std::vector<trace::InstrMeta> instr_table_;
  std::unordered_map<std::string, CodeId, NameHash, NameEq> by_name_;
};

/// Comparison selector for the typed compare/branch builder ops.
enum class Cmp : std::uint8_t { Eq, Ne, Lt, Ge };

/// Fluent builder for code objects, with labels and structured branches so
/// application logic can take different paths (and thus produce different
/// instruction counts, which is what the featurizer keys on).
///
/// The generic instr/branch_if/ret_if overloads accept arbitrary closures
/// and lower to host-call ops; the typed overloads (set_flag, add_u32,
/// branch_if_u32, ...) lower to dedicated bytecode ops that cost no
/// indirect call at run time. Both families record identical trace
/// metadata, so swapping one for the other never changes a trace.
class CodeBuilder {
 public:
  CodeBuilder(std::string name, bool is_task);

  /// Straight-line instruction with arbitrary behaviour.
  CodeBuilder& instr(std::string name, std::function<void()> fn,
                     std::uint32_t cost = kDefaultInstrCost);

  /// Conditional branch: jumps to `label` when pred() is true, otherwise
  /// falls through.
  CodeBuilder& branch_if(std::string name, std::function<bool()> pred,
                         std::string label,
                         std::uint32_t cost = kDefaultInstrCost);

  /// Unconditional jump to `label`.
  CodeBuilder& jump(std::string name, std::string label,
                    std::uint32_t cost = kDefaultInstrCost);

  /// Early return from the code object.
  CodeBuilder& ret(std::string name, std::uint32_t cost = kDefaultInstrCost);

  /// Conditional early return: returns when pred() is true.
  CodeBuilder& ret_if(std::string name, std::function<bool()> pred,
                      std::uint32_t cost = kDefaultInstrCost);

  /// Full escape hatch: the closure decides the step action itself
  /// (Op::kCallHost). Jump targets are instruction indices.
  CodeBuilder& call_host(std::string name, InstrFn fn,
                         std::uint32_t cost = kDefaultInstrCost);

  // -- typed ops ----------------------------------------------------------
  // All take references to application state that must outlive the built
  // program (in practice: members of the app object that owns the node).

  CodeBuilder& set_flag(std::string name, bool& flag, bool value,
                        std::uint32_t cost = kDefaultInstrCost);
  CodeBuilder& add_u32(std::string name, std::uint32_t& var,
                       std::uint32_t delta,
                       std::uint32_t cost = kDefaultInstrCost);
  CodeBuilder& set_u32(std::string name, std::uint32_t& var,
                       std::uint32_t value,
                       std::uint32_t cost = kDefaultInstrCost);
  CodeBuilder& add_u64(std::string name, std::uint64_t& var,
                       std::uint32_t delta,
                       std::uint32_t cost = kDefaultInstrCost);
  /// var += delta, truncating to 16 bits (delta=0xffff decrements).
  CodeBuilder& add_u16(std::string name, std::uint16_t& var,
                       std::uint16_t delta,
                       std::uint32_t cost = kDefaultInstrCost);
  /// dst = src (both u16 application state).
  CodeBuilder& mov_u16(std::string name, std::uint16_t& dst,
                       std::uint16_t& src,
                       std::uint32_t cost = kDefaultInstrCost);
  /// var &= var - 1: clears the lowest set bit (bit-count loops).
  CodeBuilder& clear_lsb_u16(std::string name, std::uint16_t& var,
                             std::uint32_t cost = kDefaultInstrCost);

  CodeBuilder& branch_if_flag(std::string name, bool& flag, bool when,
                              std::string label,
                              std::uint32_t cost = kDefaultInstrCost);
  CodeBuilder& ret_if_flag(std::string name, bool& flag, bool when,
                           std::uint32_t cost = kDefaultInstrCost);

  CodeBuilder& branch_if_u32(std::string name, std::uint32_t& var, Cmp cmp,
                             std::uint32_t imm, std::string label,
                             std::uint32_t cost = kDefaultInstrCost);
  CodeBuilder& ret_if_u32(std::string name, std::uint32_t& var, Cmp cmp,
                          std::uint32_t imm,
                          std::uint32_t cost = kDefaultInstrCost);

  /// Only Cmp::Eq / Cmp::Ne are meaningful for u16 operands.
  CodeBuilder& branch_if_u16(std::string name, std::uint16_t& var, Cmp cmp,
                             std::uint16_t imm, std::string label,
                             std::uint32_t cost = kDefaultInstrCost);
  CodeBuilder& ret_if_u16(std::string name, std::uint16_t& var, Cmp cmp,
                          std::uint16_t imm,
                          std::uint32_t cost = kDefaultInstrCost);

  /// Branch when lhs >= rhs, both read from memory (loop bounds that are
  /// only known at run time, e.g. payload sizes).
  CodeBuilder& branch_if_u32_ge(std::string name, std::uint32_t& lhs,
                                std::uint32_t& rhs, std::string label,
                                std::uint32_t cost = kDefaultInstrCost);
  CodeBuilder& ret_if_u32_ge(std::string name, std::uint32_t& lhs,
                             std::uint32_t& rhs,
                             std::uint32_t cost = kDefaultInstrCost);

  /// Bind `label` to the position of the next instruction. A label may be
  /// referenced before or after its definition.
  CodeBuilder& label(std::string label);

  /// Resolve labels, emit bytecode (and reference closures when the
  /// process runs in DispatchMode::Reference) and register with the
  /// program. The builder is consumed.
  CodeId build(Program& program);

 private:
  /// Builder-side IR: one record per instruction, everything moved in once
  /// and moved out again at build() — names and closures are never copied.
  struct Draft {
    std::string name;
    std::uint32_t cost = kDefaultInstrCost;
    Op op = Op::kRet;
    std::string label;  ///< branch/jump target; empty if none

    InstrFn host;                  // kCallHost
    std::function<void()> action;  // kHostAction
    std::function<bool()> pred;    // kBranchIfHost / kRetIfHost

    bool* flag = nullptr;
    std::uint32_t* u32 = nullptr;
    std::uint32_t* u32b = nullptr;  // second operand (mem-mem compare)
    std::uint16_t* u16 = nullptr;
    std::uint16_t* u16b = nullptr;  // second operand (u16 reg-reg move)
    std::uint64_t* u64 = nullptr;
    Word imm = 0;
  };

  Draft& push(std::string name, std::uint32_t cost, Op op);
  void emit_bytecode(CodeObject& code);
  void emit_reference(CodeObject& code);
  /// Resolved target instruction index for draft i, or instr count when
  /// the draft is not a branch. Throws on undefined labels.
  std::uint32_t resolve_target(const Draft& d) const;

  std::string name_;
  bool is_task_;
  std::vector<Draft> drafts_;
  std::map<std::string, std::uint32_t, std::less<>> labels_;
  bool built_ = false;
};

}  // namespace sent::mcu
