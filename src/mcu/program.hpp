// Program representation for the virtual MCU.
//
// Applications (and the OS/protocol code they link against) are expressed
// as *code objects* — interrupt handlers and tasks — each a sequence of
// virtual instructions. A virtual instruction models a short straight-line
// basic block of machine code: it has a static identity (a global index in
// the node program, per Definition 4 of the paper), a cycle cost, and a
// behaviour closure. The machine executes instructions one at a time and
// delivers interrupts only between instructions, which is exactly the
// granularity at which the paper's transient interleavings occur.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace sent::mcu {

/// Identifier of a code object within one Program.
using CodeId = std::uint32_t;

/// Default cycle cost of one virtual instruction (a handful of AVR ops).
inline constexpr std::uint32_t kDefaultInstrCost = 8;

/// What the machine should do after executing an instruction.
struct StepAction {
  enum class Kind : std::uint8_t { Next, Jump, Return };
  Kind kind = Kind::Next;
  std::uint32_t target = 0;  ///< instruction index within the code object

  static StepAction next() { return {}; }
  static StepAction jump(std::uint32_t t) { return {Kind::Jump, t}; }
  static StepAction ret() { return {Kind::Return, 0}; }
};

/// Behaviour of one virtual instruction. The closure captures whatever node
/// state / OS services it needs; the machine itself is state-agnostic.
using InstrFn = std::function<StepAction()>;

struct Instr {
  std::string name;          ///< mnemonic, unique-ish within the code object
  std::uint32_t cost;        ///< cycles charged per execution
  InstrFn fn;                ///< behaviour; never null
  trace::InstrId global_id;  ///< index into the program instruction table
};

struct CodeObject {
  std::string name;  ///< e.g. "Read.readDone" or "prepareAndSendPacket"
  bool is_task;      ///< task (posted/run) vs interrupt handler
  std::vector<Instr> instrs;
};

/// A node's complete program: all code objects plus the flat static
/// instruction table that instruction counters are indexed by.
class Program {
 public:
  /// Register a code object; assigns global ids to its instructions.
  CodeId add(CodeObject code);

  const CodeObject& code(CodeId id) const;
  std::size_t code_count() const { return codes_.size(); }

  /// Total number of static instructions (the N of Definition 4).
  std::size_t instr_count() const { return instr_table_.size(); }

  /// Instruction metadata table, for traces and reports.
  const std::vector<trace::InstrMeta>& instr_table() const {
    return instr_table_;
  }

  /// Find a code object by name; throws if absent.
  CodeId find(const std::string& name) const;

 private:
  std::vector<CodeObject> codes_;
  std::vector<trace::InstrMeta> instr_table_;
  std::map<std::string, CodeId> by_name_;
};

/// Fluent builder for code objects, with labels and structured branches so
/// application logic can take different paths (and thus produce different
/// instruction counts, which is what the featurizer keys on).
class CodeBuilder {
 public:
  CodeBuilder(std::string name, bool is_task);

  /// Straight-line instruction.
  CodeBuilder& instr(std::string name, std::function<void()> fn,
                     std::uint32_t cost = kDefaultInstrCost);

  /// Conditional branch: jumps to `label` when pred() is true, otherwise
  /// falls through.
  CodeBuilder& branch_if(std::string name, std::function<bool()> pred,
                         std::string label,
                         std::uint32_t cost = kDefaultInstrCost);

  /// Unconditional jump to `label`.
  CodeBuilder& jump(std::string name, std::string label,
                    std::uint32_t cost = kDefaultInstrCost);

  /// Early return from the code object.
  CodeBuilder& ret(std::string name, std::uint32_t cost = kDefaultInstrCost);

  /// Conditional early return: returns when pred() is true.
  CodeBuilder& ret_if(std::string name, std::function<bool()> pred,
                      std::uint32_t cost = kDefaultInstrCost);

  /// Bind `label` to the position of the next instruction. A label may be
  /// referenced before or after its definition.
  CodeBuilder& label(std::string label);

  /// Resolve labels and register with the program. The builder is consumed.
  CodeId build(Program& program);

 private:
  struct PendingJump {
    std::size_t instr_index;
    std::string label;
    bool conditional;
    std::function<bool()> pred;  // only for conditional
  };

  CodeObject code_;
  std::map<std::string, std::uint32_t> labels_;
  std::vector<PendingJump> pending_;
  bool built_ = false;
};

}  // namespace sent::mcu
