#include "ml/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/eigen.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace sent::ml {

namespace {

/// Pairwise Euclidean distances on standardized rows, as a flat symmetric
/// n x n matrix.
std::vector<double> distance_matrix(const Matrix& rows) {
  StandardScaler scaler;
  scaler.fit(rows);
  Matrix z = scaler.transform(rows);
  std::size_t n = z.rows();
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      double d = util::l2_distance(z.row(i), z.row(j));
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  return dist;
}

/// Indices of the k nearest neighbours of i (excluding i), plus sorted
/// neighbour distances.
void k_nearest(const std::vector<double>& dist, std::size_t n,
               std::size_t i, std::size_t k,
               std::vector<std::size_t>& idx_out,
               std::vector<double>& dist_out) {
  const double* di = &dist[i * n];
  std::vector<std::size_t> order;
  order.reserve(n - 1);
  for (std::size_t j = 0; j < n; ++j)
    if (j != i) order.push_back(j);
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<long>(std::min(k, order.size())),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return di[a] < di[b];
                    });
  order.resize(std::min(k, order.size()));
  idx_out = order;
  dist_out.clear();
  for (std::size_t j : order) dist_out.push_back(di[j]);
}

}  // namespace

// --------------------------------------------------------------------- PCA

PcaDetector::PcaDetector(double explained) : explained_(explained) {
  SENT_REQUIRE(explained > 0.0 && explained <= 1.0);
}

std::vector<double> PcaDetector::score(const ml::Matrix& rows) {
  std::size_t d = check_matrix(rows);
  StandardScaler scaler;
  scaler.fit(rows);
  Matrix z = scaler.transform(rows);

  auto eig = symmetric_eigen(covariance_matrix(z), d);
  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  // Degenerate data (all rows equal): everything scores 0.
  if (total <= 1e-12) return std::vector<double>(rows.rows(), 0.0);

  double cum = 0.0;
  components_ = 0;
  for (double v : eig.values) {
    cum += std::max(v, 0.0);
    ++components_;
    if (cum / total >= explained_) break;
  }
  // Keep at least one component and leave at least one residual direction
  // when possible, otherwise every reconstruction is exact.
  if (components_ >= d && d > 1) components_ = d - 1;

  // Mean residual eigenvalue normalizes the Q statistic; floored so a
  // near-perfect subspace fit does not blow up the residual term.
  double lambda_res = 0.0;
  for (std::size_t kdx = components_; kdx < d; ++kdx)
    lambda_res += std::max(eig.values[kdx], 0.0);
  lambda_res /= std::max<double>(1.0, static_cast<double>(d - components_));
  lambda_res = std::max(lambda_res, 1e-6 * total);

  std::vector<double> scores(z.rows());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    std::span<const double> zr = z.row(r);
    double norm2 = 0.0;
    for (double x : zr) norm2 += x * x;
    double t2 = 0.0;     // Hotelling T^2 inside the subspace
    double proj2 = 0.0;  // squared in-subspace norm
    for (std::size_t kdx = 0; kdx < components_; ++kdx) {
      double p = util::dot(zr, eig.vectors[kdx]);
      proj2 += p * p;
      t2 += p * p / std::max(eig.values[kdx], 1e-12);
    }
    double q = std::max(norm2 - proj2, 0.0);  // SPE residual
    scores[r] = -std::sqrt(t2 + q / lambda_res);
  }
  return scores;
}

// --------------------------------------------------------------------- kNN

KnnDetector::KnnDetector(std::size_t k) : k_(k) { SENT_REQUIRE(k >= 1); }

std::vector<double> KnnDetector::score(const ml::Matrix& rows) {
  check_matrix(rows);
  std::size_t n = rows.rows();
  if (n == 1) return {0.0};
  auto dist = distance_matrix(rows);
  std::size_t k = std::min(k_, n - 1);
  std::vector<double> scores(n);
  std::vector<std::size_t> idx;
  std::vector<double> nd;
  for (std::size_t i = 0; i < n; ++i) {
    k_nearest(dist, n, i, k, idx, nd);
    scores[i] = -util::mean(nd);
  }
  return scores;
}

// --------------------------------------------------------------------- LOF

LofDetector::LofDetector(std::size_t k) : k_(k) { SENT_REQUIRE(k >= 1); }

std::vector<double> LofDetector::score(const ml::Matrix& rows) {
  check_matrix(rows);
  std::size_t n = rows.rows();
  if (n <= 2) return std::vector<double>(n, 0.0);
  auto dist = distance_matrix(rows);
  std::size_t k = std::min(k_, n - 1);

  std::vector<std::vector<std::size_t>> neighbors(n);
  std::vector<double> k_distance(n);
  {
    std::vector<double> nd;
    for (std::size_t i = 0; i < n; ++i) {
      k_nearest(dist, n, i, k, neighbors[i], nd);
      k_distance[i] = nd.back();
    }
  }

  // Local reachability density.
  std::vector<double> lrd(n);
  for (std::size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (std::size_t j : neighbors[i])
      reach_sum += std::max(k_distance[j], dist[i * n + j]);
    lrd[i] = reach_sum > 1e-12
                 ? static_cast<double>(neighbors[i].size()) / reach_sum
                 : std::numeric_limits<double>::infinity();
  }

  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(lrd[i])) {
      // Dense duplicate cluster: perfectly normal.
      scores[i] = -1.0;
      continue;
    }
    double ratio_sum = 0.0;
    for (std::size_t j : neighbors[i]) {
      double r = std::isfinite(lrd[j])
                     ? lrd[j] / lrd[i]
                     : std::numeric_limits<double>::max();
      ratio_sum += std::min(r, 1e12);
    }
    scores[i] = -(ratio_sum / static_cast<double>(neighbors[i].size()));
  }
  return scores;
}

// ------------------------------------------------------------- Mahalanobis

MahalanobisDetector::MahalanobisDetector(double ridge) : ridge_(ridge) {
  SENT_REQUIRE(ridge > 0.0);
}

std::vector<double> MahalanobisDetector::score(const ml::Matrix& rows) {
  std::size_t d = check_matrix(rows);
  StandardScaler scaler;
  scaler.fit(rows);
  Matrix z = scaler.transform(rows);

  auto cov = covariance_matrix(z);
  for (std::size_t i = 0; i < d; ++i) cov[i * d + i] += ridge_;
  auto eig = symmetric_eigen(cov, d);

  // Inverse via eigendecomposition: Cov^-1 = V diag(1/lambda) V'.
  std::vector<double> scores(z.rows());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    std::span<const double> zr = z.row(r);
    double m2 = 0.0;
    for (std::size_t kdx = 0; kdx < d; ++kdx) {
      double lambda = std::max(eig.values[kdx], ridge_ * 1e-3);
      double p = util::dot(zr, eig.vectors[kdx]);
      m2 += p * p / lambda;
    }
    scores[r] = -std::sqrt(std::max(m2, 0.0));
  }
  return scores;
}

}  // namespace sent::ml
