// Alternative outlier detectors pluggable into the Sentomist framework
// (paper §VI-E: "There are many other outlier detection algorithms ...
// such as Principal Component Analysis ... Sentomist can actually plug in
// these outlier detection algorithms conveniently. A further comparison
// study can be conducted" — that comparison is bench/ablation_detectors).
//
// All follow the core convention: LOWER score = MORE suspicious. Distance-
// like measures are negated so they rank the same way as the SVM's signed
// boundary distance.
#pragma once

#include <memory>
#include <vector>

#include "core/detector.hpp"
#include "ml/matrix.hpp"
#include "ml/scaler.hpp"

namespace sent::ml {

/// PCA detector combining the two classic monitoring statistics: Hotelling
/// T^2 (variance-normalized deviation inside the principal subspace
/// capturing `explained` of the variance) and the SPE/Q residual
/// (off-subspace reconstruction error). score = -sqrt(T^2 + Q/lambda_res),
/// so both "far along the data directions" and "off the data subspace"
/// rank as outliers.
class PcaDetector final : public core::OutlierDetector {
 public:
  explicit PcaDetector(double explained = 0.95);
  std::string name() const override { return "pca"; }
  std::vector<double> score(const ml::Matrix& rows) override;
  using core::OutlierDetector::score;

  std::size_t components_used() const { return components_; }

 private:
  double explained_;
  std::size_t components_ = 0;
};

/// k-nearest-neighbour distance detector: score = -(mean distance to the
/// k nearest other points).
class KnnDetector final : public core::OutlierDetector {
 public:
  explicit KnnDetector(std::size_t k = 10);
  std::string name() const override { return "knn"; }
  std::vector<double> score(const ml::Matrix& rows) override;
  using core::OutlierDetector::score;

 private:
  std::size_t k_;
};

/// Local Outlier Factor (Breunig et al. 2000): score = -LOF_k(x).
class LofDetector final : public core::OutlierDetector {
 public:
  explicit LofDetector(std::size_t k = 10);
  std::string name() const override { return "lof"; }
  std::vector<double> score(const ml::Matrix& rows) override;
  using core::OutlierDetector::score;

 private:
  std::size_t k_;
};

/// Mahalanobis-distance detector with ridge-regularized covariance:
/// score = -sqrt((x-mu)' (Cov + eps I)^-1 (x-mu)).
class MahalanobisDetector final : public core::OutlierDetector {
 public:
  explicit MahalanobisDetector(double ridge = 1e-3);
  std::string name() const override { return "mahalanobis"; }
  std::vector<double> score(const ml::Matrix& rows) override;
  using core::OutlierDetector::score;

 private:
  double ridge_;
};

}  // namespace sent::ml
