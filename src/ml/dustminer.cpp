#include "ml/dustminer.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/assert.hpp"

namespace sent::ml {

std::string MinedPattern::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i) os << " -> ";
    os << events[i];
  }
  return os.str();
}

std::vector<std::vector<std::uint32_t>> code_object_sequences(
    const trace::NodeTrace& trace,
    std::span<const core::EventInterval> intervals,
    std::vector<std::string>* object_names) {
  SENT_REQUIRE(!trace.instr_table.empty());
  // Map instructions to code-object ids in order of first appearance.
  std::vector<std::uint32_t> instr_to_object(trace.instr_table.size());
  std::vector<std::string> names;
  {
    // First-appearance order comes from `names`, so a hash map (reserved
    // to the table size) is enough for the id lookup.
    std::unordered_map<std::string, std::uint32_t> ids;
    ids.reserve(trace.instr_table.size());
    for (std::size_t i = 0; i < trace.instr_table.size(); ++i) {
      const std::string& object = trace.instr_table[i].code_object;
      auto [it, inserted] =
          ids.try_emplace(object, static_cast<std::uint32_t>(names.size()));
      if (inserted) names.push_back(object);
      instr_to_object[i] = it->second;
    }
  }
  if (object_names) *object_names = names;

  std::vector<std::vector<std::uint32_t>> sequences;
  sequences.reserve(intervals.size());
  for (const auto& interval : intervals) {
    std::vector<std::uint32_t> seq;
    auto lo = std::lower_bound(
        trace.instrs.begin(), trace.instrs.end(), interval.start_cycle,
        [](const trace::InstrExec& e, sim::Cycle c) { return e.cycle < c; });
    for (auto it = lo;
         it != trace.instrs.end() && it->cycle <= interval.end_cycle; ++it) {
      std::uint32_t object = instr_to_object[it->instr];
      if (seq.empty() || seq.back() != object) seq.push_back(object);
    }
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

Dustminer::Dustminer(DustminerParams params) : params_(params) {
  SENT_REQUIRE(params_.max_n >= 1);
  SENT_REQUIRE(params_.top_patterns >= 1);
}

std::vector<MinedPattern> Dustminer::mine(
    const std::vector<std::vector<std::uint32_t>>& sequences,
    const std::vector<bool>& labels_bad,
    const std::vector<std::string>& object_names) const {
  SENT_REQUIRE(sequences.size() == labels_bad.size());
  std::size_t n_bad = 0;
  for (bool b : labels_bad) n_bad += b;
  SENT_REQUIRE_MSG(n_bad >= 1 && n_bad < sequences.size(),
                   "need at least one bad and one good interval");
  const double bad_count = static_cast<double>(n_bad);
  const double good_count = static_cast<double>(sequences.size() - n_bad);

  // Count every n-gram's total occurrences in each class.
  std::map<std::vector<std::uint32_t>, std::pair<double, double>> counts;
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    const auto& seq = sequences[s];
    for (std::size_t n = 1; n <= params_.max_n; ++n) {
      if (seq.size() < n) continue;
      for (std::size_t i = 0; i + n <= seq.size(); ++i) {
        std::vector<std::uint32_t> gram(seq.begin() + static_cast<long>(i),
                                        seq.begin() + static_cast<long>(i + n));
        auto& entry = counts[std::move(gram)];
        if (labels_bad[s])
          entry.first += 1.0;
        else
          entry.second += 1.0;
      }
    }
  }

  std::vector<MinedPattern> patterns;
  patterns.reserve(counts.size());
  for (const auto& [gram, supports] : counts) {
    MinedPattern p;
    for (std::uint32_t id : gram) {
      SENT_ASSERT(id < object_names.size());
      p.events.push_back(object_names[id]);
    }
    p.support_bad = supports.first / bad_count;
    p.support_good = supports.second / good_count;
    p.score = std::abs(p.support_bad - p.support_good);
    p.more_frequent_in_bad = p.support_bad > p.support_good;
    if (p.score >= params_.min_score) patterns.push_back(std::move(p));
  }
  std::stable_sort(patterns.begin(), patterns.end(),
                   [](const MinedPattern& a, const MinedPattern& b) {
                     return a.score > b.score;
                   });
  if (patterns.size() > params_.top_patterns)
    patterns.resize(params_.top_patterns);
  return patterns;
}

}  // namespace sent::ml
