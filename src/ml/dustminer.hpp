// Dustminer-style baseline (Khan et al., SenSys 2008 — the paper's main
// comparator, §II).
//
// Dustminer troubleshoots sensor networks by mining DISCRIMINATIVE event
// patterns from function-level logs: given a log segment labelled "good
// behaviour" and one labelled "bad behaviour", it ranks the event n-grams
// whose frequency differs most between the two. Its key limitation — the
// one Sentomist removes — is that somebody must supply those labels:
// "such identification of bad-behavior interval generally causes extensive
// manual efforts, especially when a bug is transient in nature."
//
// This implementation mines n-grams (n = 1..max_n) over per-interval
// code-object event sequences and scores each pattern by the difference in
// mean per-interval support between the bad and good sets. The
// ext_baseline_dustminer bench feeds it ground-truth labels (the idealized
// best case) and progressively corrupted labels to quantify the cost of
// the labelling requirement.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/anatomizer.hpp"
#include "trace/recorder.hpp"

namespace sent::ml {

/// A mined pattern: a sequence of code-object names with its supports.
struct MinedPattern {
  std::vector<std::string> events;
  double support_bad = 0.0;   ///< mean occurrences per bad interval
  double support_good = 0.0;  ///< mean occurrences per good interval
  double score = 0.0;         ///< |support_bad - support_good|
  bool more_frequent_in_bad = false;

  std::string to_string() const;
};

/// Per-interval event sequence at function (code-object) granularity:
/// consecutive executions within the same code object collapse to one
/// event, mirroring Dustminer's function-entry logging.
std::vector<std::vector<std::uint32_t>> code_object_sequences(
    const trace::NodeTrace& trace,
    std::span<const core::EventInterval> intervals,
    std::vector<std::string>* object_names = nullptr);

struct DustminerParams {
  std::size_t max_n = 3;        ///< longest n-gram mined
  std::size_t top_patterns = 20;
  double min_score = 1e-9;      ///< drop non-discriminative patterns
};

class Dustminer {
 public:
  explicit Dustminer(DustminerParams params = {});

  /// Mine discriminative patterns between the labelled interval sets.
  /// `labels_bad[i]` marks sequence i as bad behaviour. Requires at least
  /// one interval on each side.
  std::vector<MinedPattern> mine(
      const std::vector<std::vector<std::uint32_t>>& sequences,
      const std::vector<bool>& labels_bad,
      const std::vector<std::string>& object_names) const;

 private:
  DustminerParams params_;
};

}  // namespace sent::ml
