#include "ml/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/scaler.hpp"
#include "util/assert.hpp"

namespace sent::ml {

SymmetricEigen symmetric_eigen(const std::vector<double>& a, std::size_t n,
                               double tol, std::size_t max_sweeps) {
  SENT_REQUIRE(n > 0);
  SENT_REQUIRE(a.size() == n * n);
  std::vector<double> m = a;  // working copy, driven to diagonal
  // v: accumulated rotations, starts as identity; v[i*n+k] is component i
  // of eigenvector k.
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diagonal_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += m[i * n + j] * m[i * n + j];
    return std::sqrt(s);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double apq = m[p * n + q];
        if (std::abs(apq) <= tol) continue;
        double app = m[p * n + p], aqq = m[q * n + q];
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double cos_r = 1.0 / std::sqrt(t * t + 1.0);
        double sin_r = t * cos_r;
        // Rotate rows/cols p and q of m.
        for (std::size_t k = 0; k < n; ++k) {
          double mkp = m[k * n + p], mkq = m[k * n + q];
          m[k * n + p] = cos_r * mkp - sin_r * mkq;
          m[k * n + q] = sin_r * mkp + cos_r * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          double mpk = m[p * n + k], mqk = m[q * n + k];
          m[p * n + k] = cos_r * mpk - sin_r * mqk;
          m[q * n + k] = sin_r * mpk + cos_r * mqk;
        }
        // Accumulate into v.
        for (std::size_t k = 0; k < n; ++k) {
          double vkp = v[k * n + p], vkq = v[k * n + q];
          v[k * n + p] = cos_r * vkp - sin_r * vkq;
          v[k * n + q] = sin_r * vkp + cos_r * vkq;
        }
      }
    }
  }

  // Collect and sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m[x * n + x] > m[y * n + y];
  });
  SymmetricEigen result;
  result.values.reserve(n);
  result.vectors.reserve(n);
  for (std::size_t k : order) {
    result.values.push_back(m[k * n + k]);
    std::vector<double> vec(n);
    for (std::size_t i = 0; i < n; ++i) vec[i] = v[i * n + k];
    result.vectors.push_back(std::move(vec));
  }
  return result;
}

std::vector<double> covariance_matrix(const Matrix& rows) {
  std::size_t d = check_matrix(rows);
  auto n = static_cast<double>(rows.rows());
  std::vector<double> mean(d, 0.0);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    std::span<const double> row = rows.row(r);
    for (std::size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& m : mean) m /= n;
  std::vector<double> cov(d * d, 0.0);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    std::span<const double> row = rows.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      double di = row[i] - mean[i];
      for (std::size_t j = i; j < d; ++j)
        cov[i * d + j] += di * (row[j] - mean[j]);
    }
  }
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i; j < d; ++j) {
      cov[i * d + j] /= n;
      cov[j * d + i] = cov[i * d + j];
    }
  return cov;
}

std::vector<double> covariance_matrix(
    const std::vector<std::vector<double>>& rows) {
  return covariance_matrix(Matrix::from_rows(rows));
}

}  // namespace sent::ml
