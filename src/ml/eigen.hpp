// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Dimensionalities here are small (feature columns, a few hundred at
// most), where Jacobi is simple, robust, and plenty fast. Shared by the
// PCA and Mahalanobis detectors.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/matrix.hpp"

namespace sent::ml {

/// Dense row-major symmetric matrix.
struct SymmetricEigen {
  std::vector<double> values;               ///< descending
  std::vector<std::vector<double>> vectors; ///< vectors[k] pairs values[k]
};

/// Decompose the n x n symmetric matrix `a` (row-major, only assumed
/// symmetric). Throws on non-square input.
SymmetricEigen symmetric_eigen(const std::vector<double>& a, std::size_t n,
                               double tol = 1e-12,
                               std::size_t max_sweeps = 64);

/// Covariance matrix (row-major, d x d) of centred data; uses the biased
/// (1/n) normalizer.
std::vector<double> covariance_matrix(const Matrix& rows);
std::vector<double> covariance_matrix(
    const std::vector<std::vector<double>>& rows);

}  // namespace sent::ml
