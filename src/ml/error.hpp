// Typed training failures (DESIGN.md §9).
//
// The solvers used to abort the process on numerically impossible states
// (assert-style). Under fault injection a corrupted or salvaged trace can
// legitimately feed the ML stage degenerate feature matrices, so those
// states are now reported as TrainingError and callers degrade gracefully:
// the analysis pipeline falls back to the k-nearest-neighbour distance
// detector and flags the report as degraded instead of dying.
#pragma once

#include <stdexcept>
#include <string>

namespace sent::ml {

class TrainingError : public std::runtime_error {
 public:
  explicit TrainingError(const std::string& what)
      : std::runtime_error("training error: " + what) {}
};

}  // namespace sent::ml
