#include "ml/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace sent::ml {

std::string KernelSpec::to_string() const {
  std::ostringstream os;
  switch (type) {
    case KernelType::Rbf:
      os << "rbf(gamma=" << (gamma > 0 ? std::to_string(gamma) : "auto")
         << ")";
      break;
    case KernelType::Linear:
      os << "linear";
      break;
    case KernelType::Poly:
      os << "poly(degree=" << degree << ")";
      break;
  }
  return os.str();
}

double resolve_gamma(const KernelSpec& spec, std::size_t d) {
  SENT_REQUIRE(d > 0);
  if (spec.gamma > 0) return spec.gamma;
  return 1.0 / static_cast<double>(d);
}

double powi(double base, int exponent) {
  if (exponent < 0) return std::pow(base, exponent);
  double result = 1.0;
  double square = base;
  for (int e = exponent; e > 0; e >>= 1) {
    if (e & 1) result *= square;
    square *= square;
  }
  return result;
}

double kernel_eval(const KernelSpec& spec, double gamma,
                   std::span<const double> a, std::span<const double> b) {
  SENT_REQUIRE(a.size() == b.size());
  switch (spec.type) {
    case KernelType::Rbf: {
      double d2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d2 += diff * diff;
      }
      return std::exp(-gamma * d2);
    }
    case KernelType::Linear:
      return util::dot(a, b);
    case KernelType::Poly:
      return powi(gamma * util::dot(a, b) + spec.coef0, spec.degree);
  }
  SENT_ASSERT_MSG(false, "unknown kernel type");
  return 0.0;
}

std::vector<double> row_squared_norms(const Matrix& x) {
  std::vector<double> norms(x.rows());
  const std::size_t d = x.cols();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* xi = x.data() + i * d;
    double n = 0.0;
    for (std::size_t t = 0; t < d; ++t) n += xi[t] * xi[t];
    norms[i] = n;
  }
  return norms;
}

double kernel_from_dot(const KernelSpec& spec, double gamma, double dot_ab,
                       double norm_a, double norm_b) {
  switch (spec.type) {
    case KernelType::Rbf:
      // |a-b|^2 = |a|^2 + |b|^2 - 2<a,b>; clamp the cancellation residue
      // so near-duplicate rows cannot produce a (tiny) negative distance.
      return std::exp(-gamma *
                      std::max(norm_a + norm_b - 2.0 * dot_ab, 0.0));
    case KernelType::Linear:
      return dot_ab;
    case KernelType::Poly:
      return powi(gamma * dot_ab + spec.coef0, spec.degree);
  }
  SENT_ASSERT_MSG(false, "unknown kernel type");
  return 0.0;
}

void build_kernel_matrix_reference(const KernelSpec& spec, double gamma,
                                   const Matrix& x, util::ThreadPool* pool,
                                   std::vector<double>& out) {
  const std::size_t l = x.rows();
  check_matrix(x);
  out.resize(l * l);
  auto row_task = [&](std::size_t i) {
    for (std::size_t j = i; j < l; ++j) {
      double v = kernel_eval(spec, gamma, x.row(i), x.row(j));
      out[i * l + j] = v;
      out[j * l + i] = v;
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(l, row_task);
  } else {
    for (std::size_t i = 0; i < l; ++i) row_task(i);
  }
}

}  // namespace sent::ml
