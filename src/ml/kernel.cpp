#include "ml/kernel.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace sent::ml {

std::string KernelSpec::to_string() const {
  std::ostringstream os;
  switch (type) {
    case KernelType::Rbf:
      os << "rbf(gamma=" << (gamma > 0 ? std::to_string(gamma) : "auto")
         << ")";
      break;
    case KernelType::Linear:
      os << "linear";
      break;
    case KernelType::Poly:
      os << "poly(degree=" << degree << ")";
      break;
  }
  return os.str();
}

double resolve_gamma(const KernelSpec& spec, std::size_t d) {
  SENT_REQUIRE(d > 0);
  if (spec.gamma > 0) return spec.gamma;
  return 1.0 / static_cast<double>(d);
}

double kernel_eval(const KernelSpec& spec, double gamma,
                   std::span<const double> a, std::span<const double> b) {
  SENT_REQUIRE(a.size() == b.size());
  switch (spec.type) {
    case KernelType::Rbf: {
      double d2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d2 += diff * diff;
      }
      return std::exp(-gamma * d2);
    }
    case KernelType::Linear:
      return util::dot(a, b);
    case KernelType::Poly:
      return std::pow(gamma * util::dot(a, b) + spec.coef0, spec.degree);
  }
  SENT_ASSERT_MSG(false, "unknown kernel type");
  return 0.0;
}

}  // namespace sent::ml
