// Kernel functions for the one-class SVM.
//
// The RBF kernel is the paper's workhorse ("the kernel method can be
// seamlessly applied ... it can find a nonlinear boundary"); linear and
// polynomial kernels are provided for ablation.
//
// Two Gram-matrix builders are provided (DESIGN.md §10):
//  - build_kernel_matrix: the optimized path. Caches per-row squared
//    norms so RBF entries come from one dot product —
//    K(i,j) = exp(-gamma (|xi|^2 + |xj|^2 - 2 <xi,xj>)) — and walks the
//    upper triangle in cache-sized tiles, fanning tile-rows across an
//    optional thread pool.
//  - build_kernel_matrix_reference: the retained pre-optimization path
//    (one kernel_eval call per entry), kept as the parity/benchmark
//    baseline for the optimized build.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.hpp"

namespace sent::util {
class ThreadPool;
}

namespace sent::ml {

enum class KernelType : std::uint8_t { Rbf, Linear, Poly };

struct KernelSpec {
  KernelType type = KernelType::Rbf;

  /// RBF/Poly gamma. <= 0 means "auto": 1 / dimensionality (sensible after
  /// standardization, matching LIBSVM's default on scaled data).
  double gamma = 0.0;

  /// Poly only.
  int degree = 3;
  double coef0 = 1.0;

  std::string to_string() const;
};

/// Evaluate k(a, b) with `gamma` already resolved (> 0 where relevant).
double kernel_eval(const KernelSpec& spec, double gamma,
                   std::span<const double> a, std::span<const double> b);

/// Resolve the effective gamma for dimensionality d.
double resolve_gamma(const KernelSpec& spec, std::size_t d);

/// base^exponent by squaring for integral exponents >= 0 (the poly kernel
/// calls this per element instead of std::pow).
double powi(double base, int exponent);

/// Squared Euclidean norm of every row of `x`.
std::vector<double> row_squared_norms(const Matrix& x);

/// Finish one kernel entry from a precomputed dot product and the two
/// rows' squared norms (RBF uses the norms; linear/poly ignore them).
double kernel_from_dot(const KernelSpec& spec, double gamma, double dot_ab,
                       double norm_a, double norm_b);

/// Dense symmetric l x l Gram matrix of `x` into `out` (resized), via the
/// norm-cached blocked triangular build. `pool` may be nullptr (inline).
void build_kernel_matrix(const KernelSpec& spec, double gamma,
                         const Matrix& x, util::ThreadPool* pool,
                         std::vector<double>& out);

/// Retained reference build: one kernel_eval per upper-triangle entry,
/// row-parallel across `pool` (nullptr = inline) — the pre-flat-layout
/// hot path, kept for parity tests and the micro_perf baseline.
void build_kernel_matrix_reference(const KernelSpec& spec, double gamma,
                                   const Matrix& x, util::ThreadPool* pool,
                                   std::vector<double>& out);

}  // namespace sent::ml
