// Kernel functions for the one-class SVM.
//
// The RBF kernel is the paper's workhorse ("the kernel method can be
// seamlessly applied ... it can find a nonlinear boundary"); linear and
// polynomial kernels are provided for ablation.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace sent::ml {

enum class KernelType : std::uint8_t { Rbf, Linear, Poly };

struct KernelSpec {
  KernelType type = KernelType::Rbf;

  /// RBF/Poly gamma. <= 0 means "auto": 1 / dimensionality (sensible after
  /// standardization, matching LIBSVM's default on scaled data).
  double gamma = 0.0;

  /// Poly only.
  int degree = 3;
  double coef0 = 1.0;

  std::string to_string() const;
};

/// Evaluate k(a, b) with `gamma` already resolved (> 0 where relevant).
double kernel_eval(const KernelSpec& spec, double gamma,
                   std::span<const double> a, std::span<const double> b);

/// Resolve the effective gamma for dimensionality d.
double resolve_gamma(const KernelSpec& spec, std::size_t d);

}  // namespace sent::ml
