// Optimized Gram-matrix build (DESIGN.md §10).
//
// This translation unit is compiled with vector-math flags when the
// toolchain supports them (see src/CMakeLists.txt): the batched
// exp() loop below then lowers to libmvec SIMD calls and the blocked dot
// micro-kernel to FMA vectors. The retained reference build in kernel.cpp
// stays on the project-default flags so it remains bit-identical to the
// pre-optimization code path.
//
// Structure per column tile [j0, j1):
//   1. a 4x2 register-blocked micro-kernel forms dot products of every
//      row i <= j1 against the tile's rows (one pass over x, eight
//      accumulators live in registers),
//   2. a flat finisher turns a row of dots into kernel entries — for RBF
//      that is one vectorizable exp() sweep over
//      max(|xi|^2 + |xj|^2 - 2<xi,xj>, 0),
//   3. the mirror fill copies the upper triangle into the lower one in
//      cache-sized blocks.
// Tiles are fanned across the optional thread pool; each tile writes a
// disjoint column stripe (plus its own mirror rows), so tasks never touch
// the same element.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "ml/kernel.hpp"
#include "util/thread_pool.hpp"

namespace sent::ml {

namespace {

/// Column-tile width: 128 doubles of distance scratch per row block stays
/// resident while the exp sweep runs.
constexpr std::size_t kTileJ = 128;

/// Convert a row of dot products into kernel entries.
void finish_row(const KernelSpec& spec, double gamma, double norm_i,
                const double* norms_j, const double* dots, double* out,
                std::size_t n) {
  switch (spec.type) {
    case KernelType::Rbf:
      // The whole tile row goes through exp() in one loop: with vector
      // math enabled this is a SIMD exp per 4-8 entries instead of a
      // scalar libm call per entry.
      for (std::size_t t = 0; t < n; ++t)
        out[t] = std::exp(
            -gamma * std::max(norm_i + norms_j[t] - 2.0 * dots[t], 0.0));
      return;
    case KernelType::Linear:
      for (std::size_t t = 0; t < n; ++t) out[t] = dots[t];
      return;
    case KernelType::Poly:
      for (std::size_t t = 0; t < n; ++t)
        out[t] = powi(gamma * dots[t] + spec.coef0, spec.degree);
      return;
  }
}

}  // namespace

void build_kernel_matrix(const KernelSpec& spec, double gamma,
                         const Matrix& x, util::ThreadPool* pool,
                         std::vector<double>& out) {
  const std::size_t l = x.rows();
  const std::size_t d = check_matrix(x);
  out.resize(l * l);
  const std::vector<double> norms = row_squared_norms(x);
  const double* base = x.data();
  const double* nrm = norms.data();
  const std::size_t tiles = (l + kTileJ - 1) / kTileJ;

  // One task per column tile: it owns columns [j0, j1) of the upper
  // triangle and rows [j0, j1) of the lower one, so tasks are disjoint.
  // Round-robin striping in parallel_for balances the triangular cost.
  auto tile_task = [&](std::size_t tj) {
    const std::size_t j0 = tj * kTileJ;
    const std::size_t j1 = std::min(l, j0 + kTileJ);
    double dbuf[4][kTileJ];

    std::size_t i = 0;
    // Four i-rows per pass: each tile row of x is loaded once for four
    // dot-product rows instead of once per row.
    for (; i + 4 <= j1; i += 4) {
      const double* xi0 = base + (i + 0) * d;
      const double* xi1 = base + (i + 1) * d;
      const double* xi2 = base + (i + 2) * d;
      const double* xi3 = base + (i + 3) * d;
      const std::size_t jb = std::max(j0, i);
      std::size_t j = jb;
      for (; j + 2 <= j1; j += 2) {
        const double* a = base + j * d;
        const double* b = a + d;
        double s00 = 0, s01 = 0, s10 = 0, s11 = 0;
        double s20 = 0, s21 = 0, s30 = 0, s31 = 0;
        for (std::size_t t = 0; t < d; ++t) {
          const double av = a[t], bv = b[t];
          s00 += xi0[t] * av; s01 += xi0[t] * bv;
          s10 += xi1[t] * av; s11 += xi1[t] * bv;
          s20 += xi2[t] * av; s21 += xi2[t] * bv;
          s30 += xi3[t] * av; s31 += xi3[t] * bv;
        }
        const std::size_t c = j - jb;
        dbuf[0][c] = s00; dbuf[0][c + 1] = s01;
        dbuf[1][c] = s10; dbuf[1][c + 1] = s11;
        dbuf[2][c] = s20; dbuf[2][c + 1] = s21;
        dbuf[3][c] = s30; dbuf[3][c + 1] = s31;
      }
      for (; j < j1; ++j) {
        const double* a = base + j * d;
        double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (std::size_t t = 0; t < d; ++t) {
          const double av = a[t];
          s0 += xi0[t] * av; s1 += xi1[t] * av;
          s2 += xi2[t] * av; s3 += xi3[t] * av;
        }
        const std::size_t c = j - jb;
        dbuf[0][c] = s0; dbuf[1][c] = s1; dbuf[2][c] = s2; dbuf[3][c] = s3;
      }
      const std::size_t n = j1 - jb;
      // Rows i+1..i+3 of a diagonal tile produce a few entries below the
      // diagonal (j in [jb, i+r)); their values are correct kernel
      // entries, and the mirror pass below rewrites them from the row
      // that owns them, so no masking is needed here.
      for (std::size_t r = 0; r < 4; ++r)
        finish_row(spec, gamma, nrm[i + r], nrm + jb, dbuf[r],
                   out.data() + (i + r) * l + jb, n);
    }
    for (; i < j1; ++i) {
      const double* xi = base + i * d;
      const std::size_t jb = std::max(j0, i);
      for (std::size_t j = jb; j < j1; ++j) {
        const double* xj = base + j * d;
        double dot = 0;
        for (std::size_t t = 0; t < d; ++t) dot += xi[t] * xj[t];
        dbuf[0][j - jb] = dot;
      }
      finish_row(spec, gamma, nrm[i], nrm + jb, dbuf[0],
                 out.data() + i * l + jb, j1 - jb);
    }

    // Mirror this tile's columns into its rows, block by block so both
    // the read and the (strided) write stay cache-resident.
    constexpr std::size_t kB = 64;
    for (std::size_t i0 = 0; i0 < j1; i0 += kB) {
      const std::size_t i1 = std::min(j1, i0 + kB);
      for (std::size_t ii = i0; ii < i1; ++ii)
        for (std::size_t j = std::max(j0, ii + 1); j < j1; ++j)
          out[j * l + ii] = out[ii * l + j];
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(tiles, tile_task);
  } else {
    for (std::size_t tj = 0; tj < tiles; ++tj) tile_task(tj);
  }
}

}  // namespace sent::ml
