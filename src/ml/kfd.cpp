#include "ml/kfd.hpp"

#include <algorithm>
#include <cmath>

#include "ml/scaler.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sent::ml {

KernelFisherDetector::KernelFisherDetector(KfdParams params)
    : params_(params) {
  SENT_REQUIRE(params_.components >= 1);
  SENT_REQUIRE(params_.power_iterations >= 1);
}

std::vector<double> KernelFisherDetector::score(const ml::Matrix& rows) {
  const std::size_t d = check_matrix(rows);
  const std::size_t n = rows.rows();
  if (n == 1) return {0.0};

  Matrix z;
  if (params_.standardize) {
    StandardScaler scaler;
    scaler.fit(rows);
    z = scaler.transform(rows);
  } else {
    z = rows;
  }
  double gamma = resolve_gamma(params_.kernel, d);

  // Gram matrix via the norm-cached blocked build, then double centring:
  // Kc = K - 1K/n - K1/n + 11'K/n^2.
  std::vector<double> k;
  build_kernel_matrix(params_.kernel, gamma, z, nullptr, k);
  std::vector<double> row_mean(n, 0.0);
  double total_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_mean[i] += k[i * n + j];
    row_mean[i] /= static_cast<double>(n);
    total_mean += row_mean[i];
  }
  total_mean /= static_cast<double>(n);
  std::vector<double> kc(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      kc[i * n + j] = k[i * n + j] - row_mean[i] - row_mean[j] + total_mean;

  // Diagonal before deflation: feature-space squared norms of the centred
  // points, needed for the reconstruction-error term.
  std::vector<double> kc_diag(n);
  for (std::size_t i = 0; i < n; ++i) kc_diag[i] = kc[i * n + i];
  double trace_total = 0.0;
  for (double v : kc_diag) trace_total += std::max(v, 0.0);

  // Power iteration with deflation for the leading eigenpairs.
  std::size_t n_components = std::min(params_.components, n - 1);
  std::vector<std::vector<double>> vectors;
  eigenvalues_.clear();
  util::Rng rng(0x5e17'0a11);
  std::vector<double> work(n), v(n);
  for (std::size_t c = 0; c < n_components; ++c) {
    for (double& x : v) x = rng.normal();
    double lambda = 0.0;
    for (std::size_t it = 0; it < params_.power_iterations; ++it) {
      // work = Kc v (Kc already deflated in place).
      for (std::size_t i = 0; i < n; ++i) {
        double sum = 0.0;
        const double* row = &kc[i * n];
        for (std::size_t j = 0; j < n; ++j) sum += row[j] * v[j];
        work[i] = sum;
      }
      double norm = 0.0;
      for (double x : work) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-14) break;  // exhausted the spectrum
      for (std::size_t i = 0; i < n; ++i) v[i] = work[i] / norm;
      lambda = norm;  // Rayleigh quotient of the normalized iterate
    }
    if (lambda < 1e-12) break;
    // Deflate: Kc -= lambda v v'.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        kc[i * n + j] -= lambda * v[i] * v[j];
    eigenvalues_.push_back(lambda);
    vectors.push_back(v);
  }

  if (eigenvalues_.empty())
    return std::vector<double>(n, 0.0);  // degenerate data

  // Residual eigenvalue scale for normalizing the reconstruction error.
  double captured = 0.0;
  for (double lambda : eigenvalues_) captured += lambda;
  double lambda_res =
      std::max((trace_total - captured) /
                   std::max<double>(1.0, static_cast<double>(n - eigenvalues_.size())),
               1e-9 * std::max(trace_total, 1.0));

  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Projection of point i onto kernel PC j is sqrt(lambda_j) * u_j[i].
    // With an RBF kernel every sufficiently-far point is near-ORTHOGONAL
    // to the data's principal subspace, so the discriminative quantity is
    // the feature-space reconstruction error (residual), normalized by
    // the regularized residual eigenvalue — the ridge-regularized tail of
    // Roth's OC-KFD Mahalanobis distance, whose leading terms are O(1)
    // for normal and outlying points alike and therefore omitted.
    double captured_norm2 = 0.0;
    for (std::size_t j = 0; j < eigenvalues_.size(); ++j) {
      double u = vectors[j][i];
      captured_norm2 += eigenvalues_[j] * u * u;
    }
    double residual = std::max(kc_diag[i] - captured_norm2, 0.0);
    scores[i] = -std::sqrt(residual / lambda_res);
  }
  return scores;
}

}  // namespace sent::ml
