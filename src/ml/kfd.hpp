// One-class Kernel Fisher Discriminant detector — the second alternative
// the paper names in §VI-E ("such as Principal Component Analysis and
// one-class Kernel Fisher Discriminants").
//
// Following Roth's kernelized-Gaussian view of OC-KFD: model the data as a
// Gaussian in the kernel-induced feature space, estimated through kernel
// PCA on the centred Gram matrix. A point's outlier score combines its
// variance-normalized distance inside the leading kernel principal
// subspace (the Fisher/Mahalanobis term) with its feature-space
// reconstruction error outside it. Eigenpairs of the centred Gram matrix
// are extracted by power iteration with deflation, which is exact enough
// for the handful of leading components the model needs and avoids a full
// O(n^3) decomposition on thousand-sample Gram matrices.
#pragma once

#include "core/detector.hpp"
#include "ml/kernel.hpp"

namespace sent::ml {

struct KfdParams {
  KernelSpec kernel{};          ///< RBF by default, gamma auto
  std::size_t components = 8;   ///< leading kernel principal components
  std::size_t power_iterations = 120;
  bool standardize = true;
};

class KernelFisherDetector final : public core::OutlierDetector {
 public:
  explicit KernelFisherDetector(KfdParams params = {});

  std::string name() const override { return "oc-kfd"; }

  std::vector<double> score(const ml::Matrix& rows) override;
  using core::OutlierDetector::score;

  /// Eigenvalues actually extracted on the last score() call (tests).
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

 private:
  KfdParams params_;
  std::vector<double> eigenvalues_;
};

}  // namespace sent::ml
