// Contiguous row-major matrix — the ML data plane (DESIGN.md §10).
//
// Every detector, the scaler and the kernel builders operate on this flat
// layout instead of std::vector<std::vector<double>>: one allocation, rows
// adjacent in memory, and cheap std::span row views. That is what makes
// the blocked kernel build cache-friendly and lets the featurizer fill
// rows in place without a fresh allocation per interval.
//
// Header-only on purpose: sent_core consumes it (FeatureMatrix, the
// OutlierDetector interface) without linking against sent_ml.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace sent::ml {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, filled with `value`. rows may be 0 (fixes the width for
  /// later append_row / append_zero_row calls).
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Copy a row-vector matrix into flat storage. Throws on ragged input.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows) {
    Matrix m;
    if (rows.empty()) return m;
    m.cols_ = rows[0].size();
    m.reserve_rows(rows.size());
    for (const auto& row : rows) m.append_row(row);
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  std::span<const double> row(std::size_t i) const {
    SENT_ASSERT(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> row(std::size_t i) {
    SENT_ASSERT(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  /// Row i as an owned vector (tests / interop).
  std::vector<double> row_vector(std::size_t i) const {
    auto r = row(i);
    return {r.begin(), r.end()};
  }

  double operator()(std::size_t i, std::size_t j) const {
    SENT_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double& operator()(std::size_t i, std::size_t j) {
    SENT_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  void reserve_rows(std::size_t n) { data_.reserve(n * cols_); }

  /// Append a copy of `values`. The first append to a default-constructed
  /// matrix fixes the column count.
  void append_row(std::span<const double> values) {
    if (rows_ == 0 && cols_ == 0) cols_ = values.size();
    SENT_REQUIRE_MSG(values.size() == cols_, "ragged feature matrix");
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
  }

  /// Append an all-zero row and return a writable view of it (in-place
  /// featurization: no scratch row allocation per interval).
  std::span<double> append_zero_row() {
    data_.resize(data_.size() + cols_, 0.0);
    ++rows_;
    return row(rows_ - 1);
  }

  /// Append every row of `other` (column counts must match).
  void append_rows(const Matrix& other) {
    if (rows_ == 0 && cols_ == 0) cols_ = other.cols_;
    SENT_REQUIRE_MSG(other.cols_ == cols_, "column counts differ");
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    rows_ += other.rows_;
  }

  /// Copy out as a row-vector matrix (interop with legacy callers).
  std::vector<std::vector<double>> to_rows() const {
    std::vector<std::vector<double>> out;
    out.reserve(rows_);
    for (std::size_t i = 0; i < rows_; ++i) out.push_back(row_vector(i));
    return out;
  }

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Validate that `m` is non-empty with a positive width; returns the width.
inline std::size_t check_matrix(const Matrix& m) {
  SENT_REQUIRE_MSG(!m.empty(), "empty feature matrix");
  SENT_REQUIRE_MSG(m.cols() > 0, "zero-dimensional feature matrix");
  return m.cols();
}

}  // namespace sent::ml
