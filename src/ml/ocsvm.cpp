#include "ml/ocsvm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/error.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace sent::ml {

namespace {
constexpr double kEps = 1e-12;
constexpr double kTau = 1e-12;  // denominator floor in the pair update

// ML data-plane introspection (DESIGN.md §11). Everything here is a pure
// function of the training data, so it stays in the deterministic metrics
// sections; the one wall-clock quantity (the Gram build) is a timer.
// Recording happens once per fit / per build — never inside kernel loops,
// which keeps the disabled-registry overhead on micro_perf under noise.
struct Metrics {
  obs::Counter fits = obs::Registry::global().counter("ml.ocsvm_fits");
  obs::Counter iterations =
      obs::Registry::global().counter("ml.smo_iterations");
  obs::Counter shrink_cycles =
      obs::Registry::global().counter("ml.smo_shrink_cycles");
  obs::Counter reconstructs =
      obs::Registry::global().counter("ml.smo_gradient_reconstructs");
  obs::Counter kernel_cells =
      obs::Registry::global().counter("ml.kernel_cells_built");
  obs::Counter decision_points =
      obs::Registry::global().counter("ml.decision_points");
  obs::Histogram iterations_per_fit =
      obs::Registry::global().histogram("ml.smo_iterations_per_fit");
  obs::Histogram support_vectors =
      obs::Registry::global().histogram("ml.support_vectors_per_fit");
  obs::Histogram kernel_build_ns =
      obs::Registry::global().timer("ml.kernel_build_ns");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};
}  // namespace

OneClassSvm::OneClassSvm(OcsvmParams params) : params_(params) {
  SENT_REQUIRE_MSG(params_.nu > 0.0 && params_.nu <= 1.0,
                   "nu must be in (0, 1]");
  SENT_REQUIRE(params_.tol > 0.0);
  // One pool for the detector's lifetime (kernel build + decision_batch);
  // never constructed per call.
  if (params_.pool == nullptr && params_.threads > 1)
    owned_pool_ = std::make_unique<util::ThreadPool>(params_.threads);
}

OneClassSvm::~OneClassSvm() = default;
OneClassSvm::OneClassSvm(OneClassSvm&&) noexcept = default;
OneClassSvm& OneClassSvm::operator=(OneClassSvm&&) noexcept = default;

util::ThreadPool* OneClassSvm::pool() const {
  return params_.pool != nullptr ? params_.pool : owned_pool_.get();
}

std::string OneClassSvm::name() const {
  return "ocsvm-" + params_.kernel.to_string();
}

void OneClassSvm::fit(const Matrix& rows) {
  std::size_t d = check_matrix(rows);
  const double* data = rows.data();
  for (std::size_t i = 0, n = rows.rows() * d; i < n; ++i)
    if (!std::isfinite(data[i]))
      throw TrainingError("non-finite value in feature matrix");
  Matrix train;
  if (params_.standardize) {
    scaler_.fit(rows);
    train = scaler_.transform(rows);
  } else {
    train = rows;
  }
  gamma_ = resolve_gamma(params_.kernel, d);
  dim_ = d;
  solve(train);

  // Compact the model to its support vectors so inference scales with the
  // SV count. The reference path instead keeps the full training matrix
  // and replays the pre-optimization decision sum.
  sv_x_ = Matrix();
  sv_alpha_.clear();
  sv_norms_.clear();
  train_full_ = Matrix();
  if (params_.reference) {
    train_full_ = std::move(train);
  } else {
    std::size_t nsv = 0;
    for (double a : alpha_) nsv += a > kEps;
    sv_x_ = Matrix(nsv, d);
    sv_alpha_.reserve(nsv);
    std::size_t s = 0;
    for (std::size_t i = 0; i < alpha_.size(); ++i) {
      if (alpha_[i] <= kEps) continue;
      std::span<const double> src = train.row(i);
      std::copy(src.begin(), src.end(), sv_x_.row(s).begin());
      sv_alpha_.push_back(alpha_[i]);
      ++s;
    }
    sv_norms_ = row_squared_norms(sv_x_);
  }
  Metrics::get().support_vectors.record(support_vector_count());
  fitted_ = true;
}

void OneClassSvm::solve(const Matrix& x) {
  const std::size_t l = x.rows();
  const double c = 1.0 / (params_.nu * static_cast<double>(l));

  // Dense kernel matrix. l is at most a few thousand in our experiments,
  // so O(l^2) memory is the simple and fast choice. The build is the
  // O(l^2 d) hot path; see kernel.cpp for the blocked norm-cached build
  // and the retained per-element reference build.
  std::vector<double> q;
  {
    obs::ScopedTimer build_timer(Metrics::get().kernel_build_ns);
    if (params_.reference) {
      build_kernel_matrix_reference(params_.kernel, gamma_, x, pool(), q);
    } else {
      build_kernel_matrix(params_.kernel, gamma_, x, pool(), q);
    }
  }
  Metrics::get().kernel_cells.inc(l * l);

  // LIBSVM-style feasible start: the first floor(nu*l) points at the upper
  // bound, one fractional point, the rest at zero; sum = 1.
  alpha_.assign(l, 0.0);
  double remaining = 1.0;
  for (std::size_t i = 0; i < l && remaining > 0.0; ++i) {
    alpha_[i] = std::min(c, remaining);
    remaining -= alpha_[i];
  }
  if (remaining > 1e-9)
    throw TrainingError(
        "infeasible initialization: sum of box constraints l/(nu*l) cannot "
        "reach 1 (l=" +
        std::to_string(l) + ", nu=" + std::to_string(params_.nu) + ")");

  // Gradient G = Q alpha.
  std::vector<double> g(l, 0.0);
  for (std::size_t i = 0; i < l; ++i) {
    if (alpha_[i] <= kEps) continue;
    const double a = alpha_[i];
    const double* qi = &q[i * l];
    for (std::size_t j = 0; j < l; ++j) g[j] += a * qi[j];
  }

  converged_ = false;
  iterations_ = 0;
  if (params_.reference) {
    smo_reference(q, l, c, g);
  } else {
    smo_optimized(q, l, c, g);
  }
  Metrics::get().fits.inc();
  Metrics::get().iterations.inc(iterations_);
  Metrics::get().iterations_per_fit.record(iterations_);

  // rho: G_i == rho on free support vectors; otherwise bracket between the
  // bound groups.
  double free_sum = 0.0;
  std::size_t free_count = 0;
  double ub = std::numeric_limits<double>::infinity();   // min G over a=0
  double lb = -std::numeric_limits<double>::infinity();  // max G over a=C
  for (std::size_t t = 0; t < l; ++t) {
    if (alpha_[t] > kEps && alpha_[t] < c - kEps) {
      free_sum += g[t];
      ++free_count;
    } else if (alpha_[t] <= kEps) {
      ub = std::min(ub, g[t]);
    } else {
      lb = std::max(lb, g[t]);
    }
  }
  if (free_count > 0) {
    rho_ = free_sum / static_cast<double>(free_count);
  } else if (std::isfinite(ub) && std::isfinite(lb)) {
    rho_ = (ub + lb) / 2.0;
  } else if (std::isfinite(lb)) {
    rho_ = lb;
  } else {
    rho_ = std::isfinite(ub) ? ub : 0.0;
  }

  // Training decision values come straight from the gradient: f(x_i) =
  // (Q alpha)_i - rho = G_i - rho.
  train_decision_.resize(l);
  for (std::size_t t = 0; t < l; ++t) train_decision_[t] = g[t] - rho_;
}

// The retained pre-optimization loop: first-order maximal-violating-pair
// selection over all l variables every iteration. Kept bit-identical to
// the original solver for parity tests and benchmark baselines.
void OneClassSvm::smo_reference(const std::vector<double>& q, std::size_t l,
                                double c, std::vector<double>& g) {
  while (iterations_ < params_.max_iter) {
    // Maximal violating pair: i can grow (alpha_i < C) with minimal G;
    // j can shrink (alpha_j > 0) with maximal G.
    std::size_t up = l, low = l;
    double g_up = std::numeric_limits<double>::infinity();
    double g_low = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < l; ++t) {
      if (alpha_[t] < c - kEps && g[t] < g_up) {
        g_up = g[t];
        up = t;
      }
      if (alpha_[t] > kEps && g[t] > g_low) {
        g_low = g[t];
        low = t;
      }
    }
    if (up == l || low == l || g_low - g_up < params_.tol) {
      converged_ = true;
      break;
    }

    double denom = q[up * l + up] + q[low * l + low] - 2.0 * q[up * l + low];
    double step = (g_low - g_up) / std::max(denom, kTau);
    step = std::min(step, c - alpha_[up]);
    step = std::min(step, alpha_[low]);
    if (!(step > 0.0))
      throw TrainingError(
          "pair update stalled (step " + std::to_string(step) +
          " at iteration " + std::to_string(iterations_) +
          "): violating pair selected but no feasible progress");
    alpha_[up] += step;
    alpha_[low] -= step;

    const double* q_up = &q[up * l];
    const double* q_low = &q[low * l];
    for (std::size_t t = 0; t < l; ++t)
      g[t] += step * (q_up[t] - q_low[t]);
    ++iterations_;
  }
}

// Second-order (WSS2) working-set selection with shrinking, following
// LIBSVM's one-class solver. The active set is a plain index list;
// gradients of shrunk variables go stale and are reconstructed from
// Q alpha (support vectors only) before any full-set decision.
void OneClassSvm::smo_optimized(const std::vector<double>& q, std::size_t l,
                                double c, std::vector<double>& g) {
  std::vector<std::size_t> active(l);
  std::iota(active.begin(), active.end(), std::size_t{0});
  const std::size_t shrink_interval = std::min<std::size_t>(l, 1000);
  std::size_t counter = shrink_interval;
  bool unshrunk = false;

  auto reconstruct_gradient = [&]() {
    if (active.size() == l) return;
    Metrics::get().reconstructs.inc();
    std::vector<char> is_active(l, 0);
    for (std::size_t t : active) is_active[t] = 1;
    for (std::size_t t = 0; t < l; ++t) {
      if (is_active[t]) continue;
      const double* qt = &q[t * l];
      double sum = 0.0;
      for (std::size_t j = 0; j < l; ++j)
        if (alpha_[j] > kEps) sum += alpha_[j] * qt[j];
      g[t] = sum;
    }
  };

  auto activate_all = [&]() {
    active.resize(l);
    std::iota(active.begin(), active.end(), std::size_t{0});
  };

  auto do_shrinking = [&]() {
    Metrics::get().shrink_cycles.inc();
    double g_up = std::numeric_limits<double>::infinity();
    double g_low = -std::numeric_limits<double>::infinity();
    for (std::size_t t : active) {
      if (alpha_[t] < c - kEps) g_up = std::min(g_up, g[t]);
      if (alpha_[t] > kEps) g_low = std::max(g_low, g[t]);
    }
    // One aggressive unshrink near convergence (LIBSVM rule): restore and
    // re-evaluate everything once the active violation is within 10*tol.
    if (!unshrunk && g_low - g_up <= params_.tol * 10) {
      unshrunk = true;
      reconstruct_gradient();
      activate_all();
    }
    // A variable at a bound whose gradient cannot re-enter the violating
    // pair is dropped from the working set until the final re-check.
    std::size_t kept = 0;
    for (std::size_t t : active) {
      bool shrink = false;
      if (alpha_[t] >= c - kEps) {
        shrink = g[t] < g_up;
      } else if (alpha_[t] <= kEps) {
        shrink = g[t] > g_low;
      }
      if (!shrink) active[kept++] = t;
    }
    active.resize(kept);
    if (active.empty()) activate_all();
  };

  while (iterations_ < params_.max_iter) {
    if (counter-- == 0) {
      counter = shrink_interval;
      if (params_.shrinking) do_shrinking();
    }

    // First-order choice of the up candidate; g_low only for stopping.
    std::size_t up = l;
    double g_up = std::numeric_limits<double>::infinity();
    double g_low = -std::numeric_limits<double>::infinity();
    for (std::size_t t : active) {
      if (alpha_[t] < c - kEps && g[t] < g_up) {
        g_up = g[t];
        up = t;
      }
      if (alpha_[t] > kEps && g[t] > g_low) g_low = std::max(g_low, g[t]);
    }
    if (up == l || g_low - g_up < params_.tol) {
      if (active.size() == l) {
        converged_ = true;
        break;
      }
      // Converged on the shrunk set only: restore the full problem and
      // re-run the check. converged_ is never set from a partial set.
      reconstruct_gradient();
      activate_all();
      counter = 1;
      continue;
    }

    // Second-order choice of the down candidate: maximize the quadratic
    // objective gain (g_t - g_up)^2 / (Q_uu + Q_tt - 2 Q_ut) over
    // violating down-able variables.
    const double* q_up_row = &q[up * l];
    const double q_uu = q_up_row[up];
    std::size_t low = l;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (std::size_t t : active) {
      if (alpha_[t] <= kEps) continue;
      const double grad_diff = g[t] - g_up;
      if (grad_diff <= 0.0) continue;
      double quad = q_uu + q[t * l + t] - 2.0 * q_up_row[t];
      if (quad <= 0.0) quad = kTau;
      const double gain = grad_diff * grad_diff / quad;
      if (gain > best_gain) {
        best_gain = gain;
        low = t;
      }
    }
    SENT_ASSERT_MSG(low != l, "WSS2 found no violating down candidate");

    double denom = q_uu + q[low * l + low] - 2.0 * q_up_row[low];
    double step = (g[low] - g[up]) / std::max(denom, kTau);
    step = std::min(step, c - alpha_[up]);
    step = std::min(step, alpha_[low]);
    if (!(step > 0.0))
      throw TrainingError(
          "pair update stalled (step " + std::to_string(step) +
          " at iteration " + std::to_string(iterations_) +
          "): violating pair selected but no feasible progress");
    alpha_[up] += step;
    alpha_[low] -= step;

    const double* q_low_row = &q[low * l];
    for (std::size_t t : active)
      g[t] += step * (q_up_row[t] - q_low_row[t]);
    ++iterations_;
  }

  // max_iter exit while shrunk: stale gradients would corrupt rho and the
  // training decisions, so reconstruct before returning.
  if (active.size() < l) reconstruct_gradient();
}

double OneClassSvm::decision_scaled(std::span<const double> z) const {
  if (params_.reference) {
    // Pre-optimization sum over the full training set (alpha==0 skipped),
    // one kernel_eval per retained row.
    double sum = 0.0;
    for (std::size_t i = 0; i < train_full_.rows(); ++i) {
      if (alpha_[i] <= kEps) continue;
      sum += alpha_[i] *
             kernel_eval(params_.kernel, gamma_, train_full_.row(i), z);
    }
    return sum - rho_;
  }
  const std::size_t d = z.size();
  double nz = 0.0;
  for (double v : z) nz += v * v;
  double sum = 0.0;
  const double* base = sv_x_.data();
  for (std::size_t s = 0; s < sv_alpha_.size(); ++s) {
    const double* xs = base + s * d;
    double dot_ab = 0.0;
    for (std::size_t t = 0; t < d; ++t) dot_ab += xs[t] * z[t];
    sum += sv_alpha_[s] *
           kernel_from_dot(params_.kernel, gamma_, dot_ab, sv_norms_[s], nz);
  }
  return sum - rho_;
}

double OneClassSvm::decision(std::span<const double> x) const {
  SENT_REQUIRE_MSG(fitted(), "decision() before fit()");
  SENT_REQUIRE(x.size() == dim_);
  if (!params_.standardize) return decision_scaled(x);
  std::vector<double> z(dim_);
  scaler_.transform_row(x, z);
  return decision_scaled(z);
}

std::vector<double> OneClassSvm::decision_batch(const Matrix& rows) const {
  SENT_REQUIRE_MSG(fitted(), "decision_batch() before fit()");
  Metrics::get().decision_points.inc(rows.rows());
  SENT_REQUIRE(rows.empty() || rows.cols() == dim_);
  // Standardize the whole batch once; per-query work is then just the
  // compact SV sum.
  Matrix z = params_.standardize ? scaler_.transform(rows) : rows;
  std::vector<double> out(z.rows());
  auto task = [&](std::size_t i) { out[i] = decision_scaled(z.row(i)); };
  util::ThreadPool* p = pool();
  if (p != nullptr) {
    p->parallel_for(z.rows(), task);
  } else {
    for (std::size_t i = 0; i < z.rows(); ++i) task(i);
  }
  return out;
}

std::size_t OneClassSvm::support_vector_count() const {
  std::size_t n = 0;
  for (double a : alpha_) n += a > kEps;
  return n;
}

std::vector<double> OneClassSvm::score(const ml::Matrix& rows) {
  fit(rows);
  return train_decision_;
}

}  // namespace sent::ml
