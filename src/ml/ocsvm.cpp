#include "ml/ocsvm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/error.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace sent::ml {

namespace {
constexpr double kEps = 1e-12;
constexpr double kTau = 1e-12;  // denominator floor in the pair update
}  // namespace

OneClassSvm::OneClassSvm(OcsvmParams params) : params_(params) {
  SENT_REQUIRE_MSG(params_.nu > 0.0 && params_.nu <= 1.0,
                   "nu must be in (0, 1]");
  SENT_REQUIRE(params_.tol > 0.0);
}

std::string OneClassSvm::name() const {
  return "ocsvm-" + params_.kernel.to_string();
}

void OneClassSvm::fit(const std::vector<std::vector<double>>& rows) {
  std::size_t d = check_rectangular(rows);
  for (const auto& row : rows)
    for (double v : row)
      if (!std::isfinite(v))
        throw TrainingError("non-finite value in feature matrix");
  if (params_.standardize) {
    scaler_.fit(rows);
    train_ = scaler_.transform(rows);
  } else {
    train_ = rows;
  }
  gamma_ = resolve_gamma(params_.kernel, d);
  solve(train_);
}

void OneClassSvm::solve(const std::vector<std::vector<double>>& x) {
  const std::size_t l = x.size();
  const double c = 1.0 / (params_.nu * static_cast<double>(l));

  // Dense kernel matrix. l is at most a few thousand in our experiments,
  // so O(l^2) memory is the simple and fast choice. The build is the
  // O(l^2 d) hot path: rows of the symmetric upper triangle fan out across
  // the pool. Entry (a, b) and its mirror are written only by the task for
  // row min(a, b), so no two tasks ever write the same element.
  std::vector<double> q(l * l);
  util::ThreadPool pool(params_.threads);
  pool.parallel_for(l, [&](std::size_t i) {
    for (std::size_t j = i; j < l; ++j) {
      double v = kernel_eval(params_.kernel, gamma_, x[i], x[j]);
      q[i * l + j] = v;
      q[j * l + i] = v;
    }
  });

  // LIBSVM-style feasible start: the first floor(nu*l) points at the upper
  // bound, one fractional point, the rest at zero; sum = 1.
  alpha_.assign(l, 0.0);
  double remaining = 1.0;
  for (std::size_t i = 0; i < l && remaining > 0.0; ++i) {
    alpha_[i] = std::min(c, remaining);
    remaining -= alpha_[i];
  }
  if (remaining > 1e-9)
    throw TrainingError(
        "infeasible initialization: sum of box constraints l/(nu*l) cannot "
        "reach 1 (l=" +
        std::to_string(l) + ", nu=" + std::to_string(params_.nu) + ")");

  // Gradient G = Q alpha.
  std::vector<double> g(l, 0.0);
  for (std::size_t i = 0; i < l; ++i) {
    if (alpha_[i] <= kEps) continue;
    const double a = alpha_[i];
    const double* qi = &q[i * l];
    for (std::size_t j = 0; j < l; ++j) g[j] += a * qi[j];
  }

  converged_ = false;
  iterations_ = 0;
  while (iterations_ < params_.max_iter) {
    // Maximal violating pair: i can grow (alpha_i < C) with minimal G;
    // j can shrink (alpha_j > 0) with maximal G.
    std::size_t up = l, low = l;
    double g_up = std::numeric_limits<double>::infinity();
    double g_low = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < l; ++t) {
      if (alpha_[t] < c - kEps && g[t] < g_up) {
        g_up = g[t];
        up = t;
      }
      if (alpha_[t] > kEps && g[t] > g_low) {
        g_low = g[t];
        low = t;
      }
    }
    if (up == l || low == l || g_low - g_up < params_.tol) {
      converged_ = true;
      break;
    }

    double denom = q[up * l + up] + q[low * l + low] - 2.0 * q[up * l + low];
    double step = (g_low - g_up) / std::max(denom, kTau);
    step = std::min(step, c - alpha_[up]);
    step = std::min(step, alpha_[low]);
    if (!(step > 0.0))
      throw TrainingError(
          "pair update stalled (step " + std::to_string(step) +
          " at iteration " + std::to_string(iterations_) +
          "): violating pair selected but no feasible progress");
    alpha_[up] += step;
    alpha_[low] -= step;

    const double* q_up = &q[up * l];
    const double* q_low = &q[low * l];
    for (std::size_t t = 0; t < l; ++t)
      g[t] += step * (q_up[t] - q_low[t]);
    ++iterations_;
  }

  // rho: G_i == rho on free support vectors; otherwise bracket between the
  // bound groups.
  double free_sum = 0.0;
  std::size_t free_count = 0;
  double ub = std::numeric_limits<double>::infinity();   // min G over a=0
  double lb = -std::numeric_limits<double>::infinity();  // max G over a=C
  for (std::size_t t = 0; t < l; ++t) {
    if (alpha_[t] > kEps && alpha_[t] < c - kEps) {
      free_sum += g[t];
      ++free_count;
    } else if (alpha_[t] <= kEps) {
      ub = std::min(ub, g[t]);
    } else {
      lb = std::max(lb, g[t]);
    }
  }
  if (free_count > 0) {
    rho_ = free_sum / static_cast<double>(free_count);
  } else if (std::isfinite(ub) && std::isfinite(lb)) {
    rho_ = (ub + lb) / 2.0;
  } else if (std::isfinite(lb)) {
    rho_ = lb;
  } else {
    rho_ = std::isfinite(ub) ? ub : 0.0;
  }

  // Training decision values come straight from the gradient: f(x_i) =
  // (Q alpha)_i - rho = G_i - rho.
  train_decision_.resize(l);
  for (std::size_t t = 0; t < l; ++t) train_decision_[t] = g[t] - rho_;
}

double OneClassSvm::decision(const std::vector<double>& x) const {
  SENT_REQUIRE_MSG(fitted(), "decision() before fit()");
  std::vector<double> z =
      params_.standardize ? scaler_.transform(x) : x;
  SENT_REQUIRE(z.size() == train_[0].size());
  double sum = 0.0;
  for (std::size_t i = 0; i < train_.size(); ++i) {
    if (alpha_[i] <= kEps) continue;
    sum += alpha_[i] * kernel_eval(params_.kernel, gamma_, train_[i], z);
  }
  return sum - rho_;
}

std::vector<double> OneClassSvm::decision_batch(
    const std::vector<std::vector<double>>& rows) const {
  SENT_REQUIRE_MSG(fitted(), "decision_batch() before fit()");
  std::vector<double> out(rows.size());
  util::ThreadPool pool(params_.threads);
  pool.parallel_for(rows.size(),
                    [&](std::size_t i) { out[i] = decision(rows[i]); });
  return out;
}

std::size_t OneClassSvm::support_vector_count() const {
  std::size_t n = 0;
  for (double a : alpha_) n += a > kEps;
  return n;
}

std::vector<double> OneClassSvm::score(
    const std::vector<std::vector<double>>& rows) {
  fit(rows);
  return train_decision_;
}

}  // namespace sent::ml
