// One-class SVM (Schölkopf et al., "Estimating the support of a
// high-dimensional distribution", Neural Computation 13(7), 2001) — the
// paper's outlier detector, solved from scratch with an SMO algorithm (the
// same dual LIBSVM solves):
//
//     min_a  1/2 aᵀQa    s.t.  0 <= a_i <= 1/(nu*l),  sum a_i = 1
//
// with Q_ij = k(x_i, x_j). The decision function is
//
//     f(x) = sum_i a_i k(x_i, x) - rho,
//
// positive inside the estimated support (normal side), negative outside.
// nu upper-bounds the fraction of training points scored as outliers and
// lower-bounds the fraction of support vectors.
//
// The default solver uses second-order working-set selection (LIBSVM's
// WSS2) with shrinking of bound variables; convergence is only declared
// when the maximal KKT violation over the FULL variable set drops below
// tol, so shrinking never changes the stopping criterion (DESIGN.md §10).
// After fit the model is compacted to its support vectors, so decision()
// and decision_batch() scale with the SV count, not the training size.
// OcsvmParams::reference = true retains the pre-optimization path
// (per-element kernel build, first-order maximal-violating-pair SMO,
// full-training-set decision sums) for parity tests and benchmarks.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/detector.hpp"
#include "ml/kernel.hpp"
#include "ml/matrix.hpp"
#include "ml/scaler.hpp"

namespace sent::util {
class ThreadPool;
}

namespace sent::ml {

struct OcsvmParams {
  double nu = 0.05;
  KernelSpec kernel{};
  bool standardize = true;
  /// KKT violation tolerance. Sentomist features are heavily duplicated
  /// (most intervals share identical instruction counts), which makes the
  /// dual near-degenerate: decision values of non-support rows land at the
  /// same magnitude as the solver residual. 1e-8 keeps those values above
  /// the convergence noise so ranking ties break on data, not solver path.
  double tol = 1e-8;
  std::size_t max_iter = 200000;

  /// Worker threads for the kernel-matrix build and decision_batch().
  /// <= 1 runs inline. Every kernel entry is computed independently, so
  /// results are bit-identical for any thread count. Ignored when `pool`
  /// is set.
  std::size_t threads = 1;

  /// Borrowed pool to use instead of constructing one. When null and
  /// threads > 1, the detector constructs one pool at creation time and
  /// reuses it for every fit/decision_batch call (never per call).
  util::ThreadPool* pool = nullptr;

  /// Shrink bound variables out of the SMO working set (optimized solver
  /// only). Convergence is always re-validated on the full set.
  bool shrinking = true;

  /// Run the retained pre-optimization path end to end: per-element Gram
  /// build, first-order pair selection, no shrinking, decision sums over
  /// the full training set. Kept for parity tests and as the micro_perf
  /// baseline.
  bool reference = false;
};

class OneClassSvm final : public core::OutlierDetector {
 public:
  explicit OneClassSvm(OcsvmParams params = {});
  ~OneClassSvm() override;

  OneClassSvm(OneClassSvm&&) noexcept;
  OneClassSvm& operator=(OneClassSvm&&) noexcept;

  std::string name() const override;

  /// Transductive use (as in the paper): fit on all intervals' features
  /// and score those same rows. Lower = more suspicious.
  std::vector<double> score(const ml::Matrix& rows) override;
  using core::OutlierDetector::score;

  // --- inductive API -----------------------------------------------------

  void fit(const Matrix& rows);
  void fit(const std::vector<std::vector<double>>& rows) {
    fit(Matrix::from_rows(rows));
  }
  bool fitted() const { return fitted_; }

  /// Signed distance f(x) for a new point (unscaled feature space).
  double decision(std::span<const double> x) const;
  double decision(const std::vector<double>& x) const {
    return decision(std::span<const double>(x));
  }

  /// decision() for a batch of points. The batch is standardized once and
  /// rows fan out across the configured pool (rows are independent), so
  /// values match calling decision() per row.
  std::vector<double> decision_batch(const Matrix& rows) const;
  std::vector<double> decision_batch(
      const std::vector<std::vector<double>>& rows) const {
    return decision_batch(Matrix::from_rows(rows));
  }

  double rho() const { return rho_; }
  /// Dual variables after fit (one per training row; sums to 1).
  const std::vector<double>& alpha() const { return alpha_; }
  std::size_t support_vector_count() const;
  std::size_t iterations_used() const { return iterations_; }
  bool converged() const { return converged_; }

 private:
  OcsvmParams params_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  StandardScaler scaler_;

  // Compact model (optimized path): support vectors only.
  Matrix sv_x_;
  std::vector<double> sv_alpha_;
  std::vector<double> sv_norms_;

  // Reference path keeps the full scaled training matrix so decision()
  // reproduces the pre-optimization sum (including its alpha==0 skips).
  Matrix train_full_;

  std::vector<double> alpha_;
  std::vector<double> train_decision_;  ///< f(x_i) for the training rows
  double rho_ = 0.0;
  double gamma_ = 0.0;
  std::size_t dim_ = 0;
  std::size_t iterations_ = 0;
  bool converged_ = false;
  bool fitted_ = false;

  util::ThreadPool* pool() const;
  void solve(const Matrix& x);
  void smo_reference(const std::vector<double>& q, std::size_t l, double c,
                     std::vector<double>& g);
  void smo_optimized(const std::vector<double>& q, std::size_t l, double c,
                     std::vector<double>& g);
  double decision_scaled(std::span<const double> z) const;
};

}  // namespace sent::ml
