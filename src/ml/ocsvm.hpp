// One-class SVM (Schölkopf et al., "Estimating the support of a
// high-dimensional distribution", Neural Computation 13(7), 2001) — the
// paper's outlier detector, solved from scratch with an SMO-style
// maximal-violating-pair algorithm (the same dual LIBSVM solves):
//
//     min_a  1/2 aᵀQa    s.t.  0 <= a_i <= 1/(nu*l),  sum a_i = 1
//
// with Q_ij = k(x_i, x_j). The decision function is
//
//     f(x) = sum_i a_i k(x_i, x) - rho,
//
// positive inside the estimated support (normal side), negative outside.
// nu upper-bounds the fraction of training points scored as outliers and
// lower-bounds the fraction of support vectors.
#pragma once

#include <memory>
#include <vector>

#include "core/detector.hpp"
#include "ml/kernel.hpp"
#include "ml/scaler.hpp"

namespace sent::ml {

struct OcsvmParams {
  double nu = 0.05;
  KernelSpec kernel{};
  bool standardize = true;
  double tol = 1e-6;          ///< KKT violation tolerance
  std::size_t max_iter = 200000;
  /// Worker threads for the kernel-matrix build and decision_batch().
  /// <= 1 runs inline. Every kernel entry is computed independently, so
  /// results are bit-identical for any thread count.
  std::size_t threads = 1;
};

class OneClassSvm final : public core::OutlierDetector {
 public:
  explicit OneClassSvm(OcsvmParams params = {});

  std::string name() const override;

  /// Transductive use (as in the paper): fit on all intervals' features
  /// and score those same rows. Lower = more suspicious.
  std::vector<double> score(
      const std::vector<std::vector<double>>& rows) override;

  // --- inductive API -----------------------------------------------------

  void fit(const std::vector<std::vector<double>>& rows);
  bool fitted() const { return !train_.empty(); }

  /// Signed distance f(x) for a new point.
  double decision(const std::vector<double>& x) const;

  /// decision() for a batch of points, evaluated across params.threads
  /// workers (rows are independent). Same values as calling decision()
  /// per row.
  std::vector<double> decision_batch(
      const std::vector<std::vector<double>>& rows) const;

  double rho() const { return rho_; }
  /// Dual variables after fit (one per training row; sums to 1).
  const std::vector<double>& alpha() const { return alpha_; }
  std::size_t support_vector_count() const;
  std::size_t iterations_used() const { return iterations_; }
  bool converged() const { return converged_; }

 private:
  OcsvmParams params_;
  StandardScaler scaler_;
  std::vector<std::vector<double>> train_;  ///< scaled training rows
  std::vector<double> alpha_;
  std::vector<double> train_decision_;  ///< f(x_i) for the training rows
  double rho_ = 0.0;
  double gamma_ = 0.0;
  std::size_t iterations_ = 0;
  bool converged_ = false;

  void solve(const std::vector<std::vector<double>>& x);
};

}  // namespace sent::ml
