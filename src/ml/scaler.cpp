#include "ml/scaler.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace sent::ml {

void StandardScaler::fit(const Matrix& rows) {
  std::size_t d = check_matrix(rows);
  auto n = static_cast<double>(rows.rows());
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    std::span<const double> row = rows.row(r);
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= n;
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    std::span<const double> row = rows.row(r);
    for (std::size_t j = 0; j < d; ++j) {
      double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    double s = std::sqrt(var[j] / n);
    scale_[j] = s > 1e-12 ? s : 1.0;
  }
}

void StandardScaler::transform_row(std::span<const double> in,
                                   std::span<double> out) const {
  SENT_REQUIRE(fitted());
  SENT_REQUIRE(in.size() == mean_.size() && out.size() == mean_.size());
  for (std::size_t j = 0; j < in.size(); ++j)
    out[j] = (in[j] - mean_[j]) / scale_[j];
}

Matrix StandardScaler::transform(const Matrix& rows) const {
  SENT_REQUIRE(fitted());
  SENT_REQUIRE(rows.cols() == mean_.size());
  Matrix out(rows.rows(), rows.cols());
  for (std::size_t r = 0; r < rows.rows(); ++r)
    transform_row(rows.row(r), out.row(r));
  return out;
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& row) const {
  SENT_REQUIRE(fitted());
  SENT_REQUIRE(row.size() == mean_.size());
  std::vector<double> out(row.size());
  transform_row(row, out);
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(transform(row));
  return out;
}

}  // namespace sent::ml
