#include "ml/scaler.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace sent::ml {

std::size_t check_rectangular(const std::vector<std::vector<double>>& rows) {
  SENT_REQUIRE_MSG(!rows.empty(), "empty feature matrix");
  std::size_t d = rows[0].size();
  SENT_REQUIRE_MSG(d > 0, "zero-dimensional feature matrix");
  for (const auto& row : rows)
    SENT_REQUIRE_MSG(row.size() == d, "ragged feature matrix");
  return d;
}

void StandardScaler::fit(const std::vector<std::vector<double>>& rows) {
  std::size_t d = check_rectangular(rows);
  auto n = static_cast<double>(rows.size());
  mean_.assign(d, 0.0);
  scale_.assign(d, 1.0);
  for (const auto& row : rows)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  for (double& m : mean_) m /= n;
  std::vector<double> var(d, 0.0);
  for (const auto& row : rows)
    for (std::size_t j = 0; j < d; ++j) {
      double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  for (std::size_t j = 0; j < d; ++j) {
    double s = std::sqrt(var[j] / n);
    scale_[j] = s > 1e-12 ? s : 1.0;
  }
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& row) const {
  SENT_REQUIRE(fitted());
  SENT_REQUIRE(row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - mean_[j]) / scale_[j];
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(transform(row));
  return out;
}

}  // namespace sent::ml
