// Per-dimension standardization (zero mean, unit variance).
//
// Instruction counters have wildly different magnitudes per column (a hot
// loop instruction vs a rare branch); every kernel/distance-based detector
// here standardizes first. Zero-variance columns are left centred with
// scale 1 so constant instructions contribute nothing.
//
// The primary API operates on the flat ml::Matrix; the row-vector
// overloads are thin adapters for legacy callers.
#pragma once

#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace sent::ml {

class StandardScaler {
 public:
  void fit(const Matrix& rows);
  void fit(const std::vector<std::vector<double>>& rows) {
    fit(Matrix::from_rows(rows));
  }

  /// Standardize one row into `out` (both must have the fitted width).
  void transform_row(std::span<const double> in, std::span<double> out) const;

  Matrix transform(const Matrix& rows) const;
  std::vector<double> transform(const std::vector<double>& row) const;
  std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& rows) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

}  // namespace sent::ml
