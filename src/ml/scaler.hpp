// Per-dimension standardization (zero mean, unit variance).
//
// Instruction counters have wildly different magnitudes per column (a hot
// loop instruction vs a rare branch); every kernel/distance-based detector
// here standardizes first. Zero-variance columns are left centred with
// scale 1 so constant instructions contribute nothing.
#pragma once

#include <vector>

namespace sent::ml {

class StandardScaler {
 public:
  void fit(const std::vector<std::vector<double>>& rows);

  std::vector<double> transform(const std::vector<double>& row) const;
  std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& rows) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& scale() const { return scale_; }

 private:
  std::vector<double> mean_;
  std::vector<double> scale_;
};

/// Validate that `rows` is non-empty and rectangular; returns the width.
std::size_t check_rectangular(const std::vector<std::vector<double>>& rows);

}  // namespace sent::ml
