#include "net/channel.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sent::net {

Channel::Channel(sim::EventQueue& queue, util::Rng rng)
    : queue_(queue), rng_(rng) {}

void Channel::add_node(NodeId id, RadioListener* listener) {
  SENT_REQUIRE(listener != nullptr);
  SENT_REQUIRE_MSG(!nodes_.count(id), "node " << id << " already attached");
  nodes_[id] = listener;
}

void Channel::set_loss_rate(double p) {
  SENT_REQUIRE(p >= 0.0 && p <= 1.0);
  loss_rate_ = p;
  ge_model_.reset();
}

void Channel::set_gilbert_elliott(const GilbertElliott& model) {
  SENT_REQUIRE(model.loss_good >= 0.0 && model.loss_good <= 1.0);
  SENT_REQUIRE(model.loss_bad >= 0.0 && model.loss_bad <= 1.0);
  SENT_REQUIRE(model.p_good_to_bad >= 0.0 && model.p_good_to_bad <= 1.0);
  SENT_REQUIRE(model.p_bad_to_good >= 0.0 && model.p_bad_to_good <= 1.0);
  ge_model_ = model;
  ge_burst_.clear();
}

bool Channel::link_in_burst(NodeId a, NodeId b) const {
  auto it = ge_burst_.find({a, b});
  return it != ge_burst_.end() && it->second;
}

bool Channel::delivery_lost(NodeId from, NodeId to) {
  if (!ge_model_) return rng_.chance(loss_rate_);
  bool& burst = ge_burst_[{from, to}];
  bool lost =
      rng_.chance(burst ? ge_model_->loss_bad : ge_model_->loss_good);
  // Advance the two-state Markov chain once per delivery attempt.
  if (burst) {
    if (rng_.chance(ge_model_->p_bad_to_good)) burst = false;
  } else {
    if (rng_.chance(ge_model_->p_good_to_bad)) burst = true;
  }
  return lost;
}

void Channel::add_link(NodeId a, NodeId b) {
  SENT_REQUIRE(a != b);
  restricted_ = true;
  links_.insert({std::min(a, b), std::max(a, b)});
}

bool Channel::connected(NodeId a, NodeId b) const {
  if (a == b) return false;
  if (!restricted_) return true;
  return links_.count({std::min(a, b), std::max(a, b)}) > 0;
}

bool Channel::carrier_busy(NodeId listener_node) const {
  for (const auto& tx : active_) {
    if (tx.sender == listener_node) return true;  // own TX in flight
    if (connected(tx.sender, listener_node)) return true;
  }
  return false;
}

void Channel::transmit(NodeId sender, const Packet& packet,
                       sim::Cycle airtime) {
  SENT_REQUIRE_MSG(nodes_.count(sender), "unknown sender " << sender);
  SENT_REQUIRE(airtime > 0);
  ++frames_sent_;
  Tx tx;
  tx.id = next_tx_id_++;
  tx.sender = sender;
  tx.packet = packet;
  tx.packet.src = sender;
  tx.end = queue_.now() + airtime;

  // Collision marking: any receiver that can hear both this new frame and
  // an already-active frame gets both copies corrupted.
  for (auto& other : active_) {
    for (const auto& [rx, listener] : nodes_) {
      (void)listener;
      if (connected(sender, rx) && connected(other.sender, rx)) {
        other.corrupted_at.insert(rx);
        tx.corrupted_at.insert(rx);
      }
    }
    // A node cannot transmit and receive simultaneously: the new frame is
    // unreceivable at the concurrent sender and vice versa.
    if (connected(sender, other.sender)) {
      other.corrupted_at.insert(sender);
      tx.corrupted_at.insert(other.sender);
    }
  }

  std::uint64_t id = tx.id;
  active_.push_back(std::move(tx));
  // End-of-airtime is never cancelled (even corrupted frames occupy the
  // medium to the end), so it can ride the deferred-inline path.
  queue_.schedule_or_inline(active_.back().end, [this, id] { finish(id); });
}

void Channel::finish(std::uint64_t tx_id) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [&](const Tx& t) { return t.id == tx_id; });
  SENT_ASSERT(it != active_.end());
  Tx tx = std::move(*it);
  active_.erase(it);

  for (const auto& [rx, listener] : nodes_) {
    if (!connected(tx.sender, rx)) continue;
    if (tx.corrupted_at.count(rx)) {
      ++frames_collided_;
      continue;
    }
    if (delivery_lost(tx.sender, rx)) {
      ++frames_lost_;
      continue;
    }
    ++frames_delivered_;
    listener->on_frame(tx.packet);
  }
}

}  // namespace sent::net
