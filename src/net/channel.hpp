// Shared radio medium.
//
// Models what the case studies need from RF: airtime occupancy (carrier
// sense), collisions (overlapping audible transmissions corrupt each
// other at a receiver), independent random loss per link, and restricted
// connectivity (multi-hop topologies). Nodes attach as RadioListeners;
// hw::RadioChip is the production listener.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace sent::net {

/// Receiver-side hook, implemented by the radio chip.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  /// A frame arrived intact (post collision/loss filtering).
  virtual void on_frame(const Packet& packet) = 0;
};

class Channel {
 public:
  Channel(sim::EventQueue& queue, util::Rng rng);

  /// Attach a node. All attached nodes hear each other unless restrict_
  /// links are configured.
  void add_node(NodeId id, RadioListener* listener);

  /// Independent per-delivery drop probability (default 0).
  void set_loss_rate(double p);

  /// Switch loss to a two-state Gilbert-Elliott model: each (sender,
  /// receiver) link wanders between a Good state (loss `loss_good`) and a
  /// Bad/burst state (loss `loss_bad`), flipping at each delivery with
  /// probabilities p_good_to_bad / p_bad_to_good. Models the bursty
  /// fading real deployments see. Overrides set_loss_rate.
  struct GilbertElliott {
    double loss_good = 0.0;
    double loss_bad = 0.8;
    double p_good_to_bad = 0.05;
    double p_bad_to_good = 0.3;
  };
  void set_gilbert_elliott(const GilbertElliott& model);

  /// True if the (a, b) link is currently in the burst state (testing).
  bool link_in_burst(NodeId a, NodeId b) const;

  /// Switch to explicit connectivity and declare a bidirectional link.
  /// Before the first call every pair is connected.
  void add_link(NodeId a, NodeId b);

  /// True if `listener_node` can hear any in-flight transmission.
  bool carrier_busy(NodeId listener_node) const;

  /// Begin a transmission; the frame is delivered to audible nodes when
  /// the airtime elapses. Collisions with overlapping audible
  /// transmissions corrupt both frames at the affected receivers.
  void transmit(NodeId sender, const Packet& packet, sim::Cycle airtime);

  // --- statistics (benches/tests) ---
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_collided() const { return frames_collided_; }
  std::uint64_t frames_lost() const { return frames_lost_; }

 private:
  struct Tx {
    std::uint64_t id;
    NodeId sender;
    Packet packet;
    sim::Cycle end;
    /// Receivers whose copy of this frame was hit by a collision.
    std::set<NodeId> corrupted_at;
  };

  sim::EventQueue& queue_;
  util::Rng rng_;
  std::map<NodeId, RadioListener*> nodes_;
  double loss_rate_ = 0.0;
  std::optional<GilbertElliott> ge_model_;
  /// Per-directed-link burst state under the Gilbert-Elliott model.
  mutable std::map<std::pair<NodeId, NodeId>, bool> ge_burst_;
  bool restricted_ = false;
  std::set<std::pair<NodeId, NodeId>> links_;
  std::vector<Tx> active_;
  std::uint64_t next_tx_id_ = 1;
  std::uint64_t frames_sent_ = 0, frames_delivered_ = 0,
                frames_collided_ = 0, frames_lost_ = 0;

  bool connected(NodeId a, NodeId b) const;
  void finish(std::uint64_t tx_id);
  /// Decide (and advance the state of) one delivery attempt on a link.
  bool delivery_lost(NodeId from, NodeId to);
};

}  // namespace sent::net
