#include "net/packet.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace sent::net {

namespace {
// CC1000-flavoured sizes: preamble+sync+header+crc for data frames,
// short fixed frames for MAC control.
constexpr std::size_t kDataOverheadBytes = 12;
constexpr std::size_t kControlFrameBytes = 6;

const char* type_name(FrameType t) {
  switch (t) {
    case FrameType::Data: return "Data";
    case FrameType::Rts: return "Rts";
    case FrameType::Cts: return "Cts";
    case FrameType::Ack: return "Ack";
  }
  return "?";
}
}  // namespace

std::size_t Packet::size_bytes() const {
  if (type == FrameType::Data) return kDataOverheadBytes + payload.size();
  return kControlFrameBytes;
}

std::string Packet::to_string() const {
  std::ostringstream os;
  os << type_name(type) << "[" << int(am_type) << "] " << src << "->";
  if (dst == kBroadcast)
    os << "*";
  else
    os << dst;
  os << " seq=" << seq << " (" << payload.size() << "B)";
  return os.str();
}

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v & 0xFF));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& buf,
                      std::size_t offset) {
  SENT_REQUIRE(offset + 1 < buf.size() + 1 && offset + 2 <= buf.size());
  return static_cast<std::uint16_t>(buf[offset]) |
         static_cast<std::uint16_t>(buf[offset + 1]) << 8;
}

}  // namespace sent::net
