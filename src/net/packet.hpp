// Over-the-air packet representation.
//
// One struct covers data frames and the MAC control frames (RTS/CTS/ACK)
// the paper's case study II describes for the CC1000 stack, plus the
// protocol frames used by case study III (CTP beacons/data, heartbeats).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sent::net {

using NodeId = std::uint16_t;

/// Destination address meaning "all audible nodes".
inline constexpr NodeId kBroadcast = 0xFFFF;

enum class FrameType : std::uint8_t {
  Data,  ///< carries an active-message payload
  Rts,   ///< request-to-send (MAC control)
  Cts,   ///< clear-to-send (MAC control)
  Ack,   ///< link-layer acknowledgement (MAC control)
};

struct Packet {
  FrameType type = FrameType::Data;
  NodeId src = 0;
  NodeId dst = kBroadcast;

  /// Active-message type: demultiplexes Data frames to protocols.
  std::uint8_t am_type = 0;

  /// Multi-hop bookkeeping: the node that originated the payload and its
  /// per-origin sequence number (for duplicate suppression).
  NodeId origin = 0;
  std::uint16_t seq = 0;

  /// Application payload (sensor readings, beacon fields, ...).
  std::vector<std::uint8_t> payload;

  /// Bytes on air: preamble+header for every frame, payload for Data.
  std::size_t size_bytes() const;

  /// Debug rendering like "Data[10] 2->0 seq=5 (3B)".
  std::string to_string() const;
};

/// Serialize/deserialize 16-bit values into payloads (little endian).
void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v);
std::uint16_t get_u16(const std::vector<std::uint8_t>& buf,
                      std::size_t offset);

}  // namespace sent::net
