#include "net/topology.hpp"

#include "util/assert.hpp"

namespace sent::net {

void make_chain(Channel& channel, const std::vector<NodeId>& nodes) {
  SENT_REQUIRE(nodes.size() >= 2);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
    channel.add_link(nodes[i], nodes[i + 1]);
}

void make_star(Channel& channel, NodeId hub,
               const std::vector<NodeId>& leaves) {
  SENT_REQUIRE(!leaves.empty());
  for (NodeId leaf : leaves) channel.add_link(hub, leaf);
}

std::vector<NodeId> make_grid(Channel& channel, std::size_t rows,
                              std::size_t cols, NodeId first_id) {
  SENT_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2);
  std::vector<NodeId> ids;
  ids.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      ids.push_back(static_cast<NodeId>(first_id + r * cols + c));
  auto at = [&](std::size_t r, std::size_t c) { return ids[r * cols + c]; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) channel.add_link(at(r, c), at(r, c + 1));
      if (r + 1 < rows) channel.add_link(at(r, c), at(r + 1, c));
    }
  }
  return ids;
}

}  // namespace sent::net
