// Topology builders for multi-node experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "net/channel.hpp"

namespace sent::net {

/// Connect 0-1-2-...-(n-1) as a chain (case study II uses a 3-node chain).
void make_chain(Channel& channel, const std::vector<NodeId>& nodes);

/// Connect every node to a hub.
void make_star(Channel& channel, NodeId hub,
               const std::vector<NodeId>& leaves);

/// rows x cols grid with 4-neighbour connectivity; node ids are assigned
/// row-major starting at `first_id`. Returns the ids. Case study III uses
/// a 3x3 grid of 9 nodes.
std::vector<NodeId> make_grid(Channel& channel, std::size_t rows,
                              std::size_t cols, NodeId first_id = 0);

}  // namespace sent::net
