#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace sent::obs {

namespace {

/// Bucket index for a value: bit_width(v), so bucket 0 is v==0, bucket 1
/// is v==1, bucket b >= 2 covers [2^(b-1), 2^b).
std::size_t bucket_index(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

/// Inclusive value range covered by a bucket.
std::pair<double, double> bucket_range(std::size_t b) {
  if (b == 0) return {0.0, 0.0};
  if (b == 1) return {1.0, 1.0};
  double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
  return {lo, 2.0 * lo - 1.0};
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur > v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Format a double compactly and reproducibly ("%.6g" is a pure function
/// of the value, and the value is a pure function of the merged buckets).
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void append_histogram_json(std::ostringstream& os, const HistogramData& h) {
  os << "{\"count\": " << h.count << ", \"sum\": " << h.sum
     << ", \"min\": " << h.min << ", \"max\": " << h.max
     << ", \"mean\": " << fmt_double(h.mean())
     << ", \"p50\": " << fmt_double(h.percentile(50))
     << ", \"p90\": " << fmt_double(h.percentile(90))
     << ", \"p99\": " << fmt_double(h.percentile(99)) << ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (h.buckets[b] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << b << ", " << h.buckets[b] << "]";
  }
  os << "]}";
}

}  // namespace

double HistogramData::mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramData::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min);
  if (p >= 100.0) return static_cast<double>(max);
  // Rank of the percentile (1-based, nearest-rank), then interpolate
  // linearly across the containing bucket's value range.
  double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    if (buckets[b] == 0) continue;
    std::uint64_t next = seen + buckets[b];
    if (rank <= static_cast<double>(next)) {
      auto [lo, hi] = bucket_range(b);
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(buckets[b]);
      double v = lo + frac * (hi - lo);
      return std::min(std::max(v, static_cast<double>(min)),
                      static_cast<double>(max));
    }
    seen = next;
  }
  return static_cast<double>(max);
}

void HistogramData::record(std::uint64_t v) {
  ++count;
  sum += v;
  min = count == 1 ? v : std::min(min, v);
  max = std::max(max, v);
  ++buckets[bucket_index(v)];
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kHistBuckets; ++b)
    buckets[b] += other.buckets[b];
}

std::string Snapshot::to_json(bool include_timers) const {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i)
    os << (i ? "," : "") << "\n    \"" << counters[i].first
       << "\": " << counters[i].second;
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i)
    os << (i ? "," : "") << "\n    \"" << gauges[i].first
       << "\": " << gauges[i].second;
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << histograms[i].first << "\": ";
    append_histogram_json(os, histograms[i].second);
  }
  os << (histograms.empty() ? "" : "\n  ") << "}";
  if (include_timers) {
    os << ",\n  \"timers\": {";
    for (std::size_t i = 0; i < timers.size(); ++i) {
      os << (i ? "," : "") << "\n    \"" << timers[i].first << "\": ";
      append_histogram_json(os, timers[i].second);
    }
    os << (timers.empty() ? "" : "\n  ") << "}";
  }
  os << "\n}\n";
  return os.str();
}

bool Snapshot::deterministic_equal(const Snapshot& other) const {
  return counters == other.counters && gauges == other.gauges &&
         histograms == other.histograms;
}

namespace {

template <typename T>
const T* find_sorted(
    const std::vector<std::pair<std::string, T>>& section,
    std::string_view name) {
  auto it = std::lower_bound(
      section.begin(), section.end(), name,
      [](const std::pair<std::string, T>& entry, std::string_view n) {
        return entry.first < n;
      });
  if (it == section.end() || it->first != name) return nullptr;
  return &it->second;
}

}  // namespace

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  const std::uint64_t* v = find_sorted(counters, name);
  return v ? *v : 0;
}

std::uint64_t Snapshot::gauge_value(std::string_view name) const {
  const std::uint64_t* v = find_sorted(gauges, name);
  return v ? *v : 0;
}

const HistogramData* Snapshot::histogram_data(std::string_view name) const {
  return find_sorted(histograms, name);
}

// ---------------------------------------------------------------------------

Registry::Shard::~Shard() {
  for (auto& slot : hists) delete slot.load(std::memory_order_relaxed);
}

namespace {
std::atomic<std::uint64_t> g_next_registry_id{1};
}  // namespace

Registry::Registry() : id_(g_next_registry_id.fetch_add(1)) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::uint64_t Registry::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t Registry::register_name(std::vector<std::string>& names,
                                      std::string_view name,
                                      std::size_t limit,
                                      const char* kind) const {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return static_cast<std::uint32_t>(i);
  SENT_REQUIRE_MSG(names.size() < limit,
                   "obs registry out of " << kind << " slots registering "
                                          << name);
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

Counter Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counter(this,
                 register_name(counter_names_, name, kMaxCounters,
                               "counter"));
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Gauge(this, register_name(gauge_names_, name, kMaxGauges, "gauge"));
}

Histogram Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t slot =
      register_name(hist_names_, name, kMaxHistograms, "histogram");
  if (slot == hist_is_timer_.size()) hist_is_timer_.push_back(false);
  SENT_ASSERT(!hist_is_timer_.at(slot));
  return Histogram(this, slot);
}

Histogram Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint32_t slot =
      register_name(hist_names_, name, kMaxHistograms, "histogram");
  if (slot == hist_is_timer_.size()) hist_is_timer_.push_back(true);
  SENT_ASSERT(hist_is_timer_.at(slot));
  return Histogram(this, slot);
}

Registry::Shard* Registry::shard() const {
  // Per-thread cache keyed by the registry's never-reused id, so a stale
  // entry for a destroyed registry can never alias a new one.
  struct CacheEntry {
    std::uint64_t registry_id;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache)
    if (e.registry_id == id_) return e.shard;
  auto owned = std::make_unique<Shard>();
  Shard* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::move(owned));
  }
  cache.push_back(CacheEntry{id_, raw});
  return raw;
}

Registry::HistCell& Registry::hist_cell(Shard& shard,
                                        std::uint32_t slot) const {
  std::atomic<HistCell*>& cell = shard.hists[slot];
  HistCell* loaded = cell.load(std::memory_order_acquire);
  if (loaded) return *loaded;
  // Only the owning thread records into a shard, so this allocation is
  // uncontended; the CAS guards against hypothetical sharing anyway.
  auto* fresh = new HistCell();
  HistCell* expected = nullptr;
  if (cell.compare_exchange_strong(expected, fresh,
                                   std::memory_order_release,
                                   std::memory_order_acquire))
    return *fresh;
  delete fresh;
  return *expected;
}

Snapshot Registry::snapshot() const {
  // Copy the name tables and the shard pointer list under the lock, then
  // read the cells relaxed (recording threads may race; their updates are
  // independent relaxed atomics).
  std::vector<std::string> counter_names, gauge_names, hist_names;
  std::vector<bool> hist_is_timer;
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counter_names = counter_names_;
    gauge_names = gauge_names_;
    hist_names = hist_names_;
    hist_is_timer = hist_is_timer_;
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }

  Snapshot snap;
  snap.counters.reserve(counter_names.size());
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (Shard* s : shards)
      total += s->counters[i].load(std::memory_order_relaxed);
    snap.counters.emplace_back(counter_names[i], total);
  }
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    std::uint64_t hwm = 0;
    for (Shard* s : shards)
      hwm = std::max(hwm, s->gauges[i].load(std::memory_order_relaxed));
    snap.gauges.emplace_back(gauge_names[i], hwm);
  }
  for (std::size_t i = 0; i < hist_names.size(); ++i) {
    HistogramData merged;
    for (Shard* s : shards) {
      HistCell* cell = s->hists[i].load(std::memory_order_acquire);
      if (!cell) continue;
      HistogramData part;
      part.count = cell->count.load(std::memory_order_relaxed);
      if (part.count == 0) continue;
      part.sum = cell->sum.load(std::memory_order_relaxed);
      part.min = cell->min.load(std::memory_order_relaxed);
      part.max = cell->max.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistBuckets; ++b)
        part.buckets[b] = cell->buckets[b].load(std::memory_order_relaxed);
      merged.merge(part);
    }
    auto& section = hist_is_timer[i] ? snap.timers : snap.histograms;
    section.emplace_back(hist_names[i], merged);
  }

  auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : shard->gauges) g.store(0, std::memory_order_relaxed);
    for (auto& slot : shard->hists) {
      HistCell* cell = slot.load(std::memory_order_acquire);
      if (!cell) continue;
      cell->count.store(0, std::memory_order_relaxed);
      cell->sum.store(0, std::memory_order_relaxed);
      cell->min.store(~std::uint64_t{0}, std::memory_order_relaxed);
      cell->max.store(0, std::memory_order_relaxed);
      for (auto& b : cell->buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------

void Counter::inc(std::uint64_t n) const {
  if (!registry_ || !registry_->enabled()) return;
  registry_->shard()->counters[slot_].fetch_add(n,
                                                std::memory_order_relaxed);
}

void Gauge::record(std::uint64_t v) const {
  if (!registry_ || !registry_->enabled()) return;
  atomic_max(registry_->shard()->gauges[slot_], v);
}

void Histogram::record(std::uint64_t v) const {
  if (!registry_ || !registry_->enabled()) return;
  Registry::HistCell& cell =
      registry_->hist_cell(*registry_->shard(), slot_);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(v, std::memory_order_relaxed);
  atomic_min(cell.min, v);
  atomic_max(cell.max, v);
  cell.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Histogram timer) : timer_(timer) {
  if (timer_.registry_ && timer_.registry_->enabled()) {
    armed_ = true;
    start_ns_ = Registry::now_ns();
  }
}

ScopedTimer::~ScopedTimer() {
  if (armed_) timer_.record(Registry::now_ns() - start_ns_);
}

}  // namespace sent::obs
