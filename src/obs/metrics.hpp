// Run-introspection metrics (DESIGN.md §11).
//
// A Registry is a process-wide table of named counters, gauges (high-water
// marks), value histograms, and wall-clock timers. Recording is lock-free:
// every thread owns a private shard of relaxed atomics, so instrumented hot
// paths never contend and a `--jobs N` campaign records exactly the same
// logical totals as a serial one. snapshot() merges the shards (sum for
// counters, max for gauges, bucket-wise sum for histograms) and sorts by
// name, so two runs that perform the same logical work produce
// byte-identical JSON regardless of thread count.
//
// Determinism contract: counters, gauges, and histograms must only record
// LOGICAL quantities (events dispatched, SMO iterations, queue depths) —
// values that are a pure function of the workload. Wall-clock durations go
// through timer()/ScopedTimer into the separate `timers` section, which
// deterministic_equal() ignores and to_json() omits unless asked.
//
// Overhead budget: a disabled registry costs one relaxed atomic load per
// record call; an enabled one costs a thread-local lookup plus a handful of
// relaxed atomic adds. Instrumentation must stay out of per-element inner
// loops (record per event / per fit / per build, never per matrix cell).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sent::obs {

/// Histogram buckets are powers of two: value v lands in bucket
/// bit_width(v), i.e. bucket 0 holds v==0, bucket 1 holds v==1, bucket b
/// (b>=2) holds [2^(b-1), 2^b). 65 buckets cover the full uint64 range.
inline constexpr std::size_t kHistBuckets = 65;

/// Merged view of one histogram (or timer, in nanoseconds).
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  double mean() const;

  /// Linear interpolation inside the power-of-two bucket containing the
  /// p-th percentile (p in [0, 100]). Exact for values 0 and 1; within a
  /// factor of 2 of the true value otherwise (see obs_test).
  double percentile(double p) const;

  void record(std::uint64_t v);  ///< single-threaded helper (tests, merge)
  void merge(const HistogramData& other);

  bool operator==(const HistogramData&) const = default;
};

/// Point-in-time merged view of a Registry, sections sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;
  std::vector<std::pair<std::string, HistogramData>> timers;  ///< wall ns

  /// Render as JSON. The deterministic sections (counters / gauges /
  /// histograms) are always present; `timers` only when requested, since
  /// wall-clock data is excluded from the determinism contract.
  std::string to_json(bool include_timers = false) const;

  /// Equality over the deterministic sections only (timers ignored).
  bool deterministic_equal(const Snapshot& other) const;

  /// Value of a named counter / gauge, 0 when absent. Sections are sorted
  /// by name so lookup is a binary search; tests and smoke checks assert
  /// on these instead of re-parsing to_json().
  std::uint64_t counter_value(std::string_view name) const;
  std::uint64_t gauge_value(std::string_view name) const;
  /// Merged histogram by name, nullptr when absent.
  const HistogramData* histogram_data(std::string_view name) const;
};

class Registry;

/// Monotonic event count. Merge across shards: sum.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const;

 private:
  friend class Registry;
  Counter(Registry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// High-water mark. Merge across shards: max. record() keeps the largest
/// value seen, which is thread-count invariant for per-run maxima.
class Gauge {
 public:
  Gauge() = default;
  void record(std::uint64_t v) const;

 private:
  friend class Registry;
  Gauge(Registry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Distribution of logical values (or of wall nanoseconds when created via
/// Registry::timer). Merge across shards: bucket-wise sum.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t v) const;

 private:
  friend class Registry;
  friend class ScopedTimer;
  Histogram(Registry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  Registry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every subsystem records into. Never
  /// destroyed before thread exit handlers need it (function-local static).
  static Registry& global();

  /// Recording is a no-op while disabled (the default for global()). The
  /// flag is a relaxed atomic so toggling is cheap and race-free.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Handle lookup / registration. The same name always yields a handle to
  /// the same metric; names must stay under one kind. Handles are cheap to
  /// copy and remain valid for the registry's lifetime. Modules cache them
  /// in a function-local static struct so the registered set is identical
  /// whenever the same code paths run (a prerequisite for byte-identical
  /// snapshots across thread counts).
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);
  /// A histogram placed in the snapshot's `timers` section (wall ns).
  Histogram timer(std::string_view name);

  /// Merge all shards into a sorted snapshot. Safe to call while other
  /// threads record (relaxed reads; in-flight updates may or may not be
  /// visible, which only matters mid-workload).
  Snapshot snapshot() const;

  /// Zero every shard (counts recorded by exited threads included). For
  /// benches/tests that measure one workload at a time.
  void reset();

  /// Monotonic wall clock, nanoseconds (steady_clock).
  static std::uint64_t now_ns();

  // Capacity of one shard, per kind. Exceeding these is a programming
  // error (SENT_REQUIRE); bump if the instrumentation surface outgrows it.
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 128;  ///< incl. timers

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct HistCell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  };

  /// One thread's private slice of every metric. Counters and gauges are
  /// flat atomic arrays; histogram cells are allocated on first record so
  /// idle shards stay ~2 KB.
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges{};
    std::array<std::atomic<HistCell*>, kMaxHistograms> hists{};
    ~Shard();
  };

  Shard* shard() const;
  HistCell& hist_cell(Shard& shard, std::uint32_t slot) const;
  std::uint32_t register_name(std::vector<std::string>& names,
                              std::string_view name, std::size_t limit,
                              const char* kind) const;

  const std::uint64_t id_;  ///< process-unique, never reused
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;  ///< guards names_ and shards_ vectors
  mutable std::vector<std::string> counter_names_;
  mutable std::vector<std::string> gauge_names_;
  mutable std::vector<std::string> hist_names_;
  mutable std::vector<bool> hist_is_timer_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

/// RAII wall-clock phase timer; records elapsed nanoseconds into a
/// Registry::timer histogram on destruction. No clock call when the
/// registry is disabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram timer);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram timer_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace sent::obs
