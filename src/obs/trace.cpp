#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"

namespace sent::obs {

namespace {

/// Sequential per-thread id (0 is reserved so exported tids start at 1).
std::uint32_t thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

}  // namespace

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

void TraceLog::set_enabled(bool on) {
  if (on) {
    std::uint64_t expected = 0;
    epoch_ns_.compare_exchange_strong(expected, Registry::now_ns());
  }
  enabled_.store(on, std::memory_order_relaxed);
}

std::uint64_t TraceLog::now_us() const {
  std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  std::uint64_t now = Registry::now_ns();
  return now > epoch ? (now - epoch) / 1000 : 0;
}

void TraceLog::append(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string TraceLog::to_chrome_json() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_us > b.dur_us;  // enclosing span first
            });
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << "  {\"name\": \"" << e.name << "\", \"cat\": \"" << e.category
       << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us;
    if (e.has_arg) os << ", \"args\": {\"v\": " << e.arg << "}";
    os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.str();
}

bool TraceLog::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write trace to %s\n", path.c_str());
    return false;
  }
  out << to_chrome_json();
  return true;
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category) {
  TraceLog& log = TraceLog::global();
  if (log.enabled()) {
    armed_ = true;
    start_us_ = log.now_us();
  }
}

Span::Span(const char* name, const char* category, std::uint64_t arg)
    : Span(name, category) {
  arg_ = arg;
  has_arg_ = true;
}

Span::~Span() {
  if (!armed_) return;
  TraceLog& log = TraceLog::global();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.tid = thread_tid();
  event.ts_us = start_us_;
  std::uint64_t end = log.now_us();
  event.dur_us = end > start_us_ ? end - start_us_ : 0;
  event.arg = arg_;
  event.has_arg = has_arg_;
  log.append(event);
}

}  // namespace sent::obs
