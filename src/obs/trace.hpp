// Phase-timeline tracing (DESIGN.md §11).
//
// Span is an RAII marker around a phase of work (one seeded run, one
// anatomize pass, one SMO solve). Completed spans collect into the global
// TraceLog, which exports the Chrome `trace_event` JSON format — load the
// file in chrome://tracing or Perfetto to see where a campaign's wall
// clock went, per worker thread.
//
// Tracing is wall-clock data and therefore outside the determinism
// contract; it is off by default and costs one relaxed atomic load per
// span when disabled. Span names/categories must be string literals (the
// log stores the pointers, not copies).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sent::obs {

/// One completed span ("X" complete event in trace_event terms).
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;       ///< small sequential id per recording thread
  std::uint64_t ts_us = 0;     ///< start, microseconds since log epoch
  std::uint64_t dur_us = 0;
  std::uint64_t arg = 0;       ///< optional user payload (e.g. the seed)
  bool has_arg = false;
};

class TraceLog {
 public:
  static TraceLog& global();

  void set_enabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void append(const TraceEvent& event);
  void clear();

  std::size_t size() const;

  /// Render all events (sorted by start time, then thread) as Chrome
  /// trace_event JSON: {"traceEvents": [...]}.
  std::string to_chrome_json() const;

  /// Write to_chrome_json() to a file; false (with a message on stderr)
  /// when the file cannot be opened.
  bool write_chrome_json(const std::string& path) const;

  /// Microseconds since the log's epoch (set when first enabled).
  std::uint64_t now_us() const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_ns_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII span recording into TraceLog::global(). Nesting works naturally:
/// inner spans simply record shorter [ts, ts+dur] windows on the same tid.
class Span {
 public:
  explicit Span(const char* name, const char* category = "run");
  Span(const char* name, const char* category, std::uint64_t arg);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
  bool armed_ = false;
};

}  // namespace sent::obs
