// Well-known interrupt line assignments.
//
// Line number doubles as priority (lower = higher priority), mirroring AVR
// vector ordering. The three lines below are the event types the paper's
// case studies anatomize: SPI (radio), ADC, and timers.
#pragma once

#include "trace/lifecycle.hpp"

namespace sent::os::irq {

/// SPI interrupt from the radio chip (packet RX / TX-done, case study II).
inline constexpr trace::IrqLine kRadioSpi = 2;

/// ADC data-ready interrupt (case study I).
inline constexpr trace::IrqLine kAdc = 5;

/// First virtual timer line; TimerService allocates upward from here
/// (case study III uses timer lines).
inline constexpr trace::IrqLine kTimerBase = 10;

/// Exclusive upper bound on timer lines.
inline constexpr trace::IrqLine kTimerLimit = 40;

}  // namespace sent::os::irq
