#include "os/kernel.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace sent::os {

namespace {

// Registered as one block on first use (DESIGN.md §11). The latency
// histogram is in virtual cycles — a logical quantity, so it stays inside
// the deterministic sections of the metrics snapshot.
struct Metrics {
  obs::Counter posted = obs::Registry::global().counter("os.tasks_posted");
  obs::Counter run = obs::Registry::global().counter("os.tasks_run");
  obs::Counter overflows =
      obs::Registry::global().counter("os.queue_overflows");
  obs::Gauge queue_hwm = obs::Registry::global().gauge("os.task_queue_hwm");
  obs::Histogram post_to_run =
      obs::Registry::global().histogram("os.post_to_run_cycles");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

Kernel::Kernel(sim::EventQueue& queue, trace::Recorder& recorder,
               mcu::Machine& machine, const mcu::Program& program)
    : queue_time_(queue),
      recorder_(recorder),
      machine_(machine),
      program_(program) {
  machine_.set_task_provider(this);
}

trace::TaskId Kernel::register_task(mcu::CodeId code) {
  SENT_REQUIRE_MSG(program_.code(code).is_task,
                   "register_task on non-task code object "
                       << program_.code(code).name);
  task_codes_.push_back(code);
  return static_cast<trace::TaskId>(task_codes_.size() - 1);
}

void Kernel::set_queue_capacity(std::size_t capacity) {
  SENT_REQUIRE(capacity >= 1);
  capacity_ = capacity;
}

bool Kernel::try_post(trace::TaskId task) {
  SENT_REQUIRE(task < task_codes_.size());
  if (capacity_ != 0 && queue_.size() >= capacity_) {
    ++overflows_;
    Metrics::get().overflows.inc();
    return false;
  }
  // Posts happen from inside an executing instruction, so "now" is that
  // instruction's start cycle.
  recorder_.on_post_task(queue_time_.now(), task);
  queue_.push_back(Pending{task, queue_time_.now()});
  Metrics::get().posted.inc();
  Metrics::get().queue_hwm.record(queue_.size());
  machine_.notify_task_posted();
  return true;
}

void Kernel::post(trace::TaskId task) { (void)try_post(task); }

bool Kernel::post_unique(trace::TaskId task) {
  SENT_REQUIRE(task < task_codes_.size());
  if (std::find_if(queue_.begin(), queue_.end(), [task](const Pending& p) {
        return p.task == task;
      }) != queue_.end())
    return false;
  post(task);
  return true;
}

std::pair<trace::TaskId, mcu::CodeId> Kernel::pop_task() {
  SENT_ASSERT(!queue_.empty());
  Pending pending = queue_.front();
  queue_.pop_front();
  Metrics::get().run.inc();
  Metrics::get().post_to_run.record(queue_time_.now() - pending.posted_at);
  return {pending.task, task_codes_[pending.task]};
}

}  // namespace sent::os
