#include "os/kernel.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sent::os {

Kernel::Kernel(sim::EventQueue& queue, trace::Recorder& recorder,
               mcu::Machine& machine, const mcu::Program& program)
    : queue_time_(queue),
      recorder_(recorder),
      machine_(machine),
      program_(program) {
  machine_.set_task_provider(this);
}

trace::TaskId Kernel::register_task(mcu::CodeId code) {
  SENT_REQUIRE_MSG(program_.code(code).is_task,
                   "register_task on non-task code object "
                       << program_.code(code).name);
  task_codes_.push_back(code);
  return static_cast<trace::TaskId>(task_codes_.size() - 1);
}

void Kernel::set_queue_capacity(std::size_t capacity) {
  SENT_REQUIRE(capacity >= 1);
  capacity_ = capacity;
}

bool Kernel::try_post(trace::TaskId task) {
  SENT_REQUIRE(task < task_codes_.size());
  if (capacity_ != 0 && queue_.size() >= capacity_) {
    ++overflows_;
    return false;
  }
  // Posts happen from inside an executing instruction, so "now" is that
  // instruction's start cycle.
  recorder_.on_post_task(queue_time_.now(), task);
  queue_.push_back(task);
  machine_.notify_task_posted();
  return true;
}

void Kernel::post(trace::TaskId task) { (void)try_post(task); }

bool Kernel::post_unique(trace::TaskId task) {
  SENT_REQUIRE(task < task_codes_.size());
  if (std::find(queue_.begin(), queue_.end(), task) != queue_.end())
    return false;
  post(task);
  return true;
}

std::pair<trace::TaskId, mcu::CodeId> Kernel::pop_task() {
  SENT_ASSERT(!queue_.empty());
  trace::TaskId task = queue_.front();
  queue_.pop_front();
  return {task, task_codes_[task]};
}

}  // namespace sent::os
