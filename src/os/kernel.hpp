// TinyOS-like kernel: task registration, the single FIFO task queue, and
// the postTask / runTask trace hooks.
//
// Unlike TinyOS 2.x (where re-posting a pending task fails), the plain
// post() here always enqueues. The paper's Criterion 1 — "the task posted
// via the ith postTask is executed via the ith runTask" — assumes exactly
// this model, and it is what the anatomizer's pairing step relies on.
// post_unique() provides the TinyOS once-only behaviour for code that wants
// it; a failed post_unique emits no lifecycle item, preserving Criterion 1.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "mcu/machine.hpp"
#include "mcu/program.hpp"
#include "sim/event_queue.hpp"
#include "trace/recorder.hpp"

namespace sent::os {

class Kernel final : public mcu::TaskProvider {
 public:
  Kernel(sim::EventQueue& queue, trace::Recorder& recorder,
         mcu::Machine& machine, const mcu::Program& program);

  /// Register a code object (of task kind) as a postable task.
  trace::TaskId register_task(mcu::CodeId code);

  /// Post a task FIFO. Always succeeds; emits a postTask lifecycle item.
  void post(trace::TaskId task);

  /// TinyOS-style post: fails (returns false, emits nothing) if the task
  /// is already pending in the queue.
  bool post_unique(trace::TaskId task);

  /// Bound the queue like TinyOS's fixed task slots (default: unbounded).
  /// A post against a full queue fails silently (no lifecycle item) and
  /// counts as an overflow — a real failure mode of task-heavy firmware.
  void set_queue_capacity(std::size_t capacity);

  /// Like post(), but reports whether the task was accepted (only a
  /// bounded queue can refuse).
  bool try_post(trace::TaskId task);

  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t overflows() const { return overflows_; }

  // TaskProvider:
  bool has_task() override { return !queue_.empty(); }
  std::pair<trace::TaskId, mcu::CodeId> pop_task() override;

 private:
  sim::EventQueue& queue_time_;
  trace::Recorder& recorder_;
  mcu::Machine& machine_;
  const mcu::Program& program_;
  /// Pending post: the task plus the cycle it was posted at (for the
  /// post-to-run latency histogram, DESIGN.md §11).
  struct Pending {
    trace::TaskId task;
    sim::Cycle posted_at;
  };

  std::vector<mcu::CodeId> task_codes_;  // TaskId -> CodeId
  std::deque<Pending> queue_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t overflows_ = 0;
};

}  // namespace sent::os
