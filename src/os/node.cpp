// Node is header-only; this translation unit exists so the library has at
// least one object file and the header stays self-contained under -Wall.
#include "os/node.hpp"

namespace sent::os {
// Intentionally empty.
}  // namespace sent::os
