// A sensor node: program + recorder + machine + kernel + timers.
//
// Applications build their code objects into node.program(), register
// handlers/tasks, attach hardware devices, and the simulation's event queue
// drives everything. At the end of a run, take_trace() yields the NodeTrace
// consumed by the Sentomist front end.
#pragma once

#include <cstdint>
#include <memory>

#include "mcu/machine.hpp"
#include "mcu/program.hpp"
#include "os/kernel.hpp"
#include "os/timer.hpp"
#include "sim/event_queue.hpp"
#include "trace/recorder.hpp"

namespace sent::os {

class Node {
 public:
  /// `recycled` optionally donates trace-buffer capacity from a previous
  /// run (worker-local world pools, DESIGN.md §15); recording behaviour is
  /// identical with or without it.
  Node(std::uint32_t id, sim::EventQueue& queue,
       trace::NodeTrace recycled = trace::NodeTrace{})
      : id_(id),
        queue_(queue),
        recorder_(id, std::move(recycled)),
        machine_(queue, recorder_, program_),
        kernel_(queue, recorder_, machine_, program_),
        timers_(queue, machine_) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::uint32_t id() const { return id_; }
  sim::EventQueue& queue() { return queue_; }
  mcu::Program& program() { return program_; }
  const mcu::Program& program() const { return program_; }
  mcu::Machine& machine() { return machine_; }
  Kernel& kernel() { return kernel_; }
  TimerService& timers() { return timers_; }
  trace::Recorder& recorder() { return recorder_; }

  /// Emit a ground-truth bug marker (application instrumentation only;
  /// never visible to the detector).
  void mark_bug(const std::string& kind) {
    recorder_.on_bug(queue_.now(), kind);
  }

  /// Finalize the run: stamps the instruction table and moves the trace out.
  trace::NodeTrace take_trace() {
    recorder_.set_instr_table(program_.instr_table());
    return recorder_.take(queue_.now());
  }

 private:
  std::uint32_t id_;
  sim::EventQueue& queue_;
  trace::Recorder recorder_;
  mcu::Program program_;
  mcu::Machine machine_;
  Kernel kernel_;
  TimerService timers_;
};

}  // namespace sent::os
