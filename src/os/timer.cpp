#include "os/timer.hpp"

#include "util/assert.hpp"

namespace sent::os {

TimerService::TimerService(sim::EventQueue& queue, mcu::Machine& machine)
    : queue_(queue), machine_(machine) {}

void TimerService::set_drift_ppm(double ppm) {
  SENT_REQUIRE_MSG(ppm > -1e5 && ppm < 1e5, "implausible crystal drift");
  drift_ppm_ = ppm;
}

sim::Cycle TimerService::drifted(Slot& s, sim::Cycle delay) {
  if (drift_ppm_ == 0.0) return delay;
  double desired =
      static_cast<double>(delay) * (1.0 + drift_ppm_ / 1e6) + s.drift_error;
  auto actual = static_cast<sim::Cycle>(desired + 0.5);
  if (actual < 1) actual = 1;
  s.drift_error = desired - static_cast<double>(actual);
  return actual;
}

trace::IrqLine TimerService::create(const std::string& name) {
  auto line = static_cast<trace::IrqLine>(irq::kTimerBase + slots_.size());
  SENT_REQUIRE_MSG(line < irq::kTimerLimit, "too many timers");
  slots_.push_back(Slot{name, 0, 0, false});
  return line;
}

TimerService::Slot& TimerService::slot(trace::IrqLine line) {
  SENT_REQUIRE(line >= irq::kTimerBase &&
               line < irq::kTimerBase + slots_.size());
  return slots_[static_cast<std::size_t>(line - irq::kTimerBase)];
}

const TimerService::Slot& TimerService::slot(trace::IrqLine line) const {
  SENT_REQUIRE(line >= irq::kTimerBase &&
               line < irq::kTimerBase + slots_.size());
  return slots_[static_cast<std::size_t>(line - irq::kTimerBase)];
}

void TimerService::start_periodic(trace::IrqLine line, sim::Cycle period,
                                  std::optional<sim::Cycle> first) {
  SENT_REQUIRE(period > 0);
  Slot& s = slot(line);
  SENT_REQUIRE_MSG(!s.active, "timer " << s.name << " already running");
  s.period = period;
  s.active = true;
  s.pending = queue_.schedule_after(drifted(s, first.value_or(period)),
                                    [this, line] { fire(line); });
}

void TimerService::start_oneshot(trace::IrqLine line, sim::Cycle delay) {
  Slot& s = slot(line);
  SENT_REQUIRE_MSG(!s.active, "timer " << s.name << " already running");
  s.period = 0;
  s.active = true;
  s.pending = queue_.schedule_after(drifted(s, delay), [this, line] { fire(line); });
}

void TimerService::stop(trace::IrqLine line) {
  Slot& s = slot(line);
  if (!s.active) return;
  queue_.cancel(s.pending);
  s.pending = 0;
  s.active = false;
}

bool TimerService::running(trace::IrqLine line) const {
  return slot(line).active;
}

bool TimerService::owns(trace::IrqLine line) const {
  return line >= irq::kTimerBase &&
         line < irq::kTimerBase + slots_.size();
}

void TimerService::fire_early(trace::IrqLine line) {
  Slot& s = slot(line);
  if (!s.active) return;
  queue_.cancel(s.pending);
  fire(line);
}

const std::string& TimerService::name(trace::IrqLine line) const {
  return slot(line).name;
}

void TimerService::fire(trace::IrqLine line) {
  Slot& s = slot(line);
  SENT_ASSERT(s.active);
  if (s.period > 0) {
    s.pending = queue_.schedule_after(drifted(s, s.period), [this, line] { fire(line); });
  } else {
    s.pending = 0;
    s.active = false;
  }
  machine_.raise_irq(line);
}

}  // namespace sent::os
