// Virtualized timers.
//
// TinyOS multiplexes many logical timers onto hardware compare channels;
// here each logical timer gets its own interrupt line (from irq::kTimerBase
// upward), so "event type == interrupt number" holds for timer events too —
// the property the anatomizer's grouping step depends on. The service turns
// deadlines into raise_irq calls on the machine.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mcu/machine.hpp"
#include "os/irq.hpp"
#include "sim/event_queue.hpp"

namespace sent::os {

class TimerService {
 public:
  TimerService(sim::EventQueue& queue, mcu::Machine& machine);

  /// Allocate a timer line. The caller must register a handler code object
  /// for the returned line before the timer first fires.
  trace::IrqLine create(const std::string& name);

  /// Fire every `period` cycles, first at now + `first` (default: period).
  void start_periodic(trace::IrqLine line, sim::Cycle period,
                      std::optional<sim::Cycle> first = std::nullopt);

  /// Fire once at now + delay.
  void start_oneshot(trace::IrqLine line, sim::Cycle delay);

  /// Stop a timer; pending fire (if any) is cancelled.
  void stop(trace::IrqLine line);

  /// Crystal drift for this node's timer hardware, in parts per million:
  /// every armed delay is scaled by (1 + ppm/1e6). Real mote crystals sit
  /// within roughly +/-50 ppm, which is what slowly decorrelates
  /// same-period timers across a network. Applies to timers armed after
  /// the call.
  void set_drift_ppm(double ppm);
  double drift_ppm() const { return drift_ppm_; }

  bool running(trace::IrqLine line) const;
  const std::string& name(trace::IrqLine line) const;

  /// Whether `line` was allocated by this service's create().
  bool owns(trace::IrqLine line) const;

  /// Force a running timer to fire now — a spurious early compare match
  /// (fault injection). The pending fire is cancelled first, so slot
  /// bookkeeping stays consistent: periodic timers reschedule from now,
  /// one-shots disarm as usual. No-op if the timer is not running (real
  /// timer hardware filters a glitch on a disarmed channel).
  void fire_early(trace::IrqLine line);

 private:
  struct Slot {
    std::string name;
    sim::Cycle period = 0;  // 0 => one-shot
    sim::EventId pending = 0;
    bool active = false;
    /// Sub-cycle drift error carried between arms so ppm-scale drift
    /// accumulates instead of vanishing in integer truncation.
    double drift_error = 0.0;
  };

  sim::EventQueue& queue_;
  mcu::Machine& machine_;
  std::vector<Slot> slots_;  // index: line - kTimerBase
  double drift_ppm_ = 0.0;

  Slot& slot(trace::IrqLine line);
  const Slot& slot(trace::IrqLine line) const;
  void fire(trace::IrqLine line);
  sim::Cycle drifted(Slot& s, sim::Cycle delay);
};

}  // namespace sent::os
