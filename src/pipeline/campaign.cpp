#include "pipeline/campaign.hpp"

#include <numeric>
#include <sstream>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace sent::pipeline {

double CampaignStats::trigger_rate() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(triggered) / static_cast<double>(runs);
}

double CampaignStats::detection_rate() const {
  if (triggered == 0) return 0.0;
  return static_cast<double>(detected_top_k) /
         static_cast<double>(triggered);
}

double CampaignStats::mean_first_rank() const {
  if (first_ranks.empty()) return 0.0;
  double sum = std::accumulate(first_ranks.begin(), first_ranks.end(), 0.0);
  return sum / static_cast<double>(first_ranks.size());
}

namespace {

/// Everything the aggregation needs from one seeded run; keeping the full
/// AnalysisReport per seed alive across the whole campaign would be
/// wasteful at large run counts.
struct RunOutcome {
  bool triggered = false;
  std::size_t first_rank = 0;
};

}  // namespace

CampaignStats run_campaign(const ScenarioRunner& runner,
                           const CampaignOptions& options) {
  SENT_REQUIRE(runner != nullptr);
  SENT_REQUIRE(options.runs >= 1);
  SENT_REQUIRE(options.k >= 1);

  // Fan the seeds out; each slot is written by exactly one invocation.
  std::vector<RunOutcome> outcomes(options.runs);
  util::ThreadPool pool(options.threads);
  pool.parallel_for(options.runs, [&](std::size_t i) {
    AnalysisReport report = runner(options.first_seed + i);
    if (report.buggy_count() == 0) return;
    outcomes[i] = {true, report.first_bug_rank()};
  });

  // Aggregate in seed order so parallel output is bit-identical to serial.
  CampaignStats stats;
  stats.runs = options.runs;
  stats.k = options.k;
  for (const RunOutcome& outcome : outcomes) {
    if (!outcome.triggered) continue;
    ++stats.triggered;
    stats.first_ranks.push_back(outcome.first_rank);
    if (outcome.first_rank <= options.k) ++stats.detected_top_k;
  }
  return stats;
}

CampaignStats run_campaign(const ScenarioRunner& runner,
                           std::uint64_t first_seed, std::size_t runs,
                           std::size_t k) {
  CampaignOptions options;
  options.first_seed = first_seed;
  options.runs = runs;
  options.k = k;
  options.threads = 1;
  return run_campaign(runner, options);
}

std::string summarize(const CampaignStats& stats) {
  std::ostringstream os;
  os << stats.runs << " runs: bug triggered in " << stats.triggered << " ("
     << static_cast<int>(stats.trigger_rate() * 100.0 + 0.5)
     << "%); when triggered, ranked top-" << stats.k << " in "
     << stats.detected_top_k << "/" << stats.triggered;
  if (stats.triggered > 0)
    os << " (mean first rank " << stats.mean_first_rank() << ")";
  return os.str();
}

}  // namespace sent::pipeline
