#include "pipeline/campaign.hpp"

#include <numeric>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace sent::pipeline {

namespace {

// Campaign-level introspection (DESIGN.md §11). Outcome counters are a pure
// function of (runner, options) and stay deterministic; per-run wall time
// goes to the `campaign.run_seconds` timer, which the snapshot keeps out of
// the deterministic sections.
struct Metrics {
  obs::Counter runs = obs::Registry::global().counter("campaign.runs");
  obs::Counter triggered =
      obs::Registry::global().counter("campaign.triggered");
  obs::Counter failed = obs::Registry::global().counter("campaign.failed");
  obs::Counter timed_out =
      obs::Registry::global().counter("campaign.timed_out");
  obs::Counter retried = obs::Registry::global().counter("campaign.retried");
  obs::Counter degraded =
      obs::Registry::global().counter("campaign.degraded");
  obs::Histogram run_ns = obs::Registry::global().timer("campaign.run_ns");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

double CampaignStats::trigger_rate() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(triggered) / static_cast<double>(runs);
}

double CampaignStats::detection_rate() const {
  if (triggered == 0) return 0.0;
  return static_cast<double>(detected_top_k) /
         static_cast<double>(triggered);
}

double CampaignStats::mean_first_rank() const {
  if (first_ranks.empty()) return 0.0;
  double sum = std::accumulate(first_ranks.begin(), first_ranks.end(), 0.0);
  return sum / static_cast<double>(first_ranks.size());
}

double CampaignStats::wall_seconds_percentile(double p) const {
  return util::percentile(run_wall_seconds, p);
}

bool CampaignStats::operator==(const CampaignStats& other) const {
  return runs == other.runs && triggered == other.triggered &&
         detected_top_k == other.detected_top_k && k == other.k &&
         first_ranks == other.first_ranks && failed == other.failed &&
         timed_out == other.timed_out && retried == other.retried &&
         degraded == other.degraded && failures == other.failures;
}

namespace {

/// Everything the aggregation needs from one seeded run; keeping the full
/// AnalysisReport per seed alive across the whole campaign would be
/// wasteful at large run counts.
struct RunOutcome {
  RunStatus status = RunStatus::Completed;
  bool triggered = false;
  bool degraded = false;
  bool retried = false;
  std::size_t first_rank = 0;
  std::string message;  ///< Failed / TimedOut only
};

/// One runner invocation with per-run fault isolation: any exception is
/// captured into the outcome instead of escaping into the pool worker, so
/// a bad seed can never tear down its siblings.
RunOutcome attempt(const ScenarioRunner& runner, std::uint64_t seed) {
  RunOutcome out;
  try {
    AnalysisReport report = runner(seed);
    out.degraded = report.degraded;
    if (report.buggy_count() > 0) {
      out.triggered = true;
      out.first_rank = report.first_bug_rank();
    }
  } catch (const sim::WatchdogTimeout& e) {
    out.status = RunStatus::TimedOut;
    out.message = e.what();
  } catch (const std::exception& e) {
    out.status = RunStatus::Failed;
    out.message = e.what();
  }
  return out;
}

}  // namespace

CampaignStats run_campaign(const ScenarioRunner& runner,
                           const CampaignOptions& options) {
  SENT_REQUIRE(runner != nullptr);
  SENT_REQUIRE(options.runs >= 1);
  SENT_REQUIRE(options.k >= 1);

  // Fan the seeds out; each slot is written by exactly one invocation.
  std::vector<RunOutcome> outcomes(options.runs);
  std::vector<double> wall_seconds(options.runs, 0.0);
  util::ThreadPool pool(options.threads);
  pool.parallel_for(options.runs, [&](std::size_t i) {
    const std::uint64_t seed = options.first_seed + i;
    obs::Span run_span("campaign.run", "campaign", seed);
    const std::uint64_t t0 = obs::Registry::now_ns();
    RunOutcome out = attempt(runner, seed);
    if (out.status != RunStatus::Completed && options.retry_failed) {
      out = attempt(runner, seed + options.retry_seed_offset);
      out.retried = true;
    }
    const std::uint64_t elapsed_ns = obs::Registry::now_ns() - t0;
    Metrics::get().run_ns.record(elapsed_ns);
    wall_seconds[i] = static_cast<double>(elapsed_ns) * 1e-9;
    outcomes[i] = std::move(out);
  });

  // Aggregate in seed order so parallel output is bit-identical to serial.
  CampaignStats stats;
  stats.runs = options.runs;
  stats.k = options.k;
  stats.run_wall_seconds = std::move(wall_seconds);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& outcome = outcomes[i];
    stats.retried += outcome.retried;
    if (outcome.status != RunStatus::Completed) {
      if (outcome.status == RunStatus::Failed) ++stats.failed;
      else ++stats.timed_out;
      stats.failures.push_back(RunFailure{options.first_seed + i,
                                          outcome.status, outcome.message});
      continue;
    }
    stats.degraded += outcome.degraded;
    if (!outcome.triggered) continue;
    ++stats.triggered;
    stats.first_ranks.push_back(outcome.first_rank);
    if (outcome.first_rank <= options.k) ++stats.detected_top_k;
  }

  Metrics::get().runs.inc(stats.runs);
  Metrics::get().triggered.inc(stats.triggered);
  Metrics::get().failed.inc(stats.failed);
  Metrics::get().timed_out.inc(stats.timed_out);
  Metrics::get().retried.inc(stats.retried);
  Metrics::get().degraded.inc(stats.degraded);
  return stats;
}

CampaignStats run_campaign(const ScenarioRunner& runner,
                           std::uint64_t first_seed, std::size_t runs,
                           std::size_t k) {
  CampaignOptions options;
  options.first_seed = first_seed;
  options.runs = runs;
  options.k = k;
  options.threads = 1;
  return run_campaign(runner, options);
}

std::string summarize(const CampaignStats& stats) {
  std::ostringstream os;
  os << stats.runs << " runs: bug triggered in " << stats.triggered << " ("
     << static_cast<int>(stats.trigger_rate() * 100.0 + 0.5)
     << "%); when triggered, ranked top-" << stats.k << " in "
     << stats.detected_top_k << "/" << stats.triggered;
  if (stats.triggered > 0)
    os << " (mean first rank " << stats.mean_first_rank() << ")";
  if (stats.failed > 0) os << "; failed " << stats.failed;
  if (stats.timed_out > 0) os << "; timed out " << stats.timed_out;
  if (stats.degraded > 0) os << "; degraded " << stats.degraded;
  if (stats.retried > 0) os << "; retried " << stats.retried;
  return os.str();
}

}  // namespace sent::pipeline
