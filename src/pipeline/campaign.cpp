#include "pipeline/campaign.hpp"

#include <numeric>
#include <sstream>
#include <utility>

#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace sent::pipeline {

double CampaignStats::trigger_rate() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(triggered) / static_cast<double>(runs);
}

double CampaignStats::detection_rate() const {
  if (triggered == 0) return 0.0;
  return static_cast<double>(detected_top_k) /
         static_cast<double>(triggered);
}

double CampaignStats::mean_first_rank() const {
  if (first_ranks.empty()) return 0.0;
  double sum = std::accumulate(first_ranks.begin(), first_ranks.end(), 0.0);
  return sum / static_cast<double>(first_ranks.size());
}

namespace {

/// Everything the aggregation needs from one seeded run; keeping the full
/// AnalysisReport per seed alive across the whole campaign would be
/// wasteful at large run counts.
struct RunOutcome {
  RunStatus status = RunStatus::Completed;
  bool triggered = false;
  bool degraded = false;
  bool retried = false;
  std::size_t first_rank = 0;
  std::string message;  ///< Failed / TimedOut only
};

/// One runner invocation with per-run fault isolation: any exception is
/// captured into the outcome instead of escaping into the pool worker, so
/// a bad seed can never tear down its siblings.
RunOutcome attempt(const ScenarioRunner& runner, std::uint64_t seed) {
  RunOutcome out;
  try {
    AnalysisReport report = runner(seed);
    out.degraded = report.degraded;
    if (report.buggy_count() > 0) {
      out.triggered = true;
      out.first_rank = report.first_bug_rank();
    }
  } catch (const sim::WatchdogTimeout& e) {
    out.status = RunStatus::TimedOut;
    out.message = e.what();
  } catch (const std::exception& e) {
    out.status = RunStatus::Failed;
    out.message = e.what();
  }
  return out;
}

}  // namespace

CampaignStats run_campaign(const ScenarioRunner& runner,
                           const CampaignOptions& options) {
  SENT_REQUIRE(runner != nullptr);
  SENT_REQUIRE(options.runs >= 1);
  SENT_REQUIRE(options.k >= 1);

  // Fan the seeds out; each slot is written by exactly one invocation.
  std::vector<RunOutcome> outcomes(options.runs);
  util::ThreadPool pool(options.threads);
  pool.parallel_for(options.runs, [&](std::size_t i) {
    const std::uint64_t seed = options.first_seed + i;
    RunOutcome out = attempt(runner, seed);
    if (out.status != RunStatus::Completed && options.retry_failed) {
      out = attempt(runner, seed + options.retry_seed_offset);
      out.retried = true;
    }
    outcomes[i] = std::move(out);
  });

  // Aggregate in seed order so parallel output is bit-identical to serial.
  CampaignStats stats;
  stats.runs = options.runs;
  stats.k = options.k;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& outcome = outcomes[i];
    stats.retried += outcome.retried;
    if (outcome.status != RunStatus::Completed) {
      if (outcome.status == RunStatus::Failed) ++stats.failed;
      else ++stats.timed_out;
      stats.failures.push_back(RunFailure{options.first_seed + i,
                                          outcome.status, outcome.message});
      continue;
    }
    stats.degraded += outcome.degraded;
    if (!outcome.triggered) continue;
    ++stats.triggered;
    stats.first_ranks.push_back(outcome.first_rank);
    if (outcome.first_rank <= options.k) ++stats.detected_top_k;
  }
  return stats;
}

CampaignStats run_campaign(const ScenarioRunner& runner,
                           std::uint64_t first_seed, std::size_t runs,
                           std::size_t k) {
  CampaignOptions options;
  options.first_seed = first_seed;
  options.runs = runs;
  options.k = k;
  options.threads = 1;
  return run_campaign(runner, options);
}

std::string summarize(const CampaignStats& stats) {
  std::ostringstream os;
  os << stats.runs << " runs: bug triggered in " << stats.triggered << " ("
     << static_cast<int>(stats.trigger_rate() * 100.0 + 0.5)
     << "%); when triggered, ranked top-" << stats.k << " in "
     << stats.detected_top_k << "/" << stats.triggered;
  if (stats.triggered > 0)
    os << " (mean first rank " << stats.mean_first_rank() << ")";
  if (stats.failed > 0) os << "; failed " << stats.failed;
  if (stats.timed_out > 0) os << "; timed out " << stats.timed_out;
  if (stats.degraded > 0) os << "; degraded " << stats.degraded;
  if (stats.retried > 0) os << "; retried " << stats.retried;
  return os.str();
}

}  // namespace sent::pipeline
