#include "pipeline/campaign.hpp"

#include <numeric>
#include <sstream>

#include "util/assert.hpp"

namespace sent::pipeline {

double CampaignStats::trigger_rate() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(triggered) / static_cast<double>(runs);
}

double CampaignStats::detection_rate() const {
  if (triggered == 0) return 1.0;
  return static_cast<double>(detected_top_k) /
         static_cast<double>(triggered);
}

double CampaignStats::mean_first_rank() const {
  if (first_ranks.empty()) return 0.0;
  double sum = std::accumulate(first_ranks.begin(), first_ranks.end(), 0.0);
  return sum / static_cast<double>(first_ranks.size());
}

CampaignStats run_campaign(const ScenarioRunner& runner,
                           std::uint64_t first_seed, std::size_t runs,
                           std::size_t k) {
  SENT_REQUIRE(runner != nullptr);
  SENT_REQUIRE(runs >= 1);
  SENT_REQUIRE(k >= 1);
  CampaignStats stats;
  stats.runs = runs;
  stats.k = k;
  for (std::size_t i = 0; i < runs; ++i) {
    AnalysisReport report = runner(first_seed + i);
    if (report.buggy_count() == 0) continue;
    ++stats.triggered;
    std::size_t rank = report.first_bug_rank();
    stats.first_ranks.push_back(rank);
    if (rank <= k) ++stats.detected_top_k;
  }
  return stats;
}

std::string summarize(const CampaignStats& stats) {
  std::ostringstream os;
  os << stats.runs << " runs: bug triggered in " << stats.triggered << " ("
     << static_cast<int>(stats.trigger_rate() * 100.0 + 0.5)
     << "%); when triggered, ranked top-" << stats.k << " in "
     << stats.detected_top_k << "/" << stats.triggered;
  if (stats.triggered > 0)
    os << " (mean first rank " << stats.mean_first_rank() << ")";
  return os.str();
}

}  // namespace sent::pipeline
