#include "pipeline/campaign.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "fault/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/journal.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace sent::pipeline {

namespace {

// Campaign-level introspection (DESIGN.md §11). Outcome counters are a pure
// function of (runner, options) and stay deterministic; per-run wall time
// goes to the `campaign.run_seconds` timer, which the snapshot keeps out of
// the deterministic sections. The journal.* counters describe durability
// work: resumed/recovered depend on where a previous campaign died, so they
// are honest about THIS invocation, not part of any cross-run determinism
// claim (snapshot comparisons in tier-1 never mix resumed and fresh runs).
struct Metrics {
  obs::Counter runs = obs::Registry::global().counter("campaign.runs");
  obs::Counter triggered =
      obs::Registry::global().counter("campaign.triggered");
  obs::Counter failed = obs::Registry::global().counter("campaign.failed");
  obs::Counter timed_out =
      obs::Registry::global().counter("campaign.timed_out");
  obs::Counter retried = obs::Registry::global().counter("campaign.retried");
  obs::Counter degraded =
      obs::Registry::global().counter("campaign.degraded");
  obs::Counter quarantined =
      obs::Registry::global().counter("campaign.quarantined");
  obs::Counter journal_appends =
      obs::Registry::global().counter("campaign.journal.appends");
  obs::Counter journal_commits =
      obs::Registry::global().counter("campaign.journal.commits");
  obs::Counter journal_io_errors =
      obs::Registry::global().counter("campaign.journal.io_errors");
  obs::Counter journal_recovered =
      obs::Registry::global().counter("campaign.journal.recovered_records");
  obs::Counter journal_resumed =
      obs::Registry::global().counter("campaign.journal.resumed_runs");
  obs::Counter journal_truncated =
      obs::Registry::global().counter("campaign.journal.truncated_tails");
  obs::Histogram run_ns = obs::Registry::global().timer("campaign.run_ns");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

double CampaignStats::trigger_rate() const {
  if (runs == 0) return 0.0;
  return static_cast<double>(triggered) / static_cast<double>(runs);
}

double CampaignStats::detection_rate() const {
  if (triggered == 0) return 0.0;
  return static_cast<double>(detected_top_k) /
         static_cast<double>(triggered);
}

double CampaignStats::mean_first_rank() const {
  if (first_ranks.empty()) return 0.0;
  double sum = std::accumulate(first_ranks.begin(), first_ranks.end(), 0.0);
  return sum / static_cast<double>(first_ranks.size());
}

double CampaignStats::wall_seconds_percentile(double p) const {
  return util::percentile(run_wall_seconds, p);
}

bool CampaignStats::operator==(const CampaignStats& other) const {
  return runs == other.runs && triggered == other.triggered &&
         detected_top_k == other.detected_top_k && k == other.k &&
         first_ranks == other.first_ranks && failed == other.failed &&
         timed_out == other.timed_out && retried == other.retried &&
         degraded == other.degraded && failures == other.failures &&
         quarantined == other.quarantined &&
         quarantined_seeds == other.quarantined_seeds;
}

namespace {

/// Everything the aggregation needs from one seeded run; keeping the full
/// AnalysisReport per seed alive across the whole campaign would be
/// wasteful at large run counts.
struct RunOutcome {
  RunStatus status = RunStatus::Completed;
  bool triggered = false;
  bool degraded = false;
  std::uint32_t attempts = 1;  ///< total attempts (1 = no retry)
  bool quarantined = false;    ///< failed every attempt under retry policy
  bool resumed = false;        ///< reconstructed from the journal
  std::size_t first_rank = 0;
  std::string message;  ///< Failed / TimedOut only
};

/// One runner invocation with per-run fault isolation: any exception is
/// captured into the outcome instead of escaping into the pool worker, so
/// a bad seed can never tear down its siblings. `primary_seed` keys the
/// harness-chaos abort decision (stable across resume); `attempt_seed` is
/// what the runner actually sees.
RunOutcome attempt(const ScenarioRunner& runner, std::uint64_t primary_seed,
                   std::uint64_t attempt_seed, std::uint32_t attempt_index,
                   const fault::HarnessInjector* injector) {
  RunOutcome out;
  try {
    if (injector) injector->maybe_abort_runner(primary_seed, attempt_index);
    AnalysisReport report = runner(attempt_seed);
    out.degraded = report.degraded;
    if (report.buggy_count() > 0) {
      out.triggered = true;
      out.first_rank = report.first_bug_rank();
    }
  } catch (const sim::WatchdogTimeout& e) {
    out.status = RunStatus::TimedOut;
    out.message = e.what();
    // 10k-run triage needs the budget arithmetic without re-running the
    // seed: how big was the allowance, how much had the run burned.
    if (e.budget() > 0) {
      out.message += " [event budget " + std::to_string(e.budget()) +
                     ", events executed " +
                     std::to_string(e.events_executed()) + "]";
    }
  } catch (const std::exception& e) {
    out.status = RunStatus::Failed;
    out.message = e.what();
  }
  return out;
}

/// Next seed in the retry schedule. A candidate that lands inside the
/// campaign's own window [first_seed, first_seed + runs) would silently
/// re-run a sibling's exact randomness; hop past the window (its length is
/// `runs`, so one hop always exits it) — deterministically, so campaigns
/// stay bit-identical across --jobs and resume.
std::uint64_t next_retry_seed(std::uint64_t prev,
                              const CampaignOptions& options) {
  std::uint64_t candidate = prev + options.retry_seed_offset;
  if (candidate >= options.first_seed &&
      candidate - options.first_seed < options.runs) {
    candidate += options.runs;
  }
  return candidate;
}

/// One seed through the full bounded-retry policy.
RunOutcome run_with_retries(const ScenarioRunner& runner, std::uint64_t seed,
                            const CampaignOptions& options,
                            const fault::HarnessInjector* injector) {
  RunOutcome out = attempt(runner, seed, seed, 0, injector);
  std::uint64_t attempt_seed = seed;
  std::uint32_t attempts = 1;
  for (std::size_t r = 1;
       r <= options.max_retries && out.status != RunStatus::Completed; ++r) {
    attempt_seed = next_retry_seed(attempt_seed, options);
    out = attempt(runner, seed, attempt_seed,
                  static_cast<std::uint32_t>(r), injector);
    ++attempts;
  }
  out.attempts = attempts;
  if (out.status != RunStatus::Completed && options.max_retries > 0)
    out.quarantined = true;
  return out;
}

JournalRecord to_record(std::uint64_t seed, const RunOutcome& out) {
  JournalRecord rec;
  rec.seed = seed;
  rec.status = out.status;
  rec.triggered = out.triggered;
  rec.first_rank = out.first_rank;
  rec.degraded = out.degraded;
  rec.attempts = out.attempts;
  rec.quarantined = out.quarantined;
  rec.message = out.message;
  return rec;
}

RunOutcome from_record(const JournalRecord& rec) {
  RunOutcome out;
  out.status = rec.status;
  out.triggered = rec.triggered;
  out.first_rank = static_cast<std::size_t>(rec.first_rank);
  out.degraded = rec.degraded;
  out.attempts = rec.attempts;
  out.quarantined = rec.quarantined;
  out.resumed = true;
  out.message = rec.message;
  return out;
}

}  // namespace

namespace {

/// Auto batch size: enough batches for dynamic claiming to rebalance
/// (8 per worker), but never so large that one worker hoards the tail.
std::size_t effective_seed_batch(const CampaignOptions& options) {
  if (options.seed_batch != 0) return options.seed_batch;
  const std::size_t workers = std::max<std::size_t>(options.threads, 1);
  const std::size_t batch = options.runs / (8 * workers);
  return std::clamp<std::size_t>(batch, 1, 64);
}

}  // namespace

CampaignStats run_campaign(const ScenarioRunnerFactory& factory,
                           const CampaignOptions& options) {
  SENT_REQUIRE(factory != nullptr);
  SENT_REQUIRE(options.runs >= 1);
  SENT_REQUIRE(options.k >= 1);
  SENT_REQUIRE(options.journal_commit_every >= 1);
  SENT_REQUIRE(options.journal_flush_every >= 1);
  SENT_REQUIRE_MSG(!options.resume || !options.journal_path.empty(),
                   "resume requires a journal_path");
  SENT_REQUIRE_MSG(options.max_retries == 0 || options.retry_seed_offset > 0,
                   "retry policy needs a nonzero seed offset");

  std::optional<fault::HarnessInjector> injector;
  if (options.harness_faults.any())
    injector.emplace(options.harness_faults);
  const fault::HarnessInjector* inj = injector ? &*injector : nullptr;

  // Durable layer: recover any prior journal, index its outcomes by seed
  // (later records supersede earlier ones — the file is append-only), and
  // open the writer, which atomically rewrites the file without whatever
  // corrupt tail the recovery scan dropped.
  std::unordered_map<std::uint64_t, RunOutcome> resumed;
  std::unique_ptr<JournalWriter> journal;
  if (!options.journal_path.empty()) {
    const JournalMeta meta{options.first_seed, options.runs, options.k};
    std::vector<JournalRecord> keep;
    if (options.resume) {
      JournalRecovery recovery = recover_journal(options.journal_path);
      if (recovery.truncated) Metrics::get().journal_truncated.inc();
      if (recovery.file_existed && recovery.header_valid) {
        SENT_REQUIRE_MSG(
            recovery.meta == meta,
            "journal " << options.journal_path
                       << " belongs to a different campaign (meta "
                       << recovery.meta.first_seed << "/" << recovery.meta.runs
                       << "/" << recovery.meta.k << ", expected "
                       << options.first_seed << "/" << options.runs << "/"
                       << options.k << ")");
        std::map<std::uint64_t, JournalRecord> by_seed;
        for (JournalRecord& rec : recovery.records) {
          if (rec.seed < options.first_seed ||
              rec.seed - options.first_seed >= options.runs) {
            continue;  // defensive: outside this campaign's window
          }
          by_seed[rec.seed] = std::move(rec);  // last record wins
        }
        for (auto& [seed, rec] : by_seed) {
          resumed.emplace(seed, from_record(rec));
          keep.push_back(std::move(rec));
        }
      }
    }
    Metrics::get().journal_recovered.inc(keep.size());
    journal = std::make_unique<JournalWriter>(
        options.journal_path, meta, std::move(keep),
        options.journal_commit_every);
    if (inj) {
      journal->set_commit_hook([inj](std::uint64_t commit_index,
                                     std::string& bytes) {
        switch (inj->commit_fault(commit_index)) {
          case fault::HarnessInjector::CommitFault::IoError:
            throw std::runtime_error(
                "harness fault: injected journal IO error");
          case fault::HarnessInjector::CommitFault::ShortWrite:
            bytes.resize(static_cast<std::size_t>(
                static_cast<double>(bytes.size()) *
                inj->short_write_keep_fraction(commit_index)));
            break;
          case fault::HarnessInjector::CommitFault::None:
            break;
        }
      });
    }
  }

  // Fan the seeds out in contiguous batches; each outcome slot is written
  // by exactly one invocation, so the hot loop carries no shared mutex
  // (the journal, when enabled, is the one shared structure — and
  // journal_flush_every batches its lock traffic). Journaled seeds
  // short-circuit: their outcome is reconstructed, not re-run, which is
  // what makes a resumed 10k campaign pick up where the crash left it.
  std::vector<RunOutcome> outcomes(options.runs);
  std::vector<double> wall_seconds(options.runs, 0.0);
  util::ThreadPool pool(options.threads);

  // Per-worker amortized state (DESIGN.md §15). The runner is built
  // lazily, on the worker's own thread, at its first non-resumed seed — a
  // fully resumed campaign never invokes the factory at all.
  struct WorkerState {
    ScenarioRunner runner;
    std::vector<JournalRecord> pending;  ///< journal append buffer
  };
  std::vector<WorkerState> workers(std::max<std::size_t>(pool.size(), 1));

  const std::size_t flush_every = options.journal_flush_every;
  auto flush_pending = [&](WorkerState& ws) {
    if (!journal || ws.pending.empty()) return;
    journal->append_batch(ws.pending);
    // The kill hook fires AFTER the append so the journaled prefix is
    // exactly what a resumed campaign will find.
    if (inj) inj->maybe_kill(journal->appended());
  };

  pool.parallel_for_indexed(
      options.runs, effective_seed_batch(options),
      [&](std::size_t worker, std::size_t i) {
        const std::uint64_t seed = options.first_seed + i;
        if (auto it = resumed.find(seed); it != resumed.end()) {
          outcomes[i] = it->second;
          return;
        }
        WorkerState& ws = workers[worker];
        if (!ws.runner) {
          ws.runner = factory(worker);
          SENT_REQUIRE(ws.runner != nullptr);
        }
        obs::Span run_span("campaign.run", "campaign", seed);
        const std::uint64_t t0 = obs::Registry::now_ns();
        RunOutcome out = run_with_retries(ws.runner, seed, options, inj);
        const std::uint64_t elapsed_ns = obs::Registry::now_ns() - t0;
        Metrics::get().run_ns.record(elapsed_ns);
        wall_seconds[i] = static_cast<double>(elapsed_ns) * 1e-9;
        outcomes[i] = std::move(out);
        if (journal) {
          ws.pending.push_back(to_record(seed, outcomes[i]));
          if (ws.pending.size() >= flush_every) flush_pending(ws);
        }
      });
  // Drain any buffered journal tails (worker order — the records carry
  // their seeds, so journal order never matters) and land the final commit.
  for (WorkerState& ws : workers) flush_pending(ws);
  if (journal) journal->commit();  // flush any batched tail

  // Aggregate in seed order so parallel output is bit-identical to serial
  // — and so a resumed campaign, whose fresh runs interleave with
  // journal-reconstructed ones, is bit-identical to an uninterrupted run.
  CampaignStats stats;
  stats.runs = options.runs;
  stats.k = options.k;
  stats.run_wall_seconds = std::move(wall_seconds);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& outcome = outcomes[i];
    const std::uint64_t seed = options.first_seed + i;
    stats.retried += outcome.attempts - 1;
    stats.resumed_from_journal += outcome.resumed ? 1 : 0;
    if (outcome.quarantined) {
      ++stats.quarantined;
      stats.quarantined_seeds.push_back(seed);
    }
    if (outcome.status != RunStatus::Completed) {
      if (outcome.status == RunStatus::Failed) ++stats.failed;
      else ++stats.timed_out;
      stats.failures.push_back(
          RunFailure{seed, outcome.status, outcome.message});
      continue;
    }
    stats.degraded += outcome.degraded;
    if (!outcome.triggered) continue;
    ++stats.triggered;
    stats.first_ranks.push_back(outcome.first_rank);
    if (outcome.first_rank <= options.k) ++stats.detected_top_k;
  }

  Metrics::get().runs.inc(stats.runs);
  Metrics::get().triggered.inc(stats.triggered);
  Metrics::get().failed.inc(stats.failed);
  Metrics::get().timed_out.inc(stats.timed_out);
  Metrics::get().retried.inc(stats.retried);
  Metrics::get().degraded.inc(stats.degraded);
  Metrics::get().quarantined.inc(stats.quarantined);
  Metrics::get().journal_resumed.inc(stats.resumed_from_journal);
  if (journal) {
    Metrics::get().journal_appends.inc(journal->appended());
    Metrics::get().journal_commits.inc(journal->commits());
    Metrics::get().journal_io_errors.inc(journal->io_errors());
  }
  return stats;
}

CampaignStats run_campaign(const ScenarioRunner& runner,
                           const CampaignOptions& options) {
  SENT_REQUIRE(runner != nullptr);
  // Every worker invokes the one shared runner object (not a copy), which
  // must already be thread-safe — the historic contract.
  return run_campaign(ScenarioRunnerFactory([&runner](std::size_t) {
                        return ScenarioRunner(
                            [&runner](std::uint64_t seed) {
                              return runner(seed);
                            });
                      }),
                      options);
}

CampaignStats run_campaign(const ScenarioRunner& runner,
                           std::uint64_t first_seed, std::size_t runs,
                           std::size_t k) {
  CampaignOptions options;
  options.first_seed = first_seed;
  options.runs = runs;
  options.k = k;
  options.threads = 1;
  return run_campaign(runner, options);
}

std::string summarize(const CampaignStats& stats) {
  std::ostringstream os;
  os << stats.runs << " runs: bug triggered in " << stats.triggered << " ("
     << static_cast<int>(stats.trigger_rate() * 100.0 + 0.5)
     << "%); when triggered, ranked top-" << stats.k << " in "
     << stats.detected_top_k << "/" << stats.triggered;
  if (stats.triggered > 0)
    os << " (mean first rank " << stats.mean_first_rank() << ")";
  if (stats.failed > 0) os << "; failed " << stats.failed;
  if (stats.timed_out > 0) os << "; timed out " << stats.timed_out;
  if (stats.degraded > 0) os << "; degraded " << stats.degraded;
  if (stats.retried > 0) os << "; retried " << stats.retried;
  if (stats.quarantined > 0) os << "; quarantined " << stats.quarantined;
  if (stats.resumed_from_journal > 0)
    os << "; resumed " << stats.resumed_from_journal << " from journal";
  return os.str();
}

namespace {

/// Minimal JSON string escaping (quote, backslash, control bytes).
std::string json_escape(const std::string& text) {
  std::ostringstream os;
  for (unsigned char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (c < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  return os.str();
}

template <typename T>
void write_array(std::ostringstream& os, const std::vector<T>& values) {
  os << "[";
  for (std::size_t i = 0; i < values.size(); ++i)
    os << (i ? ", " : "") << values[i];
  os << "]";
}

}  // namespace

std::string stats_json(const CampaignStats& stats) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"runs\": " << stats.runs << ",\n";
  os << "  \"k\": " << stats.k << ",\n";
  os << "  \"triggered\": " << stats.triggered << ",\n";
  os << "  \"detected_top_k\": " << stats.detected_top_k << ",\n";
  os << "  \"trigger_rate\": " << stats.trigger_rate() << ",\n";
  os << "  \"detection_rate\": " << stats.detection_rate() << ",\n";
  os << "  \"mean_first_rank\": " << stats.mean_first_rank() << ",\n";
  os << "  \"first_ranks\": ";
  write_array(os, stats.first_ranks);
  os << ",\n";
  os << "  \"failed\": " << stats.failed << ",\n";
  os << "  \"timed_out\": " << stats.timed_out << ",\n";
  os << "  \"retried\": " << stats.retried << ",\n";
  os << "  \"degraded\": " << stats.degraded << ",\n";
  os << "  \"quarantined\": " << stats.quarantined << ",\n";
  os << "  \"quarantined_seeds\": ";
  write_array(os, stats.quarantined_seeds);
  os << ",\n";
  os << "  \"failures\": [";
  for (std::size_t i = 0; i < stats.failures.size(); ++i) {
    const RunFailure& f = stats.failures[i];
    os << (i ? "," : "") << "\n    {\"seed\": " << f.seed << ", \"status\": \""
       << (f.status == RunStatus::TimedOut ? "timed_out" : "failed")
       << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (stats.failures.empty() ? "]" : "\n  ]") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace sent::pipeline
