// Randomized test campaigns.
//
// The paper's premise is that transient bugs need many randomized runs to
// trigger at all ("it is generally not cost-effective ... for a real
// system to explore a variety of system states to hit the trigger
// condition"), and that once triggered, Sentomist pinpoints the symptom.
// A campaign runs one scenario across many seeds and separates the two
// probabilities: how often the bug MANIFESTS (trigger rate, a property of
// the workload) and how often Sentomist surfaces it in the top-k WHEN it
// manifests (detection rate, the tool's quality).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pipeline/sentomist.hpp"

namespace sent::pipeline {

/// Runs one seeded scenario end to end and returns its analysis report.
using ScenarioRunner = std::function<AnalysisReport(std::uint64_t seed)>;

struct CampaignStats {
  std::size_t runs = 0;
  std::size_t triggered = 0;       ///< runs where the bug manifested
  std::size_t detected_top_k = 0;  ///< triggered runs with first rank <= k
  std::size_t k = 0;
  std::vector<std::size_t> first_ranks;  ///< one per triggered run

  double trigger_rate() const;
  /// Detection rate among triggered runs (1.0 when none triggered).
  double detection_rate() const;
  double mean_first_rank() const;  ///< 0 when none triggered
};

/// Run `runner` for seeds first_seed .. first_seed + runs - 1.
CampaignStats run_campaign(const ScenarioRunner& runner,
                           std::uint64_t first_seed, std::size_t runs,
                           std::size_t k);

/// Render a one-line summary.
std::string summarize(const CampaignStats& stats);

}  // namespace sent::pipeline
