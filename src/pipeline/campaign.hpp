// Randomized test campaigns.
//
// The paper's premise is that transient bugs need many randomized runs to
// trigger at all ("it is generally not cost-effective ... for a real
// system to explore a variety of system states to hit the trigger
// condition"), and that once triggered, Sentomist pinpoints the symptom.
// A campaign runs one scenario across many seeds and separates the two
// probabilities: how often the bug MANIFESTS (trigger rate, a property of
// the workload) and how often Sentomist surfaces it in the top-k WHEN it
// manifests (detection rate, the tool's quality).
//
// Seeded runs are fully isolated — each owns its EventQueue, Nodes and
// Rng — so a campaign is embarrassingly parallel. CampaignOptions::threads
// fans seeds out across a util::ThreadPool; per-seed outcomes are always
// aggregated in seed order, so the resulting CampaignStats (including
// first_ranks order) is bit-identical to a serial campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/harness.hpp"
#include "pipeline/sentomist.hpp"

namespace sent::pipeline {

/// Runs one seeded scenario end to end and returns its analysis report.
/// Under a multi-threaded campaign the runner is invoked concurrently from
/// pool workers, so it must not touch shared mutable state.
using ScenarioRunner = std::function<AnalysisReport(std::uint64_t seed)>;

/// Builds one pool worker's ScenarioRunner (DESIGN.md §15). The factory is
/// invoked lazily — once per worker, on the worker's own thread, at its
/// first non-resumed seed — so the returned runner may own amortized
/// MUTABLE state (a world arena, recycled trace buffers): no other worker
/// ever touches it. The runner must still be a pure function of the seed
/// observably, or campaign determinism claims break.
using ScenarioRunnerFactory =
    std::function<ScenarioRunner(std::size_t worker)>;

/// How one seeded run ended (DESIGN.md §9).
enum class RunStatus {
  Completed,  ///< runner returned a report (possibly degraded)
  Failed,     ///< runner threw — isolated to this seed, siblings unaffected
  TimedOut,   ///< runner hit the watchdog budget (sim::WatchdogTimeout)
};

/// Record of one non-completed run, for diagnostics. Seed order.
struct RunFailure {
  std::uint64_t seed = 0;
  RunStatus status = RunStatus::Failed;
  std::string message;

  bool operator==(const RunFailure&) const = default;
};

struct CampaignStats {
  std::size_t runs = 0;
  std::size_t triggered = 0;       ///< runs where the bug manifested
  std::size_t detected_top_k = 0;  ///< triggered runs with first rank <= k
  std::size_t k = 0;
  std::vector<std::size_t> first_ranks;  ///< one per triggered run, seed order

  // Fault tolerance (DESIGN.md §9): a throwing or livelocked run is
  // counted, not fatal. Trigger/detection rates stay over ALL runs, so
  // fault-heavy campaigns degrade honestly instead of shrinking their
  // denominator.
  std::size_t failed = 0;     ///< runs whose runner threw (after any retry)
  std::size_t timed_out = 0;  ///< runs that hit the watchdog budget
  std::size_t retried = 0;    ///< retry attempts made under the retry policy
  std::size_t degraded = 0;   ///< completed runs with a degraded report
  std::vector<RunFailure> failures;  ///< non-completed runs, seed order

  // Quarantine (DESIGN.md §13): under an active retry policy
  // (max_retries > 0), a seed that failed every attempt is quarantined —
  // recorded here (seed order) so 10k-run triage can pull the repeat
  // offenders without re-running anything. Deterministic, so part of ==.
  std::size_t quarantined = 0;
  std::vector<std::uint64_t> quarantined_seeds;  ///< seed order

  // Durability (DESIGN.md §13): how many of this campaign's runs were
  // reconstructed from the journal instead of executed. Depends on where
  // the previous campaign crashed, so — like wall time — it is EXCLUDED
  // from operator==: a resumed campaign must compare equal to an
  // uninterrupted one.
  std::size_t resumed_from_journal = 0;

  // Observability (DESIGN.md §11): wall-clock seconds per run, seed order
  // (retries included in their run's total). Wall time is measured, not
  // derived from the seed, so it is EXCLUDED from operator== — campaign
  // determinism claims ("serial == --jobs N") are about logical outcomes.
  std::vector<double> run_wall_seconds;

  std::size_t completed() const { return runs - failed - timed_out; }
  double trigger_rate() const;
  /// Detection rate among triggered runs. Convention: 0.0 when no run
  /// triggered — a campaign that never manifests the bug has demonstrated
  /// nothing about the detector, so it must not report a perfect score.
  double detection_rate() const;
  double mean_first_rank() const;  ///< 0 when none triggered

  /// Percentile of run_wall_seconds (p in [0, 100]); 0 when empty.
  double wall_seconds_percentile(double p) const;

  /// Logical-outcome equality; run_wall_seconds deliberately ignored.
  bool operator==(const CampaignStats& other) const;
};

struct CampaignOptions {
  std::uint64_t first_seed = 1;
  std::size_t runs = 20;
  std::size_t k = 5;          ///< detection cut-off rank
  std::size_t threads = 1;    ///< <= 1 runs seeds serially inline

  /// Retry policy (DESIGN.md §13): re-attempt a Failed/TimedOut run up to
  /// max_retries times, each attempt at the previous attempt's seed plus
  /// retry_seed_offset (an offset keeps retry randomness disjoint from
  /// every primary seed). A retry seed that would land inside the
  /// campaign's own window [first_seed, first_seed + runs) is hopped past
  /// it deterministically — silently re-running a sibling's seed would
  /// double-count its randomness. The final attempt's outcome stands; a
  /// seed that fails every attempt is quarantined.
  std::size_t max_retries = 0;
  std::uint64_t retry_seed_offset = 1'000'000'007;

  /// Durability (DESIGN.md §13). Non-empty journal_path journals every
  /// outcome; resume additionally skips seeds already journaled (the file
  /// must carry a matching {first_seed, runs, k} meta line). Resume with
  /// no/damaged journal file starts fresh. journal_commit_every batches
  /// atomic commits (1 = maximum durability; a crash can lose at most the
  /// outcomes appended since the last commit, which resume re-runs).
  std::string journal_path;
  bool resume = false;
  std::uint64_t journal_commit_every = 1;

  /// Harness self-chaos (DESIGN.md §13): injected failures aimed at the
  /// campaign machinery itself. Deterministic per (plan, seed/commit), so
  /// chaos campaigns stay bit-identical across --jobs and across resumes.
  fault::HarnessFaultPlan harness_faults;

  /// Seed batching (DESIGN.md §15): each pool task claims this many
  /// consecutive seeds from the shared atomic counter, amortizing dispatch
  /// and keeping a worker's arena cache-warm across a contiguous seed
  /// range. 0 = auto: runs / (8 * threads), clamped to [1, 64]. Purely a
  /// scheduling knob — aggregation stays seed-ordered and bit-identical
  /// for every batch size.
  std::size_t seed_batch = 0;

  /// Durable-mode append buffering (DESIGN.md §15): each worker buffers
  /// this many outcome records locally before pushing them to the shared
  /// JournalWriter in one locked batch. 1 (the default) appends through —
  /// every outcome is visible to the commit/kill machinery immediately,
  /// the exact legacy crash granularity. Larger values trade crash-window
  /// size for less lock traffic on the hot loop; a crash can additionally
  /// lose up to threads * (journal_flush_every - 1) unflushed outcomes,
  /// which resume simply re-runs.
  std::size_t journal_flush_every = 1;
};

/// Run `runner` for seeds first_seed .. first_seed + runs - 1, fanning the
/// seeds across `threads` pool workers. Output is identical for every
/// thread count.
CampaignStats run_campaign(const ScenarioRunner& runner,
                           const CampaignOptions& options);

/// Amortized-state variant: `factory` builds one runner per pool worker
/// (see ScenarioRunnerFactory). The shared-runner overload above is this
/// with a factory returning the same runner for every worker.
CampaignStats run_campaign(const ScenarioRunnerFactory& factory,
                           const CampaignOptions& options);

/// Serial convenience overload (threads = 1).
CampaignStats run_campaign(const ScenarioRunner& runner,
                           std::uint64_t first_seed, std::size_t runs,
                           std::size_t k);

/// Render a one-line summary.
std::string summarize(const CampaignStats& stats);

/// Render the deterministic sections of CampaignStats as JSON (stable key
/// order, messages escaped). Excludes run_wall_seconds and
/// resumed_from_journal by construction, so a resumed campaign's JSON is
/// byte-identical to an uninterrupted run's — the crash-resume smoke
/// cmp(1)s exactly this.
std::string stats_json(const CampaignStats& stats);

}  // namespace sent::pipeline
