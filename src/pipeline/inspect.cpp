#include "pipeline/inspect.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sent::pipeline {

namespace {

std::string item_text(const trace::LifecycleItem& item) {
  std::ostringstream os;
  switch (item.kind) {
    case trace::LifecycleKind::PostTask:
      os << "postTask(" << item.arg << ")";
      break;
    case trace::LifecycleKind::RunTask:
      os << "runTask(" << item.arg << ")";
      break;
    case trace::LifecycleKind::Int:
      os << "int(" << item.arg << ")";
      break;
    case trace::LifecycleKind::Reti:
      os << "reti";
      break;
  }
  return os.str();
}

}  // namespace

std::string render_interval_detail(const trace::NodeTrace& trace,
                                   const AnalysisReport& report,
                                   std::size_t rank_position,
                                   std::size_t max_timeline_rows,
                                   std::size_t max_deviations) {
  SENT_REQUIRE(rank_position < report.ranking.size());
  const RankedEntry& entry = report.ranking[rank_position];
  const Sample& sample = report.samples[entry.sample_index];
  const core::EventInterval& interval = sample.interval;

  std::ostringstream os;
  os << "rank " << rank_position + 1 << ": interval of int("
     << int(interval.irq) << ") instance #" << interval.seq_in_type + 1
     << " on node " << sample.node_id << ", score "
     << entry.score << "\n";
  os << "window: [" << interval.start_cycle << ", " << interval.end_cycle
     << "] cycles  (" << sim::millis_from_cycles(interval.duration())
     << " ms, " << interval.task_count << " task(s)"
     << (interval.truncated ? ", truncated" : "") << ")";
  if (sample.has_bug) {
    os << "  <-- ground truth:";
    for (const auto& kind : sample.bug_kinds) os << ' ' << kind;
  }
  os << "\n\nlifecycle timeline (indent = handler nesting):\n";

  // All items whose timestamp falls inside the window — including items of
  // interleaved foreign instances, which is exactly what the inspector
  // needs to see.
  std::size_t depth = 0;
  std::size_t rows = 0;
  bool elided = false;
  for (const auto& item : trace.lifecycle) {
    if (item.cycle < interval.start_cycle) {
      // Track nesting so the window starts at the right depth.
      if (item.kind == trace::LifecycleKind::Int) ++depth;
      if (item.kind == trace::LifecycleKind::Reti && depth > 0) --depth;
      continue;
    }
    if (item.cycle > interval.end_cycle) break;
    if (item.kind == trace::LifecycleKind::Reti && depth > 0) --depth;
    if (rows < max_timeline_rows) {
      double ms = sim::millis_from_cycles(item.cycle - interval.start_cycle);
      char when[32];
      std::snprintf(when, sizeof(when), "%+9.3f ms  ", ms);
      os << when;
      for (std::size_t d = 0; d < depth; ++d) os << "  ";
      os << item_text(item) << '\n';
    } else {
      elided = true;
    }
    ++rows;
    if (item.kind == trace::LifecycleKind::Int) ++depth;
  }
  if (elided)
    os << "          ... (" << rows - max_timeline_rows
       << " more items elided)\n";

  if (!report.features.empty() && max_deviations > 0) {
    // Deviation of this interval's counter from the population mean, in
    // population standard deviations.
    const std::size_t n = report.features.size();
    std::span<const double> row = report.features.row(entry.sample_index);
    std::size_t d = report.features.dim();
    std::vector<double> mean(d, 0.0), sd(d, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      std::span<const double> fr = report.features.row(r);
      for (std::size_t j = 0; j < d; ++j) mean[j] += fr[j];
    }
    for (double& m : mean) m /= double(n);
    for (std::size_t r = 0; r < n; ++r) {
      std::span<const double> fr = report.features.row(r);
      for (std::size_t j = 0; j < d; ++j)
        sd[j] += (fr[j] - mean[j]) * (fr[j] - mean[j]);
    }
    for (double& s : sd) s = std::sqrt(s / double(n));

    std::vector<std::size_t> order(d);
    for (std::size_t j = 0; j < d; ++j) order[j] = j;
    auto z = [&](std::size_t j) {
      return std::abs(row[j] - mean[j]) / std::max(sd[j], 0.1);
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return z(a) > z(b); });

    os << "\nmost deviant instruction counts (this interval vs population "
          "mean):\n";
    for (std::size_t k = 0; k < std::min(max_deviations, d); ++k) {
      std::size_t j = order[k];
      if (z(j) < 1.0) break;
      char line[160];
      std::snprintf(line, sizeof(line), "  %-40s %6.1f   (mean %.2f)\n",
                    report.features.names[j].c_str(), row[j], mean[j]);
      os << line;
    }
  }
  return os.str();
}

}  // namespace sent::pipeline
