// Manual-inspection rendering.
//
// Sentomist's output is a priority order for HUMAN inspection; this module
// renders what the human actually looks at: the suspicious interval's
// lifecycle timeline (with handler-nesting indentation, so interleaved
// instances are visually obvious) and the instructions whose counts
// deviate most from the population average. The fig5 benches and the
// analyze_traces CLI print this for the top-ranked intervals.
#pragma once

#include <string>

#include "pipeline/sentomist.hpp"

namespace sent::pipeline {

/// Render the interval at `rank_position` (0 = most suspicious) of the
/// ranking. `trace` must be the trace the sample came from (match
/// Sample::node_id / run when pooling several traces). Including the
/// per-instruction deviation section requires the report to have been
/// produced with keep_features = true; it is skipped otherwise.
std::string render_interval_detail(const trace::NodeTrace& trace,
                                   const AnalysisReport& report,
                                   std::size_t rank_position,
                                   std::size_t max_timeline_rows = 30,
                                   std::size_t max_deviations = 6);

}  // namespace sent::pipeline
