#include "pipeline/journal.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace sent::pipeline {

namespace {

constexpr const char* kMagic = "sentomist-journal v1";

// ---- field encoding --------------------------------------------------------

/// Backslash-escape so any message stays one tab-separated field on one
/// line. The four escapes cover every byte the format reserves.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

bool unescape(const std::string& text, std::string& out) {
  out.clear();
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (i + 1 >= text.size()) return false;
    switch (text[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: return false;
    }
  }
  return true;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// Strict full-width numeric parse; stoull-style prefix parses would let
/// a corrupted field like "12garbage" slip through.
template <typename T>
bool parse_number(const std::string& field, T& out) {
  if (field.empty()) return false;
  const char* first = field.data();
  const char* last = field.data() + field.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_hex64(const std::string& field, std::uint64_t& out) {
  if (field.size() != 16) return false;
  const char* first = field.data();
  const char* last = field.data() + field.size();
  auto [ptr, ec] = std::from_chars(first, last, out, 16);
  return ec == std::errc() && ptr == last;
}

bool parse_bool(const std::string& field, bool& out) {
  if (field == "0") { out = false; return true; }
  if (field == "1") { out = true; return true; }
  return false;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

/// Validate the trailing checksum field: it must be well-formed hex and
/// match FNV-1a over everything before its separating tab.
bool checksum_ok(const std::string& line) {
  const std::size_t last_tab = line.rfind('\t');
  if (last_tab == std::string::npos) return false;
  std::uint64_t stored = 0;
  if (!parse_hex64(line.substr(last_tab + 1), stored)) return false;
  return stored == util::fnv1a64(std::string_view(line).substr(0, last_tab));
}

std::string with_checksum(const std::string& body) {
  return body + "\t" + hex64(util::fnv1a64(body));
}

const char* status_token(RunStatus status) {
  switch (status) {
    case RunStatus::Completed: return "ok";
    case RunStatus::Failed: return "fail";
    case RunStatus::TimedOut: return "timeout";
  }
  return "fail";  // unreachable
}

bool parse_status(const std::string& token, RunStatus& out) {
  if (token == "ok") { out = RunStatus::Completed; return true; }
  if (token == "fail") { out = RunStatus::Failed; return true; }
  if (token == "timeout") { out = RunStatus::TimedOut; return true; }
  return false;
}

bool parse_meta_line(const std::string& line, JournalMeta& meta) {
  if (!checksum_ok(line)) return false;
  std::vector<std::string> f = split_tabs(line);
  if (f.size() != 5 || f[0] != "meta") return false;
  return parse_number(f[1], meta.first_seed) &&
         parse_number(f[2], meta.runs) && parse_number(f[3], meta.k);
}

bool parse_record_line(const std::string& line, JournalRecord& rec) {
  if (!checksum_ok(line)) return false;
  std::vector<std::string> f = split_tabs(line);
  if (f.size() != 10 || f[0] != "run") return false;
  return parse_number(f[1], rec.seed) && parse_status(f[2], rec.status) &&
         parse_bool(f[3], rec.triggered) &&
         parse_number(f[4], rec.first_rank) &&
         parse_bool(f[5], rec.degraded) &&
         parse_number(f[6], rec.attempts) && rec.attempts >= 1 &&
         parse_bool(f[7], rec.quarantined) && unescape(f[8], rec.message);
}

}  // namespace

std::string format_journal_meta(const JournalMeta& meta) {
  std::ostringstream body;
  body << "meta\t" << meta.first_seed << "\t" << meta.runs << "\t" << meta.k;
  return with_checksum(body.str());
}

std::string format_journal_record(const JournalRecord& record) {
  std::ostringstream body;
  body << "run\t" << record.seed << "\t" << status_token(record.status)
       << "\t" << (record.triggered ? 1 : 0) << "\t" << record.first_rank
       << "\t" << (record.degraded ? 1 : 0) << "\t" << record.attempts
       << "\t" << (record.quarantined ? 1 : 0) << "\t"
       << escape(record.message);
  return with_checksum(body.str());
}

JournalRecovery recover_journal(const std::string& path) {
  JournalRecovery result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // no file (or unreadable): fresh start
  result.file_existed = true;

  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    result.truncated = true;
    if (result.error.empty())
      result.error = "line " + std::to_string(line_no) + ": " + what;
  };

  // Header: magic then checksummed meta. A journal whose identity cannot
  // be trusted salvages nothing — resuming "probably this campaign" is
  // worse than re-running it.
  ++line_no;
  if (!std::getline(in, line) || line != kMagic) {
    fail("bad magic (expected \"" + std::string(kMagic) + "\")");
    return result;
  }
  ++line_no;
  if (!std::getline(in, line) || !parse_meta_line(line, result.meta)) {
    fail("bad or torn meta line");
    return result;
  }
  result.header_valid = true;

  // Records: salvage the valid prefix, truncate at the first torn or
  // corrupt line. Everything after it is unreachable by construction —
  // an append-only writer never produces a valid record after a torn one,
  // so a "valid" suffix is evidence of splicing, not of a real outcome.
  while (std::getline(in, line)) {
    ++line_no;
    JournalRecord rec;
    if (!parse_record_line(line, rec)) {
      fail("torn or corrupt record");
      return result;
    }
    result.records.push_back(std::move(rec));
  }
  // A file that ends without a final newline had its last commit torn
  // mid-line... unless the last line still checksummed, in which case only
  // the newline is missing and the record above already survived.
  return result;
}

JournalWriter::JournalWriter(std::string path, JournalMeta meta,
                             std::vector<JournalRecord> recovered,
                             std::uint64_t commit_every)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      meta_(meta),
      commit_every_(commit_every == 0 ? 1 : commit_every),
      records_(std::move(recovered)) {
  SENT_REQUIRE(!path_.empty());
  // Establish the file immediately: creates a fresh journal, or atomically
  // rewrites a recovered one without its corrupt tail.
  commit();
}

void JournalWriter::set_commit_hook(CommitHook hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  hook_ = std::move(hook);
}

void JournalWriter::append(const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(record);
  ++appended_;
  if (appended_ % commit_every_ == 0) commit_locked();
}

void JournalWriter::append_batch(std::vector<JournalRecord>& records) {
  if (records.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (JournalRecord& record : records) {
    records_.push_back(std::move(record));
    ++appended_;
    if (appended_ % commit_every_ == 0) commit_locked();
  }
  records.clear();
}

bool JournalWriter::commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  return commit_locked();
}

std::string JournalWriter::serialize_locked() const {
  std::ostringstream out;
  out << kMagic << "\n" << format_journal_meta(meta_) << "\n";
  for (const JournalRecord& rec : records_) {
    out << format_journal_record(rec) << "\n";
  }
  return out.str();
}

bool JournalWriter::commit_locked() {
  const std::uint64_t commit_index = commit_attempts_++;
  std::string bytes = serialize_locked();
  if (hook_) {
    try {
      hook_(commit_index, bytes);
    } catch (const std::exception&) {
      ++io_errors_;  // injected IO error: durability degrades, nothing else
      return false;
    }
  }
  {
    std::ofstream out(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      ++io_errors_;
      return false;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      ++io_errors_;
      return false;
    }
  }
  // The atomic step: after rename the journal is either entirely the old
  // contents or entirely the new ones. (A short-write fault above still
  // renames — that models a tear the recovery scan must catch, which is
  // the point of injecting it.)
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    ++io_errors_;
    return false;
  }
  ++commits_;
  return true;
}

std::uint64_t JournalWriter::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::uint64_t JournalWriter::commits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return commits_;
}

std::uint64_t JournalWriter::io_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_errors_;
}

}  // namespace sent::pipeline
