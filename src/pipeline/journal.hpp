// Durable campaign run journal (DESIGN.md §13).
//
// A 10,000-seed campaign that holds every outcome in memory loses the
// whole campaign to one OOM-kill at seed 9,999. The journal makes a
// campaign crash-safe and independently auditable: one record per seeded
// outcome, appended as the run finishes, so a resumed campaign re-runs
// only the seeds that are missing and reconstructs CampaignStats
// bit-identical to an uninterrupted run.
//
// Format (versioned, line-oriented, greppable like the trace format):
//
//   sentomist-journal v1
//   meta\t<first_seed>\t<runs>\t<k>\t<fnv64 hex>
//   run\t<seed>\t<status>\t<triggered>\t<rank>\t<degraded>\t<attempts>\t
//       <quarantined>\t<message>\t<fnv64 hex>
//
// Every meta/run line carries an FNV-1a checksum of the bytes before its
// final tab; messages are backslash-escaped so the format stays strictly
// one line per record. Records may appear in any order (a --jobs N
// campaign journals in completion order) and a later record for the same
// seed supersedes an earlier one.
//
// Durability model:
//   * commits are atomic: the full contents are written to <path>.tmp and
//     renamed over <path>, so a crash leaves either the old or the new
//     journal, never an interleaving;
//   * recovery never aborts: recover_journal() validates checksums line
//     by line and truncates at the first torn/corrupt record, salvaging
//     the valid prefix (a corrupt record is dropped, never resurrected);
//   * IO errors degrade durability, not the campaign: a failed commit is
//     counted and retried on the next commit with the records intact.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/campaign.hpp"

namespace sent::pipeline {

/// Current journal format version, written in the header line.
inline constexpr int kJournalFormatVersion = 1;

/// Campaign identity a journal belongs to. Resume refuses a journal whose
/// meta does not match the resumed campaign exactly — silently mixing two
/// campaigns' outcomes is precisely the kind of unauditable result the
/// journal exists to prevent.
struct JournalMeta {
  std::uint64_t first_seed = 0;
  std::uint64_t runs = 0;
  std::uint64_t k = 0;

  bool operator==(const JournalMeta&) const = default;
};

/// One seeded outcome, exactly what seed-order aggregation needs.
struct JournalRecord {
  std::uint64_t seed = 0;
  RunStatus status = RunStatus::Completed;
  bool triggered = false;
  std::uint64_t first_rank = 0;  ///< meaningful when triggered
  bool degraded = false;
  std::uint32_t attempts = 1;  ///< total attempts (1 = no retry)
  bool quarantined = false;    ///< failed every attempt under retry policy
  std::string message;         ///< Failed / TimedOut only

  bool operator==(const JournalRecord&) const = default;
};

/// Result of a recovery scan over a (possibly damaged) journal file.
struct JournalRecovery {
  bool file_existed = false;
  bool header_valid = false;  ///< magic + meta line both intact
  JournalMeta meta;
  std::vector<JournalRecord> records;  ///< valid prefix, file order
  bool truncated = false;  ///< a torn/corrupt tail was dropped
  std::string error;       ///< first problem ("line N: ..."); empty if none
};

/// Scan `path`, validating checksums line by line; salvage the valid
/// prefix and stop at the first torn/corrupt line. Never throws on
/// damaged contents — arbitrary bytes yield an empty recovery with an
/// error, not an exception. (Only filesystem-level surprises like a
/// directory at `path` surface as errors in the result too.)
JournalRecovery recover_journal(const std::string& path);

/// Serialization helpers, exposed for tests and external auditing tools.
std::string format_journal_meta(const JournalMeta& meta);
std::string format_journal_record(const JournalRecord& record);

/// Append-only journal writer with atomic commits. Thread-safe: campaign
/// pool workers append concurrently; records are kept in memory (they are
/// ~100 bytes each) and every commit atomically rewrites the file via
/// temp-file + rename.
class JournalWriter {
 public:
  /// Chaos/test hook, called with the serialized bytes just before each
  /// commit writes them. May shorten `bytes` (a torn write) or throw (an
  /// IO error); both are absorbed by the durability model. The index is
  /// the 0-based commit count.
  using CommitHook = std::function<void(std::uint64_t commit_index,
                                        std::string& bytes)>;

  /// Start (or resume) a journal at `path` for the campaign described by
  /// `meta`. `recovered` seeds the record set (pass the recovery's
  /// records when resuming, empty otherwise); the file is committed
  /// immediately, which atomically drops any corrupt tail found by
  /// recovery. commit_every >= 1: a commit lands after every N appends
  /// (and on the final explicit commit()).
  JournalWriter(std::string path, JournalMeta meta,
                std::vector<JournalRecord> recovered,
                std::uint64_t commit_every = 1);

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void set_commit_hook(CommitHook hook);

  /// Append one record; commits per the commit_every policy. Never
  /// throws on IO problems (see io_errors()).
  void append(const JournalRecord& record);

  /// Append many records under a single lock acquisition — the durable
  /// campaign's per-worker buffering path (DESIGN.md §15). Equivalent to
  /// calling append() per record (a commit lands every time the running
  /// append count crosses a multiple of commit_every), minus the per-record
  /// lock traffic. `records` is drained.
  void append_batch(std::vector<JournalRecord>& records);

  /// Atomically write the full contents (temp-file + rename). Returns
  /// false — and keeps every record buffered for the next attempt — on
  /// an IO error.
  bool commit();

  std::uint64_t appended() const;   ///< records appended this session
  std::uint64_t commits() const;    ///< successful commits
  std::uint64_t io_errors() const;  ///< failed commit attempts
  const std::string& path() const { return path_; }

 private:
  bool commit_locked();
  std::string serialize_locked() const;

  const std::string path_;
  const std::string tmp_path_;
  const JournalMeta meta_;
  const std::uint64_t commit_every_;

  mutable std::mutex mutex_;
  std::vector<JournalRecord> records_;
  CommitHook hook_;
  std::uint64_t appended_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t commit_attempts_ = 0;
  std::uint64_t io_errors_ = 0;
};

}  // namespace sent::pipeline
