#include "pipeline/sentomist.hpp"

#include <algorithm>
#include <sstream>

#include "ml/detectors.hpp"
#include "ml/error.hpp"
#include "ml/ocsvm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

namespace sent::pipeline {

namespace {

// Back-end introspection (DESIGN.md §11): how many analyses ran, how much
// interval material they saw, and how often the detector had to degrade.
struct Metrics {
  obs::Counter analyses = obs::Registry::global().counter("pipeline.analyses");
  obs::Counter traces = obs::Registry::global().counter("pipeline.traces");
  obs::Counter intervals =
      obs::Registry::global().counter("pipeline.intervals");
  obs::Counter truncated_dropped =
      obs::Registry::global().counter("pipeline.truncated_dropped");
  obs::Counter knn_fallbacks =
      obs::Registry::global().counter("pipeline.knn_fallbacks");
  obs::Histogram samples_per_analysis =
      obs::Registry::global().histogram("pipeline.samples_per_analysis");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

const char* to_string(FeatureKind kind) {
  switch (kind) {
    case FeatureKind::InstructionCounter: return "instruction-counter";
    case FeatureKind::Coarse: return "coarse";
    case FeatureKind::CodeObject: return "code-object";
  }
  return "?";
}

std::string Sample::label(bool with_run, bool with_node) const {
  std::ostringstream os;
  std::size_t seq1 = interval.seq_in_type + 1;
  if (with_run && with_node) {
    os << "[" << run + 1 << ", " << node_id << ", " << seq1 << "]";
  } else if (with_run) {
    os << "[" << run + 1 << ", " << seq1 << "]";
  } else if (with_node) {
    os << "[" << node_id << ", " << seq1 << "]";
  } else {
    os << seq1;
  }
  return os.str();
}

std::shared_ptr<core::OutlierDetector> default_detector() {
  return std::make_shared<ml::OneClassSvm>();
}

std::shared_ptr<core::OutlierDetector> default_detector(
    std::size_t threads) {
  ml::OcsvmParams params;
  params.threads = threads;
  return std::make_shared<ml::OneClassSvm>(params);
}

std::shared_ptr<core::OutlierDetector> default_detector(
    util::ThreadPool& pool) {
  ml::OcsvmParams params;
  params.pool = &pool;
  return std::make_shared<ml::OneClassSvm>(params);
}

namespace {

core::FeatureMatrix featurize(const trace::NodeTrace& trace,
                              std::span<const core::EventInterval> intervals,
                              FeatureKind kind) {
  switch (kind) {
    case FeatureKind::InstructionCounter:
      return core::instruction_counters(trace, intervals);
    case FeatureKind::Coarse:
      return core::coarse_features(trace, intervals);
    case FeatureKind::CodeObject:
      return core::code_object_counters(trace, intervals);
  }
  SENT_ASSERT_MSG(false, "unknown feature kind");
  return {};
}

bool marker_in_window(const trace::BugMarker& bug,
                      const core::EventInterval& interval) {
  return bug.cycle >= interval.start_cycle &&
         bug.cycle <= interval.end_cycle;
}

}  // namespace

AnalysisReport analyze(const std::vector<TaggedTrace>& traces,
                       trace::IrqLine line, const AnalysisOptions& options) {
  SENT_REQUIRE_MSG(!traces.empty(), "no traces to analyze");
  obs::Span analyze_span("pipeline.analyze", "pipeline", line);
  Metrics::get().analyses.inc();

  AnalysisReport report;
  core::FeatureMatrix matrix;

  for (const auto& tagged : traces) {
    SENT_REQUIRE(tagged.trace != nullptr);
    Metrics::get().traces.inc();
    const trace::NodeTrace& node_trace = *tagged.trace;
    std::vector<core::EventInterval> intervals;
    {
      obs::Span anatomize_span("pipeline.anatomize", "pipeline");
      core::Anatomizer anatomizer(node_trace);
      intervals = anatomizer.intervals_for(line);
    }
    if (options.drop_truncated) {
      auto is_truncated = [](const core::EventInterval& i) {
        return i.truncated;
      };
      Metrics::get().truncated_dropped.inc(static_cast<std::uint64_t>(
          std::count_if(intervals.begin(), intervals.end(), is_truncated)));
      intervals.erase(std::remove_if(intervals.begin(), intervals.end(),
                                     is_truncated),
                      intervals.end());
    }
    Metrics::get().intervals.inc(intervals.size());
    if (intervals.empty()) continue;

    core::FeatureMatrix part;
    {
      obs::Span featurize_span("pipeline.featurize", "pipeline");
      part = featurize(node_trace, intervals, options.features);
    }
    core::append_rows(matrix, part);

    for (const auto& interval : intervals) {
      Sample s;
      s.node_id = node_trace.node_id;
      s.run = tagged.run;
      s.interval = interval;
      for (const auto& bug : node_trace.bugs) {
        if (marker_in_window(bug, interval)) {
          s.has_bug = true;
          s.bug_kinds.push_back(bug.kind);
        }
      }
      report.samples.push_back(std::move(s));
    }
  }

  SENT_REQUIRE_MSG(!report.samples.empty(),
                   "no event-handling intervals for line "
                       << int(line) << " in the given traces");

  Metrics::get().samples_per_analysis.record(report.samples.size());
  score_and_rank(report, std::move(matrix), options);
  return report;
}

void score_and_rank(AnalysisReport& report, core::FeatureMatrix matrix,
                    const AnalysisOptions& options) {
  SENT_REQUIRE_MSG(matrix.size() == report.samples.size(),
                   "feature rows and samples out of step");
  std::shared_ptr<core::OutlierDetector> detector =
      options.detector   ? options.detector
      : options.pool     ? default_detector(*options.pool)
                         : default_detector();
  report.detector_name = detector->name();
  report.feature_dim = matrix.dim();

  try {
    obs::Span score_span("pipeline.score", "pipeline");
    report.scores = detector->score(matrix.values);
  } catch (const ml::TrainingError& e) {
    // Degrade instead of dying: the k-NN distance detector has no training
    // phase and handles any finite matrix, so a run whose features broke
    // the SVM still yields a (coarser) ranking. The report says so.
    Metrics::get().knn_fallbacks.inc();
    ml::KnnDetector fallback;
    report.scores = fallback.score(matrix.values);
    report.detector_name = fallback.name() + " (fallback)";
    report.degraded = true;
    report.degradation = e.what();
  }
  SENT_ASSERT(report.scores.size() == report.samples.size());
  core::normalize_scores(report.scores);

  report.ranking.clear();
  auto ranked = core::rank_ascending(report.scores);
  report.ranking.reserve(ranked.size());
  for (const auto& r : ranked)
    report.ranking.push_back(RankedEntry{r.index, r.score});
  if (options.keep_features) report.features = std::move(matrix);
}

core::Localization localize_top_k(const AnalysisReport& report,
                                  std::size_t k) {
  SENT_REQUIRE_MSG(!report.features.empty(),
                   "localize_top_k needs keep_features = true");
  return core::localize(report.features,
                        core::lowest_k(report.scores, k));
}

std::string format_localization(const core::Localization& localization,
                                std::size_t max_instructions,
                                std::size_t max_objects) {
  std::ostringstream os;
  {
    util::Table table({"suspect code object", "suspicion"});
    for (std::size_t i = 0;
         i < std::min(max_objects, localization.code_objects.size()); ++i) {
      const auto& o = localization.code_objects[i];
      table.add_row({o.code_object, util::cell(o.score, 2)});
    }
    os << table.render() << '\n';
  }
  {
    util::Table table({"suspect instruction", "suspicion",
                       "mean (suspicious)", "mean (normal)"});
    for (std::size_t i = 0;
         i < std::min(max_instructions, localization.instructions.size());
         ++i) {
      const auto& instr = localization.instructions[i];
      table.add_row({instr.name, util::cell(instr.score, 2),
                     util::cell(instr.suspicious_mean, 2),
                     util::cell(instr.normal_mean, 2)});
    }
    os << table.render();
  }
  return os.str();
}

std::vector<std::size_t> AnalysisReport::bug_ranks() const {
  std::vector<std::size_t> ranks;
  for (std::size_t pos = 0; pos < ranking.size(); ++pos) {
    if (samples[ranking[pos].sample_index].has_bug)
      ranks.push_back(pos + 1);
  }
  return ranks;
}

std::size_t AnalysisReport::buggy_count() const {
  std::size_t n = 0;
  for (const auto& s : samples) n += s.has_bug;
  return n;
}

double AnalysisReport::precision_at(std::size_t k) const {
  SENT_REQUIRE(k >= 1);
  k = std::min(k, ranking.size());
  std::size_t hits = 0;
  for (std::size_t pos = 0; pos < k; ++pos)
    hits += samples[ranking[pos].sample_index].has_bug;
  return static_cast<double>(hits) / static_cast<double>(k);
}

std::size_t AnalysisReport::inspection_depth_for_all() const {
  auto ranks = bug_ranks();
  return ranks.empty() ? 0 : ranks.back();
}

std::size_t AnalysisReport::first_bug_rank() const {
  auto ranks = bug_ranks();
  return ranks.empty() ? 0 : ranks.front();
}

std::string format_ranking_table(const AnalysisReport& report, bool with_run,
                                 bool with_node, std::size_t top,
                                 std::size_t bottom) {
  util::Table table({"Instance Index", "Score", "Bug (ground truth)"});
  auto add = [&](std::size_t pos) {
    const RankedEntry& entry = report.ranking[pos];
    const Sample& s = report.samples[entry.sample_index];
    std::string truth;
    if (s.has_bug) {
      truth = s.bug_kinds.front();
      if (s.bug_kinds.size() > 1)
        truth += " (x" + std::to_string(s.bug_kinds.size()) + ")";
    }
    table.add_row({s.label(with_run, with_node), util::cell(entry.score, 4),
                   truth});
  };
  std::size_t n = report.ranking.size();
  if (n <= top + bottom) {
    for (std::size_t pos = 0; pos < n; ++pos) add(pos);
    return table.render();
  }
  for (std::size_t pos = 0; pos < top; ++pos) add(pos);
  table.add_row({"...", "...", ""});
  for (std::size_t pos = n - bottom; pos < n; ++pos) add(pos);
  return table.render();
}

}  // namespace sent::pipeline
