// The assembled Sentomist tool (paper Figure 3).
//
// Input: one or more node traces (possibly from several testing runs
// and/or several nodes running the same program image) plus the event type
// (interrupt line) under test. The pipeline anatomizes each trace into
// event-handling intervals, features them, scores them with a plug-in
// outlier detector, normalizes scores (largest positive = 1, footnote 5)
// and produces the ascending ranking that the paper's Figure 5 prints —
// the priority order for manual inspection.
//
// Ground-truth bug markers recorded by the instrumented applications are
// matched against interval windows so benches can grade the ranking; they
// are never visible to the detector.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/anatomizer.hpp"
#include "core/detector.hpp"
#include "core/features.hpp"
#include "core/localizer.hpp"
#include "trace/recorder.hpp"

namespace sent::util {
class ThreadPool;
}

namespace sent::pipeline {

/// One interval-sample with provenance.
struct Sample {
  std::uint32_t node_id = 0;  ///< node the trace came from
  std::size_t run = 0;        ///< testing-run index (case I sweeps runs)
  core::EventInterval interval;
  bool has_bug = false;       ///< ground truth: a marker in the window
  std::vector<std::string> bug_kinds;

  /// Paper-style index: "[run+1, seq+1]", "[node, seq+1]" or plain "seq+1"
  /// depending on which fields the case study uses.
  std::string label(bool with_run, bool with_node) const;
};

struct TaggedTrace {
  const trace::NodeTrace* trace = nullptr;
  std::size_t run = 0;
};

enum class FeatureKind { InstructionCounter, Coarse, CodeObject };

const char* to_string(FeatureKind kind);

struct AnalysisOptions {
  FeatureKind features = FeatureKind::InstructionCounter;
  /// Detector; nullptr selects the default one-class SVM (RBF, nu=0.05).
  std::shared_ptr<core::OutlierDetector> detector;
  /// Drop intervals cut short by the end of the recording.
  bool drop_truncated = false;
  /// Keep the feature matrix on the report (needed for localize_top_k).
  bool keep_features = false;
  /// Borrowed pool for the default detector's kernel build and batch
  /// scoring (ignored when `detector` is set). nullptr runs inline.
  util::ThreadPool* pool = nullptr;
};

struct RankedEntry {
  std::size_t sample_index;  ///< into AnalysisReport::samples
  double score;              ///< normalized score
};

struct AnalysisReport {
  std::vector<Sample> samples;        ///< in matrix-row order
  std::vector<double> scores;         ///< normalized, per sample
  std::vector<RankedEntry> ranking;   ///< ascending score
  std::string detector_name;
  std::size_t feature_dim = 0;
  /// Present only when AnalysisOptions::keep_features was set.
  core::FeatureMatrix features;
  /// True when the configured detector failed to train (ml::TrainingError)
  /// and the pipeline fell back to the k-NN distance detector instead of
  /// aborting; `degradation` holds the original error (DESIGN.md §9).
  bool degraded = false;
  std::string degradation;

  /// 1-based ranks of ground-truth buggy samples, ascending.
  std::vector<std::size_t> bug_ranks() const;
  std::size_t buggy_count() const;
  /// Fraction of the top-k that is truly buggy.
  double precision_at(std::size_t k) const;
  /// Smallest k such that the top-k contains ALL buggy samples (0 if none).
  std::size_t inspection_depth_for_all() const;
  /// Rank of the first buggy sample (0 if none).
  std::size_t first_bug_rank() const;
};

/// Run the Sentomist back end over the traces' intervals of event type
/// `line`. All traces must share the same program image (identical
/// instruction tables).
AnalysisReport analyze(const std::vector<TaggedTrace>& traces,
                       trace::IrqLine line,
                       const AnalysisOptions& options = {});

/// The scoring tail of analyze(), shared with the streaming fleet-ingest
/// service (src/stream) so a streamed analysis ranks bit-identically to the
/// batch pipeline: select the detector (options.detector, else the default
/// OCSVM on options.pool), score `matrix`, fall back to k-NN on
/// ml::TrainingError, normalize, and fill scores / ranking / detector_name
/// / feature_dim (and `features` when keep_features) on `report`. The
/// report's samples must already be populated in matrix-row order.
void score_and_rank(AnalysisReport& report, core::FeatureMatrix matrix,
                    const AnalysisOptions& options = {});

/// Render the paper's Figure-5 style table: ascending scores with instance
/// indices. `top` and `bottom` bound how many head/tail rows to include
/// (the paper prints the head, an ellipsis, and the tail).
std::string format_ranking_table(const AnalysisReport& report,
                                 bool with_run, bool with_node,
                                 std::size_t top = 7, std::size_t bottom = 2);

/// Construct the default detector (one-class SVM, RBF, nu=0.05).
std::shared_ptr<core::OutlierDetector> default_detector();

/// Default detector with its kernel-matrix build spread over `threads`
/// pool workers (scores are identical for any thread count). The pool is
/// constructed once inside the detector, not per call.
std::shared_ptr<core::OutlierDetector> default_detector(
    std::size_t threads);

/// Default detector sharing a caller-owned pool (no pool construction).
std::shared_ptr<core::OutlierDetector> default_detector(
    util::ThreadPool& pool);

/// Bug localization (paper §VII): contrast the k most suspicious intervals
/// against the rest and rank static instructions / code objects by how
/// discriminative their execution counts are. The report must have been
/// produced with keep_features = true.
core::Localization localize_top_k(const AnalysisReport& report,
                                  std::size_t k);

/// Render a localization as a table ("suspect code" listing).
std::string format_localization(const core::Localization& localization,
                                std::size_t max_instructions = 8,
                                std::size_t max_objects = 5);

}  // namespace sent::pipeline
