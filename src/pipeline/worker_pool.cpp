#include "pipeline/worker_pool.hpp"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "apps/scenarios.hpp"
#include "apps/world_arena.hpp"
#include "fault/injector.hpp"
#include "os/irq.hpp"
#include "trace/serialize.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sent::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Chaos-ladder trace I/O leg (same as bench/ext_chaos): save, perturb
/// with the run-seeded substream, salvage-load. A zero plan perturbs
/// nothing and the round trip is the identity.
trace::NodeTrace round_trip(const trace::NodeTrace& t,
                            const fault::FaultPlan& faults, util::Rng rng) {
  std::ostringstream saved;
  trace::save_trace(t, saved);
  std::string text =
      fault::FaultInjector::perturb_trace_text(saved.str(), faults, rng);
  std::istringstream in(text);
  return trace::load_trace_lenient(in).trace;
}

/// Shared per-runner state: the arena (when pooled) plus where to stream
/// phase totals. Lives in the runner closure via shared_ptr because
/// ScenarioRunner is a copyable std::function.
struct RunnerState {
  std::unique_ptr<apps::WorldArena> arena;  ///< null = fresh construction
  PhaseShards* phases = nullptr;
  std::size_t worker = 0;

  apps::WorldArena* arena_ptr() { return arena.get(); }

  void account(double setup, double simulate, double analyze) {
    if (!phases) return;
    PhaseTotals& t = phases->shard(worker);
    t.setup_seconds += setup;
    t.simulate_seconds += simulate;
    t.analyze_seconds += analyze;
    ++t.runs;
  }

  void recycle(trace::NodeTrace&& t) {
    if (arena) arena->recycle(std::move(t));
  }
};

std::shared_ptr<RunnerState> make_state(const CaseRunnerConfig& config,
                                        PhaseShards* phases,
                                        std::size_t worker) {
  auto state = std::make_shared<RunnerState>();
  if (config.pooled) state->arena = std::make_unique<apps::WorldArena>();
  state->phases = phases;
  state->worker = worker;
  return state;
}

fault::FaultPlan plan_for(const CaseRunnerConfig& config) {
  return config.intensity > 0.0
             ? fault::FaultPlan::at_intensity(config.intensity)
             : fault::FaultPlan{};
}

ScenarioRunner make_case1_runner(const CaseRunnerConfig& config,
                                 PhaseShards* phases, std::size_t worker) {
  auto state = make_state(config, phases, worker);
  return [config, state](std::uint64_t seed) {
    apps::Case1Config c;
    c.seed = seed;
    c.sample_periods_ms = {20};  // the vulnerable rate
    c.run_seconds = 10.0;
    c.faults = plan_for(config);
    c.event_budget = config.event_budget;
    apps::Case1Result r = apps::run_case1(c, state->arena_ptr());
    const Clock::time_point t0 = Clock::now();
    AnalysisReport report;
    if (config.trace_round_trip) {
      trace::NodeTrace t = round_trip(r.runs[0].sensor_trace, c.faults,
                                      util::Rng(seed).substream("trace-faults"));
      report = analyze({{&t, 0}}, os::irq::kAdc);
      state->recycle(std::move(t));
    } else {
      report = analyze({{&r.runs[0].sensor_trace, 0}}, os::irq::kAdc);
    }
    for (apps::Case1Run& run : r.runs)
      state->recycle(std::move(run.sensor_trace));
    state->account(r.setup_seconds, r.simulate_seconds, seconds_since(t0));
    return report;
  };
}

ScenarioRunner make_case2_runner(const CaseRunnerConfig& config,
                                 PhaseShards* phases, std::size_t worker) {
  auto state = make_state(config, phases, worker);
  return [config, state](std::uint64_t seed) {
    apps::Case2Config c;
    c.seed = seed;
    c.faults = plan_for(config);
    c.event_budget = config.event_budget;
    apps::Case2Result r = apps::run_case2(c, state->arena_ptr());
    const Clock::time_point t0 = Clock::now();
    AnalysisReport report;
    if (config.trace_round_trip) {
      trace::NodeTrace t = round_trip(r.relay_trace, c.faults,
                                      util::Rng(seed).substream("trace-faults"));
      report = analyze({{&t, 0}}, os::irq::kRadioSpi);
      state->recycle(std::move(t));
    } else {
      report = analyze({{&r.relay_trace, 0}}, os::irq::kRadioSpi);
    }
    state->recycle(std::move(r.relay_trace));
    state->account(r.setup_seconds, r.simulate_seconds, seconds_since(t0));
    return report;
  };
}

ScenarioRunner make_case3_runner(const CaseRunnerConfig& config,
                                 PhaseShards* phases, std::size_t worker) {
  auto state = make_state(config, phases, worker);
  return [config, state](std::uint64_t seed) {
    apps::Case3Config c;
    c.seed = seed;
    c.faults = plan_for(config);
    c.event_budget = config.event_budget;
    apps::Case3Result r = apps::run_case3(c, state->arena_ptr());
    const Clock::time_point t0 = Clock::now();
    AnalysisReport report;
    if (config.trace_round_trip) {
      // Per-node perturbation substreams, same keying as bench/ext_chaos.
      std::vector<trace::NodeTrace> salvaged;
      salvaged.reserve(r.sources.size());
      for (net::NodeId src : r.sources)
        salvaged.push_back(round_trip(
            r.traces[src], c.faults,
            util::Rng(seed).substream("trace-faults-" +
                                      std::to_string(src))));
      std::vector<TaggedTrace> traces;
      for (trace::NodeTrace& t : salvaged) traces.push_back({&t, 0});
      report = analyze(traces, r.report_line);
      for (trace::NodeTrace& t : salvaged) state->recycle(std::move(t));
    } else {
      std::vector<TaggedTrace> traces;
      for (net::NodeId src : r.sources) traces.push_back({&r.traces[src], 0});
      report = analyze(traces, r.report_line);
    }
    if (state->arena) state->arena->recycle_all(r.traces);
    state->account(r.setup_seconds, r.simulate_seconds, seconds_since(t0));
    return report;
  };
}

}  // namespace

ScenarioRunnerFactory make_case_runner_factory(const std::string& name,
                                               const CaseRunnerConfig& config,
                                               PhaseShards* phases) {
  SENT_REQUIRE_MSG(name == "I" || name == "II" || name == "III",
                   "unknown case study: " << name);
  return [name, config, phases](std::size_t worker) {
    if (name == "I") return make_case1_runner(config, phases, worker);
    if (name == "III") return make_case3_runner(config, phases, worker);
    return make_case2_runner(config, phases, worker);
  };
}

}  // namespace sent::pipeline
