// Pooled Fig-5 case runners for amortized campaigns (DESIGN.md §15).
//
// The campaign engine dispatches seeds to per-worker ScenarioRunners (see
// ScenarioRunnerFactory in campaign.hpp). This module supplies those
// runners for the three case studies: each worker's runner owns a
// worker-local apps::WorldArena, so across its seed batches the event
// queue's slot slab, the heap storage and the multi-megabyte trace buffers
// are allocated once and scrubbed between runs instead of rebuilt. The
// pooled path is bit-identical to fresh construction — the reused surfaces
// are exactly the ones EventQueue::reset() and
// NodeTrace::clear_keep_capacity() restore to blank, and everything else
// is rebuilt per seed. tests/worker_pool_test.cpp holds the parity.
//
// Phase accounting rides along on the obs shard-merge pattern: each worker
// accumulates setup / simulate / analyze wall-clock into its own padded
// shard (no shared mutex, no atomics on the hot path) and the bench merges
// once at the end to attribute where campaign time actually goes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/campaign.hpp"

namespace sent::pipeline {

/// Wall-clock seconds per pipeline phase. Diagnostic only — measured, not
/// derived from the seed, so never part of a determinism comparison.
struct PhaseTotals {
  double setup_seconds = 0.0;     ///< world construction (pre event loop)
  double simulate_seconds = 0.0;  ///< event-loop drain
  double analyze_seconds = 0.0;   ///< trace round-trip + Sentomist back end
  std::uint64_t runs = 0;         ///< completed runner invocations counted

  PhaseTotals& operator+=(const PhaseTotals& other) {
    setup_seconds += other.setup_seconds;
    simulate_seconds += other.simulate_seconds;
    analyze_seconds += other.analyze_seconds;
    runs += other.runs;
    return *this;
  }
};

/// Per-worker phase shards, merged once at the end (the src/obs pattern).
/// Each worker writes only its own cache-line-padded shard from its own
/// thread; merged() is only valid after the campaign returns.
class PhaseShards {
 public:
  /// `workers` must be >= the campaign's thread count (1 for inline).
  explicit PhaseShards(std::size_t workers)
      : shards_(workers == 0 ? 1 : workers) {}

  PhaseTotals& shard(std::size_t worker) { return shards_.at(worker).totals; }

  PhaseTotals merged() const {
    PhaseTotals total;
    for (const Shard& s : shards_) total += s.totals;
    return total;
  }

 private:
  struct alignas(64) Shard {
    PhaseTotals totals;
  };
  std::vector<Shard> shards_;
};

/// Everything a pooled case runner varies on. The defaults reproduce the
/// clean Fig-5 campaign runs in bench/ext_campaign; the chaos knobs
/// reproduce bench/ext_chaos's fault ladder.
struct CaseRunnerConfig {
  /// fault::FaultPlan::at_intensity strength; 0 = the all-zero plan (no
  /// fault machinery wired, bit-identical to pre-fault builds).
  double intensity = 0.0;
  /// Watchdog event budget per run, 0 = unlimited.
  std::uint64_t event_budget = 0;
  /// Chaos ladder trace I/O leg: save -> perturb -> lenient-load each
  /// analyzed trace (perturbation keyed off the run seed).
  bool trace_round_trip = false;
  /// false = historic fresh-construction path (no arena); the parity
  /// battery and the benches' pooled-vs-fresh legs flip this.
  bool pooled = true;
};

/// Factory building one pooled runner per campaign worker for case `name`
/// ("I", "II" or "III" — same configs as bench/ext_campaign: case I at the
/// vulnerable D=20ms over 10s, cases II/III at scenario defaults). When
/// `phases` is non-null each worker streams its per-phase wall clock into
/// phases->shard(worker); the caller owns the shards and must size them
/// for the campaign's thread count.
ScenarioRunnerFactory make_case_runner_factory(const std::string& name,
                                               const CaseRunnerConfig& config,
                                               PhaseShards* phases = nullptr);

}  // namespace sent::pipeline
