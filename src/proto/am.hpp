// Active-message type registry.
//
// Data frames carry an am_type used to demultiplex to the owning protocol,
// mirroring TinyOS active messages.
#pragma once

#include <cstdint>

namespace sent::proto::am {

inline constexpr std::uint8_t kOscilloscope = 10;  ///< case I readings
inline constexpr std::uint8_t kForward = 11;       ///< case II relay traffic
inline constexpr std::uint8_t kCtpData = 20;       ///< case III data
inline constexpr std::uint8_t kCtpBeacon = 21;     ///< case III routing
inline constexpr std::uint8_t kHeartbeat = 30;     ///< case III liveness
inline constexpr std::uint8_t kDissemination = 40; ///< case IV value updates

}  // namespace sent::proto::am
