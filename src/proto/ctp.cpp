#include "proto/ctp.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sent::proto {

namespace {
constexpr std::size_t kSeenCacheCapacity = 64;
constexpr std::uint16_t kLinkCost = 1;
}  // namespace

CtpNode::CtpNode(CtpConfig config) : config_(config) {
  SENT_REQUIRE(config_.queue_capacity > 0);
}

std::uint16_t CtpNode::path_etx() const {
  if (config_.is_root) return 0;
  if (!parent_) return kNoRoute;
  auto it = neighbors_.find(*parent_);
  SENT_ASSERT(it != neighbors_.end());
  return static_cast<std::uint16_t>(
      std::min<std::uint32_t>(it->second.advertised_etx + kLinkCost,
                              kNoRoute));
}

net::Packet CtpNode::make_beacon() const {
  net::Packet beacon;
  beacon.type = net::FrameType::Data;
  beacon.dst = net::kBroadcast;
  beacon.am_type = am::kCtpBeacon;
  beacon.origin = config_.self;
  net::put_u16(beacon.payload, path_etx());
  return beacon;
}

void CtpNode::on_beacon(const net::Packet& beacon) {
  SENT_REQUIRE(beacon.am_type == am::kCtpBeacon);
  SENT_REQUIRE(beacon.payload.size() >= 2);
  std::uint16_t etx = net::get_u16(beacon.payload, 0);
  neighbors_[beacon.src].advertised_etx = etx;
  choose_parent();
}

void CtpNode::choose_parent() {
  if (config_.is_root) return;  // the root routes to itself
  std::optional<net::NodeId> best;
  std::uint32_t best_etx = kNoRoute;
  for (const auto& [id, nb] : neighbors_) {
    if (nb.advertised_etx == kNoRoute) continue;  // neighbor has no route
    std::uint32_t via = nb.advertised_etx + kLinkCost;
    if (via < best_etx) {
      best_etx = via;
      best = id;
    }
  }
  parent_ = best;
}

bool CtpNode::enqueue(net::Packet packet) {
  if (config_.is_root) {
    // Data reaching the root is delivered, not queued.
    count_root_delivery();
    return true;
  }
  if (!parent_) {
    ++drops_no_route_;
    return false;
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++drops_full_;
    return false;
  }
  queue_.push_back(QueueEntry{std::move(packet), 0});
  return true;
}

bool CtpNode::enqueue_local(std::uint16_t reading) {
  net::Packet p;
  p.type = net::FrameType::Data;
  p.am_type = am::kCtpData;
  p.origin = config_.self;
  p.seq = next_seq_++;
  net::put_u16(p.payload, reading);
  remember(p.origin, p.seq);
  return enqueue(std::move(p));
}

bool CtpNode::enqueue_forward(const net::Packet& packet) {
  SENT_REQUIRE(packet.am_type == am::kCtpData);
  if (seen_before(packet.origin, packet.seq)) {
    ++drops_dup_;
    return false;
  }
  remember(packet.origin, packet.seq);
  return enqueue(packet);
}

net::Packet CtpNode::head_for_send() const {
  SENT_REQUIRE_MSG(!queue_.empty(), "head_for_send on empty CTP queue");
  SENT_REQUIRE_MSG(parent_.has_value(), "head_for_send with no route");
  net::Packet p = queue_.front().packet;
  p.dst = *parent_;
  return p;
}

bool CtpNode::on_send_fail() {
  ++send_fails_;
  if (config_.fix_send_fail) {
    // Repaired variant: acknowledge the failure and release the engine so
    // the packet can be retried on the next pump.
    sending_ = false;
    return false;
  }
  // BUG (unchanged from the original): the FAIL status is not handled;
  // `sending_` stays set and no send-done will ever arrive.
  bool first = !hung_;
  hung_ = true;
  return first;
}

bool CtpNode::on_send_done(hw::TxStatus status) {
  sending_ = false;
  SENT_ASSERT_MSG(!queue_.empty(), "send-done with empty queue");
  if (status == hw::TxStatus::Success) {
    queue_.pop_front();
  } else {
    QueueEntry& head = queue_.front();
    if (++head.retx > config_.max_retx) {
      ++drops_retx_;
      queue_.pop_front();
    }
  }
  return !queue_.empty();
}

void CtpNode::remember(net::NodeId origin, std::uint16_t seq) {
  if (seen_.insert({origin, seq}).second) {
    seen_order_.push_back({origin, seq});
    if (seen_order_.size() > kSeenCacheCapacity) {
      seen_.erase(seen_order_.front());
      seen_order_.pop_front();
    }
  }
}

bool CtpNode::seen_before(net::NodeId origin, std::uint16_t seq) const {
  return seen_.count({origin, seq}) > 0;
}

}  // namespace sent::proto
