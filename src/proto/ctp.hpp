// Collection Tree Protocol (CTP) — routing + forwarding engines.
//
// A faithful-in-structure reimplementation of the TinyOS 2.1.0 CTP pieces
// case study III exercises:
//   * routing engine: periodic beacons advertising path ETX, neighbor
//     table, min-ETX parent selection;
//   * forwarding engine: bounded send queue, one in-flight packet guarded
//     by a `sending` mark, link-layer retransmissions on NoAck, duplicate
//     suppression on (origin, seq).
//
// THE BUG (paper §VI-D): the forwarding engine sets its `sending` mark and
// then calls the radio; when the radio returns FAIL (chip busy — e.g. a
// co-existing heartbeat protocol owns it), the failure status is unhandled:
// the mark "is not reset. Hence, all the following packets are not sent out
// and the CTP protocol at the node hangs." on_send_fail() reproduces
// exactly that; construct with fix_send_fail=true for the repaired variant.
//
// These classes hold protocol *state*; the per-step logic is invoked from
// virtual instructions built by apps::CtpHeartbeatApp so every branch shows
// up in the instruction counters.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "hw/radio.hpp"
#include "net/packet.hpp"
#include "proto/am.hpp"

namespace sent::proto {

struct CtpConfig {
  net::NodeId self = 0;
  bool is_root = false;
  std::size_t queue_capacity = 8;
  std::uint32_t max_retx = 3;  ///< app-level retransmissions on NoAck
  bool fix_send_fail = false;  ///< repaired variant clears `sending` on FAIL
};

class CtpNode {
 public:
  explicit CtpNode(CtpConfig config);

  // ---- routing engine ---------------------------------------------------

  /// Path ETX advertised in beacons: 0 at the root, parent ETX + 1 link
  /// otherwise; kNoRoute when no parent is known yet.
  static constexpr std::uint16_t kNoRoute = 0xFFFF;
  std::uint16_t path_etx() const;
  std::optional<net::NodeId> parent() const { return parent_; }

  net::Packet make_beacon() const;
  void on_beacon(const net::Packet& beacon);

  // ---- forwarding engine -------------------------------------------------

  /// Queue a locally-generated reading. Returns false when the queue is
  /// full or the node has no route yet.
  bool enqueue_local(std::uint16_t reading);

  /// Queue a packet received for forwarding. Duplicate (origin, seq) pairs
  /// are suppressed; returns false on duplicate/full/no-route.
  bool enqueue_forward(const net::Packet& packet);

  bool has_pending() const { return !queue_.empty(); }
  std::size_t queue_depth() const { return queue_.size(); }
  bool sending() const { return sending_; }

  /// Head packet addressed to the current parent, ready for the radio.
  net::Packet head_for_send() const;

  /// Forwarding-engine send path, split so app instructions mirror the
  /// original code structure:
  void mark_sending() { sending_ = true; }  // set BEFORE calling the radio

  /// Radio accepted the packet: nothing to do until send-done.
  void on_send_accepted() {}

  /// Radio returned FAIL (busy). In the buggy variant this is a no-op —
  /// `sending` stays set forever (returns true if this call wedged the
  /// node, i.e. first manifestation). The fixed variant clears the mark.
  bool on_send_fail();

  /// Send-done from the SPI path.
  /// Returns true when another send should be pumped (queue non-empty).
  bool on_send_done(hw::TxStatus status);

  /// True once the unhandled-FAIL bug has wedged this node.
  bool hung() const { return hung_; }

  // ---- statistics --------------------------------------------------------

  std::uint64_t delivered_to_root() const { return delivered_root_; }
  void count_root_delivery() { ++delivered_root_; }
  std::uint64_t drops_queue_full() const { return drops_full_; }
  std::uint64_t drops_no_route() const { return drops_no_route_; }
  std::uint64_t drops_duplicate() const { return drops_dup_; }
  std::uint64_t drops_retx_exhausted() const { return drops_retx_; }
  std::uint64_t send_fail_events() const { return send_fails_; }

  const CtpConfig& config() const { return config_; }

 private:
  struct QueueEntry {
    net::Packet packet;
    std::uint32_t retx = 0;
  };
  struct Neighbor {
    std::uint16_t advertised_etx = kNoRoute;
  };

  CtpConfig config_;
  std::optional<net::NodeId> parent_;
  std::map<net::NodeId, Neighbor> neighbors_;
  std::deque<QueueEntry> queue_;
  bool sending_ = false;
  bool hung_ = false;
  std::uint16_t next_seq_ = 0;
  std::set<std::pair<net::NodeId, std::uint16_t>> seen_;
  std::deque<std::pair<net::NodeId, std::uint16_t>> seen_order_;

  std::uint64_t delivered_root_ = 0, drops_full_ = 0, drops_no_route_ = 0,
                drops_dup_ = 0, drops_retx_ = 0, send_fails_ = 0;

  void choose_parent();
  void remember(net::NodeId origin, std::uint16_t seq);
  bool seen_before(net::NodeId origin, std::uint16_t seq) const;
  bool enqueue(net::Packet packet);
};

}  // namespace sent::proto
