#include "proto/heartbeat.hpp"

#include "util/assert.hpp"

namespace sent::proto {

Heartbeat::Heartbeat(net::NodeId self, std::size_t padding_bytes)
    : self_(self), padding_bytes_(padding_bytes) {}

net::Packet Heartbeat::make_heartbeat() {
  net::Packet p;
  p.type = net::FrameType::Data;
  p.dst = net::kBroadcast;
  p.am_type = am::kHeartbeat;
  p.origin = self_;
  p.seq = seq_++;
  p.payload.assign(padding_bytes_, 0xAB);
  ++sent_;
  return p;
}

void Heartbeat::on_heartbeat(const net::Packet& packet, sim::Cycle now) {
  SENT_REQUIRE(packet.am_type == am::kHeartbeat);
  last_seen_[packet.src] = now;
}

std::size_t Heartbeat::alive_neighbors(sim::Cycle now,
                                       sim::Cycle window) const {
  std::size_t alive = 0;
  for (const auto& [id, seen] : last_seen_) {
    (void)id;
    if (now - seen <= window) ++alive;
  }
  return alive;
}

}  // namespace sent::proto
