// Heartbeat protocol (paper §VI-D).
//
// "We also implement a heartbeat message exchange protocol for monitoring
// the life conditions of sensor nodes, where a sensor node sends a
// heartbeat message to its neighbors every 500ms." The heartbeat competes
// with CTP for the single radio chip — the uncoordinated resource
// contention that triggers case study III's bug.
#pragma once

#include <cstdint>
#include <map>

#include "net/packet.hpp"
#include "proto/am.hpp"
#include "sim/time.hpp"

namespace sent::proto {

class Heartbeat {
 public:
  /// `padding_bytes` sizes the heartbeat payload; a larger heartbeat holds
  /// the radio longer and widens the contention window.
  Heartbeat(net::NodeId self, std::size_t padding_bytes = 24);

  net::Packet make_heartbeat();

  void on_heartbeat(const net::Packet& packet, sim::Cycle now);

  /// Neighbors heard within `window` of `now`.
  std::size_t alive_neighbors(sim::Cycle now, sim::Cycle window) const;

  std::uint64_t sent() const { return sent_; }
  std::uint64_t skipped_busy() const { return skipped_busy_; }
  void count_skip_busy() { ++skipped_busy_; }

 private:
  net::NodeId self_;
  std::size_t padding_bytes_;
  std::uint16_t seq_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t skipped_busy_ = 0;
  std::map<net::NodeId, sim::Cycle> last_seen_;
};

}  // namespace sent::proto
