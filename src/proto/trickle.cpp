#include "proto/trickle.hpp"

namespace sent::proto {

Trickle::Trickle(TrickleParams params, util::Rng rng)
    : params_(params), rng_(rng), interval_(params.imin) {
  SENT_REQUIRE(params_.imin > 1);
  SENT_REQUIRE(params_.doublings <= 24);
  SENT_REQUIRE(params_.redundancy >= 1);
}

sim::Cycle Trickle::pick_fire_delay() {
  // Uniform in [I/2, I).
  sim::Cycle half = interval_ / 2;
  return half + static_cast<sim::Cycle>(rng_.below(interval_ - half));
}

sim::Cycle Trickle::begin_interval(sim::Cycle length) {
  interval_ = length;
  counter_ = 0;
  fired_this_interval_ = false;
  sim::Cycle fire = pick_fire_delay();
  fire_to_end_ = interval_ - fire;
  return fire;
}

sim::Cycle Trickle::start() { return begin_interval(params_.imin); }

Trickle::Step Trickle::advance() {
  Step step;
  if (!fired_this_interval_) {
    // This expiry is the fire point.
    fired_this_interval_ = true;
    step.transmit = counter_ < params_.redundancy;
    if (step.transmit)
      ++granted_;
    else
      ++suppressed_;
    step.next_delay = fire_to_end_;
    return step;
  }
  // This expiry is the interval end: double and start over.
  sim::Cycle next = std::min(interval_ * 2, imax());
  step.transmit = false;
  step.next_delay = begin_interval(next);
  return step;
}

sim::Cycle Trickle::on_inconsistent() {
  return begin_interval(params_.imin);
}

}  // namespace sent::proto
