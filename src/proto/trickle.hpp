// The Trickle algorithm (Levis et al.; RFC 6206) — the timer that drives
// TinyOS dissemination protocols such as Drip/DIP.
//
// Each node maintains an interval I in [Imin, Imin * 2^doublings]. Within
// every interval it picks a random fire point t in [I/2, I): at t it
// transmits its summary unless it has already heard k consistent
// summaries this interval; at the interval's end, I doubles and a new
// interval begins. Hearing an INCONSISTENT summary resets I to Imin, which
// makes updates propagate fast while steady-state traffic decays
// exponentially.
//
// The class is a pure state machine over virtual time; the application
// owns the actual timer line and drives it with advance()/on_*() calls
// from its handler instructions, so every Trickle decision shows up in the
// instruction counters.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace sent::proto {

struct TrickleParams {
  sim::Cycle imin = sim::cycles_from_millis(100);
  std::uint32_t doublings = 6;   ///< Imax = Imin * 2^doublings
  std::uint32_t redundancy = 2;  ///< the k constant
};

class Trickle {
 public:
  explicit Trickle(TrickleParams params, util::Rng rng);

  /// Begin the first interval. Returns the delay to the first timer event.
  sim::Cycle start();

  /// What the expiring timer event means and what to do next.
  struct Step {
    bool transmit = false;   ///< fire point reached with counter < k
    sim::Cycle next_delay;   ///< re-arm the one-shot timer with this
  };

  /// Called from the timer handler each time the Trickle timer expires.
  Step advance();

  /// A consistent summary was heard: suppress (counter++).
  void on_consistent() { ++counter_; }

  /// An inconsistent summary was heard. Returns the delay to the next
  /// timer event after resetting to Imin — the caller must re-arm its
  /// timer with it (cancelling any pending one).
  sim::Cycle on_inconsistent();

  sim::Cycle interval() const { return interval_; }
  std::uint32_t counter() const { return counter_; }
  std::uint64_t transmissions_granted() const { return granted_; }
  std::uint64_t suppressions() const { return suppressed_; }

 private:
  TrickleParams params_;
  util::Rng rng_;
  sim::Cycle interval_;
  std::uint32_t counter_ = 0;
  bool fired_this_interval_ = false;
  std::uint64_t granted_ = 0, suppressed_ = 0;

  sim::Cycle imax() const {
    return params_.imin << params_.doublings;
  }
  /// Delay from interval start to the random fire point.
  sim::Cycle pick_fire_delay();
  sim::Cycle begin_interval(sim::Cycle length);
  sim::Cycle fire_to_end_;  ///< remainder of the interval after the fire
};

}  // namespace sent::proto
