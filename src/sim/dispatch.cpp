#include "sim/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sent::sim {

namespace {

DispatchMode build_default() {
#ifdef SENT_REFERENCE_DISPATCH_DEFAULT
  return DispatchMode::Reference;
#else
  return DispatchMode::Bytecode;
#endif
}

DispatchMode initial_mode() {
  if (const char* env = std::getenv("SENT_DISPATCH")) {
    if (std::strcmp(env, "reference") == 0) return DispatchMode::Reference;
    if (std::strcmp(env, "bytecode") == 0) return DispatchMode::Bytecode;
  }
  return build_default();
}

std::atomic<DispatchMode>& mode_cell() {
  static std::atomic<DispatchMode> mode{initial_mode()};
  return mode;
}

}  // namespace

DispatchMode dispatch_mode() {
  return mode_cell().load(std::memory_order_relaxed);
}

void set_dispatch_mode(DispatchMode mode) {
  mode_cell().store(mode, std::memory_order_relaxed);
}

const char* to_string(DispatchMode mode) {
  return mode == DispatchMode::Bytecode ? "bytecode" : "reference";
}

}  // namespace sent::sim
