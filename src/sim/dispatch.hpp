// Process-wide dispatch-mode selector (DESIGN.md §12).
//
// The virtual MCU and the event queue each have two execution substrates:
//
//   Bytecode  — the production path: compact bytecode interpreter in
//               mcu::Machine plus the pooled, allocation-free event engine
//               in sim::EventQueue.
//   Reference — the pre-bytecode closure path, kept alive for parity
//               testing: std::function instruction dispatch plus the boxed
//               std::function event heap with linear-scan cancellation.
//
// Both substrates produce bit-identical traces; the parity suite
// (tests/dispatch_parity_test.cpp) and bench/ext_sim enforce that. The mode
// is sampled at world-construction time (EventQueue / Machine constructors,
// CodeBuilder::build), so switch it only between runs, never mid-run.
//
// Default resolution order:
//   1. set_dispatch_mode() (tests / benches),
//   2. the SENT_DISPATCH environment variable ("bytecode" / "reference"),
//   3. the build default (Bytecode, or Reference when the tree is
//      configured with -DSENT_REFERENCE_DISPATCH=ON).
#pragma once

namespace sent::sim {

enum class DispatchMode {
  Bytecode,   ///< bytecode interpreter + pooled event engine
  Reference,  ///< retained closure interpreter + boxed event heap
};

/// Current process-wide mode (atomic; safe to read from campaign workers).
DispatchMode dispatch_mode();

/// Override the mode. Call between runs only: worlds sample the mode when
/// they are constructed.
void set_dispatch_mode(DispatchMode mode);

const char* to_string(DispatchMode mode);

}  // namespace sent::sim
