// Small-buffer event closure for the pooled event engine.
//
// std::function<void()> heap-allocates any capture beyond two words, and the
// old event heap copied it once per pop; at one scheduled event per virtual
// instruction that allocation churn dominated the simulator. EventFn stores
// captures up to kInlineSize bytes in place (machine steps capture 8 bytes,
// timer fires 16), spilling larger closures to a single heap cell. It is
// move-only — the pooled queue moves it out of the slot exactly once, at
// fire time.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace sent::sim {

class EventFn {
 public:
  /// Captures at or under this many bytes are stored inline. Sized to hold
  /// every closure on the simulator's hot paths (step continuations, timer
  /// fires, radio timeouts) and a by-value std::function for code that
  /// still passes one.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT: implicit like std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    if constexpr (std::is_same_v<Fn, std::function<void()>>) {
      if (!f) return;  // empty std::function => empty EventFn
    }
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      static constexpr VTable vt = {
          [](void* p) { (*static_cast<Fn*>(p))(); },
          [](void* dst, void* src) {
            Fn* from = static_cast<Fn*>(src);
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          [](void* p) { static_cast<Fn*>(p)->~Fn(); }};
      vt_ = &vt;
    } else {
      // Heap spill: the storage holds a single owning pointer.
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      static constexpr VTable vt = {
          [](void* p) { (**static_cast<Fn**>(p))(); },
          [](void* dst, void* src) {
            ::new (dst) Fn*(*static_cast<Fn**>(src));
          },
          [](void* p) { delete *static_cast<Fn**>(p); }};
      vt_ = &vt;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct dst from src, then destroy src's object.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  void move_from(EventFn& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(storage_, other.storage_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(kAlign) unsigned char storage_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace sent::sim
