#include "sim/event_queue.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace sent::sim {

namespace {

/// All sim metrics register together on first use, so any run that touches
/// the event queue exposes the full set (keeps snapshots comparable across
/// runs that never trip the watchdog, say). DESIGN.md §11.
struct Metrics {
  obs::Counter scheduled =
      obs::Registry::global().counter("sim.events_scheduled");
  obs::Counter executed =
      obs::Registry::global().counter("sim.events_executed");
  obs::Counter cancelled =
      obs::Registry::global().counter("sim.events_cancelled");
  obs::Counter watchdog_trips =
      obs::Registry::global().counter("sim.watchdog_trips");
  obs::Gauge queue_hwm = obs::Registry::global().gauge("sim.queue_hwm");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

}  // namespace

EventId EventQueue::schedule_at(Cycle at, std::function<void()> fn) {
  SENT_REQUIRE_MSG(at >= now_, "cannot schedule in the past: at=" << at
                                                                  << " now=" << now_);
  SENT_REQUIRE(fn != nullptr);
  EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  ++live_;
  Metrics::get().scheduled.inc();
  Metrics::get().queue_hwm.record(live_);
  return id;
}

EventId EventQueue::schedule_after(Cycle delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (is_cancelled(id)) return false;
  // We cannot remove from the heap; mark and skip at pop time. We cannot
  // tell fired from unknown ids cheaply, so conservatively record the mark;
  // it is purged when (or if) the entry surfaces.
  cancelled_.push_back(id);
  if (live_ > 0) --live_;
  Metrics::get().cancelled.inc();
  return true;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

void EventQueue::forget_cancelled(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end()) cancelled_.erase(it);
}

void EventQueue::set_watchdog_budget(std::uint64_t budget) {
  watchdog_budget_ = budget;
  watchdog_armed_at_ = executed_;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (is_cancelled(e.id)) {
      forget_cancelled(e.id);
      continue;
    }
    SENT_ASSERT(e.at >= now_);
    if (watchdog_budget_ != 0 &&
        executed_ - watchdog_armed_at_ >= watchdog_budget_) {
      // Put the event back so the queue stays consistent if the caller
      // catches the timeout and carries on.
      heap_.push(std::move(e));
      Metrics::get().watchdog_trips.inc();
      throw WatchdogTimeout(
          "simulation watchdog: event budget of " +
          std::to_string(watchdog_budget_) + " exhausted at cycle " +
          std::to_string(now_) + " (livelocked run?)");
    }
    now_ = e.at;
    --live_;
    ++executed_;
    Metrics::get().executed.inc();
    e.fn();
    return true;
  }
  return false;
}

void EventQueue::run_until(Cycle until) {
  for (;;) {
    // Peek for the next live entry.
    while (!heap_.empty() && is_cancelled(heap_.top().id)) {
      forget_cancelled(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > until) return;
    step();
  }
}

void EventQueue::run_all() {
  while (step()) {
  }
}

void EventQueue::advance_to(Cycle to) {
  SENT_REQUIRE(to >= now_);
  while (!heap_.empty() && is_cancelled(heap_.top().id)) {
    forget_cancelled(heap_.top().id);
    heap_.pop();
  }
  SENT_REQUIRE_MSG(heap_.empty() || heap_.top().at >= to,
                   "advance_to would skip a pending event");
  now_ = to;
}

}  // namespace sent::sim
