#include "sim/event_queue.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace sent::sim {

namespace {

/// All sim metrics register together on first use, so any run that touches
/// the event queue exposes the full set (keeps snapshots comparable across
/// runs that never trip the watchdog, say). DESIGN.md §11.
struct Metrics {
  obs::Counter scheduled =
      obs::Registry::global().counter("sim.events_scheduled");
  obs::Counter executed =
      obs::Registry::global().counter("sim.events_executed");
  obs::Counter cancelled =
      obs::Registry::global().counter("sim.events_cancelled");
  obs::Counter watchdog_trips =
      obs::Registry::global().counter("sim.watchdog_trips");
  obs::Gauge queue_hwm = obs::Registry::global().gauge("sim.queue_hwm");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

constexpr std::uint32_t slot_of(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

constexpr std::uint32_t gen_of(EventId id) {
  return static_cast<std::uint32_t>(id);
}

}  // namespace

EventQueue::EventQueue(DispatchMode mode)
    : boxed_(mode == DispatchMode::Reference) {}

EventQueue::~EventQueue() { flush_metrics(); }

void EventQueue::flush_metrics() {
  if (pending_scheduled_ == 0 && pending_executed_ == 0 &&
      pending_cancelled_ == 0 && queue_hwm_ == 0) {
    return;
  }
  const Metrics& m = Metrics::get();
  if (pending_scheduled_ != 0) m.scheduled.inc(pending_scheduled_);
  if (pending_executed_ != 0) m.executed.inc(pending_executed_);
  if (pending_cancelled_ != 0) m.cancelled.inc(pending_cancelled_);
  if (queue_hwm_ != 0) m.queue_hwm.record(queue_hwm_);
  pending_scheduled_ = pending_executed_ = pending_cancelled_ = 0;
  queue_hwm_ = 0;
}

void EventQueue::reset() {
  SENT_REQUIRE_MSG(event_depth_ == 0 && drain_depth_ == 0,
                   "EventQueue::reset inside an event or drain");
  flush_metrics();  // a reset ends the run, same as destruction
  // Drain the heaps with pop loops so their underlying vectors keep their
  // capacity; destroying the Slot table releases every pending closure.
  while (!pool_heap_.empty()) pool_heap_.pop();
  while (!boxed_heap_.empty()) boxed_heap_.pop();
  slots_.clear();  // capacity retained: the slab regrows 0,1,2,... like new
  free_slots_.clear();
  next_seq_ = 1;
  cancelled_.clear();
  next_boxed_id_ = 1;
  deferred_.clear();
  deferred_inlined_ = deferred_spilled_ = 0;
  now_ = 0;
  live_ = 0;
  horizon_ = 0;
  executed_ = 0;
  watchdog_budget_ = 0;
  watchdog_armed_at_ = 0;
}

void EventQueue::on_scheduled() {
  ++live_;
  ++pending_scheduled_;
  if (live_ > queue_hwm_) queue_hwm_ = live_;
}

// ---- scheduling -----------------------------------------------------------

std::uint32_t EventQueue::alloc_slot(EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  // Advance the generation on (re)use; skip 0 so no EventId is ever 0.
  ++s.gen;
  if (s.gen == 0) s.gen = 1;
  s.live = true;
  s.cancelled = false;
  s.fn = std::move(fn);
  return slot;
}

EventId EventQueue::schedule_pooled(Cycle at, EventFn fn) {
  SENT_REQUIRE_MSG(at >= now_, "cannot schedule in the past: at=" << at
                                                                  << " now=" << now_);
  SENT_REQUIRE(static_cast<bool>(fn));
  const std::uint32_t slot = alloc_slot(std::move(fn));
  pool_heap_.push(PoolEntry{at, next_seq_++, slot});
  on_scheduled();
  return (static_cast<EventId>(slot) << 32) | slots_[slot].gen;
}

EventId EventQueue::schedule_boxed(Cycle at, std::function<void()> fn) {
  SENT_REQUIRE_MSG(at >= now_, "cannot schedule in the past: at=" << at
                                                                  << " now=" << now_);
  SENT_REQUIRE(fn != nullptr);
  EventId id = next_boxed_id_++;
  boxed_heap_.push(BoxedEntry{at, id, std::move(fn)});
  on_scheduled();
  return id;
}

// ---- cancellation ---------------------------------------------------------

bool EventQueue::cancel(EventId id) {
  if (!boxed_) {
    const std::uint32_t slot = slot_of(id);
    const std::uint32_t gen = gen_of(id);
    if (gen == 0 || slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    if (!s.live || s.gen != gen || s.cancelled) return false;
    s.cancelled = true;
    s.fn.reset();  // release the capture now; the heap entry is skipped later
    --live_;
    ++pending_cancelled_;
    return true;
  }
  if (id == 0 || id >= next_boxed_id_) return false;
  if (is_cancelled_boxed(id)) return false;
  // We cannot remove from the heap; mark and skip at pop time. We cannot
  // tell fired from unknown ids cheaply, so conservatively record the mark;
  // it is purged when (or if) the entry surfaces.
  cancelled_.push_back(id);
  if (live_ > 0) --live_;
  ++pending_cancelled_;
  return true;
}

bool EventQueue::is_cancelled_boxed(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

void EventQueue::forget_cancelled_boxed(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it != cancelled_.end()) cancelled_.erase(it);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  s.cancelled = false;
  s.fn.reset();
  free_slots_.push_back(slot);
}

// ---- execution ------------------------------------------------------------

void EventQueue::check_watchdog() {
  if (watchdog_budget_ != 0 &&
      executed_ - watchdog_armed_at_ >= watchdog_budget_) {
    Metrics::get().watchdog_trips.inc();
    throw WatchdogTimeout(
        "simulation watchdog: event budget of " +
            std::to_string(watchdog_budget_) + " exhausted at cycle " +
            std::to_string(now_) + " (livelocked run?)",
        watchdog_budget_, executed_ - watchdog_armed_at_);
  }
}

bool EventQueue::step_pooled() {
  // Drop cancelled entries before anything else so they neither advance
  // time nor count against the watchdog budget.
  while (!pool_heap_.empty() && slots_[pool_heap_.top().slot].cancelled) {
    release_slot(pool_heap_.top().slot);
    pool_heap_.pop();
  }
  if (pool_heap_.empty()) return false;
  // Checked before the pop: on timeout the event stays queued, so the
  // queue is consistent if the caller catches and carries on.
  check_watchdog();
  const PoolEntry e = pool_heap_.top();
  pool_heap_.pop();
  SENT_ASSERT(e.at >= now_);
  now_ = e.at;
  --live_;
  ++executed_;
  ++pending_executed_;
  // Move the closure out and release the slot *before* invoking: the event
  // may schedule (reallocating slots_) or recursively step the queue.
  EventFn fn = std::move(slots_[e.slot].fn);
  release_slot(e.slot);
  ++event_depth_;
  try {
    fn();
    flush_deferred();  // run/enqueue wake-ups the closure parked
  } catch (...) {
    spill_deferred();
    --event_depth_;
    throw;
  }
  --event_depth_;
  return true;
}

bool EventQueue::admit_inline(Cycle at, std::uint64_t seq) {
  if (drain_depth_ == 0 || at > horizon_) return false;
  if (watchdog_budget_ != 0 &&
      executed_ - watchdog_armed_at_ >= watchdog_budget_) {
    return false;
  }
  Cycle next = 0;
  if (peek_next(next)) {  // prunes cancelled heads; top is live after
    const PoolEntry& top = pool_heap_.top();
    if (top.at < at || (top.at == at && top.seq < seq)) return false;
  }
  SENT_ASSERT(at >= now_);
  now_ = at;
  --live_;  // counted live since the defer, exactly like a heap entry
  ++executed_;
  ++pending_executed_;  // scheduled was counted when the entry was deferred
  return true;
}

void EventQueue::enqueue_reserved(Deferred d) {
  const std::uint32_t slot = alloc_slot(std::move(d.fn));
  pool_heap_.push(PoolEntry{d.at, d.seq, slot});
}

void EventQueue::flush_deferred() {
  while (!deferred_.empty()) {
    Deferred d = std::move(deferred_.front());
    deferred_.erase(deferred_.begin());
    // A sibling deferred entry that fires strictly earlier must win; at
    // equal cycles this entry's seq is smaller (it was deferred first), so
    // only `<` matters. The list is almost always a single entry.
    bool earliest = true;
    for (const Deferred& o : deferred_) {
      if (o.at < d.at) {
        earliest = false;
        break;
      }
    }
    if (earliest && admit_inline(d.at, d.seq)) {
      ++deferred_inlined_;
      d.fn();  // may defer further wake-ups; the loop picks them up
    } else {
      ++deferred_spilled_;
      enqueue_reserved(std::move(d));
    }
  }
}

void EventQueue::spill_deferred() {
  for (Deferred& d : deferred_) enqueue_reserved(std::move(d));
  deferred_.clear();
}

bool EventQueue::step_boxed() {
  while (!boxed_heap_.empty()) {
    if (is_cancelled_boxed(boxed_heap_.top().id)) {
      forget_cancelled_boxed(boxed_heap_.top().id);
      boxed_heap_.pop();
      continue;
    }
    check_watchdog();
    BoxedEntry e = boxed_heap_.top();
    boxed_heap_.pop();
    SENT_ASSERT(e.at >= now_);
    now_ = e.at;
    --live_;
    ++executed_;
    ++pending_executed_;
    e.fn();
    return true;
  }
  return false;
}

bool EventQueue::step() { return boxed_ ? step_boxed() : step_pooled(); }

bool EventQueue::peek_next(Cycle& at) {
  if (boxed_) {
    while (!boxed_heap_.empty() && is_cancelled_boxed(boxed_heap_.top().id)) {
      forget_cancelled_boxed(boxed_heap_.top().id);
      boxed_heap_.pop();
    }
    if (boxed_heap_.empty()) return false;
    at = boxed_heap_.top().at;
    return true;
  }
  while (!pool_heap_.empty() && slots_[pool_heap_.top().slot].cancelled) {
    release_slot(pool_heap_.top().slot);
    pool_heap_.pop();
  }
  if (pool_heap_.empty()) return false;
  at = pool_heap_.top().at;
  return true;
}

bool EventQueue::inline_allowance(InlineAllowance& a) {
  if (drain_depth_ == 0 || boxed_ || !deferred_.empty()) return false;
  a.horizon = horizon_;
  a.next_event = kMaxCycle;
  peek_next(a.next_event);
  if (watchdog_budget_ == 0) {
    a.steps = ~std::uint64_t{0};
  } else {
    const std::uint64_t used = executed_ - watchdog_armed_at_;
    a.steps = used >= watchdog_budget_ ? 0 : watchdog_budget_ - used;
  }
  return true;
}

bool EventQueue::try_step_inline_slow(Cycle at) {
  // A budget-exhausted machine must put its continuation back on the heap
  // so the next drain iteration trips check_watchdog with the event still
  // queued — the same observable state the heap path leaves behind.
  if (watchdog_budget_ != 0 &&
      executed_ - watchdog_armed_at_ >= watchdog_budget_) {
    return false;
  }
  Cycle next = 0;
  if (peek_next(next) && next <= at) return false;
  SENT_ASSERT(at >= now_);
  now_ = at;
  ++executed_;
  ++pending_scheduled_;
  ++pending_executed_;
  return true;
}

/// Marks a drain (run_until/run_all) in progress so try_step_inline knows
/// the horizon events may run up to. Saves/restores on nesting and unwinds
/// correctly when a watchdog timeout propagates out of the drain.
struct DrainScope {
  EventQueue& queue;
  Cycle previous;
  DrainScope(EventQueue& q, Cycle horizon) : queue(q), previous(q.horizon_) {
    ++queue.drain_depth_;
    queue.horizon_ = horizon;
  }
  ~DrainScope() {
    queue.horizon_ = previous;
    --queue.drain_depth_;
  }
};

void EventQueue::run_until(Cycle until) {
  DrainScope scope(*this, until);
  Cycle at = 0;
  while (peek_next(at) && at <= until) step();
}

void EventQueue::run_all() {
  DrainScope scope(*this, kMaxCycle);
  while (step()) {
  }
}

void EventQueue::advance_to(Cycle to) {
  SENT_REQUIRE(to >= now_);
  Cycle at = 0;
  const bool pending = peek_next(at);
  SENT_REQUIRE_MSG(!pending || at >= to, "advance_to would skip a pending event");
  now_ = to;
}

void EventQueue::set_watchdog_budget(std::uint64_t budget) {
  watchdog_budget_ = budget;
  watchdog_armed_at_ = executed_;
}

}  // namespace sent::sim
