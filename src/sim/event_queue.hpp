// Discrete-event simulation core.
//
// A single EventQueue drives every node, device, and channel in a
// simulation. Events at equal timestamps fire in scheduling (FIFO) order,
// which keeps multi-node runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace sent::sim {

/// Handle identifying a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// Thrown by step()/run_until() when the watchdog budget is exhausted: a
/// run processed more events than its budget allows, the discrete-event
/// signature of a livelock (injected faults can wedge protocol state
/// machines into cycles that burn events without making progress).
/// Campaigns classify a run that throws this as TimedOut.
class WatchdogTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class EventQueue {
 public:
  /// Current virtual time. Starts at 0; advances as events run.
  Cycle now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns a handle that
  /// can be passed to cancel().
  EventId schedule_at(Cycle at, std::function<void()> fn);

  /// Schedule `fn` after `delay` cycles from now.
  EventId schedule_after(Cycle delay, std::function<void()> fn);

  /// Cancel a scheduled event. Cancelling an already-fired or unknown id is
  /// a no-op (returns false).
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or virtual time would exceed
  /// `until`. Events scheduled exactly at `until` do run. Time is left at
  /// min(until, last event time) — callers that need now()==until can
  /// advance with advance_to().
  void run_until(Cycle until);

  /// Run until the queue is empty.
  void run_all();

  /// Move the clock forward without running anything (no events may be
  /// pending before `to`).
  void advance_to(Cycle to);

  /// Total events executed (for perf benches).
  std::uint64_t executed() const { return executed_; }

  /// Arm the watchdog: after `budget` further events, step() throws
  /// WatchdogTimeout. 0 disarms. Virtual time is already bounded by
  /// run_until; the event budget is what catches livelocked runs that
  /// schedule unboundedly many events in bounded virtual time.
  void set_watchdog_budget(std::uint64_t budget);
  std::uint64_t watchdog_budget() const { return watchdog_budget_; }

 private:
  struct Entry {
    Cycle at;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;  // FIFO among equal timestamps
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<EventId> cancelled_;  // sorted-insert not needed; small
  Cycle now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t watchdog_budget_ = 0;   // 0 = disarmed
  std::uint64_t watchdog_armed_at_ = 0; // executed_ when armed

  bool is_cancelled(EventId id) const;
  void forget_cancelled(EventId id);
};

}  // namespace sent::sim
