// Discrete-event simulation core.
//
// A single EventQueue drives every node, device, and channel in a
// simulation. Events at equal timestamps fire in scheduling (FIFO) order,
// which keeps multi-node runs fully deterministic.
//
// Two engines implement the same contract (DESIGN.md §12):
//
//   Pooled — the production engine: closures live in a slab of reusable
//     slots (EventFn, inline storage: no allocation per event), the heap
//     orders 24-byte POD entries, and cancellation flips a flag on the
//     generation-tagged slot in O(1).
//   Boxed  — the pre-bytecode reference engine, kept for parity testing:
//     a binary heap of std::function entries with a linear-scan cancelled
//     list, reproducing the original cost profile exactly.
//
// The engine is chosen at construction from sim::dispatch_mode(); both fire
// events in exactly the same order, so traces are bit-identical across
// engines.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/dispatch.hpp"
#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace sent::sim {

/// Handle identifying a scheduled event, usable for cancellation. Never 0,
/// so 0 works as a "nothing pending" sentinel. Pooled ids encode
/// (slot, generation); boxed ids are the original monotonic sequence.
using EventId = std::uint64_t;

/// Thrown by step()/run_until() when the watchdog budget is exhausted: a
/// run processed more events than its budget allows, the discrete-event
/// signature of a livelock (injected faults can wedge protocol state
/// machines into cycles that burn events without making progress).
/// Campaigns classify a run that throws this as TimedOut.
class WatchdogTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;

  /// The queue's throw site carries the budget arithmetic so campaign
  /// triage can report it without re-running the seed: the armed budget
  /// and the events executed since arming at the moment the watchdog
  /// fired. Both are 0 when the exception was built without them (tests,
  /// external throwers).
  WatchdogTimeout(const std::string& msg, std::uint64_t budget,
                  std::uint64_t events_executed)
      : std::runtime_error(msg),
        budget_(budget),
        events_executed_(events_executed) {}

  std::uint64_t budget() const { return budget_; }
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  std::uint64_t budget_ = 0;
  std::uint64_t events_executed_ = 0;
};

/// Permission for a machine to execute a run of queue-silent steps inline
/// (DESIGN.md §12). Valid as long as the holder performs no queue operation:
/// each fused step at time `at` requires at <= horizon, at < next_event and
/// steps > 0 (decremented per step), then commit_inline settles the clock
/// and the executed count in one batch.
struct InlineAllowance {
  Cycle horizon = 0;
  Cycle next_event = kMaxCycle;  ///< earliest live pending event
  std::uint64_t steps = 0;       ///< watchdog budget remaining
};

class EventQueue {
 public:
  /// Engine follows the process-wide dispatch mode.
  EventQueue() : EventQueue(dispatch_mode()) {}
  /// Pin the engine explicitly (engine-equivalence tests).
  explicit EventQueue(DispatchMode mode);
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time. Starts at 0; advances as events run.
  Cycle now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (>= now). Returns a handle that
  /// can be passed to cancel().
  template <typename F>
  EventId schedule_at(Cycle at, F&& fn) {
    if (boxed_)
      return schedule_boxed(at, std::function<void()>(std::forward<F>(fn)));
    return schedule_pooled(at, EventFn(std::forward<F>(fn)));
  }

  /// Schedule `fn` after `delay` cycles from now.
  template <typename F>
  EventId schedule_after(Cycle delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a scheduled event in O(1). Cancelling an already-fired,
  /// already-cancelled, or unknown id is a no-op (returns false).
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live events.
  std::size_t size() const { return live_; }

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Machine fast path (DESIGN.md §12): the caller has just finished an
  /// event and wants to run its continuation at `at` without a heap
  /// round-trip. Succeeds only when that is observationally identical to
  /// scheduling the continuation and draining normally: the queue is
  /// inside run_until/run_all, `at` is within the drain horizon, every
  /// pending event fires strictly after `at` (earlier events must run
  /// first, and FIFO order among equal timestamps must be preserved), and
  /// the watchdog budget has room. On success the clock advances to `at`
  /// and the step counts as one scheduled + executed event, exactly as
  /// the enqueued continuation would have. Defined inline: this runs once
  /// per virtual instruction and is the dispatch loop's hottest guard.
  bool try_step_inline(Cycle at) {
    if (drain_depth_ == 0 || at > horizon_) return false;
    // A parked wake-up (schedule_or_inline) may precede this continuation
    // in FIFO order but is not in the heap yet; refuse until it flushes.
    if (!deferred_.empty()) return false;
    if (boxed_) return try_step_inline_slow(at);
    if (watchdog_budget_ != 0 &&
        executed_ - watchdog_armed_at_ >= watchdog_budget_) {
      return false;
    }
    if (!pool_heap_.empty()) {
      const PoolEntry& top = pool_heap_.top();
      if (top.at <= at) {
        // A live earlier event blocks inlining; a cancelled head needs the
        // pruning loop before the answer is known.
        if (!slots_[top.slot].cancelled) return false;
        return try_step_inline_slow(at);
      }
    }
    now_ = at;
    ++executed_;
    ++pending_scheduled_;
    ++pending_executed_;
    return true;
  }

  /// Machine wake-up path (DESIGN.md §12): schedule `fn` at `at`, but when
  /// called from inside a pooled event's closure, park it in a deferred
  /// list instead of the heap. After the closure finishes, the entry runs
  /// inline if that is observationally identical to draining it from the
  /// heap, and is enqueued otherwise. The entry reserves its FIFO sequence
  /// number HERE — at the moment the heap path would have — so events the
  /// closure schedules afterwards order identically either way. Deferred
  /// entries are not cancellable (no EventId is returned); use
  /// schedule_at/schedule_after for anything that may be cancelled.
  template <typename F>
  void schedule_or_inline(Cycle at, F&& fn) {
    if (boxed_ || event_depth_ == 0) {
      schedule_at(at, std::forward<F>(fn));
      return;
    }
    on_scheduled();  // the heap path counts the event live at raise time
    deferred_.push_back({at, next_seq_++, EventFn(std::forward<F>(fn))});
  }

  /// Batch variant of try_step_inline for the bytecode machine's fused
  /// typed-op loop: fills `a` with the window in which steps may run
  /// inline without consulting the queue again. False when inlining is
  /// impossible (not draining, or the boxed engine). The allowance is
  /// invalidated by ANY queue operation — the caller must hold it only
  /// across steps that touch no queue state.
  bool inline_allowance(InlineAllowance& a);

  /// Settle a fused run: clock at `now`, `steps` events executed. Each
  /// step must have satisfied the allowance it was granted under.
  void commit_inline(Cycle now, std::uint64_t steps) {
    now_ = now;
    executed_ += steps;
    pending_scheduled_ += steps;
    pending_executed_ += steps;
  }

  /// Run events until the queue is empty or virtual time would exceed
  /// `until`. Events scheduled exactly at `until` do run. Time is left at
  /// min(until, last event time) — callers that need now()==until can
  /// advance with advance_to().
  void run_until(Cycle until);

  /// Run until the queue is empty.
  void run_all();

  /// Move the clock forward without running anything (no events may be
  /// pending before `to`).
  void advance_to(Cycle to);

  /// Total events executed (for perf benches).
  std::uint64_t executed() const { return executed_; }

  /// How many deferred wake-ups ran in place vs. spilled to the heap
  /// (bytecode engine only; both stay 0 on the reference engine). The sum
  /// is the number of schedule_or_inline calls made from inside pooled
  /// closures.
  std::uint64_t deferred_inlined() const { return deferred_inlined_; }
  std::uint64_t deferred_spilled() const { return deferred_spilled_; }

  /// Arm the watchdog: after `budget` further events, step() throws
  /// WatchdogTimeout. 0 disarms. Virtual time is already bounded by
  /// run_until; the event budget is what catches livelocked runs that
  /// schedule unboundedly many events in bounded virtual time.
  void set_watchdog_budget(std::uint64_t budget);
  std::uint64_t watchdog_budget() const { return watchdog_budget_; }

  /// Engine this queue was constructed with.
  DispatchMode engine() const {
    return boxed_ ? DispatchMode::Reference : DispatchMode::Bytecode;
  }

  /// Push the batched obs counters into the global registry. Called from
  /// the destructor; the dispatch loop itself only bumps plain integers
  /// (keeping the hot path branch-free, DESIGN.md §12).
  void flush_metrics();

  /// Scrub the queue back to its just-constructed logical state while
  /// retaining every amortized buffer: the slot slab, the free list and
  /// the heap storage keep their capacity, so a worker-local world pool
  /// (DESIGN.md §15) pays the slab growth once per worker instead of once
  /// per seeded run. Batched obs counters are flushed first (reset is the
  /// run boundary, exactly like destruction), pending events are dropped
  /// with their closures destroyed, the watchdog is disarmed and the clock
  /// returns to 0. Outstanding EventIds from before the reset must be
  /// dropped by the caller; the generation tags make a stale cancel a
  /// harmless no-op either way. Must not be called from inside an event or
  /// a drain. A reset queue is observationally identical to a freshly
  /// constructed one — the world-reset parity battery in
  /// tests/worker_pool_test.cpp holds this bit-exactly.
  void reset();

 private:
  // ---- pooled engine -----------------------------------------------------

  /// Heap entry: plain data, ordered by (at, seq). seq is a monotonic
  /// scheduling sequence, giving FIFO among equal timestamps.
  struct PoolEntry {
    Cycle at;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const PoolEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  /// One reusable event slot. The generation tag makes stale cancels
  /// O(1)-detectable: an EventId is (slot << 32) | gen, and a cancel only
  /// lands if the slot is live under that same generation.
  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
    bool cancelled = false;
    EventFn fn;
  };

  // ---- boxed (reference) engine -----------------------------------------

  struct BoxedEntry {
    Cycle at;
    EventId id;
    std::function<void()> fn;
    bool operator>(const BoxedEntry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;  // FIFO among equal timestamps
    }
  };

  /// A wake-up parked by schedule_or_inline until the current event's
  /// closure returns. `seq` was reserved at defer time.
  struct Deferred {
    Cycle at;
    std::uint64_t seq;
    EventFn fn;
  };

  EventId schedule_pooled(Cycle at, EventFn fn);
  EventId schedule_boxed(Cycle at, std::function<void()> fn);
  std::uint32_t alloc_slot(EventFn fn);
  bool try_step_inline_slow(Cycle at);
  /// Inline admission for a deferred entry with a reserved seq: pending
  /// events that fire earlier — or at the same cycle with an earlier seq —
  /// must win; otherwise advance the clock and count the execution.
  bool admit_inline(Cycle at, std::uint64_t seq);
  /// Move a deferred entry into the heap under its reserved seq.
  void enqueue_reserved(Deferred d);
  /// Run or enqueue everything deferred by the closure that just returned.
  void flush_deferred();
  /// Exception path: spill all deferred entries to the heap.
  void spill_deferred();
  bool step_pooled();
  bool step_boxed();
  /// Drop cancelled entries at the head; report the next live fire time.
  bool peek_next(Cycle& at);
  void release_slot(std::uint32_t slot);
  void check_watchdog();
  void on_scheduled();

  bool is_cancelled_boxed(EventId id) const;
  void forget_cancelled_boxed(EventId id);

  const bool boxed_;

  std::priority_queue<PoolEntry, std::vector<PoolEntry>, std::greater<>>
      pool_heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;

  std::priority_queue<BoxedEntry, std::vector<BoxedEntry>, std::greater<>>
      boxed_heap_;
  std::vector<EventId> cancelled_;  // boxed engine: linear scan (retained)
  EventId next_boxed_id_ = 1;

  friend struct DrainScope;

  std::vector<Deferred> deferred_;  // non-empty only inside a pooled fn()
  std::uint32_t event_depth_ = 0;   // pooled closures currently on the stack
  std::uint64_t deferred_inlined_ = 0, deferred_spilled_ = 0;

  Cycle now_ = 0;
  std::size_t live_ = 0;
  std::uint32_t drain_depth_ = 0;  // >0 while inside run_until/run_all
  Cycle horizon_ = 0;              // inline steps may not pass this
  std::uint64_t executed_ = 0;
  std::uint64_t watchdog_budget_ = 0;    // 0 = disarmed
  std::uint64_t watchdog_armed_at_ = 0;  // executed_ when armed

  // Batched obs metrics (flushed by flush_metrics / the destructor).
  std::uint64_t pending_scheduled_ = 0;
  std::uint64_t pending_executed_ = 0;
  std::uint64_t pending_cancelled_ = 0;
  std::uint64_t queue_hwm_ = 0;
};

}  // namespace sent::sim
