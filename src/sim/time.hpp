// Virtual time.
//
// All simulation time is measured in MCU clock cycles of a Mica2-class mote
// (ATmega128 @ 7.3728 MHz), the platform the paper's case studies run on.
#pragma once

#include <cstdint>

namespace sent::sim {

/// A point in virtual time, in MCU cycles since simulation start.
using Cycle = std::uint64_t;

/// "End of time": an unreachable horizon for unbounded drains.
inline constexpr Cycle kMaxCycle = ~Cycle{0};

/// Mica2 / ATmega128L clock frequency.
inline constexpr Cycle kCyclesPerSecond = 7'372'800;

constexpr Cycle cycles_from_seconds(double s) {
  return static_cast<Cycle>(s * static_cast<double>(kCyclesPerSecond));
}

constexpr Cycle cycles_from_millis(double ms) {
  return cycles_from_seconds(ms / 1e3);
}

constexpr Cycle cycles_from_micros(double us) {
  return cycles_from_seconds(us / 1e6);
}

constexpr double seconds_from_cycles(Cycle c) {
  return static_cast<double>(c) / static_cast<double>(kCyclesPerSecond);
}

constexpr double millis_from_cycles(Cycle c) {
  return seconds_from_cycles(c) * 1e3;
}

}  // namespace sent::sim
