#include "stream/ingest.hpp"

#include <algorithm>

#include "ml/error.hpp"
#include "ml/ocsvm.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace sent::stream {

namespace {

// Streaming-layer introspection (DESIGN.md §14). Registered on first use
// like the pipeline metrics, so the set is identical whenever the ingest
// code runs and --jobs 1 / --jobs N snapshots stay byte-identical.
struct Metrics {
  obs::Counter streams_opened =
      obs::Registry::global().counter("stream.streams.opened");
  obs::Counter streams_finished =
      obs::Registry::global().counter("stream.streams.finished");
  obs::Counter streams_evicted =
      obs::Registry::global().counter("stream.streams.evicted");
  obs::Counter streams_poisoned =
      obs::Registry::global().counter("stream.streams.poisoned");
  obs::Counter frames_accepted =
      obs::Registry::global().counter("stream.frames.accepted");
  obs::Counter frames_quarantined =
      obs::Registry::global().counter("stream.frames.quarantined");
  obs::Counter frames_late =
      obs::Registry::global().counter("stream.frames.late");
  obs::Counter frames_duplicate =
      obs::Registry::global().counter("stream.frames.duplicate");
  obs::Counter frames_skipped =
      obs::Registry::global().counter("stream.frames.skipped");
  obs::Counter backpressure =
      obs::Registry::global().counter("stream.backpressure");
  obs::Counter gap_skips = obs::Registry::global().counter("stream.gap_skips");
  obs::Counter events = obs::Registry::global().counter("stream.events");
  obs::Counter instr_dropped =
      obs::Registry::global().counter("stream.instr_dropped");
  obs::Counter hello_mismatches =
      obs::Registry::global().counter("stream.hello_mismatches");
  obs::Counter intervals =
      obs::Registry::global().counter("stream.intervals");
  obs::Counter samples = obs::Registry::global().counter("stream.samples");
  obs::Counter flush_full =
      obs::Registry::global().counter("stream.flush.full");
  obs::Counter flush_cached =
      obs::Registry::global().counter("stream.flush.cached");
  obs::Counter flush_featurize_only =
      obs::Registry::global().counter("stream.flush.featurize_only");
  obs::Counter scored_full =
      obs::Registry::global().counter("stream.scored.full");
  obs::Counter scored_cached =
      obs::Registry::global().counter("stream.scored.cached");
  obs::Counter scored_featurize_only =
      obs::Registry::global().counter("stream.scored.featurize_only");
  obs::Gauge peak_buffered_bytes =
      obs::Registry::global().gauge("stream.peak_buffered_bytes");
  obs::Gauge peak_backlog =
      obs::Registry::global().gauge("stream.peak_backlog");
  obs::Gauge peak_streams =
      obs::Registry::global().gauge("stream.peak_streams");

  static const Metrics& get() {
    static Metrics m;
    return m;
  }
};

constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

}  // namespace

const char* to_string(ScoreMode mode) {
  switch (mode) {
    case ScoreMode::Unscored: return "unscored";
    case ScoreMode::Full: return "full";
    case ScoreMode::Cached: return "cached";
    case ScoreMode::FeaturizeOnly: return "featurize-only";
  }
  return "?";
}

const char* to_string(StreamState state) {
  switch (state) {
    case StreamState::Live: return "live";
    case StreamState::Finished: return "finished";
    case StreamState::Evicted: return "evicted";
  }
  return "?";
}

struct FleetIngest::Session {
  std::uint32_t device = 0;
  std::uint32_t node_id = 0;  ///< from Hello; the device id until then
  std::size_t run = 0;        ///< registration index (the sample's run tag)
  StreamState state = StreamState::Live;
  bool poisoned = false;

  std::uint64_t next_seq = 0;
  struct Parked {
    trace::Frame frame;
    std::size_t bytes = 0;
  };
  std::map<std::uint64_t, Parked> window;
  std::size_t window_bytes = 0;
  std::uint64_t last_delivery_tick = 0;
  std::uint64_t last_activity_tick = 0;

  core::StreamAnatomizer machine;
  /// Retained suffixes of the three event streams, evicted up to the
  /// earliest window any in-flight or pending interval can still need.
  std::vector<trace::LifecycleItem> items;
  std::size_t items_base = 0;
  std::vector<trace::InstrExec> instrs;
  std::vector<trace::BugMarker> bugs;
  sim::Cycle watermark = 0;  ///< max delivered record cycle

  std::vector<core::EventInterval> pending;  ///< closed, window incomplete
  StreamCounters counters;
  std::deque<QuarantineRecord> ledger;
  std::vector<std::size_t> sample_slots;  ///< indices into samples_
};

FleetIngest::FleetIngest(IngestConfig config) : config_(std::move(config)) {
  SENT_REQUIRE(config_.reorder_window >= 1);
  SENT_REQUIRE_MSG(config_.cached_backlog <= config_.featurize_only_backlog,
                   "degradation ladder thresholds out of order");
  if (config_.features != pipeline::FeatureKind::Coarse) {
    SENT_REQUIRE_MSG(!config_.instr_table.empty(),
                     "fleet ingest needs the program's instruction table");
  }
  if (config_.features == pipeline::FeatureKind::CodeObject)
    code_columns_ = core::CodeObjectColumns::build(config_.instr_table);
  table_fingerprint_ = trace::instr_table_fingerprint(config_.instr_table);
  Metrics::get();  // register the metric set up front
}

FleetIngest::~FleetIngest() = default;

FleetIngest::Session& FleetIngest::session_for(std::uint32_t device) {
  auto it = device_index_.find(device);
  if (it != device_index_.end()) return *sessions_[it->second];
  auto session = std::make_unique<Session>();
  session->device = device;
  session->node_id = device;
  session->run = sessions_.size();
  session->last_delivery_tick = now_;
  session->last_activity_tick = now_;
  device_index_.emplace(device, sessions_.size());
  sessions_.push_back(std::move(session));
  Metrics::get().streams_opened.inc();
  Metrics::get().peak_streams.record(sessions_.size());
  return *sessions_.back();
}

void FleetIngest::quarantine(Session& s, std::uint64_t seq,
                             std::string reason) {
  ++s.counters.frames_quarantined;
  Metrics::get().frames_quarantined.inc();
  s.ledger.push_back(QuarantineRecord{now_, seq, std::move(reason)});
  while (s.ledger.size() > config_.error_ledger_capacity)
    s.ledger.pop_front();
}

Admit FleetIngest::offer(std::uint32_t device,
                         std::span<const std::uint8_t> bytes) {
  Session& s = session_for(device);
  if (s.state != StreamState::Live) return Admit::Rejected;
  s.last_activity_tick = now_;

  trace::FrameDecodeResult decoded = trace::decode_frame(bytes);
  if (!decoded.ok) {
    quarantine(s, bytes.size() >= 15 ? decoded.frame.seq : kNoSeq,
               std::move(decoded.error));
    return Admit::Accepted;
  }
  trace::Frame frame = std::move(decoded.frame);
  if (frame.device != device) {
    quarantine(s, frame.seq,
               "device id mismatch (frame says " +
                   std::to_string(frame.device) + ")");
    return Admit::Accepted;
  }

  if (frame.seq < s.next_seq) {
    // Late or already-delivered frame: first arrival won, deterministically.
    ++s.counters.frames_late;
    Metrics::get().frames_late.inc();
    return Admit::Accepted;
  }
  if (frame.seq == s.next_seq) {
    deliver(s, std::move(frame));
    deliver_ready(s);
    return Admit::Accepted;
  }
  // Gap: park the frame in the bounded reorder window.
  if (s.window.count(frame.seq)) {
    ++s.counters.frames_duplicate;
    Metrics::get().frames_duplicate.inc();
    return Admit::Accepted;
  }
  if (s.window.size() >= config_.reorder_window) {
    ++s.counters.backpressure_signals;
    Metrics::get().backpressure.inc();
    return Admit::Backpressure;
  }
  s.window_bytes += bytes.size();
  s.window.emplace(frame.seq,
                   Session::Parked{std::move(frame), bytes.size()});
  return Admit::Accepted;
}

void FleetIngest::deliver_ready(Session& s) {
  while (s.state == StreamState::Live) {
    auto it = s.window.find(s.next_seq);
    if (it == s.window.end()) break;
    trace::Frame frame = std::move(it->second.frame);
    s.window_bytes -= it->second.bytes;
    s.window.erase(it);
    deliver(s, std::move(frame));
  }
}

void FleetIngest::on_lifecycle(Session& s,
                               const trace::LifecycleItem& item) {
  if (s.poisoned) return;
  try {
    s.machine.push(item);
    s.items.push_back(item);
  } catch (const util::AssertionError& e) {
    // Concurrency-model violation mid-stream (frames lost to a gap skip
    // can cut a handler in half): analysis for this stream stops, the
    // salvaged prefix of intervals stays, the stream itself survives.
    s.poisoned = true;
    Metrics::get().streams_poisoned.inc();
    s.ledger.push_back(
        QuarantineRecord{now_, kNoSeq, std::string("analysis poisoned: ") +
                                           e.what()});
    while (s.ledger.size() > config_.error_ledger_capacity)
      s.ledger.pop_front();
  }
}

void FleetIngest::deliver(Session& s, trace::Frame frame) {
  ++s.counters.frames_accepted;
  Metrics::get().frames_accepted.inc();
  s.next_seq = frame.seq + 1;
  s.last_delivery_tick = now_;

  switch (frame.type) {
    case trace::FrameType::Hello:
      s.node_id = frame.node_id;
      if (frame.instr_table_size != config_.instr_table.size() ||
          frame.instr_table_hash != table_fingerprint_) {
        ++s.counters.hello_mismatches;
        Metrics::get().hello_mismatches.inc();
        s.ledger.push_back(QuarantineRecord{
            now_, frame.seq, "instruction-table fingerprint mismatch"});
        while (s.ledger.size() > config_.error_ledger_capacity)
          s.ledger.pop_front();
      }
      return;
    case trace::FrameType::End:
      finalize(s, frame.run_end, StreamState::Finished);
      return;
    case trace::FrameType::Events:
      break;
  }

  s.counters.events += frame.events.size();
  Metrics::get().events.inc(frame.events.size());
  for (const trace::FrameEvent& ev : frame.events) {
    switch (ev.kind) {
      case trace::FrameEvent::Kind::Lifecycle:
        on_lifecycle(s, ev.item);
        break;
      case trace::FrameEvent::Kind::Instr: {
        const bool late = ev.instr.cycle < s.watermark;
        const bool out_of_table =
            config_.features != pipeline::FeatureKind::Coarse &&
            ev.instr.instr >= config_.instr_table.size();
        if (late || out_of_table) {
          ++s.counters.instr_dropped;
          Metrics::get().instr_dropped.inc();
          continue;  // keep the buffer sorted and indexes in range
        }
        s.instrs.push_back(ev.instr);
        break;
      }
      case trace::FrameEvent::Kind::Bug:
        s.bugs.push_back(ev.bug);
        break;
    }
    s.watermark = std::max(s.watermark, ev.cycle());
  }
  collect_intervals(s);
  featurize_ready(s, /*final_flush=*/false);
  evict_buffers(s);
}

void FleetIngest::collect_intervals(Session& s) {
  if (s.machine.ready_count() == 0) return;
  for (core::EventInterval& interval : s.machine.drain()) {
    if (interval.irq != config_.line) continue;
    ++s.counters.intervals;
    Metrics::get().intervals.inc();
    s.pending.push_back(interval);
  }
}

void FleetIngest::featurize_ready(Session& s, bool final_flush) {
  std::size_t kept = 0;
  for (core::EventInterval& interval : s.pending) {
    // Strictly-greater watermark gate: only once a record PAST the window
    // end has been delivered can no instruction at end_cycle still arrive.
    if (!final_flush && interval.end_cycle >= s.watermark) {
      s.pending[kept++] = interval;
      continue;
    }
    featurize_one(s, interval);
  }
  s.pending.resize(kept);
}

void FleetIngest::featurize_one(Session& s,
                                const core::EventInterval& interval) {
  SampleSlot slot;
  slot.sample.node_id = s.node_id;
  slot.sample.run = s.run;
  slot.sample.interval = interval;
  for (const trace::BugMarker& bug : s.bugs) {
    if (bug.cycle >= interval.start_cycle &&
        bug.cycle <= interval.end_cycle) {
      slot.sample.has_bug = true;
      slot.sample.bug_kinds.push_back(bug.kind);
    }
  }
  switch (config_.features) {
    case pipeline::FeatureKind::InstructionCounter:
      slot.row.assign(config_.instr_table.size(), 0.0);
      core::instruction_counter_row(s.instrs, interval, slot.row);
      break;
    case pipeline::FeatureKind::Coarse:
      slot.row.assign(core::coarse_feature_names().size(), 0.0);
      core::coarse_row(s.instrs, s.items, s.items_base, interval, slot.row);
      break;
    case pipeline::FeatureKind::CodeObject:
      slot.row.assign(code_columns_.names.size(), 0.0);
      core::code_object_row(s.instrs, code_columns_, interval, slot.row);
      break;
  }
  s.sample_slots.push_back(samples_.size());
  samples_.push_back(std::move(slot));
  ++backlog_;
  ++s.counters.samples;
  Metrics::get().samples.inc();
}

void FleetIngest::evict_buffers(Session& s) {
  // Nothing before the earliest window any in-flight instance or pending
  // interval can still reference is ever needed again; future intervals
  // open at or after the watermark.
  sim::Cycle cycle_floor = s.watermark;
  if (auto c = s.machine.earliest_open_start_cycle())
    cycle_floor = std::min(cycle_floor, *c);
  std::size_t index_floor = s.items_base + s.items.size();
  if (auto i = s.machine.earliest_open_start_index())
    index_floor = std::min(index_floor, *i);
  for (const core::EventInterval& interval : s.pending) {
    cycle_floor = std::min(cycle_floor, interval.start_cycle);
    index_floor = std::min(index_floor, interval.start_index);
  }

  auto instr_cut = std::lower_bound(
      s.instrs.begin(), s.instrs.end(), cycle_floor,
      [](const trace::InstrExec& e, sim::Cycle c) { return e.cycle < c; });
  s.instrs.erase(s.instrs.begin(), instr_cut);
  std::erase_if(s.bugs, [&](const trace::BugMarker& bug) {
    return bug.cycle < cycle_floor;
  });
  if (index_floor > s.items_base) {
    s.items.erase(s.items.begin(),
                  s.items.begin() +
                      static_cast<std::ptrdiff_t>(index_floor - s.items_base));
    s.items_base = index_floor;
  }
}

void FleetIngest::finalize(Session& s, sim::Cycle run_end,
                           StreamState state) {
  if (s.state != StreamState::Live) return;
  // Frames still parked behind a gap are lost with the stream.
  if (!s.window.empty()) {
    s.counters.frames_skipped += s.window.size();
    Metrics::get().frames_skipped.inc(s.window.size());
    s.window.clear();
    s.window_bytes = 0;
  }
  if (!s.machine.finished()) {
    try {
      s.machine.finish(run_end);
    } catch (const util::AssertionError& e) {
      s.poisoned = true;
      Metrics::get().streams_poisoned.inc();
      s.ledger.push_back(QuarantineRecord{
          now_, kNoSeq, std::string("finalize poisoned: ") + e.what()});
      while (s.ledger.size() > config_.error_ledger_capacity)
        s.ledger.pop_front();
    }
  }
  collect_intervals(s);
  featurize_ready(s, /*final_flush=*/true);
  s.items.clear();
  s.items.shrink_to_fit();
  s.items_base = 0;
  s.instrs.clear();
  s.instrs.shrink_to_fit();
  s.bugs.clear();
  s.state = state;
  if (state == StreamState::Evicted)
    Metrics::get().streams_evicted.inc();
  else
    Metrics::get().streams_finished.inc();
}

void FleetIngest::tick() {
  ++now_;
  for (auto& session : sessions_) {
    Session& s = *session;
    if (s.state != StreamState::Live) continue;
    // Stall watchdog: a gap that has blocked delivery past the deadline is
    // skipped — the missing frames are declared lost and the stream moves
    // on from the earliest parked frame.
    if (!s.window.empty() &&
        now_ - s.last_delivery_tick > config_.stall_deadline_ticks) {
      const std::uint64_t first = s.window.begin()->first;
      ++s.counters.gap_skips;
      Metrics::get().gap_skips.inc();
      s.counters.frames_skipped += first - s.next_seq;
      Metrics::get().frames_skipped.inc(first - s.next_seq);
      s.next_seq = first;
      deliver_ready(s);
    }
    // Idle watchdog: a stream whose producer went silent is evicted, its
    // in-flight intervals truncated at the last delivered cycle.
    if (s.state == StreamState::Live &&
        now_ - s.last_activity_tick > config_.evict_after_idle_ticks) {
      finalize(s, s.watermark, StreamState::Evicted);
    }
  }
  flush_scores(/*force=*/false);
  peak_buffered_bytes_ = std::max(peak_buffered_bytes_, buffered_bytes());
  Metrics::get().peak_buffered_bytes.record(peak_buffered_bytes_);
}

void FleetIngest::finish_all() {
  for (auto& session : sessions_) {
    Session& s = *session;
    if (s.state == StreamState::Live)
      finalize(s, s.watermark, StreamState::Finished);
  }
  flush_scores(/*force=*/true);
  peak_buffered_bytes_ = std::max(peak_buffered_bytes_, buffered_bytes());
  Metrics::get().peak_buffered_bytes.record(peak_buffered_bytes_);
}

void FleetIngest::flush_scores(bool force) {
  if (backlog_ == 0) return;
  if (!force && backlog_ < config_.rescore_backlog) return;
  Metrics::get().peak_backlog.record(backlog_);

  ScoreMode mode = ScoreMode::Full;
  if (backlog_ > config_.featurize_only_backlog) {
    mode = ScoreMode::FeaturizeOnly;
  } else if (backlog_ > config_.cached_backlog && model_ &&
             model_->fitted()) {
    mode = ScoreMode::Cached;
  }

  if (mode == ScoreMode::Full) {
    const std::size_t dim = samples_.front().row.size();
    ml::Matrix m(samples_.size(), dim);
    for (std::size_t i = 0; i < samples_.size(); ++i)
      std::copy(samples_[i].row.begin(), samples_[i].row.end(),
                m.row(i).begin());
    ml::OcsvmParams params;
    params.pool = config_.pool;
    auto svm = std::make_unique<ml::OneClassSvm>(params);
    std::vector<double> scores;
    try {
      scores = svm->score(m);
    } catch (const ml::TrainingError&) {
      // Degenerate feature matrix: shed this round instead of dying; the
      // final_report path reports its own degradation via the k-NN
      // fallback.
      mode = ScoreMode::FeaturizeOnly;
    }
    if (mode == ScoreMode::Full) {
      model_ = std::move(svm);
      for (std::size_t i = 0; i < samples_.size(); ++i) {
        samples_[i].score = scores[i];
        if (samples_[i].mode == ScoreMode::Unscored) {
          samples_[i].mode = ScoreMode::Full;
          Metrics::get().scored_full.inc();
        }
      }
      Metrics::get().flush_full.inc();
    }
  }

  if (mode == ScoreMode::Cached) {
    std::vector<std::size_t> fresh;
    for (std::size_t i = 0; i < samples_.size(); ++i)
      if (samples_[i].mode == ScoreMode::Unscored) fresh.push_back(i);
    const std::size_t dim = samples_.front().row.size();
    ml::Matrix m(fresh.size(), dim);
    for (std::size_t i = 0; i < fresh.size(); ++i)
      std::copy(samples_[fresh[i]].row.begin(),
                samples_[fresh[i]].row.end(), m.row(i).begin());
    std::vector<double> scores = model_->decision_batch(m);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      samples_[fresh[i]].score = scores[i];
      samples_[fresh[i]].mode = ScoreMode::Cached;
      Metrics::get().scored_cached.inc();
    }
    Metrics::get().flush_cached.inc();
  }

  if (mode == ScoreMode::FeaturizeOnly) {
    for (SampleSlot& slot : samples_) {
      if (slot.mode == ScoreMode::Unscored) {
        slot.mode = ScoreMode::FeaturizeOnly;
        Metrics::get().scored_featurize_only.inc();
      }
    }
    Metrics::get().flush_featurize_only.inc();
  }

  backlog_ = 0;
  rebuild_board();
}

void FleetIngest::rebuild_board() {
  std::vector<std::size_t> scored;
  for (std::size_t i = 0; i < samples_.size(); ++i)
    if (samples_[i].mode == ScoreMode::Full ||
        samples_[i].mode == ScoreMode::Cached)
      scored.push_back(i);
  std::sort(scored.begin(), scored.end(),
            [this](std::size_t a, std::size_t b) {
              if (samples_[a].score != samples_[b].score)
                return samples_[a].score < samples_[b].score;
              return a < b;
            });
  if (scored.size() > config_.top_k) scored.resize(config_.top_k);
  board_.clear();
  for (std::size_t i : scored) {
    const SampleSlot& slot = samples_[i];
    board_.push_back(BoardEntry{slot.score,
                                sessions_[slot.sample.run]->device,
                                slot.sample.label(true, true), slot.mode});
  }
}

std::vector<std::string> FleetIngest::feature_names() const {
  switch (config_.features) {
    case pipeline::FeatureKind::InstructionCounter:
      return core::instruction_counter_names(config_.instr_table);
    case pipeline::FeatureKind::Coarse:
      return core::coarse_feature_names();
    case pipeline::FeatureKind::CodeObject:
      return code_columns_.names;
  }
  return {};
}

pipeline::AnalysisReport FleetIngest::final_report(
    const pipeline::AnalysisOptions& options) const {
  SENT_REQUIRE_MSG(all_terminal(),
                   "final_report() before every stream terminated");
  pipeline::AnalysisReport report;
  core::FeatureMatrix matrix;
  matrix.names = feature_names();
  matrix.values = ml::Matrix(0, matrix.names.size());
  for (const auto& session : sessions_) {
    std::vector<std::size_t> order = session->sample_slots;
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                return samples_[a].sample.interval.start_index <
                       samples_[b].sample.interval.start_index;
              });
    for (std::size_t i : order) {
      const SampleSlot& slot = samples_[i];
      if (options.drop_truncated && slot.sample.interval.truncated)
        continue;
      matrix.values.append_row(slot.row);
      report.samples.push_back(slot.sample);
    }
  }
  SENT_REQUIRE_MSG(!report.samples.empty(),
                   "no event-handling intervals for line "
                       << int(config_.line) << " in the ingested streams");
  pipeline::score_and_rank(report, std::move(matrix), options);
  return report;
}

std::vector<StreamStatus> FleetIngest::status() const {
  std::vector<StreamStatus> out;
  out.reserve(sessions_.size());
  for (const auto& session : sessions_) {
    StreamStatus st;
    st.device = session->device;
    st.node_id = session->node_id;
    st.state = session->state;
    st.poisoned = session->poisoned;
    st.counters = session->counters;
    st.ledger.assign(session->ledger.begin(), session->ledger.end());
    st.buffered_bytes = session_bytes(*session);
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<ScoreMode> FleetIngest::sample_modes() const {
  std::vector<ScoreMode> modes;
  modes.reserve(samples_.size());
  for (const SampleSlot& slot : samples_) modes.push_back(slot.mode);
  return modes;
}

bool FleetIngest::all_terminal() const {
  for (const auto& session : sessions_)
    if (session->state == StreamState::Live) return false;
  return true;
}

std::size_t FleetIngest::session_bytes(const Session& s) const {
  return s.window_bytes + s.instrs.size() * sizeof(trace::InstrExec) +
         s.items.size() * sizeof(trace::LifecycleItem) +
         s.bugs.size() * (sizeof(trace::BugMarker) + 16) +
         s.pending.size() * sizeof(core::EventInterval) +
         s.machine.state_bytes();
}

std::size_t FleetIngest::buffered_bytes() const {
  std::size_t total = 0;
  for (const auto& session : sessions_) total += session_bytes(*session);
  return total;
}

}  // namespace sent::stream
