// Resilient streaming fleet ingest (DESIGN.md §14).
//
// A FleetIngest accepts interleaved per-device frame streams (the wire
// format of trace/framing.hpp), drives one push-mode anatomizer per stream,
// featurizes intervals the moment their instruction windows are complete,
// and keeps a live top-K outlier board over incrementally re-scored
// samples. After every stream terminates, final_report() re-runs the exact
// batch scoring tail (pipeline::score_and_rank) over the accumulated rows,
// so a clean streamed fleet ranks BIT-IDENTICALLY to pipeline::analyze over
// the same traces (enforced by tests/stream_parity_test.cpp).
//
// The robustness envelope, per stream:
//
//   backpressure — out-of-order frames wait in a bounded reorder window;
//                  offer() returns Admit::Backpressure (frame NOT consumed)
//                  when it is full, so producers must pause, not the
//                  service grow;
//   late/dup     — frames whose seq is below the delivery watermark, and
//                  duplicates of buffered seqs, are dropped and counted
//                  (deterministic policy: first arrival wins);
//   quarantine   — frames that fail decode_frame go to a bounded per-stream
//                  error ledger; the stream itself survives. A lifecycle
//                  record that poisons the anatomizer (MalformedTrace)
//                  stops that stream's analysis but keeps its salvaged
//                  intervals;
//   watchdogs    — logical-tick driven: a gap blocking delivery longer than
//                  stall_deadline_ticks is skipped (lost frames counted);
//                  a stream idle longer than evict_after_idle_ticks is
//                  force-finalized as Evicted with truncated intervals;
//   degradation  — scoring sheds load by backlog: a small backlog re-scores
//                  everything with a fresh OCSVM (Full), a larger one only
//                  scores new rows against the last fitted model (Cached),
//                  an extreme one skips scoring entirely (FeaturizeOnly).
//                  The mode each sample was first scored under is recorded
//                  on the sample and in the obs counters.
//
// Time is LOGICAL (tick()), never wall-clock, and all counters are logical
// quantities, so a fleet drive is bit-identical at any --jobs: the thread
// pool only accelerates detector math, which is thread-count invariant.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/stream_anatomizer.hpp"
#include "pipeline/sentomist.hpp"
#include "trace/framing.hpp"

namespace sent::ml {
class OneClassSvm;
}

namespace sent::stream {

/// Outcome of offering one frame.
enum class Admit : std::uint8_t {
  Accepted,      ///< consumed (delivered, buffered, dropped or quarantined)
  Backpressure,  ///< reorder window full — NOT consumed, retry later
  Rejected,      ///< stream already terminal — NOT consumed
};

/// Rung of the degradation ladder a sample was first scored under.
enum class ScoreMode : std::uint8_t {
  Unscored = 0,
  Full = 1,           ///< fresh OCSVM over every sample
  Cached = 2,         ///< decision_batch against the last fitted model
  FeaturizeOnly = 3,  ///< overload: row kept, scoring skipped
};

const char* to_string(ScoreMode mode);

enum class StreamState : std::uint8_t { Live, Finished, Evicted };

const char* to_string(StreamState state);

struct QuarantineRecord {
  std::uint64_t tick = 0;  ///< service tick of the offence
  std::uint64_t seq = 0;   ///< frame seq when parseable, ~0 otherwise
  std::string reason;
};

struct IngestConfig {
  /// Event type under test (the analysis line) and feature abstraction.
  trace::IrqLine line = 0;
  pipeline::FeatureKind features =
      pipeline::FeatureKind::InstructionCounter;
  /// The fleet's program image; Hello fingerprints are checked against it.
  std::vector<trace::InstrMeta> instr_table;

  std::size_t reorder_window = 32;  ///< out-of-order frames held per stream
  std::uint64_t stall_deadline_ticks = 64;
  std::uint64_t evict_after_idle_ticks = 1024;
  std::size_t error_ledger_capacity = 16;

  /// Degradation ladder: a flush triggers at rescore_backlog unscored
  /// samples; above cached_backlog it degrades to Cached, above
  /// featurize_only_backlog to FeaturizeOnly.
  std::size_t rescore_backlog = 8;
  std::size_t cached_backlog = 64;
  std::size_t featurize_only_backlog = 256;

  std::size_t top_k = 10;  ///< live outlier-board size

  /// Borrowed pool for detector math (scores are thread-count invariant).
  util::ThreadPool* pool = nullptr;
};

/// One row of the live outlier board (ascending score = most suspicious
/// first; raw decision values, not normalized).
struct BoardEntry {
  double score = 0.0;
  std::uint32_t device = 0;
  std::string label;
  ScoreMode mode = ScoreMode::Unscored;
};

/// Per-stream logical counters (all deterministic).
struct StreamCounters {
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_quarantined = 0;
  std::uint64_t frames_late = 0;       ///< seq below the delivery watermark
  std::uint64_t frames_duplicate = 0;  ///< duplicate of a buffered seq
  std::uint64_t frames_skipped = 0;    ///< lost to stall gap-skips/teardown
  std::uint64_t backpressure_signals = 0;
  std::uint64_t gap_skips = 0;
  std::uint64_t events = 0;
  std::uint64_t instr_dropped = 0;  ///< late or out-of-table instructions
  std::uint64_t hello_mismatches = 0;
  std::uint64_t intervals = 0;  ///< closed intervals of the analysis line
  std::uint64_t samples = 0;    ///< featurized intervals

  bool operator==(const StreamCounters&) const = default;
};

/// Introspection view of one stream.
struct StreamStatus {
  std::uint32_t device = 0;
  std::uint32_t node_id = 0;
  StreamState state = StreamState::Live;
  bool poisoned = false;  ///< analysis stopped by a MalformedTrace
  StreamCounters counters;
  std::vector<QuarantineRecord> ledger;  ///< most recent offences
  std::size_t buffered_bytes = 0;
};

class FleetIngest {
 public:
  explicit FleetIngest(IngestConfig config);
  ~FleetIngest();

  FleetIngest(const FleetIngest&) = delete;
  FleetIngest& operator=(const FleetIngest&) = delete;

  /// Offer one encoded frame from `device`. Creates the stream on first
  /// contact. Only Admit::Accepted consumes the frame.
  Admit offer(std::uint32_t device, std::span<const std::uint8_t> bytes);

  /// Advance logical time: run stall/idle watchdogs, then flush the scoring
  /// backlog through the degradation ladder if it is due.
  void tick();
  std::uint64_t now() const { return now_; }

  /// Orderly shutdown: finalize every live stream (truncating in-flight
  /// intervals at its delivery watermark) and run a last scoring flush.
  void finish_all();

  /// Live outlier board (rebuilt after every scoring flush).
  const std::vector<BoardEntry>& board() const { return board_; }

  /// Batch-equivalent final analysis. Requires every stream terminal
  /// (finish_all() or End frames / eviction). Samples are assembled per
  /// stream in registration order, each stream's sorted by interval start,
  /// matching pipeline::analyze over the same traces row for row.
  pipeline::AnalysisReport final_report(
      const pipeline::AnalysisOptions& options = {}) const;

  std::vector<StreamStatus> status() const;
  /// Scored/unscored samples with their first-score mode, arrival order.
  std::vector<ScoreMode> sample_modes() const;

  std::size_t stream_count() const { return sessions_.size(); }
  std::size_t sample_count() const { return samples_.size(); }
  bool all_terminal() const;

  /// Retained-state memory proxy: reorder windows + event buffers +
  /// machine state across streams (excludes the analysis output, which
  /// grows with the fleet's interval count by design).
  std::size_t buffered_bytes() const;
  std::size_t peak_buffered_bytes() const { return peak_buffered_bytes_; }

 private:
  struct Session;
  struct SampleSlot {
    pipeline::Sample sample;
    std::vector<double> row;
    double score = 0.0;
    ScoreMode mode = ScoreMode::Unscored;
  };

  Session& session_for(std::uint32_t device);
  void deliver(Session& s, trace::Frame frame);
  void deliver_ready(Session& s);
  void on_lifecycle(Session& s, const trace::LifecycleItem& item);
  void quarantine(Session& s, std::uint64_t seq, std::string reason);
  void collect_intervals(Session& s);
  void featurize_ready(Session& s, bool final_flush);
  void featurize_one(Session& s, const core::EventInterval& interval);
  void evict_buffers(Session& s);
  void finalize(Session& s, sim::Cycle run_end, StreamState state);
  void flush_scores(bool force);
  void rebuild_board();
  std::size_t session_bytes(const Session& s) const;
  std::vector<std::string> feature_names() const;

  IngestConfig config_;
  core::CodeObjectColumns code_columns_;  ///< for FeatureKind::CodeObject
  std::uint64_t table_fingerprint_ = 0;

  std::vector<std::unique_ptr<Session>> sessions_;  ///< registration order
  std::map<std::uint32_t, std::size_t> device_index_;

  std::vector<SampleSlot> samples_;  ///< arrival order (matrix-row order)
  std::size_t backlog_ = 0;          ///< unscored samples
  std::unique_ptr<ml::OneClassSvm> model_;  ///< last fully fitted detector

  std::vector<BoardEntry> board_;
  std::uint64_t now_ = 0;
  std::size_t peak_buffered_bytes_ = 0;
};

}  // namespace sent::stream
