#include "trace/framing.hpp"

#include <algorithm>
#include <string_view>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace sent::trace {

namespace {

constexpr std::size_t kHeaderBytes = 19;
constexpr std::size_t kTrailerBytes = 8;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

/// Bounds-checked little-endian reader; every read either succeeds or
/// leaves the cursor failed. No pointer arithmetic past the span.
struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  bool failed = false;

  bool has(std::size_t n) const { return !failed && bytes.size() - pos >= n; }

  std::uint64_t read(std::size_t n) {
    if (!has(n)) {
      failed = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
      v |= std::uint64_t{bytes[pos + i]} << (8 * i);
    pos += n;
    return v;
  }

  std::uint8_t u8() { return static_cast<std::uint8_t>(read(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(read(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(read(4)); }
  std::uint64_t u64() { return read(8); }
};

void encode_payload(const Frame& frame, std::vector<std::uint8_t>& out) {
  switch (frame.type) {
    case FrameType::Hello:
      put_u32(out, frame.node_id);
      put_u32(out, frame.instr_table_size);
      put_u64(out, frame.instr_table_hash);
      break;
    case FrameType::Events:
      put_u32(out, static_cast<std::uint32_t>(frame.events.size()));
      for (const FrameEvent& ev : frame.events) {
        put_u8(out, static_cast<std::uint8_t>(ev.kind));
        switch (ev.kind) {
          case FrameEvent::Kind::Lifecycle:
            put_u8(out, static_cast<std::uint8_t>(ev.item.kind));
            put_u64(out, ev.item.cycle);
            put_u32(out, ev.item.arg);
            put_u64(out, ev.item.end_cycle);
            break;
          case FrameEvent::Kind::Instr:
            put_u64(out, ev.instr.cycle);
            put_u32(out, ev.instr.instr);
            break;
          case FrameEvent::Kind::Bug: {
            put_u64(out, ev.bug.cycle);
            SENT_REQUIRE_MSG(ev.bug.kind.size() <= 0xffff,
                             "bug kind string too long to frame");
            put_u16(out, static_cast<std::uint16_t>(ev.bug.kind.size()));
            for (char c : ev.bug.kind)
              put_u8(out, static_cast<std::uint8_t>(c));
            break;
          }
        }
      }
      break;
    case FrameType::End:
      put_u64(out, frame.run_end);
      break;
  }
}

bool decode_payload(Cursor& c, Frame& frame, std::string& error) {
  switch (frame.type) {
    case FrameType::Hello:
      frame.node_id = c.u32();
      frame.instr_table_size = c.u32();
      frame.instr_table_hash = c.u64();
      if (c.failed) error = "truncated Hello payload";
      return !c.failed;
    case FrameType::Events: {
      std::uint32_t count = c.u32();
      // No reserve from the wire-supplied count: a corrupt count must cost
      // O(actual bytes), not O(claimed records), before it is rejected.
      for (std::uint32_t i = 0; i < count; ++i) {
        FrameEvent ev;
        std::uint8_t kind = c.u8();
        switch (kind) {
          case static_cast<std::uint8_t>(FrameEvent::Kind::Lifecycle): {
            ev.kind = FrameEvent::Kind::Lifecycle;
            std::uint8_t lk = c.u8();
            if (lk > static_cast<std::uint8_t>(LifecycleKind::Reti)) {
              error = "unknown lifecycle kind code " + std::to_string(lk);
              return false;
            }
            ev.item.kind = static_cast<LifecycleKind>(lk);
            ev.item.cycle = c.u64();
            ev.item.arg = c.u32();
            ev.item.end_cycle = c.u64();
            if (!c.failed && ev.item.kind == LifecycleKind::RunTask &&
                ev.item.end_cycle != 0 &&
                ev.item.end_cycle < ev.item.cycle) {
              error = "runTask record ends before it starts";
              return false;
            }
            break;
          }
          case static_cast<std::uint8_t>(FrameEvent::Kind::Instr):
            ev.kind = FrameEvent::Kind::Instr;
            ev.instr.cycle = c.u64();
            ev.instr.instr = c.u32();
            break;
          case static_cast<std::uint8_t>(FrameEvent::Kind::Bug): {
            ev.kind = FrameEvent::Kind::Bug;
            ev.bug.cycle = c.u64();
            std::uint16_t len = c.u16();
            if (!c.has(len)) {
              error = "truncated bug-marker string";
              return false;
            }
            ev.bug.kind.assign(
                reinterpret_cast<const char*>(c.bytes.data() + c.pos), len);
            c.pos += len;
            break;
          }
          default:
            error = "unknown event kind code " + std::to_string(kind);
            return false;
        }
        if (c.failed) {
          error = "truncated event record";
          return false;
        }
        frame.events.push_back(std::move(ev));
      }
      return true;
    }
    case FrameType::End:
      frame.run_end = c.u64();
      if (c.failed) error = "truncated End payload";
      return !c.failed;
  }
  error = "unknown frame type";
  return false;
}

std::uint64_t checksum_of(std::span<const std::uint8_t> bytes) {
  return util::fnv1a64(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  put_u8(out, kFrameMagic);
  put_u8(out, kFrameVersion);
  put_u8(out, static_cast<std::uint8_t>(frame.type));
  put_u32(out, frame.device);
  put_u64(out, frame.seq);
  put_u32(out, 0);  // payload length patched below
  encode_payload(frame, out);
  const auto payload_len =
      static_cast<std::uint32_t>(out.size() - kHeaderBytes);
  for (int i = 0; i < 4; ++i)
    out[15 + i] = (payload_len >> (8 * i)) & 0xff;
  put_u64(out, checksum_of({out.data(), out.size()}));
  return out;
}

FrameDecodeResult decode_frame(std::span<const std::uint8_t> bytes) {
  FrameDecodeResult result;
  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    result.error = "frame too short (" + std::to_string(bytes.size()) +
                   " bytes)";
    return result;
  }
  Cursor c{bytes};
  std::uint8_t magic = c.u8();
  std::uint8_t version = c.u8();
  std::uint8_t type = c.u8();
  result.frame.device = c.u32();
  result.frame.seq = c.u64();
  std::uint32_t payload_len = c.u32();
  if (magic != kFrameMagic) {
    result.error = "bad magic byte";
    return result;
  }
  if (version != kFrameVersion) {
    result.error = "unsupported wire version " + std::to_string(version);
    return result;
  }
  if (payload_len != bytes.size() - kHeaderBytes - kTrailerBytes) {
    result.error = "payload length mismatch";
    return result;
  }
  const std::size_t body = kHeaderBytes + payload_len;
  Cursor trailer{bytes, body};
  std::uint64_t stored = trailer.u64();
  std::uint64_t computed = checksum_of(bytes.subspan(0, body));
  if (stored != computed) {
    result.error = "checksum mismatch";
    return result;
  }
  if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
      type > static_cast<std::uint8_t>(FrameType::End)) {
    result.error = "unknown frame type " + std::to_string(type);
    return result;
  }
  result.frame.type = static_cast<FrameType>(type);
  Cursor payload{bytes.subspan(0, body), kHeaderBytes};
  if (!decode_payload(payload, result.frame, result.error)) {
    result.frame.events.clear();
    return result;
  }
  if (payload.pos != body) {
    result.error = "trailing bytes in payload";
    result.frame.events.clear();
    return result;
  }
  result.ok = true;
  return result;
}

std::uint64_t instr_table_fingerprint(const std::vector<InstrMeta>& table) {
  std::string buf;
  for (const InstrMeta& meta : table) {
    buf += meta.code_object;
    buf += '\0';
    buf += meta.name;
    buf += '\0';
    for (int i = 0; i < 4; ++i)
      buf += static_cast<char>((meta.cycles >> (8 * i)) & 0xff);
  }
  return util::fnv1a64(buf);
}

std::vector<std::vector<std::uint8_t>> encode_trace(
    const NodeTrace& trace, std::uint32_t device,
    std::size_t events_per_frame) {
  SENT_REQUIRE(events_per_frame >= 1);
  std::vector<std::vector<std::uint8_t>> frames;
  std::uint64_t seq = 0;

  Frame hello;
  hello.type = FrameType::Hello;
  hello.device = device;
  hello.seq = seq++;
  hello.node_id = trace.node_id;
  hello.instr_table_size =
      static_cast<std::uint32_t>(trace.instr_table.size());
  hello.instr_table_hash = instr_table_fingerprint(trace.instr_table);
  frames.push_back(encode_frame(hello));

  // Three-way merge in cycle order; each source stream is already
  // chronological. Ties deliver lifecycle items first, then instructions,
  // then bug markers, so an interval-opening int(n) precedes the work
  // executed at the same cycle.
  std::size_t li = 0, xi = 0, bi = 0;
  Frame events;
  events.type = FrameType::Events;
  events.device = device;
  auto flush = [&]() {
    if (events.events.empty()) return;
    events.seq = seq++;
    frames.push_back(encode_frame(events));
    events.events.clear();
  };
  while (li < trace.lifecycle.size() || xi < trace.instrs.size() ||
         bi < trace.bugs.size()) {
    FrameEvent ev;
    const bool has_l = li < trace.lifecycle.size();
    const bool has_x = xi < trace.instrs.size();
    const bool has_b = bi < trace.bugs.size();
    const sim::Cycle lc = has_l ? trace.lifecycle[li].cycle : 0;
    const sim::Cycle xc = has_x ? trace.instrs[xi].cycle : 0;
    const sim::Cycle bc = has_b ? trace.bugs[bi].cycle : 0;
    if (has_l && (!has_x || lc <= xc) && (!has_b || lc <= bc)) {
      ev.kind = FrameEvent::Kind::Lifecycle;
      ev.item = trace.lifecycle[li++];
    } else if (has_x && (!has_b || xc <= bc)) {
      ev.kind = FrameEvent::Kind::Instr;
      ev.instr = trace.instrs[xi++];
    } else {
      ev.kind = FrameEvent::Kind::Bug;
      ev.bug = trace.bugs[bi++];
    }
    events.events.push_back(std::move(ev));
    if (events.events.size() >= events_per_frame) flush();
  }
  flush();

  Frame end;
  end.type = FrameType::End;
  end.device = device;
  end.seq = seq++;
  end.run_end = trace.run_end;
  frames.push_back(encode_frame(end));
  return frames;
}

}  // namespace sent::trace
