// Binary frame format for streaming trace ingest (DESIGN.md §14).
//
// A recorded NodeTrace is sliced into a sequence of checksummed frames so a
// fleet of devices can ship their lifecycle/instruction/bug streams to the
// ingest service incrementally:
//
//   Hello(seq 0)  — node id + instruction-table fingerprint, so the service
//                   can reject streams built against a different program
//                   image (the table itself is service configuration);
//   Events(seq i) — a chunk of records merged across the three recorder
//                   streams in cycle order;
//   End(seq last) — the recording's run_end.
//
// Wire layout (little-endian, fixed width):
//
//   [0]      magic 0xF5
//   [1]      wire version (1)
//   [2]      frame type
//   [3..6]   device id (u32)
//   [7..14]  sequence number (u64)
//   [15..18] payload length (u32)
//   [19..]   payload
//   last 8   FNV-1a64 checksum over everything before it
//
// decode_frame() is the hostile-input boundary of the whole streaming
// layer: it NEVER throws and never reads out of bounds, whatever bytes it
// is given — corrupt frames come back as {ok == false, error} and the
// ingest service quarantines them (tests/stream_test.cpp fuzzes this with
// seeded byte mutations and truncations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace sent::trace {

inline constexpr std::uint8_t kFrameMagic = 0xF5;
inline constexpr std::uint8_t kFrameVersion = 1;

enum class FrameType : std::uint8_t { Hello = 1, Events = 2, End = 3 };

/// One record inside an Events frame payload: a lifecycle item, an executed
/// instruction, or a ground-truth bug marker.
struct FrameEvent {
  enum class Kind : std::uint8_t { Lifecycle = 0, Instr = 1, Bug = 2 };
  Kind kind = Kind::Lifecycle;
  LifecycleItem item{};  ///< valid when kind == Lifecycle
  InstrExec instr{0, 0};  ///< valid when kind == Instr
  BugMarker bug{};       ///< valid when kind == Bug

  sim::Cycle cycle() const {
    switch (kind) {
      case Kind::Lifecycle: return item.cycle;
      case Kind::Instr: return instr.cycle;
      case Kind::Bug: return bug.cycle;
    }
    return 0;
  }
};

struct Frame {
  FrameType type = FrameType::Events;
  std::uint32_t device = 0;
  std::uint64_t seq = 0;

  // Hello:
  std::uint32_t node_id = 0;
  std::uint32_t instr_table_size = 0;
  std::uint64_t instr_table_hash = 0;

  // Events:
  std::vector<FrameEvent> events;

  // End:
  sim::Cycle run_end = 0;
};

/// Serialize one frame (header + payload + checksum).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

struct FrameDecodeResult {
  bool ok = false;
  Frame frame;        ///< on failure: header fields best-effort, rest empty
  std::string error;  ///< set when !ok
};

/// Parse one complete frame. Rejects (never throws, never reads out of
/// bounds): short buffers, bad magic/version, payload-length mismatches,
/// checksum mismatches, unknown type/kind codes, runTask records whose
/// end_cycle precedes their start, and trailing payload bytes.
FrameDecodeResult decode_frame(std::span<const std::uint8_t> bytes);

/// Content fingerprint of an instruction table (FNV-1a64 over all rows);
/// carried by Hello frames and checked against the service's configured
/// program image.
std::uint64_t instr_table_fingerprint(const std::vector<InstrMeta>& table);

/// Slice a recorded trace into Hello + Events... + End frames. The three
/// recorder streams are merged in cycle order (ties: lifecycle, then
/// instructions, then bug markers), `events_per_frame` records per Events
/// frame, sequence numbers 0..N-1.
std::vector<std::vector<std::uint8_t>> encode_trace(
    const NodeTrace& trace, std::uint32_t device,
    std::size_t events_per_frame = 64);

}  // namespace sent::trace
