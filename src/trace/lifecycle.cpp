#include "trace/lifecycle.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace sent::trace {

std::string to_string(const LifecycleItem& item) {
  std::ostringstream os;
  switch (item.kind) {
    case LifecycleKind::PostTask:
      os << "postTask(" << item.arg << ")";
      break;
    case LifecycleKind::RunTask:
      os << "runTask(" << item.arg << ")";
      break;
    case LifecycleKind::Int:
      os << "int(" << item.arg << ")";
      break;
    case LifecycleKind::Reti:
      os << "reti(" << item.arg << ")";
      break;
  }
  os << "@" << item.cycle;
  if (item.kind == LifecycleKind::RunTask && item.end_cycle != 0)
    os << "..." << item.end_cycle;
  return os.str();
}

std::string to_string(const std::vector<LifecycleItem>& seq) {
  std::ostringstream os;
  for (const auto& item : seq) os << to_string(item) << '\n';
  return os.str();
}

namespace {

// Reads "name" or "name(arg)" tokens.
struct Token {
  std::string name;
  std::uint32_t arg = 0;
  bool has_arg = false;
};

Token parse_token(const std::string& word) {
  Token t;
  auto open = word.find('(');
  if (open == std::string::npos) {
    t.name = word;
    return t;
  }
  auto close = word.find(')', open);
  SENT_REQUIRE_MSG(close != std::string::npos, "unbalanced ( in " << word);
  t.name = word.substr(0, open);
  t.arg = static_cast<std::uint32_t>(
      std::stoul(word.substr(open + 1, close - open - 1)));
  t.has_arg = true;
  return t;
}

}  // namespace

std::vector<LifecycleItem> parse_compact(const std::string& text) {
  std::vector<LifecycleItem> seq;
  std::istringstream is(text);
  std::string word;
  sim::Cycle cycle = 0;
  while (is >> word) {
    Token t = parse_token(word);
    LifecycleItem item;
    item.cycle = cycle++;
    if (t.name == "int") {
      SENT_REQUIRE_MSG(t.has_arg, "int token needs a line number");
      item.kind = LifecycleKind::Int;
      item.arg = t.arg;
    } else if (t.name == "reti") {
      item.kind = LifecycleKind::Reti;
      item.arg = t.arg;  // optional; 0 when unspecified
    } else if (t.name == "post" || t.name == "postTask") {
      item.kind = LifecycleKind::PostTask;
      item.arg = t.arg;
    } else if (t.name == "run" || t.name == "runTask") {
      item.kind = LifecycleKind::RunTask;
      item.arg = t.arg;
      item.end_cycle = item.cycle;  // zero-duration in compact form
    } else {
      SENT_REQUIRE_MSG(false, "unknown lifecycle token: " << word);
    }
    seq.push_back(item);
  }
  // In the compact form a task's execution extends until the next runTask
  // or the end of the sequence; approximate end_cycle accordingly so
  // interval end times are usable in tests.
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i].kind != LifecycleKind::RunTask) continue;
    sim::Cycle end = seq.back().cycle + 1;
    for (std::size_t j = i + 1; j < seq.size(); ++j) {
      if (seq[j].kind == LifecycleKind::RunTask) {
        end = seq[j].cycle;
        break;
      }
    }
    seq[i].end_cycle = end;
  }
  return seq;
}

std::string to_compact(const std::vector<LifecycleItem>& seq) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : seq) {
    if (!first) os << ' ';
    first = false;
    switch (item.kind) {
      case LifecycleKind::PostTask:
        os << "post(" << item.arg << ")";
        break;
      case LifecycleKind::RunTask:
        os << "run(" << item.arg << ")";
        break;
      case LifecycleKind::Int:
        os << "int(" << item.arg << ")";
        break;
      case LifecycleKind::Reti:
        os << "reti";
        break;
    }
  }
  return os.str();
}

}  // namespace sent::trace
