// The system lifecycle sequence (paper §V-A).
//
// During a run, the runtime emits exactly four kinds of items — postTask,
// runTask, int(n), reti — each stamped with the virtual cycle at which it
// occurred. The Sentomist anatomizer consumes only this alphabet; the extra
// fields (task ids, completion cycles) are instrumentation metadata used to
// map parsed instances back to wall-clock windows and to validate the
// parser against runtime ground truth in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sent::trace {

/// Identifier of a registered task (code object of task kind).
using TaskId = std::uint32_t;

/// Hardware interrupt line number; doubles as the "event type" of the
/// paper's event procedures.
using IrqLine = std::uint8_t;

enum class LifecycleKind : std::uint8_t {
  PostTask,  ///< postTask function called
  RunTask,   ///< runTask function called (task starts executing)
  Int,       ///< entry of the interrupt handler for line `irq`
  Reti,      ///< exit of an interrupt handler
};

struct LifecycleItem {
  LifecycleKind kind;
  sim::Cycle cycle = 0;  ///< when the item occurred

  /// PostTask/RunTask: the task id. Int/Reti: the interrupt line.
  std::uint32_t arg = 0;

  /// RunTask only: cycle at which the task ran to completion. Filled by the
  /// recorder when the task finishes; 0 while the task is still running.
  sim::Cycle end_cycle = 0;
};

/// Render an item like "int(5)@1234" / "postTask(2)@88" for debugging.
std::string to_string(const LifecycleItem& item);

/// Render a whole sequence, one item per line.
std::string to_string(const std::vector<LifecycleItem>& seq);

/// Parse a compact textual form ("int(5) post(1) run(1) reti", cycles
/// auto-assigned 0,1,2,...). Used heavily by parser unit tests.
std::vector<LifecycleItem> parse_compact(const std::string& text);

/// Render a sequence back to the compact one-line form.
std::string to_compact(const std::vector<LifecycleItem>& seq);

}  // namespace sent::trace
