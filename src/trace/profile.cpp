#include "trace/profile.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace sent::trace {

namespace {

template <typename NameFn>
Profile build_profile(const NodeTrace& trace, sim::Cycle begin,
                      sim::Cycle end, NameFn&& name_of) {
  SENT_REQUIRE_MSG(!trace.instr_table.empty(),
                   "trace has no instruction table");
  SENT_REQUIRE(begin <= end);
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> agg;
  Profile p;
  auto lo = std::lower_bound(
      trace.instrs.begin(), trace.instrs.end(), begin,
      [](const InstrExec& e, sim::Cycle c) { return e.cycle < c; });
  for (auto it = lo; it != trace.instrs.end() && it->cycle <= end; ++it) {
    const InstrMeta& meta = trace.instr_table[it->instr];
    auto& entry = agg[name_of(meta)];
    entry.first += 1;
    entry.second += meta.cycles;
    p.total_executions += 1;
    p.total_cycles += meta.cycles;
  }
  p.entries.reserve(agg.size());
  for (const auto& [name, counts] : agg) {
    ProfileEntry e;
    e.name = name;
    e.executions = counts.first;
    e.cycles = counts.second;
    e.cycle_share = p.total_cycles == 0
                        ? 0.0
                        : double(e.cycles) / double(p.total_cycles);
    p.entries.push_back(std::move(e));
  }
  std::stable_sort(p.entries.begin(), p.entries.end(),
                   [](const ProfileEntry& a, const ProfileEntry& b) {
                     return a.cycles > b.cycles;
                   });
  return p;
}

}  // namespace

Profile profile_code_objects(const NodeTrace& trace, sim::Cycle begin,
                             sim::Cycle end) {
  return build_profile(trace, begin, end,
                       [](const InstrMeta& m) { return m.code_object; });
}

Profile profile_instructions(const NodeTrace& trace, sim::Cycle begin,
                             sim::Cycle end) {
  return build_profile(trace, begin, end, [](const InstrMeta& m) {
    return m.code_object + "/" + m.name;
  });
}

std::string Profile::render(std::size_t max_rows) const {
  util::Table table({"code", "executions", "cycles", "share"});
  for (std::size_t i = 0; i < std::min(max_rows, entries.size()); ++i) {
    const ProfileEntry& e = entries[i];
    table.add_row({e.name, util::cell(e.executions), util::cell(e.cycles),
                   util::cell(e.cycle_share * 100.0, 1) + "%"});
  }
  std::string out = table.render();
  out += "total: " + std::to_string(total_executions) + " executions, " +
         std::to_string(total_cycles) + " cycles\n";
  return out;
}

}  // namespace sent::trace
