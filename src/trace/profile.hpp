// Execution profiling from recorded traces (the flat-profile view an
// Avrora monitor would give you).
//
// Aggregates the instruction stream into per-code-object and
// per-instruction totals — executions and cycles — over the whole run or
// any time window. Used by the inspection tooling to show "where did this
// interval spend its time" and by examples as a standalone profiler.
#pragma once

#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace sent::trace {

struct ProfileEntry {
  std::string name;          ///< code object, or "object/mnemonic"
  std::uint64_t executions = 0;
  std::uint64_t cycles = 0;  ///< executions x per-instruction cost

  double cycle_share = 0.0;  ///< fraction of all profiled cycles
};

struct Profile {
  std::vector<ProfileEntry> entries;  ///< descending by cycles
  std::uint64_t total_executions = 0;
  std::uint64_t total_cycles = 0;

  /// Render as an aligned table, top `max_rows` rows.
  std::string render(std::size_t max_rows = 12) const;
};

/// Profile the whole trace (or a [begin, end] window) per code object.
Profile profile_code_objects(const NodeTrace& trace, sim::Cycle begin = 0,
                             sim::Cycle end = ~sim::Cycle{0});

/// Same, at individual-instruction granularity.
Profile profile_instructions(const NodeTrace& trace, sim::Cycle begin = 0,
                             sim::Cycle end = ~sim::Cycle{0});

}  // namespace sent::trace
