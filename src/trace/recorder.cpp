#include "trace/recorder.hpp"

#include "util/assert.hpp"

namespace sent::trace {

void Recorder::on_post_task(sim::Cycle cycle, TaskId task) {
  trace_.lifecycle.push_back(
      {LifecycleKind::PostTask, cycle, task, /*end_cycle=*/0});
}

std::size_t Recorder::on_run_task(sim::Cycle cycle, TaskId task) {
  trace_.lifecycle.push_back(
      {LifecycleKind::RunTask, cycle, task, /*end_cycle=*/0});
  return trace_.lifecycle.size() - 1;
}

void Recorder::on_task_end(std::size_t run_item_index, sim::Cycle cycle) {
  SENT_REQUIRE(run_item_index < trace_.lifecycle.size());
  LifecycleItem& item = trace_.lifecycle[run_item_index];
  SENT_REQUIRE(item.kind == LifecycleKind::RunTask);
  SENT_ASSERT_MSG(item.end_cycle == 0, "task end recorded twice");
  item.end_cycle = cycle;
}

void Recorder::on_int(sim::Cycle cycle, IrqLine line) {
  trace_.lifecycle.push_back({LifecycleKind::Int, cycle, line, 0});
}

void Recorder::on_reti(sim::Cycle cycle, IrqLine line) {
  trace_.lifecycle.push_back({LifecycleKind::Reti, cycle, line, 0});
}

void Recorder::on_bug(sim::Cycle cycle, const std::string& kind) {
  trace_.bugs.push_back({cycle, kind});
}

void Recorder::set_instr_table(std::vector<InstrMeta> table) {
  trace_.instr_table = std::move(table);
}

NodeTrace Recorder::take(sim::Cycle run_end) {
  trace_.run_end = run_end;
  return std::move(trace_);
}

}  // namespace sent::trace
