// Per-node trace recorder: the front-end data-acquisition half of
// Sentomist (paper §VI-A, the Avrora monitor).
//
// The recorder captures three streams per node:
//   1. the lifecycle sequence (postTask / runTask / int / reti),
//   2. the instruction execution stream (cycle, static instruction id),
//   3. ground-truth bug markers emitted by instrumented application code.
// Streams 1–2 are what the analysis consumes; stream 3 replaces the paper's
// manual inspection when scoring rankings and never reaches the detector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/lifecycle.hpp"

namespace sent::trace {

/// Static instruction id: index into the node program's instruction table.
using InstrId = std::uint32_t;

/// One executed instruction.
struct InstrExec {
  sim::Cycle cycle;
  InstrId instr;
};

/// Metadata describing a static instruction (for reports and debugging).
struct InstrMeta {
  std::string code_object;  ///< owning handler/task name
  std::string name;         ///< mnemonic within the code object
  std::uint32_t cycles;     ///< cost charged per execution
};

/// A ground-truth bug manifestation, emitted by application instrumentation
/// at the moment the faulty behaviour actually occurs.
struct BugMarker {
  sim::Cycle cycle;
  std::string kind;  ///< e.g. "data-pollution", "busy-drop", "ctp-hang"
};

/// Everything recorded for one node over one run.
struct NodeTrace {
  std::uint32_t node_id = 0;
  std::vector<LifecycleItem> lifecycle;
  std::vector<InstrExec> instrs;
  std::vector<BugMarker> bugs;
  std::vector<InstrMeta> instr_table;
  sim::Cycle run_end = 0;  ///< virtual time at which recording stopped

  /// Total executed instructions.
  std::size_t executed() const { return instrs.size(); }

  /// Empty every stream while keeping the vectors' capacity, so a trace
  /// taken from a finished run can seed the next run's Recorder without
  /// reallocating the (large) instruction buffer. Content-wise the result
  /// is indistinguishable from a default-constructed NodeTrace.
  void clear_keep_capacity() {
    lifecycle.clear();
    instrs.clear();
    bugs.clear();
    instr_table.clear();
    node_id = 0;
    run_end = 0;
  }
};

/// Recorder used by the machine/kernel while a node runs. Owns the growing
/// NodeTrace; take() moves it out at end of run.
class Recorder {
 public:
  /// `recycled` donates its buffer capacity (typically a trace taken from
  /// the previous run on this worker, DESIGN.md §15); it is scrubbed before
  /// use, so recording starts from the same logical blank slate either way.
  explicit Recorder(std::uint32_t node_id, NodeTrace recycled = NodeTrace{})
      : trace_(std::move(recycled)) {
    trace_.clear_keep_capacity();
    trace_.node_id = node_id;
  }

  void on_post_task(sim::Cycle cycle, TaskId task);

  /// Records a runTask item and returns its index so on_task_end can patch
  /// the completion cycle.
  std::size_t on_run_task(sim::Cycle cycle, TaskId task);
  void on_task_end(std::size_t run_item_index, sim::Cycle cycle);

  void on_int(sim::Cycle cycle, IrqLine line);
  void on_reti(sim::Cycle cycle, IrqLine line);

  /// Inline: one call per executed virtual instruction (the hot path).
  void on_instr(sim::Cycle cycle, InstrId instr) {
    trace_.instrs.push_back({cycle, instr});
  }

  /// Direct access to the instruction stream for the bytecode machine's
  /// fused dispatch loop, which batches appends through a stack buffer.
  /// Appending {cycle, instr} records here is equivalent to on_instr calls
  /// in the same order.
  std::vector<InstrExec>& instr_sink() { return trace_.instrs; }
  void on_bug(sim::Cycle cycle, const std::string& kind);

  void set_instr_table(std::vector<InstrMeta> table);

  const NodeTrace& trace() const { return trace_; }

  /// Finalize (stamping run_end) and move the trace out.
  NodeTrace take(sim::Cycle run_end);

 private:
  NodeTrace trace_;
};

}  // namespace sent::trace
