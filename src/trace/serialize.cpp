#include "trace/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace sent::trace {

namespace {

constexpr const char* kMagic = "SENTOMIST-TRACE";

[[noreturn]] void malformed(const std::string& what) {
  throw MalformedTraceFile("malformed trace file: " + what);
}

std::string read_line(std::istream& in, const char* context) {
  std::string line;
  if (!std::getline(in, line)) malformed(std::string("EOF in ") + context);
  return line;
}

// Fields within a line are tab-separated; names may contain spaces but
// never tabs (CodeBuilder mnemonics are identifiers in practice).
std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

std::uint64_t to_u64(const std::string& s, const char* context) {
  try {
    std::size_t pos = 0;
    std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) malformed(std::string("bad number in ") + context);
    return v;
  } catch (const std::logic_error&) {
    malformed(std::string("bad number in ") + context);
  }
}

char kind_code(LifecycleKind kind) {
  switch (kind) {
    case LifecycleKind::PostTask: return 'P';
    case LifecycleKind::RunTask: return 'R';
    case LifecycleKind::Int: return 'I';
    case LifecycleKind::Reti: return 'X';
  }
  return '?';
}

}  // namespace

void save_trace(const NodeTrace& trace, std::ostream& out) {
  out << kMagic << " v" << kTraceFormatVersion << '\n';
  out << "node " << trace.node_id << '\n';
  out << "run_end " << trace.run_end << '\n';

  out << "instr_table " << trace.instr_table.size() << '\n';
  for (const auto& meta : trace.instr_table)
    out << meta.code_object << '\t' << meta.name << '\t' << meta.cycles
        << '\n';

  out << "lifecycle " << trace.lifecycle.size() << '\n';
  for (const auto& item : trace.lifecycle) {
    out << kind_code(item.kind) << '\t' << item.cycle << '\t' << item.arg;
    if (item.kind == LifecycleKind::RunTask) out << '\t' << item.end_cycle;
    out << '\n';
  }

  out << "instrs " << trace.instrs.size() << '\n';
  sim::Cycle prev = 0;
  for (const auto& e : trace.instrs) {
    out << (e.cycle - prev) << '\t' << e.instr << '\n';
    prev = e.cycle;
  }

  out << "bugs " << trace.bugs.size() << '\n';
  for (const auto& bug : trace.bugs)
    out << bug.cycle << '\t' << bug.kind << '\n';

  out << "end\n";
}

NodeTrace load_trace(std::istream& in) {
  NodeTrace trace;
  {
    std::string header = read_line(in, "header");
    std::ostringstream expected;
    expected << kMagic << " v" << kTraceFormatVersion;
    if (header != expected.str()) malformed("bad header: " + header);
  }
  auto expect_section = [&](const char* name) -> std::uint64_t {
    std::string line = read_line(in, name);
    auto space = line.find(' ');
    if (space == std::string::npos || line.substr(0, space) != name)
      malformed(std::string("expected section ") + name + ", got: " + line);
    return to_u64(line.substr(space + 1), name);
  };

  trace.node_id = static_cast<std::uint32_t>(expect_section("node"));
  trace.run_end = expect_section("run_end");

  std::uint64_t n_table = expect_section("instr_table");
  trace.instr_table.reserve(n_table);
  for (std::uint64_t i = 0; i < n_table; ++i) {
    auto fields = split_tabs(read_line(in, "instr_table"));
    if (fields.size() != 3) malformed("instr_table row arity");
    trace.instr_table.push_back(
        {fields[0], fields[1],
         static_cast<std::uint32_t>(to_u64(fields[2], "instr cycles"))});
  }

  std::uint64_t n_items = expect_section("lifecycle");
  trace.lifecycle.reserve(n_items);
  for (std::uint64_t i = 0; i < n_items; ++i) {
    auto fields = split_tabs(read_line(in, "lifecycle"));
    if (fields.size() < 3 || fields[0].size() != 1)
      malformed("lifecycle row");
    LifecycleItem item;
    switch (fields[0][0]) {
      case 'P': item.kind = LifecycleKind::PostTask; break;
      case 'R': item.kind = LifecycleKind::RunTask; break;
      case 'I': item.kind = LifecycleKind::Int; break;
      case 'X': item.kind = LifecycleKind::Reti; break;
      default: malformed("lifecycle kind " + fields[0]);
    }
    item.cycle = to_u64(fields[1], "lifecycle cycle");
    item.arg = static_cast<std::uint32_t>(to_u64(fields[2], "lifecycle arg"));
    if (item.kind == LifecycleKind::RunTask) {
      if (fields.size() != 4) malformed("runTask row needs end cycle");
      item.end_cycle = to_u64(fields[3], "runTask end");
    } else if (fields.size() != 3) {
      malformed("lifecycle row arity");
    }
    trace.lifecycle.push_back(item);
  }

  std::uint64_t n_instrs = expect_section("instrs");
  trace.instrs.reserve(n_instrs);
  sim::Cycle prev = 0;
  for (std::uint64_t i = 0; i < n_instrs; ++i) {
    auto fields = split_tabs(read_line(in, "instrs"));
    if (fields.size() != 2) malformed("instr row arity");
    prev += to_u64(fields[0], "instr delta");
    auto id = static_cast<InstrId>(to_u64(fields[1], "instr id"));
    if (!trace.instr_table.empty() && id >= trace.instr_table.size())
      malformed("instruction id out of table range");
    trace.instrs.push_back({prev, id});
  }

  std::uint64_t n_bugs = expect_section("bugs");
  trace.bugs.reserve(n_bugs);
  for (std::uint64_t i = 0; i < n_bugs; ++i) {
    auto fields = split_tabs(read_line(in, "bugs"));
    if (fields.size() != 2) malformed("bug row arity");
    trace.bugs.push_back({to_u64(fields[0], "bug cycle"), fields[1]});
  }

  if (read_line(in, "trailer") != "end") malformed("missing end marker");
  return trace;
}

void save_trace_file(const NodeTrace& trace, const std::string& path) {
  std::ofstream out(path);
  SENT_REQUIRE_MSG(out.good(), "cannot open " << path << " for writing");
  save_trace(trace, out);
  SENT_REQUIRE_MSG(out.good(), "write to " << path << " failed");
}

NodeTrace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  SENT_REQUIRE_MSG(in.good(), "cannot open " << path);
  return load_trace(in);
}

}  // namespace sent::trace
