#include "trace/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace sent::trace {

namespace {

constexpr const char* kMagic = "SENTOMIST-TRACE";

// Fields within a line are tab-separated; names may contain spaces but
// never tabs (CodeBuilder mnemonics are identifiers in practice).
std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

char kind_code(LifecycleKind kind) {
  switch (kind) {
    case LifecycleKind::PostTask: return 'P';
    case LifecycleKind::RunTask: return 'R';
    case LifecycleKind::Int: return 'I';
    case LifecycleKind::Reti: return 'X';
  }
  return '?';
}

// Incremental parser: fills `trace` record by record so that when a throw
// interrupts it, everything already parsed is a usable prefix (the lenient
// loader relies on this). Tracks the 1-based line number for error messages.
class Parser {
 public:
  explicit Parser(std::istream& in) : in_(in) {}

  std::size_t line_no() const { return line_no_; }

  void parse(NodeTrace& trace) {
    {
      std::string header = read_line("header");
      std::ostringstream expected;
      expected << kMagic << " v" << kTraceFormatVersion;
      if (header != expected.str()) malformed("bad header: " + header);
    }

    trace.node_id = static_cast<std::uint32_t>(expect_section("node"));
    trace.run_end = expect_section("run_end");

    std::uint64_t n_table = expect_section("instr_table");
    trace.instr_table.reserve(n_table);
    for (std::uint64_t i = 0; i < n_table; ++i) {
      auto fields = split_tabs(read_line("instr_table"));
      if (fields.size() != 3) malformed("instr_table row arity");
      trace.instr_table.push_back(
          {fields[0], fields[1],
           static_cast<std::uint32_t>(to_u64(fields[2], "instr cycles"))});
    }

    std::uint64_t n_items = expect_section("lifecycle");
    trace.lifecycle.reserve(n_items);
    for (std::uint64_t i = 0; i < n_items; ++i) {
      auto fields = split_tabs(read_line("lifecycle"));
      if (fields.size() < 3 || fields[0].size() != 1)
        malformed("lifecycle row");
      LifecycleItem item;
      switch (fields[0][0]) {
        case 'P': item.kind = LifecycleKind::PostTask; break;
        case 'R': item.kind = LifecycleKind::RunTask; break;
        case 'I': item.kind = LifecycleKind::Int; break;
        case 'X': item.kind = LifecycleKind::Reti; break;
        default: malformed("lifecycle kind " + fields[0]);
      }
      item.cycle = to_u64(fields[1], "lifecycle cycle");
      item.arg =
          static_cast<std::uint32_t>(to_u64(fields[2], "lifecycle arg"));
      if (item.kind == LifecycleKind::RunTask) {
        if (fields.size() != 4) malformed("runTask row needs end cycle");
        item.end_cycle = to_u64(fields[3], "runTask end");
        if (item.end_cycle < item.cycle)
          malformed("runTask ends before it starts");
      } else if (fields.size() != 3) {
        malformed("lifecycle row arity");
      }
      trace.lifecycle.push_back(item);
    }

    std::uint64_t n_instrs = expect_section("instrs");
    trace.instrs.reserve(n_instrs);
    sim::Cycle prev = 0;
    for (std::uint64_t i = 0; i < n_instrs; ++i) {
      auto fields = split_tabs(read_line("instrs"));
      if (fields.size() != 2) malformed("instr row arity");
      prev += to_u64(fields[0], "instr delta");
      auto id = static_cast<InstrId>(to_u64(fields[1], "instr id"));
      if (!trace.instr_table.empty() && id >= trace.instr_table.size())
        malformed("instruction id out of table range");
      trace.instrs.push_back({prev, id});
    }

    std::uint64_t n_bugs = expect_section("bugs");
    trace.bugs.reserve(n_bugs);
    for (std::uint64_t i = 0; i < n_bugs; ++i) {
      auto fields = split_tabs(read_line("bugs"));
      if (fields.size() != 2) malformed("bug row arity");
      trace.bugs.push_back({to_u64(fields[0], "bug cycle"), fields[1]});
    }

    if (read_line("trailer") != "end") malformed("missing end marker");
  }

 private:
  std::istream& in_;
  std::size_t line_no_ = 0;

  [[noreturn]] void malformed(const std::string& what) const {
    throw MalformedTraceFile("malformed trace file: line " +
                             std::to_string(line_no_) + ": " + what);
  }

  std::string read_line(const char* context) {
    std::string line;
    if (!std::getline(in_, line)) {
      ++line_no_;  // the line that should have been there
      malformed(std::string("EOF in ") + context);
    }
    ++line_no_;
    return line;
  }

  std::uint64_t to_u64(const std::string& s, const char* context) const {
    try {
      std::size_t pos = 0;
      std::uint64_t v = std::stoull(s, &pos);
      if (pos != s.size())
        malformed(std::string("bad number in ") + context);
      return v;
    } catch (const std::logic_error&) {
      malformed(std::string("bad number in ") + context);
    }
  }

  std::uint64_t expect_section(const char* name) {
    std::string line = read_line(name);
    auto space = line.find(' ');
    if (space == std::string::npos || line.substr(0, space) != name)
      malformed(std::string("expected section ") + name + ", got: " + line);
    return to_u64(line.substr(space + 1), name);
  }
};

}  // namespace

void save_trace(const NodeTrace& trace, std::ostream& out) {
  out << kMagic << " v" << kTraceFormatVersion << '\n';
  out << "node " << trace.node_id << '\n';
  out << "run_end " << trace.run_end << '\n';

  out << "instr_table " << trace.instr_table.size() << '\n';
  for (const auto& meta : trace.instr_table)
    out << meta.code_object << '\t' << meta.name << '\t' << meta.cycles
        << '\n';

  out << "lifecycle " << trace.lifecycle.size() << '\n';
  for (const auto& item : trace.lifecycle) {
    out << kind_code(item.kind) << '\t' << item.cycle << '\t' << item.arg;
    if (item.kind == LifecycleKind::RunTask) out << '\t' << item.end_cycle;
    out << '\n';
  }

  out << "instrs " << trace.instrs.size() << '\n';
  sim::Cycle prev = 0;
  for (const auto& e : trace.instrs) {
    out << (e.cycle - prev) << '\t' << e.instr << '\n';
    prev = e.cycle;
  }

  out << "bugs " << trace.bugs.size() << '\n';
  for (const auto& bug : trace.bugs)
    out << bug.cycle << '\t' << bug.kind << '\n';

  out << "end\n";
}

NodeTrace load_trace(std::istream& in) {
  NodeTrace trace;
  Parser(in).parse(trace);
  return trace;
}

LenientLoadResult load_trace_lenient(std::istream& in) {
  LenientLoadResult result;
  Parser parser(in);
  try {
    parser.parse(result.trace);
  } catch (const MalformedTraceFile& e) {
    result.complete = false;
    result.error_line = parser.line_no();
    result.error = e.what();
  }
  // Clamp run_end over every surviving record so downstream consumers
  // (anatomizer closes dangling intervals at run_end) never see a record
  // beyond the end of the run. Applied even to files that parsed to the end
  // marker: a corrupted run_end digit yields a "complete" file whose stated
  // run_end understates its own records, and a faithful trace is unchanged.
  sim::Cycle max_cycle = result.trace.run_end;
  for (const auto& item : result.trace.lifecycle)
    max_cycle = std::max({max_cycle, item.cycle, item.end_cycle});
  for (const auto& e : result.trace.instrs)
    max_cycle = std::max(max_cycle, e.cycle);
  for (const auto& bug : result.trace.bugs)
    max_cycle = std::max(max_cycle, bug.cycle);
  result.trace.run_end = max_cycle;
  return result;
}

void save_trace_file(const NodeTrace& trace, const std::string& path) {
  std::ofstream out(path);
  SENT_REQUIRE_MSG(out.good(), "cannot open " << path << " for writing");
  save_trace(trace, out);
  SENT_REQUIRE_MSG(out.good(), "write to " << path << " failed");
}

NodeTrace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  SENT_REQUIRE_MSG(in.good(), "cannot open " << path);
  return load_trace(in);
}

LenientLoadResult load_trace_file_lenient(const std::string& path) {
  std::ifstream in(path);
  SENT_REQUIRE_MSG(in.good(), "cannot open " << path);
  return load_trace_lenient(in);
}

}  // namespace sent::trace
