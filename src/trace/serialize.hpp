// Trace (de)serialization.
//
// The real Sentomist splits into a front end (an Avrora monitor that
// records the run) and a back end (offline analysis). This module gives
// the same split: save_trace writes a versioned, line-oriented text format
// a human can inspect; load_trace restores it exactly. The instruction
// stream is delta-encoded on the cycle column, which keeps long traces
// compact without sacrificing greppability.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/recorder.hpp"
#include "util/assert.hpp"

namespace sent::trace {

/// Current format version, written in the header line.
inline constexpr int kTraceFormatVersion = 1;

void save_trace(const NodeTrace& trace, std::ostream& out);
NodeTrace load_trace(std::istream& in);

/// File-path convenience wrappers. Throw util::PreconditionError when the
/// file cannot be opened and MalformedTraceFile on parse errors.
void save_trace_file(const NodeTrace& trace, const std::string& path);
NodeTrace load_trace_file(const std::string& path);

/// Thrown by load_trace on any structural problem in the input. The message
/// names the 1-based line the parse failed on ("line N: ...").
class MalformedTraceFile : public util::PreconditionError {
 public:
  using util::PreconditionError::PreconditionError;
};

/// Result of a lenient load: everything parsed up to the first structural
/// problem. `trace` is the salvaged prefix with run_end clamped so no
/// surviving record lies beyond it (safe to hand to the anatomizer, which
/// closes dangling intervals at run_end). When `complete` is false,
/// `error_line`/`error` describe the first problem, mirroring what the
/// strict loader would have thrown.
struct LenientLoadResult {
  NodeTrace trace;
  bool complete = true;
  std::size_t error_line = 0;  ///< 1-based; 0 when complete
  std::string error;
};

/// Salvage the valid prefix of a (possibly truncated or corrupted) trace.
/// Never throws MalformedTraceFile; a trace that fails at the very first
/// line yields an empty trace with complete=false.
LenientLoadResult load_trace_lenient(std::istream& in);
LenientLoadResult load_trace_file_lenient(const std::string& path);

}  // namespace sent::trace
