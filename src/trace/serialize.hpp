// Trace (de)serialization.
//
// The real Sentomist splits into a front end (an Avrora monitor that
// records the run) and a back end (offline analysis). This module gives
// the same split: save_trace writes a versioned, line-oriented text format
// a human can inspect; load_trace restores it exactly. The instruction
// stream is delta-encoded on the cycle column, which keeps long traces
// compact without sacrificing greppability.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/recorder.hpp"
#include "util/assert.hpp"

namespace sent::trace {

/// Current format version, written in the header line.
inline constexpr int kTraceFormatVersion = 1;

void save_trace(const NodeTrace& trace, std::ostream& out);
NodeTrace load_trace(std::istream& in);

/// File-path convenience wrappers. Throw util::PreconditionError when the
/// file cannot be opened and MalformedTraceFile on parse errors.
void save_trace_file(const NodeTrace& trace, const std::string& path);
NodeTrace load_trace_file(const std::string& path);

/// Thrown by load_trace on any structural problem in the input.
class MalformedTraceFile : public util::PreconditionError {
 public:
  using util::PreconditionError::PreconditionError;
};

}  // namespace sent::trace
