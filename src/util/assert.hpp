// Lightweight always-on assertion macros.
//
// SENT_ASSERT guards internal invariants; SENT_REQUIRE guards preconditions
// on public API boundaries. Both throw (rather than abort) so tests can
// verify violations, and both stay enabled in release builds: the simulator
// is a correctness tool, so silent invariant corruption is never acceptable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sent::util {

/// Thrown when an internal invariant is violated.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] void raise_assert(const char* expr, const char* file, int line,
                               const std::string& msg);
[[noreturn]] void raise_require(const char* expr, const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace sent::util

#define SENT_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr))                                                            \
      ::sent::util::detail::raise_assert(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define SENT_ASSERT_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream sent_os_;                                          \
      sent_os_ << msg;                                                      \
      ::sent::util::detail::raise_assert(#expr, __FILE__, __LINE__,         \
                                         sent_os_.str());                   \
    }                                                                       \
  } while (0)

#define SENT_REQUIRE(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::sent::util::detail::raise_require(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define SENT_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream sent_os_;                                          \
      sent_os_ << msg;                                                      \
      ::sent::util::detail::raise_require(#expr, __FILE__, __LINE__,        \
                                          sent_os_.str());                  \
    }                                                                       \
  } while (0)
