#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace sent::util {

void Cli::add_flag(const std::string& name, const std::string& help,
                   const std::string& default_value) {
  SENT_REQUIRE(!flags_.count(name));
  flags_[name] = Flag{help, default_value, /*is_switch=*/false, false};
}

void Cli::add_switch(const std::string& name, const std::string& help) {
  SENT_REQUIRE(!flags_.count(name));
  flags_[name] = Flag{help, "false", /*is_switch=*/true, false};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (it->second.is_switch) {
      it->second.value = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
          return false;
        }
        value = argv[++i];
      }
      it->second.value = value;
    }
    it->second.set = true;
  }
  return true;
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    if (!flag.is_switch) os << " <value> (default: " << flag.value << ")";
    os << "\n      " << flag.help << '\n';
  }
  return os.str();
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  SENT_REQUIRE_MSG(it != flags_.end(), "undeclared flag " << name);
  return it->second.value;
}

namespace {

// A bad value in a script (--jobs=abc) is a usage error, not a programming
// error: report it with the flag's name and exit cleanly instead of letting
// std::stoll's invalid_argument terminate the process.
[[noreturn]] void bad_value(const std::string& name, const std::string& value,
                            const char* expected) {
  std::fprintf(stderr, "flag --%s expects %s, got '%s'\n", name.c_str(),
               expected, value.c_str());
  std::exit(2);
}

}  // namespace

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string value = get(name);
  try {
    std::size_t pos = 0;
    std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size()) bad_value(name, value, "an integer");
    return v;
  } catch (const std::logic_error&) {
    bad_value(name, value, "an integer");
  }
}

std::int64_t Cli::get_nonneg_int(const std::string& name) const {
  const std::int64_t v = get_int(name);
  if (v < 0) bad_value(name, get(name), "a non-negative integer");
  return v;
}

double Cli::get_double(const std::string& name) const {
  const std::string value = get(name);
  try {
    std::size_t pos = 0;
    double v = std::stod(value, &pos);
    if (pos != value.size()) bad_value(name, value, "a number");
    return v;
  } catch (const std::logic_error&) {
    bad_value(name, value, "a number");
  }
}

bool Cli::get_switch(const std::string& name) const {
  return get(name) == "true";
}

}  // namespace sent::util
