// Minimal command-line flag parsing for example and bench binaries.
//
// Supports --name value and --name=value forms plus boolean switches.
// Unknown flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sent::util {

class Cli {
 public:
  /// Declare flags before parse(). `help` is printed by usage().
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);
  void add_switch(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing usage) on --help or error.
  bool parse(int argc, const char* const* argv);

  std::string usage(const std::string& program) const;

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  /// get_int that additionally rejects negative values with a usage error.
  /// Count-like flags (--jobs, --runs) use this so "--jobs -3" exits 2
  /// instead of wrapping to a huge unsigned count.
  std::int64_t get_nonneg_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_switch(const std::string& name) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_switch = false;
    bool set = false;
  };
  std::map<std::string, Flag> flags_;
  std::string error_;
};

}  // namespace sent::util
