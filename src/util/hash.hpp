// Small non-cryptographic hashing helpers.
//
// FNV-1a is used wherever the codebase needs a cheap, dependency-free,
// stable-across-builds content checksum (the campaign journal checksums
// every record with it). It is NOT collision-resistant against an
// adversary; it is exactly strong enough to catch torn writes, bit rot
// and truncation, which is the failure model it guards.
#pragma once

#include <cstdint>
#include <string_view>

namespace sent::util {

/// 64-bit FNV-1a over a byte string. Stable: the constants are part of
/// the journal's on-disk format, so they must never change.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

}  // namespace sent::util
