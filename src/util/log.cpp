#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sent::util {

namespace {
// Campaign workers log concurrently: the threshold is atomic and emission
// is serialized so lines from different threads never tear or interleave.
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace sent::util
