// Minimal leveled logger.
//
// The simulator is deterministic, so logging is mainly a debugging aid for
// tests and examples; it defaults to Warn and writes to stderr so bench
// stdout stays machine-parseable.
#pragma once

#include <sstream>
#include <string>

namespace sent::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide log threshold.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at the given level (no-op below the threshold).
void log_line(LogLevel level, const std::string& msg);

}  // namespace sent::util

#define SENT_LOG(level, expr)                                        \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::sent::util::log_level())) {               \
      std::ostringstream sent_log_os_;                               \
      sent_log_os_ << expr;                                          \
      ::sent::util::log_line(level, sent_log_os_.str());             \
    }                                                                \
  } while (0)

#define SENT_DEBUG(expr) SENT_LOG(::sent::util::LogLevel::Debug, expr)
#define SENT_INFO(expr) SENT_LOG(::sent::util::LogLevel::Info, expr)
#define SENT_WARN(expr) SENT_LOG(::sent::util::LogLevel::Warn, expr)
#define SENT_ERROR(expr) SENT_LOG(::sent::util::LogLevel::Error, expr)
