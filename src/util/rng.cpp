#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace sent::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, used to perturb substream seeds.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::substream(std::string_view label) const {
  // Mix the current state with the label hash; the substream does not
  // advance this stream.
  std::uint64_t mixed = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[3], 41);
  return Rng(mixed ^ hash_label(label));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  SENT_REQUIRE(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SENT_REQUIRE(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SENT_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  SENT_REQUIRE(mean > 0.0);
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double u2 = uniform();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  SENT_REQUIRE(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    SENT_REQUIRE_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  SENT_REQUIRE_MSG(total > 0.0, "all weights zero");
  double x = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge: last positive bucket
}

}  // namespace sent::util
