// Deterministic random number generation.
//
// All randomness in the simulator flows through Rng instances derived from a
// single experiment seed, so every run is exactly reproducible. Substreams
// are derived by name (node id, device, protocol) so adding a consumer does
// not perturb the draws seen by existing consumers — a property the
// case-study experiments rely on to stay stable as the codebase grows.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace sent::util {

/// xoshiro256** PRNG seeded via splitmix64. Not cryptographic; chosen for
/// speed, quality, and a tiny, dependency-free implementation.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent substream keyed by a label. Streams with
  /// different labels (or different parent states) are statistically
  /// independent for simulation purposes.
  Rng substream(std::string_view label) const;

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (cached pair member unused; recomputes).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Sample an index from a discrete distribution given non-negative
  /// weights. At least one weight must be positive.
  std::size_t weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace sent::util
