#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sent::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  SENT_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  SENT_REQUIRE(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double l2_norm(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s);
}

double l2_distance(std::span<const double> a, std::span<const double> b) {
  SENT_REQUIRE(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double dot(std::span<const double> a, std::span<const double> b) {
  SENT_REQUIRE(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  SENT_REQUIRE(hi > lo);
  SENT_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  double step = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    double blo = lo_ + step * static_cast<double>(i);
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << blo << ", " << blo + step << ") ";
    std::size_t bar = counts_[i] * width / peak;
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace sent::util
