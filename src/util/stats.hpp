// Small statistics helpers used by the featurizer, the ML detectors, and
// the benchmark reporting code.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace sent::util {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Median of a copy of the input; 0 for empty input.
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]; 0 for empty input.
double percentile(std::span<const double> xs, double p);

/// Min / max; both 0 for empty input.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Euclidean norm.
double l2_norm(std::span<const double> xs);

/// Euclidean distance between two equal-length vectors.
double l2_distance(std::span<const double> a, std::span<const double> b);

/// Dot product of two equal-length vectors.
double dot(std::span<const double> a, std::span<const double> b);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< unbiased; 0 for n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus two
/// out-of-range buckets. Used by benches to summarize score distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  /// Render as a compact ASCII chart, one line per bucket.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace sent::util
