#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace sent::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SENT_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SENT_REQUIRE_MSG(cells.size() == headers_.size(),
                   "row has " << cells.size() << " cells, expected "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string cell(long long v) { return std::to_string(v); }
std::string cell(unsigned long long v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }
std::string cell(std::size_t v) { return std::to_string(v); }

std::string csv_escape(const std::string& s) {
  bool needs_quotes =
      s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace sent::util
