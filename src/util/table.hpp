// Aligned-column text tables and CSV output.
//
// Bench binaries print the paper's ranking tables (Figure 5) with this
// helper, and optionally dump the same rows as CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace sent::util {

/// A simple text table. Columns are declared once; rows are appended as
/// strings (use `cell` helpers for numeric formatting).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row. Must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a header underline.
  std::string render() const;

  /// Render as RFC-4180-ish CSV (quotes fields containing , " or newline).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string cell(double v, int precision = 4);

/// Format an integer.
std::string cell(long long v);
std::string cell(unsigned long long v);
std::string cell(int v);
std::string cell(std::size_t v);

/// Escape a single CSV field.
std::string csv_escape(const std::string& s);

}  // namespace sent::util
