#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace sent::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One stripe per worker, indices round-robin so uneven per-index cost
  // (e.g. triangular kernel rows) spreads across workers.
  const std::size_t stripes = std::min(workers_.size(), n);
  std::vector<std::future<void>> done;
  done.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    done.push_back(submit([s, stripes, n, &fn] {
      for (std::size_t i = s; i < n; i += stripes) fn(i);
    }));
  }
  // Wait for everything before rethrowing so no stripe still references fn.
  std::exception_ptr first;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

std::size_t ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace sent::util
