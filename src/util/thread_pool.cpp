#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <limits>

namespace sent::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t chunk) {
  parallel_for_indexed(n, chunk,
                       [&fn](std::size_t, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_indexed(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t worker, std::size_t i)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  // One claiming stripe per worker, but never more stripes than chunks —
  // a surplus stripe would only contend on the counter and find nothing.
  const std::size_t chunks = (n + chunk - 1) / chunk;
  const std::size_t stripes = std::min(workers_.size(), chunks);

  // Shared dynamic-claim state. The counter is the hot path; the exception
  // slot is cold (touched only when an invocation throws) and keeps the
  // deterministic contract: remember the exception thrown at the lowest
  // index, regardless of which stripe hit it or when.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  std::vector<std::future<void>> done;
  done.reserve(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    done.push_back(submit([s, chunk, n, &next, &fn, &error_mutex,
                           &error_index, &error] {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) {
          try {
            fn(s, i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (i < error_index) {
              error_index = i;
              error = std::current_exception();
            }
            return;  // this stripe stops claiming; siblings finish
          }
        }
      }
    }));
  }
  // Wait for everything before rethrowing so no stripe still references fn
  // or the shared claim state.
  for (std::future<void>& f : done) f.get();
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace sent::util
