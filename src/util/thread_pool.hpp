// Fixed-size worker pool for embarrassingly parallel work.
//
// Campaigns run many independent seeded simulations and the one-class SVM
// builds an O(l^2 d) kernel matrix; both are pure fan-out with no shared
// mutable state, so a plain pool plus a blocking parallel_for is all the
// concurrency machinery the codebase needs. A pool built with threads <= 1
// spawns no workers and executes everything inline on the calling thread,
// so single-threaded callers (and their determinism guarantees) pay nothing
// and take no lock-ordering risk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sent::util {

class ThreadPool {
 public:
  /// threads <= 1 means inline mode: no workers, submit/parallel_for run
  /// on the calling thread.
  explicit ThreadPool(std::size_t threads = hardware_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count; 0 in inline mode.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue `fn` and get a future for its result. Exceptions thrown by
  /// `fn` are captured in the future (also in inline mode).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return result;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(0) .. fn(n-1), blocking until all complete. Indices are
  /// claimed dynamically in contiguous chunks of `chunk` from a shared
  /// atomic counter, so uneven per-index cost (a retried campaign seed, a
  /// triangular kernel row) rebalances instead of stalling one static
  /// stripe. chunk = 1 claims single indices (maximum balance); larger
  /// chunks amortize the claim and improve per-worker locality. If any
  /// invocation throws, the exception raised at the LOWEST index is
  /// rethrown after all workers finish — deterministic regardless of how
  /// chunks were interleaved. A worker that throws stops claiming; its
  /// unstarted indices are abandoned, matching the old stripe semantics.
  /// Inline mode (no workers) runs indices in strict order on the calling
  /// thread and lets the first exception escape immediately.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t chunk = 1);

  /// Worker-indexed variant for callers that keep amortized per-worker
  /// state (worker-local world pools, shard aggregators): fn(worker, i)
  /// where `worker` is a dense stable id in [0, stripes) identifying which
  /// parallel stripe — and therefore which OS thread, for the duration of
  /// this call — executes the index. Inline mode passes worker = 0.
  void parallel_for_indexed(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t worker, std::size_t i)>& fn);

  /// parallel_for over a container: fn(items[i]) for every element.
  template <typename Container, typename F>
  void parallel_for_each(Container& items, F&& fn) {
    parallel_for(items.size(),
                 [&](std::size_t i) { fn(items[i]); });
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace sent::util
