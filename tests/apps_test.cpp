#include <gtest/gtest.h>

#include "apps/scenarios.hpp"
#include "trace/lifecycle.hpp"

namespace sent::apps {
namespace {

// Cheap trace fingerprint for determinism checks.
std::uint64_t fingerprint(const trace::NodeTrace& t) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& item : t.lifecycle) {
    mix(static_cast<std::uint64_t>(item.kind));
    mix(item.cycle);
    mix(item.arg);
  }
  for (const auto& e : t.instrs) {
    mix(e.cycle);
    mix(e.instr);
  }
  return h;
}

// ----------------------------------------------------------- case I

Case1Config small_case1(bool fixed, std::uint64_t seed = 11) {
  Case1Config c;
  c.seed = seed;
  c.fixed = fixed;
  c.sample_periods_ms = {20, 60};
  c.run_seconds = 5.0;
  return c;
}

TEST(Case1, CollectsExpectedSampleVolume) {
  Case1Result r = run_case1(small_case1(false));
  ASSERT_EQ(r.runs.size(), 2u);
  // D=20ms over 5s: ~250 timer fires, each producing one reading.
  EXPECT_NEAR(double(r.runs[0].readings), 250.0, 15.0);
  EXPECT_NEAR(double(r.runs[1].readings), 83.0, 10.0);
  // One packet per 3 readings, most reach the sink.
  EXPECT_GT(r.runs[0].packets_sent, 70u);
  EXPECT_GE(r.runs[0].sink_received, r.runs[0].packets_sent * 8 / 10);
}

TEST(Case1, BuggyVariantPollutesOnlyAtHighRate) {
  Case1Result r = run_case1(small_case1(false));
  // D=20ms: the ~30ms heavy task delays the send task past the next ADC
  // interrupt -> pollution. D=60ms: the delay never spans a full period.
  EXPECT_GT(r.runs[0].pollutions, 0u);
  EXPECT_EQ(r.runs[1].pollutions, 0u);
  // Ground-truth markers recorded in the trace.
  EXPECT_EQ(r.runs[0].sensor_trace.bugs.size(), r.runs[0].pollutions);
  for (const auto& bug : r.runs[0].sensor_trace.bugs)
    EXPECT_EQ(bug.kind, "data-pollution");
}

TEST(Case1, FixedVariantNeverPollutes) {
  Case1Result r = run_case1(small_case1(true));
  for (const auto& run : r.runs) {
    EXPECT_EQ(run.pollutions, 0u);
    EXPECT_TRUE(run.sensor_trace.bugs.empty());
    EXPECT_GT(run.packets_sent, 0u);
  }
}

TEST(Case1, WithoutMaintenanceNoPollution) {
  Case1Config c = small_case1(false);
  c.osc.with_maintenance = false;
  Case1Result r = run_case1(c);
  EXPECT_EQ(r.total_pollutions(), 0u);
}

TEST(Case1, TraceContainsAdcLifecycle) {
  Case1Result r = run_case1(small_case1(false));
  const auto& t = r.runs[0].sensor_trace;
  int adc_ints = 0;
  for (const auto& item : t.lifecycle)
    adc_ints += item.kind == trace::LifecycleKind::Int &&
                item.arg == os::irq::kAdc;
  EXPECT_NEAR(double(adc_ints), 250.0, 15.0);
  EXPECT_FALSE(t.instr_table.empty());
  EXPECT_GT(t.instrs.size(), 1000u);
}

TEST(Case1, DeterministicForSameSeed) {
  Case1Result a = run_case1(small_case1(false, 99));
  Case1Result b = run_case1(small_case1(false, 99));
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(fingerprint(a.runs[i].sensor_trace),
              fingerprint(b.runs[i].sensor_trace));
    EXPECT_EQ(a.runs[i].pollutions, b.runs[i].pollutions);
  }
}

TEST(Case1, DifferentSeedsDiverge) {
  Case1Result a = run_case1(small_case1(false, 1));
  Case1Result b = run_case1(small_case1(false, 2));
  EXPECT_NE(fingerprint(a.runs[0].sensor_trace),
            fingerprint(b.runs[0].sensor_trace));
}

// ----------------------------------------------------------- case II

Case2Config small_case2(bool fixed, std::uint64_t seed = 21) {
  Case2Config c;
  c.seed = seed;
  c.fixed = fixed;
  c.run_seconds = 20.0;
  return c;
}

TEST(Case2, TrafficFlowsEndToEnd) {
  Case2Result r = run_case2(small_case2(false));
  // ~200 packets at 100ms mean over 20s.
  EXPECT_GT(r.source_sent, 150u);
  EXPECT_LT(r.source_sent, 260u);
  EXPECT_GE(r.relay_received, r.source_sent * 9 / 10);
  EXPECT_EQ(r.relay_received, r.relay_forwarded + r.relay_dropped_busy);
  EXPECT_GE(r.sink_received, r.relay_forwarded * 9 / 10);
}

TEST(Case2, BuggyRelayActivelyDropsOccasionally) {
  Case2Result r = run_case2(small_case2(false));
  EXPECT_GT(r.relay_dropped_busy, 0u);
  // Transient: drops are a small fraction of traffic.
  EXPECT_LT(r.relay_dropped_busy * 10, r.relay_received);
  EXPECT_EQ(r.relay_trace.bugs.size(), r.relay_dropped_busy);
  for (const auto& bug : r.relay_trace.bugs)
    EXPECT_EQ(bug.kind, "busy-drop");
}

TEST(Case2, FixedRelayDropsNothing) {
  Case2Result r = run_case2(small_case2(true));
  EXPECT_EQ(r.relay_dropped_busy, 0u);
  EXPECT_TRUE(r.relay_trace.bugs.empty());
  // Queued-and-pumped forwarding still delivers the traffic.
  EXPECT_GE(r.relay_forwarded + 2, r.relay_received);
}

TEST(Case2, RelaySpiInstancesMatchArrivals) {
  Case2Result r = run_case2(small_case2(false));
  int spi_ints = 0;
  for (const auto& item : r.relay_trace.lifecycle)
    spi_ints += item.kind == trace::LifecycleKind::Int &&
                item.arg == os::irq::kRadioSpi;
  // Fire-and-forget relay: every SPI interrupt is a packet arrival.
  EXPECT_EQ(static_cast<std::uint64_t>(spi_ints), r.relay_received);
}

TEST(Case2, DeterministicForSameSeed) {
  Case2Result a = run_case2(small_case2(false, 5));
  Case2Result b = run_case2(small_case2(false, 5));
  EXPECT_EQ(fingerprint(a.relay_trace), fingerprint(b.relay_trace));
  EXPECT_EQ(a.relay_dropped_busy, b.relay_dropped_busy);
}

// ----------------------------------------------------------- case III

Case3Config small_case3(bool fixed, std::uint64_t seed = 31) {
  Case3Config c;
  c.seed = seed;
  c.fixed = fixed;
  c.run_seconds = 15.0;
  return c;
}

TEST(Case3, NetworkFormsAndDelivers) {
  Case3Result r = run_case3(small_case3(true));  // fixed: no hangs
  EXPECT_EQ(r.traces.size(), 9u);
  EXPECT_EQ(r.sources.size(), 4u);
  EXPECT_GT(r.delivered_to_root, 10u);
  EXPECT_EQ(r.hung_nodes(), 0u);
}

TEST(Case3, BuggyVariantHangsANode) {
  Case3Result r = run_case3(small_case3(false));
  EXPECT_GE(r.hung_nodes(), 1u);
  // Every hang leaves a ground-truth marker on the node's trace.
  std::size_t marked = 0;
  for (const auto& t : r.traces)
    for (const auto& bug : t.bugs) marked += bug.kind == "ctp-hang";
  EXPECT_EQ(marked, r.hung_nodes());
}

TEST(Case3, HungNodesAreSources) {
  Case3Result r = run_case3(small_case3(false));
  for (const auto& s : r.stats)
    if (s.hung) {
      // Only nodes that push data through CTP can trip the send path.
      bool forwards_or_sources = s.is_source || s.send_fails > 0;
      EXPECT_TRUE(forwards_or_sources);
    }
}

TEST(Case3, ReportIntervalVolumeMatchesPaperScale) {
  Case3Result r = run_case3(small_case3(false));
  // The paper collects 95 report-timer intervals over 4 sources in 15s.
  std::size_t total_report_ints = 0;
  for (net::NodeId src : r.sources) {
    const auto& t = r.traces[src];
    for (const auto& item : t.lifecycle)
      total_report_ints += item.kind == trace::LifecycleKind::Int &&
                           item.arg == r.report_line;
  }
  EXPECT_GT(total_report_ints, 60u);
  EXPECT_LT(total_report_ints, 140u);
}

TEST(Case3, FixedVariantRecoversFromSendFails) {
  Case3Result r = run_case3(small_case3(true));
  std::uint64_t fails = 0;
  for (const auto& s : r.stats) fails += s.send_fails;
  // Contention still happens; the fix just handles it.
  EXPECT_EQ(r.hung_nodes(), 0u);
  if (fails > 0) SUCCEED();
}

TEST(Case3, DeterministicForSameSeed) {
  Case3Result a = run_case3(small_case3(false, 7));
  Case3Result b = run_case3(small_case3(false, 7));
  for (std::size_t i = 0; i < a.traces.size(); ++i)
    EXPECT_EQ(fingerprint(a.traces[i]), fingerprint(b.traces[i]));
}

}  // namespace
}  // namespace sent::apps
