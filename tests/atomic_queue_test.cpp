// Atomic sections (cli/sei) and bounded task-queue semantics.
#include <gtest/gtest.h>

#include <vector>

#include "os/node.hpp"
#include "util/assert.hpp"

namespace sent::os {
namespace {

struct Harness {
  sim::EventQueue q;
  Node node{0, q};
  void raise_at(sim::Cycle at, trace::IrqLine line) {
    q.schedule_at(at, [this, line] { node.machine().raise_irq(line); });
  }
};

TEST(Atomic, SectionDefersInterruptDelivery) {
  Harness h;
  auto& prog = h.node.program();
  std::vector<std::string> log;
  mcu::CodeId task_code =
      mcu::CodeBuilder("critical", true)
          .instr("enter",
                 [&] {
                   log.push_back("enter");
                   h.node.machine().disable_interrupts();
                 })
          .instr("body1", [&] { log.push_back("body1"); }, 200)
          .instr("body2", [&] { log.push_back("body2"); }, 200)
          .instr("leave",
                 [&] {
                   log.push_back("leave");
                   h.node.machine().enable_interrupts();
                 })
          .instr("after", [&] { log.push_back("after"); }, 200)
          .build(prog);
  trace::TaskId task = h.node.kernel().register_task(task_code);
  mcu::CodeId poster = mcu::CodeBuilder("poster", false)
                           .instr("post", [&] { h.node.kernel().post(task); })
                           .build(prog);
  mcu::CodeId intruder = mcu::CodeBuilder("intruder", false)
                             .instr("hit", [&] { log.push_back("irq"); })
                             .build(prog);
  h.node.machine().register_handler(5, poster);
  h.node.machine().register_handler(2, intruder);
  h.raise_at(0, 5);
  // Lands mid-critical-section: must be deferred until after "leave".
  h.raise_at(100, 2);
  h.q.run_all();
  EXPECT_EQ(log, (std::vector<std::string>{"enter", "body1", "body2",
                                           "leave", "irq", "after"}));
}

TEST(Atomic, NestedSectionsCompose) {
  Harness h;
  auto& prog = h.node.program();
  std::vector<std::string> log;
  mcu::CodeId handler5 =
      mcu::CodeBuilder("outer", false)
          .instr("a", [&] { h.node.machine().disable_interrupts(); }, 50)
          .instr("b", [&] { h.node.machine().disable_interrupts(); }, 50)
          .instr("c", [&] { h.node.machine().enable_interrupts(); }, 50)
          // Still one level deep: interrupts stay off.
          .instr("d", [&] { log.push_back("still-atomic"); }, 300)
          .instr("e", [&] { h.node.machine().enable_interrupts(); }, 50)
          .build(prog);
  mcu::CodeId intruder = mcu::CodeBuilder("intruder", false)
                             .instr("hit", [&] { log.push_back("irq"); })
                             .build(prog);
  h.node.machine().register_handler(5, handler5);
  h.node.machine().register_handler(2, intruder);
  h.raise_at(0, 5);
  h.raise_at(120, 2);
  h.q.run_all();
  // The interrupt, although higher priority, waits for full re-enable.
  EXPECT_EQ(log, (std::vector<std::string>{"still-atomic", "irq"}));
  EXPECT_TRUE(h.node.machine().interrupts_enabled());
}

TEST(Atomic, UnbalancedEnableThrows) {
  Harness h;
  EXPECT_THROW(h.node.machine().enable_interrupts(),
               util::PreconditionError);
}

TEST(BoundedQueue, OverflowDropsPostSilently) {
  Harness h;
  h.node.kernel().set_queue_capacity(2);
  int runs = 0;
  mcu::CodeId code = mcu::CodeBuilder("t", true)
                         .instr("run", [&] { ++runs; })
                         .build(h.node.program());
  trace::TaskId task = h.node.kernel().register_task(code);
  h.q.schedule_at(0, [&] {
    EXPECT_TRUE(h.node.kernel().try_post(task));
    EXPECT_TRUE(h.node.kernel().try_post(task));
    EXPECT_FALSE(h.node.kernel().try_post(task));  // full
    EXPECT_EQ(h.node.kernel().overflows(), 1u);
  });
  h.q.run_all();
  EXPECT_EQ(runs, 2);
  // The dropped post left no lifecycle item (Criterion 1 stays intact).
  auto t = h.node.take_trace();
  int posts = 0;
  for (const auto& item : t.lifecycle)
    posts += item.kind == trace::LifecycleKind::PostTask;
  EXPECT_EQ(posts, 2);
}

TEST(BoundedQueue, CapacityFreesUpAfterRun) {
  Harness h;
  h.node.kernel().set_queue_capacity(1);
  int runs = 0;
  mcu::CodeId code = mcu::CodeBuilder("t", true)
                         .instr("run", [&] { ++runs; })
                         .build(h.node.program());
  trace::TaskId task = h.node.kernel().register_task(code);
  h.q.schedule_at(0, [&] { EXPECT_TRUE(h.node.kernel().try_post(task)); });
  h.q.schedule_at(10000,
                  [&] { EXPECT_TRUE(h.node.kernel().try_post(task)); });
  h.q.run_all();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(h.node.kernel().overflows(), 0u);
}

TEST(BoundedQueue, Validation) {
  Harness h;
  EXPECT_THROW(h.node.kernel().set_queue_capacity(0),
               util::PreconditionError);
}

}  // namespace
}  // namespace sent::os
