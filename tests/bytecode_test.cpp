// Dispatch-loop unit tests for the bytecode interpreter core (DESIGN.md
// §12): every Op the builder can emit, backward branches, the branch-to-end
// rewrite, the host-call escape hatch, unresolved-label errors, and the
// typed-vs-host trace-parity guarantee.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "os/node.hpp"
#include "sim/dispatch.hpp"
#include "util/assert.hpp"

namespace sent::mcu {
namespace {

using os::Node;
using trace::NodeTrace;

/// Pin the process-wide dispatch mode for one test, restoring on exit.
struct ModeGuard {
  explicit ModeGuard(sim::DispatchMode mode) : saved(sim::dispatch_mode()) {
    sim::set_dispatch_mode(mode);
  }
  ~ModeGuard() { sim::set_dispatch_mode(saved); }
  sim::DispatchMode saved;
};

std::vector<std::string> executed_names(const NodeTrace& t) {
  std::vector<std::string> names;
  for (const auto& e : t.instrs) names.push_back(t.instr_table[e.instr].name);
  return names;
}

struct Harness {
  explicit Harness(sim::DispatchMode mode = sim::DispatchMode::Bytecode)
      : guard(mode) {}
  ModeGuard guard;
  sim::EventQueue q;
  Node node{0, q};

  /// Build, register on line 5, raise at cycle 0, run to completion.
  NodeTrace run(CodeBuilder& b) {
    CodeId id = b.build(node.program());
    node.machine().register_handler(5, id);
    q.schedule_at(0, [this] { node.machine().raise_irq(5); });
    q.run_all();
    return node.take_trace();
  }
};

// ------------------------------------------------------------- flag ops

TEST(BytecodeOps, SetFlagAndBranchOnIt) {
  Harness h;
  bool flag = false;
  CodeBuilder b("h", false);
  b.set_flag("set", flag, true)
      .branch_if_flag("taken", flag, true, "skip")
      .instr("dead", [] { FAIL() << "branch not taken"; })
      .label("skip")
      .branch_if_flag("not_taken", flag, false, "end")
      .set_flag("clear", flag, false)
      .label("end");
  NodeTrace t = h.run(b);
  EXPECT_FALSE(flag);
  EXPECT_EQ(executed_names(t),
            (std::vector<std::string>{"set", "taken", "not_taken", "clear"}));
}

TEST(BytecodeOps, RetIfFlagReturnsEarly) {
  Harness h;
  bool flag = true;
  int after = 0;
  CodeBuilder b("h", false);
  b.ret_if_flag("guard", flag, true).instr("after", [&] { ++after; });
  h.run(b);
  EXPECT_EQ(after, 0);
}

// -------------------------------------------------------------- u32 ops

TEST(BytecodeOps, AddSetU32AndWrapDecrement) {
  Harness h;
  std::uint32_t a = 0, b32 = 5;
  CodeBuilder b("h", false);
  b.add_u32("inc", a, 7)
      .set_u32("set", a, 100)
      .add_u32("dec", b32, 0xFFFFFFFFu);  // wrapping decrement
  h.run(b);
  EXPECT_EQ(a, 100u);
  EXPECT_EQ(b32, 4u);
}

TEST(BytecodeOps, BranchIfU32AllComparisons) {
  Harness h;
  std::uint32_t v = 10;
  std::vector<int> hits;
  CodeBuilder b("h", false);
  b.branch_if_u32("eq", v, Cmp::Eq, 10, "l1")
      .instr("d1", [&] { hits.push_back(-1); })
      .label("l1")
      .branch_if_u32("ne", v, Cmp::Ne, 11, "l2")
      .instr("d2", [&] { hits.push_back(-2); })
      .label("l2")
      .branch_if_u32("lt", v, Cmp::Lt, 11, "l3")
      .instr("d3", [&] { hits.push_back(-3); })
      .label("l3")
      .branch_if_u32("ge", v, Cmp::Ge, 10, "l4")
      .instr("d4", [&] { hits.push_back(-4); })
      .label("l4")
      .instr("alive", [&] { hits.push_back(1); });
  h.run(b);
  EXPECT_EQ(hits, (std::vector<int>{1}));  // every branch taken
}

TEST(BytecodeOps, RetIfU32StopsOnThreshold) {
  Harness h;
  std::uint32_t v = 3;
  int after = 0;
  CodeBuilder b("h", false);
  b.ret_if_u32("guard", v, Cmp::Lt, 4).instr("after", [&] { ++after; });
  h.run(b);
  EXPECT_EQ(after, 0);
}

TEST(BytecodeOps, MemMemCompareReadsBothOperands) {
  Harness h;
  std::uint32_t i = 0, n = 3, body = 0;
  CodeBuilder b("h", false);
  b.label("top")
      .branch_if_u32_ge("done", i, n, "out")  // i >= n exits the loop
      .add_u32("work", body, 1)
      .add_u32("inc", i, 1)
      .jump("again", "top")
      .label("out");
  h.run(b);
  EXPECT_EQ(body, 3u);
  std::uint32_t x = 5, y = 5;
  int after = 0;
  CodeBuilder b2("h2", false);
  b2.ret_if_u32_ge("guard", x, y).instr("after", [&] { ++after; });
  CodeId id = b2.build(h.node.program());
  h.node.machine().register_handler(6, id);
  h.q.schedule_at(h.q.now() + 1, [&] { h.node.machine().raise_irq(6); });
  h.q.run_all();
  EXPECT_EQ(after, 0);  // 5 >= 5 returns early
}

// -------------------------------------------------------------- u16 ops

TEST(BytecodeOps, U16AddTruncatesAndMovCopies) {
  Harness h;
  std::uint16_t a = 0xFFFE, dst = 0, src = 1234;
  CodeBuilder b("h", false);
  b.add_u16("inc", a, 5)             // 0xFFFE + 5 wraps to 3
      .mov_u16("mov", dst, src)
      .add_u16("dec", src, 0xFFFF);  // decrement; dst keeps the old value
  h.run(b);
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(dst, 1234u);
  EXPECT_EQ(src, 1233u);
}

// The Kernighan popcount kernel the case-study apps use: clear_lsb_u16 in
// a backward-branching loop, guarded by branch_if_u16.
TEST(BytecodeOps, ClearLsbPopcountLoop) {
  Harness h;
  std::uint16_t v = 0b1011'0100'1000'0001;  // 6 set bits
  std::uint32_t iterations = 0;
  CodeBuilder b("h", false);
  b.label("top")
      .branch_if_u16("done", v, Cmp::Eq, 0, "out")
      .clear_lsb_u16("step", v)
      .add_u32("count", iterations, 1)
      .jump("again", "top")
      .label("out");
  NodeTrace t = h.run(b);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(iterations, 6u);
  // 7 guard evaluations + 6 iterations of (step, count, jump).
  EXPECT_EQ(t.instrs.size(), 7u + 6u * 3u);
}

TEST(BytecodeOps, RetIfU16EqAndNe) {
  Harness h;
  std::uint16_t v = 7;
  int after = 0;
  CodeBuilder b("h", false);
  b.ret_if_u16("ne_pass", v, Cmp::Ne, 7)  // false: falls through
      .ret_if_u16("eq_stop", v, Cmp::Eq, 7)
      .instr("after", [&] { ++after; });
  h.run(b);
  EXPECT_EQ(after, 0);
}

// -------------------------------------------------------------- u64 ops

TEST(BytecodeOps, AddU64Accumulates) {
  Harness h;
  std::uint64_t total = 0xFFFFFFFFull;
  CodeBuilder b("h", false);
  b.add_u64("acc", total, 2);  // crosses the 32-bit boundary
  h.run(b);
  EXPECT_EQ(total, 0x100000001ull);
}

// -------------------------------------------------- control flow & hosts

TEST(BytecodeOps, BackwardBranchCountdownLoop) {
  Harness h;
  std::uint32_t n = 5, body = 0;
  CodeBuilder b("h", false);
  b.label("top")
      .branch_if_u32("done", n, Cmp::Eq, 0, "out")
      .add_u32("work", body, 1)
      .add_u32("dec", n, 0xFFFFFFFFu)
      .jump("back", "top")  // backward branch
      .label("out")
      .instr("tail", [] {});
  h.run(b);
  EXPECT_EQ(body, 5u);
  EXPECT_EQ(n, 0u);
}

// A branch whose label binds at the end of the object is rewritten to a
// return op at build time; behaviour must match an explicit ret.
TEST(BytecodeOps, BranchToEndActsAsReturn) {
  Harness h;
  std::uint32_t v = 1;
  int after = 0;
  CodeBuilder b("h", false);
  b.branch_if_u32("exit", v, Cmp::Eq, 1, "end")
      .instr("after", [&] { ++after; })
      .label("end");
  NodeTrace t = h.run(b);
  EXPECT_EQ(after, 0);
  EXPECT_EQ(executed_names(t), (std::vector<std::string>{"exit"}));
}

// The full escape hatch: the closure drives control flow itself.
TEST(BytecodeOps, CallHostJumpRetNextProtocol) {
  Harness h;
  std::vector<std::string> log;
  int rounds = 0;
  CodeBuilder b("h", false);
  // Instruction indices: 0=entry 1=middle 2=spin 3=tail
  b.call_host("entry",
              [&] {
                log.push_back("entry");
                return StepAction::jump(2);  // skip "middle"
              })
      .instr("middle", [&] { log.push_back("middle"); })
      .call_host("spin",
                 [&] {
                   log.push_back("spin");
                   return ++rounds < 3 ? StepAction::jump(2)
                                       : StepAction::next();
                 })
      .call_host("tail", [&] {
        log.push_back("tail");
        return StepAction::ret();
      });
  h.run(b);
  EXPECT_EQ(log, (std::vector<std::string>{"entry", "spin", "spin", "spin",
                                           "tail"}));
}

TEST(BytecodeOps, UnresolvedLabelThrowsForTypedBranches) {
  Harness h;
  std::uint32_t v = 0;
  std::uint16_t w = 0;
  bool f = false;
  {
    CodeBuilder b("bad_u32", false);
    b.branch_if_u32("b", v, Cmp::Eq, 0, "nowhere");
    EXPECT_THROW(b.build(h.node.program()), util::PreconditionError);
  }
  {
    CodeBuilder b("bad_u16", false);
    b.branch_if_u16("b", w, Cmp::Ne, 0, "nowhere");
    EXPECT_THROW(b.build(h.node.program()), util::PreconditionError);
  }
  {
    CodeBuilder b("bad_flag", false);
    b.branch_if_flag("b", f, true, "nowhere");
    EXPECT_THROW(b.build(h.node.program()), util::PreconditionError);
  }
  {
    CodeBuilder b("bad_memmem", false);
    b.branch_if_u32_ge("b", v, v, "nowhere");
    EXPECT_THROW(b.build(h.node.program()), util::PreconditionError);
  }
}

// A code object built for one substrate must not run on the other: the
// machine samples the mode at registration.
TEST(BytecodeOps, ModeMismatchRefusedAtRegistration) {
  ModeGuard outer(sim::DispatchMode::Bytecode);
  sim::EventQueue q;
  Node node{0, q};
  sim::set_dispatch_mode(sim::DispatchMode::Reference);
  CodeBuilder b("h", false);
  b.instr("a", [] {});
  CodeId id = b.build(node.program());
  sim::set_dispatch_mode(sim::DispatchMode::Bytecode);
  EXPECT_THROW(node.machine().register_handler(5, id),
               util::PreconditionError);
}

// ------------------------------------------------- typed-vs-host parity

// The same logic written with typed ops and with host closures must leave
// identical traces: same instruction names, costs, and cycle timestamps.
// (This is the guarantee that let the apps migrate to typed ops without
// perturbing any golden trace.)
TEST(BytecodeOps, TypedAndHostFormsTraceIdentically) {
  auto run_variant = [](bool typed) {
    Harness h;
    static bool flag;
    static std::uint32_t counter;
    static std::uint16_t enc;
    flag = false;
    counter = 0;
    enc = 0b1010;
    CodeBuilder b("h", false);
    if (typed) {
      b.ret_if_flag("guard", flag, true)
          .add_u32("count", counter, 1)
          .label("top")
          .branch_if_u16("done", enc, Cmp::Eq, 0, "out")
          .clear_lsb_u16("step", enc)
          .jump("loop", "top")
          .label("out")
          .set_flag("mark", flag, true);
    } else {
      b.ret_if("guard", [] { return flag; })
          .instr("count", [] { ++counter; })
          .label("top")
          .branch_if("done", [] { return enc == 0; }, "out")
          .instr("step", [] { enc &= static_cast<std::uint16_t>(enc - 1); })
          .jump("loop", "top")
          .label("out")
          .instr("mark", [] { flag = true; });
    }
    NodeTrace t = h.run(b);
    EXPECT_TRUE(flag);
    EXPECT_EQ(counter, 1u);
    return t;
  };
  NodeTrace typed = run_variant(true);
  NodeTrace host = run_variant(false);
  ASSERT_EQ(typed.instrs.size(), host.instrs.size());
  for (std::size_t i = 0; i < typed.instrs.size(); ++i) {
    EXPECT_EQ(typed.instrs[i].instr, host.instrs[i].instr);
    EXPECT_EQ(typed.instrs[i].cycle, host.instrs[i].cycle);
    EXPECT_EQ(typed.instr_table[typed.instrs[i].instr].name,
              host.instr_table[host.instrs[i].instr].name);
  }
}

// The whole battery again on the reference substrate: the closure path must
// execute typed builder ops with identical semantics.
TEST(BytecodeOps, TypedOpsRunOnReferenceSubstrate) {
  Harness h(sim::DispatchMode::Reference);
  std::uint16_t v = 0b0110;
  std::uint32_t iters = 0;
  bool flag = false;
  CodeBuilder b("h", false);
  b.set_flag("set", flag, true)
      .label("top")
      .branch_if_u16("done", v, Cmp::Eq, 0, "out")
      .clear_lsb_u16("step", v)
      .add_u32("count", iters, 1)
      .jump("loop", "top")
      .label("out");
  h.run(b);
  EXPECT_TRUE(flag);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(iters, 2u);
}

}  // namespace
}  // namespace sent::mcu
